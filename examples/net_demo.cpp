// Network front-door walkthrough: an in-process NetServer on an
// ephemeral loopback port, driven by NetClient over real sockets --
// health probe, a rank and a scan round trip checked against a direct
// Engine run, back-pressure made visible with RETRY_AFTER, and the
// stats endpoint. The whole wire story in ~100 lines.
//
//   $ ./net_demo [n]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  using net::ResponseFrame;
  using net::WireStatus;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  // An event-loop TCP server fronting an EngineServer: port 0 picks an
  // ephemeral port, so the demo never collides with anything.
  NetServerOptions opt;
  opt.serve.engine.backend = BackendKind::kHost;
  opt.serve.workers = 2;
  NetServer server(opt);
  if (!server.start().ok()) {
    std::puts("failed to start");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (try: printf 'STATS\\n' | nc "
              "127.0.0.1 %u)\n",
              server.port(), server.port());

  NetClient client;
  if (!client.connect_to("127.0.0.1", server.port()).ok()) {
    std::puts("failed to connect");
    return 1;
  }

  std::string health;
  client.health_text(health);
  std::printf("health: %s", health.c_str());

  // A rank and a scan over the wire, checked against a direct engine.
  Rng rng(1);
  const LinkedList list = random_list(n, rng);
  Engine direct(server.options().serve.engine);

  ResponseFrame resp;
  if (!client.rank(list, resp).ok() || resp.status != WireStatus::kOk) {
    std::puts("rank over the wire failed");
    return 1;
  }
  const bool rank_exact = resp.values == direct.run(RankRequest{&list}).scan;
  std::printf("rank of %zu nodes over TCP: %s\n", n,
              rank_exact ? "bit-exact with the direct engine" : "MISMATCH");

  if (!client.scan(list, ScanOp::kMin, resp).ok() ||
      resp.status != WireStatus::kOk) {
    std::puts("scan over the wire failed");
    return 1;
  }
  const bool scan_exact =
      resp.values == direct.run(ScanRequest{&list, ScanOp::kMin}).scan;
  std::printf("min-scan over TCP:         %s\n",
              scan_exact ? "bit-exact with the direct engine" : "MISMATCH");

  // Back-pressure on the wire: a tiny server (one worker, one queue
  // slot) under a pipelined burst answers RETRY_AFTER with a drain-rate
  // hint instead of blocking or dropping.
  NetServerOptions tiny = opt;
  tiny.serve.workers = 1;
  tiny.serve.queue_capacity = 1;
  tiny.serve.max_batch = 1;
  NetServer small(tiny);
  small.start();
  NetClient burst;
  burst.connect_to("127.0.0.1", small.port());
  std::uint32_t id = 0;
  for (int i = 0; i < 12; ++i) burst.send_rank(list, id);
  int served = 0, retried = 0;
  for (int i = 0; i < 12; ++i) {
    ResponseFrame r;
    if (!burst.read_response(r).ok()) break;
    if (r.status == WireStatus::kRetryAfter) {
      ++retried;
      if (retried == 1)
        std::printf("overloaded server said RETRY_AFTER %u ms\n",
                    r.retry_after_ms);
    } else if (r.status == WireStatus::kOk) {
      ++served;
    }
  }
  std::printf("12-deep burst at 1 queue slot: %d served, %d told to retry "
              "(none dropped)\n",
              served + retried == 12 ? served : -1, retried);
  small.stop();

  // The stats endpoint -- the same text netcat gets for "STATS\n".
  std::string stats;
  client.stats_text(stats);
  std::printf("\nstats endpoint says:\n%s", stats.c_str());

  server.stop();
  std::puts("drained and stopped.");
  return rank_exact && scan_exact ? 0 : 1;
}
