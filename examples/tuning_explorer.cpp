// Tuning explorer: for a given list length, show what the cost model
// recommends -- the number of sublists m, the first balance interval S1,
// the full Eq. 4 schedule -- and compare the model's Eq. 3 prediction with
// an actual simulated run through the Engine (paper Section 4.4).
//
//   $ ./tuning_explorer [n]
#include <cstdio>
#include <cstdlib>

#include "analysis/schedule.hpp"
#include "analysis/sublist_stats.hpp"
#include "analysis/tuner.hpp"
#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const auto n = static_cast<double>(
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000);

  const CostConstants k = CostConstants::from(vm::CostTable::cray_c90());
  const TuneResult tuned = tune(n, k);

  std::printf("n = %.0f\n", n);
  std::printf("tuned parameters: m = %.0f sublists, S1 = %.0f links\n",
              tuned.m, tuned.s1);
  std::printf("mean sublist length n/m = %.1f, expected longest = %.1f\n",
              n / tuned.m, expected_longest(n, tuned.m));

  const auto sched = balance_schedule_auto(n, tuned.m, tuned.s1, k);
  std::printf("load-balance schedule (%zu points):\n", sched.size());
  TextTable t({"i", "S_i", "expected active lanes"});
  for (std::size_t i = 0; i < sched.size(); ++i) {
    t.add_row({TextTable::num(static_cast<long long>(i + 1)),
               TextTable::num(sched[i], 0),
               TextTable::num(g_survivors(n, tuned.m, sched[i]), 1)});
  }
  t.print();

  const double eq3 = expected_cycles_eq3(n, tuned.m, sched, k) +
                     phase2_serial_cycles(tuned.m, k);
  std::printf("\nEq. 3 predicted cost: %.0f cycles (%.2f cycles/vertex)\n",
              eq3, eq3 / n);

  Rng rng(5);
  const LinkedList list = random_list(static_cast<std::size_t>(n), rng,
                                      ValueInit::kUniformSmall);
  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  eo.seed = 6;
  Engine engine(std::move(eo));
  const RunResult r = engine.scan(list, ScanOp::kPlus, Method::kReidMiller);
  if (!r.ok()) {
    std::fprintf(stderr, "simulated run failed: %s\n",
                 r.status.message.c_str());
    return 1;
  }
  const double sim = r.stats.sim_cycles;
  std::printf("simulated run:        %.0f cycles (%.2f cycles/vertex),"
              " prediction/actual = %.3f\n",
              sim, sim / n, eq3 / sim);
  std::printf("planner prediction:   %.0f cycles (what Engine kAuto"
              " compares against serial and Wyllie)\n",
              engine.planner().reid_miller_cycles(
                  static_cast<std::size_t>(n), false));

  std::puts("\nwhere the cycles went (fused-kernel breakdown):");
  const vm::Machine& machine = *engine.sim_machine();
  TextTable bd({"kernel", "cycles", "share"});
  const std::pair<vm::Kernel, const char*> kernels[] = {
      {vm::Kernel::kInitialize, "initialize"},
      {vm::Kernel::kInitialScanStep, "phase 1 traversal"},
      {vm::Kernel::kInitialPack, "phase 1 packing"},
      {vm::Kernel::kFindSublistList, "reduced-list build"},
      {vm::Kernel::kFinalScanStep, "phase 3 traversal"},
      {vm::Kernel::kFinalPack, "phase 3 packing"},
      {vm::Kernel::kRestoreList, "restoration"},
  };
  for (const auto& [kern, name] : kernels) {
    const double c = machine.kernel_cycles(kern);
    bd.add_row({name, TextTable::num(c, 0),
                TextTable::num(100.0 * c / sim, 1) + "%"});
  }
  bd.print();
  return 0;
}
