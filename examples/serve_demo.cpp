// EngineServer walkthrough: concurrent clients, futures, micro-batching,
// request collapsing, a tree workload through the server, and a graceful
// shutdown with typed rejection -- the serving layer in ~100 lines.
//
//   $ ./serve_demo [n]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "apps/euler_tour.hpp"
#include "lists/generators.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  Rng rng(1);
  const LinkedList hot = random_list(n, rng);
  const LinkedList other = random_list(n / 2, rng);

  // A host-backend server: one engine (and one warmed workspace) per
  // worker, bounded queue, adaptive micro-batching.
  EngineServer server({.engine = {.backend = BackendKind::kHost}});
  std::printf("serving on %zu workers (queue capacity %zu)\n",
              server.workers(), server.options().queue_capacity);

  // Four clients hammer the server concurrently: ranks over the shared
  // hot list (collapsible) and scans over another (not collapsible).
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 50; ++i) {
        std::future<RunResult> f =
            (i % 2 == 0)
                ? server.submit(RankRequest{&hot})
                : server.submit(ScanRequest{&other, ScanOp::kMax});
        const RunResult r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c, r.status.message.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Tree workloads ride the same facade: an Euler tour is an ordinary
  // linked list, so one server-side scan labels a whole tree.
  const RootedTree tree = random_tree(n / 10, rng);
  const EulerTour tour = build_euler_tour(tree);
  const RunResult scan = server.submit(ScanRequest{&tour.arcs}).get();
  if (!scan.ok()) return 1;
  value_t max_depth = 0;
  for (std::size_t v = 0; v < tree.size(); ++v) {
    if (tour.down[v] != kNoVertex && scan.scan[tour.down[v]] + 1 > max_depth)
      max_depth = scan.scan[tour.down[v]] + 1;
  }
  std::printf("euler tour of %zu-node tree served: max depth %lld\n",
              tree.size(), static_cast<long long>(max_depth));

  server.shutdown();
  const ServerStats stats = server.stats();
  std::printf(
      "served %llu requests in %llu batches (peak batch %llu, "
      "%llu hot-key duplicates collapsed)\n"
      "pooled workspaces: %llu allocations, %llu reuse hits\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.peak_batch),
      static_cast<unsigned long long>(stats.collapsed),
      static_cast<unsigned long long>(stats.pool.allocations),
      static_cast<unsigned long long>(stats.pool.reuse_hits));

  // After shutdown the server answers with a typed Status, not a hang.
  const RunResult late = server.submit(RankRequest{&hot}).get();
  std::printf("submit after shutdown -> %s (\"%s\")\n",
              status_code_name(late.status.code), late.status.message.c_str());
  return late.status.code == StatusCode::kUnavailable ? 0 : 1;
}
