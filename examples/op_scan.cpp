// Generic associative-operator scans: one engine, five workloads.
//
// The operator layer (lists/ops.hpp) turns the paper's list scan into a
// family of parallel primitives: the same three-phase traversal computes
// running sums, running extrema, per-segment sums, linear recurrences,
// and critical-path schedules just by swapping the ScanOp of the request.
// This walkthrough runs each one on a host-backend lr90::Engine over a
// pointer-chained "job log" and verifies every answer against a serial
// replay.
//
//   $ ./op_scan [records]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/chain_sched.hpp"
#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "lists/ops.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  if (n == 0) {
    std::printf("nothing to scan\n");
    return 0;
  }

  Rng rng(2026);
  const LinkedList chain = random_list(n, rng, ValueInit::kSigned);
  Engine engine({.backend = BackendKind::kHost});

  // 1. Running minimum: smallest value seen before each record.
  const RunResult lo = engine.run(OpRequest{&chain, ScanOp::kMin});
  if (!lo.ok()) return std::printf("min: %s\n", lo.status.message.c_str()), 1;

  // 2. Segmented sum: every ~16th record opens a new billing period; one
  //    scan yields an independent running total per period.
  LinkedList seg = chain;
  for (std::size_t v = 0; v < n; ++v)
    seg.value[v] = seg_pack(v % 16 == 0, static_cast<std::int32_t>(v % 97));
  const RunResult per = engine.run(OpRequest{&seg, ScanOp::kSegSum});
  if (!per.ok()) return std::printf("seg: %s\n", per.status.message.c_str()), 1;

  // 3. Affine recurrence x <- mul*x + add per record, solved in one scan:
  //    the scan at v is the composed map of every earlier record.
  LinkedList rec = chain;
  for (std::size_t v = 0; v < n; ++v)
    rec.value[v] = affine_pack(static_cast<std::int32_t>(v % 3) - 1,
                               static_cast<std::int32_t>(v % 11));
  const RunResult aff = engine.run(OpRequest{&rec, ScanOp::kAffine});
  if (!aff.ok()) return std::printf("aff: %s\n", aff.status.message.c_str()), 1;

  // 4. Max-plus / critical path: tasks with durations and release times in
  //    dependency order; earliest starts via apps/chain_sched.
  std::vector<std::int32_t> duration(n), release(n);
  for (std::size_t v = 0; v < n; ++v) {
    duration[v] = static_cast<std::int32_t>(v % 13);
    release[v] = static_cast<std::int32_t>((v * 7) % 1000);
  }
  const ChainSchedule sched =
      schedule_chain(chain, duration, release, engine);
  if (!sched.ok())
    return std::printf("sched: %s\n", sched.status.message.c_str()), 1;

  // Serial replay verifies all four scans in one ordered walk.
  value_t lo_acc = OpMin::identity();
  value_t seg_acc = OpSegSum::identity();
  value_t aff_acc = OpAffine::identity();
  std::int64_t prev_finish = 0;
  OpMin min_op;
  OpSegSum seg_op;
  OpAffine aff_op;
  std::size_t checked = 0;
  index_t v = chain.head;
  while (true) {
    const std::int64_t start =
        std::max<std::int64_t>(prev_finish, release[v]);
    if (lo.scan[v] != lo_acc || per.scan[v] != seg_acc ||
        aff.scan[v] != aff_acc || sched.start[v] != start) {
      std::printf("mismatch at record %zu\n", checked);
      return 1;
    }
    lo_acc = min_op(lo_acc, chain.value[v]);
    seg_acc = seg_op(seg_acc, seg.value[v]);
    aff_acc = aff_op(aff_acc, rec.value[v]);
    prev_finish = start + duration[v];
    ++checked;
    if (chain.next[v] == v) break;
    v = chain.next[v];
  }

  std::printf("verified %zu records under min / seg-sum / affine / "
              "max-plus (method: %s)\n",
              checked, method_name(lo.method_used));
  std::printf("chain makespan = %lld (vs %lld total work)\n",
              static_cast<long long>(sched.makespan),
              [&] {
                long long t = 0;
                for (const auto d : duration) t += d;
                return t;
              }());
  std::printf("last period's running total at tail = %d\n",
              seg_sum(per.scan[chain.find_tail()]));
  return 0;
}
