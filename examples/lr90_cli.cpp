// Command-line driver: run any algorithm of the library on a generated
// workload and report simulated Cray C90 costs plus host wall-clock.
//
//   $ ./lr90_cli --n 1000000 --method reid-miller --procs 8 --workload random
//   $ ./lr90_cli --n 500000 --method all --rank
//
// Options:
//   --n N            list length                      (default 1000000)
//   --method M       serial|wyllie|miller-reif|anderson-miller|
//                    reid-miller|reid-miller-encoded|auto|all
//   --procs P        simulated processors             (default 1)
//   --workload W     random|sequential|reversed|blocked (default random)
//   --rank           rank instead of scan
//   --seed S         workload/algorithm seed          (default 42)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;

Method parse_method(const std::string& name) {
  for (const Method m :
       {Method::kAuto, Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller,
        Method::kReidMillerEncoded}) {
    if (name == method_name(m)) return m;
  }
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1000000;
  std::string method_arg = "reid-miller";
  std::string workload = "random";
  unsigned procs = 1;
  bool rank = false;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") n = std::strtoull(next(), nullptr, 10);
    else if (a == "--method") method_arg = next();
    else if (a == "--procs") procs = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (a == "--workload") workload = next();
    else if (a == "--rank") rank = true;
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  Rng rng(seed);
  LinkedList list;
  const ValueInit init = rank ? ValueInit::kOnes : ValueInit::kUniformSmall;
  if (workload == "random") list = random_list(n, rng, init);
  else if (workload == "sequential") list = sequential_list(n, init, &rng);
  else if (workload == "reversed") list = reversed_list(n, init, &rng);
  else if (workload == "blocked") list = blocked_list(n, 64, rng, init);
  else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  std::vector<Method> methods;
  if (method_arg == "all") {
    methods = {Method::kSerial, Method::kWyllie, Method::kMillerReif,
               Method::kAndersonMiller, Method::kReidMiller};
    if (rank) methods.push_back(Method::kReidMillerEncoded);
  } else {
    methods = {parse_method(method_arg)};
  }

  std::printf("%s of a %s list, n=%zu, %u simulated processor(s)\n\n",
              rank ? "list rank" : "list scan", workload.c_str(), n, procs);

  const auto want = rank ? reference_rank(list) : std::vector<value_t>{};
  TextTable t({"method", "sim cycles", "sim ns/vertex", "cycles/vertex",
               "host ms", "rounds", "extra words"});
  for (const Method m : methods) {
    SimOptions opt;
    opt.method = m;
    opt.processors = procs;
    opt.seed = seed + 1;
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult r =
        rank ? sim_list_rank(list, opt) : sim_list_scan(list, opt);
    const auto t1 = std::chrono::steady_clock::now();
    if (rank && r.scan != want) {
      std::fprintf(stderr, "%s computed a WRONG answer\n",
                   method_name(r.method_used));
      return 1;
    }
    const double host_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    t.add_row({method_name(r.method_used), TextTable::num(r.cycles, 0),
               TextTable::num(r.ns_per_vertex, 2),
               TextTable::num(r.cycles / static_cast<double>(n), 2),
               TextTable::num(host_ms, 1),
               TextTable::num(static_cast<long long>(r.stats.rounds)),
               TextTable::num(static_cast<long long>(r.stats.extra_words))});
  }
  t.print();
  return 0;
}
