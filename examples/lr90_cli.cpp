// Command-line driver: run any algorithm of the library on a generated
// workload through an lr90::Engine and report the merged statistics --
// simulated Cray C90 costs on the sim backend, wall-clock always.
//
//   $ ./lr90_cli --n 1000000 --method reid-miller --procs 8 --workload random
//   $ ./lr90_cli --n 500000 --method all --rank
//   $ ./lr90_cli --n 4000000 --backend host --threads 8 --rank
//
// Options:
//   --n N            list length                      (default 1000000)
//   --method M       serial|wyllie|miller-reif|anderson-miller|
//                    reid-miller|reid-miller-encoded|auto|all
//   --backend B      sim|host|serial                  (default sim)
//   --procs P        simulated processors             (default 1)
//   --threads T      host worker threads, 0 = default (default 0)
//   --workload W     random|sequential|reversed|blocked (default random)
//   --rank           rank instead of scan
//   --seed S         workload/algorithm seed          (default 42)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;

Method parse_method(const std::string& name) {
  for (const Method m :
       {Method::kAuto, Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller,
        Method::kReidMillerEncoded}) {
    if (name == method_name(m)) return m;
  }
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(2);
}

BackendKind parse_backend(const std::string& name) {
  for (const BackendKind b :
       {BackendKind::kSim, BackendKind::kHost, BackendKind::kSerial}) {
    if (name == backend_name(b)) return b;
  }
  std::fprintf(stderr, "unknown backend '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1000000;
  std::string method_arg = "reid-miller";
  std::string backend_arg = "sim";
  std::string workload = "random";
  unsigned procs = 1;
  unsigned threads = 0;
  bool rank = false;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--n") n = std::strtoull(next(), nullptr, 10);
    else if (a == "--method") method_arg = next();
    else if (a == "--backend") backend_arg = next();
    else if (a == "--procs") procs = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (a == "--threads") threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    else if (a == "--workload") workload = next();
    else if (a == "--rank") rank = true;
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  Rng rng(seed);
  LinkedList list;
  const ValueInit init = rank ? ValueInit::kOnes : ValueInit::kUniformSmall;
  if (workload == "random") list = random_list(n, rng, init);
  else if (workload == "sequential") list = sequential_list(n, init, &rng);
  else if (workload == "reversed") list = reversed_list(n, init, &rng);
  else if (workload == "blocked") list = blocked_list(n, 64, rng, init);
  else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  const BackendKind backend = parse_backend(backend_arg);
  std::vector<Method> methods;
  if (method_arg == "all") {
    methods = {Method::kSerial, Method::kWyllie, Method::kMillerReif,
               Method::kAndersonMiller, Method::kReidMiller};
    if (rank) methods.push_back(Method::kReidMillerEncoded);
  } else {
    methods = {parse_method(method_arg)};
  }

  EngineOptions eo;
  eo.backend = backend;
  eo.processors = procs;
  eo.threads = threads;
  eo.seed = seed + 1;
  eo.verify_output = true;
  Engine engine(std::move(eo));

  std::printf("%s of a %s list, n=%zu, backend=%s, %u simulated"
              " processor(s)\n\n",
              rank ? "list rank" : "list scan", workload.c_str(), n,
              backend_name(backend), procs);

  TextTable t({"method", "sim cycles", "sim ns/vertex", "cycles/vertex",
               "host ms", "rounds", "extra words"});
  bool failed = false;
  for (const Method m : methods) {
    Request req;
    req.list = &list;
    req.rank = rank;
    req.method = m;
    const RunResult r = engine.run(req);
    if (r.status.code == StatusCode::kUnsupported) {
      std::fprintf(stderr, "%s: skipped (%s)\n", method_name(m),
                   r.status.message.c_str());
      continue;
    }
    if (!r.ok()) {
      std::fprintf(stderr, "%s: [%s] %s\n", method_name(m),
                   status_code_name(r.status.code),
                   r.status.message.c_str());
      failed = true;
      continue;
    }
    const bool sim = r.stats.has_sim;
    t.add_row({method_name(r.method_used),
               sim ? TextTable::num(r.stats.sim_cycles, 0) : "-",
               sim ? TextTable::num(r.stats.sim_ns_per_vertex, 2) : "-",
               sim && n > 0
                   ? TextTable::num(
                         r.stats.sim_cycles / static_cast<double>(n), 2)
                   : "-",
               TextTable::num(r.stats.wall_ns / 1e6, 1),
               TextTable::num(static_cast<long long>(r.stats.algo.rounds)),
               TextTable::num(
                   static_cast<long long>(r.stats.algo.extra_words))});
  }
  t.print();
  return failed ? 1 : 0;
}
