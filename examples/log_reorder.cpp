// Pointer-chained log reordering: a transaction log whose records were
// appended wherever space was free, each record pointing at the next. List
// ranking turns the chain into a dense array in one parallel pass (rank =
// destination slot), and a generic-operator list scan computes running
// balances and running maxima without materializing the ordered array.
//
//   $ ./log_reorder [records]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/parallel_host.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 200000;

  // Synthesize the fragmented log: storage order is a random permutation of
  // append order; values are signed transaction amounts.
  Rng rng(99);
  const LinkedList log = random_list(n, rng, ValueInit::kSigned);
  std::printf("fragmented log: %zu records, first record in slot %u\n", n,
              log.head);

  // 1. Rank -> scatter into a dense, time-ordered array.
  const std::vector<value_t> rank = host_list_rank(log);
  std::vector<value_t> ordered(n);
  for (std::size_t slot = 0; slot < n; ++slot)
    ordered[static_cast<std::size_t>(rank[slot])] = log.value[slot];

  // 2. Running balance before each transaction, straight off the chain.
  const std::vector<value_t> balance = host_list_scan(log, OpPlus{});

  // 3. High-water mark of the balance... is a max-scan over balances; here
  // we instead demo a max-scan over the amounts (largest earlier deposit).
  const std::vector<value_t> high = host_list_scan(log, OpMax{});

  // Verify the three outputs against a serial replay of the ordered array.
  value_t bal = 0, hi = OpMax::identity();
  std::size_t pos = 0;
  index_t v = log.head;
  while (true) {
    if (balance[v] != bal || high[v] != hi ||
        ordered[pos] != log.value[v]) {
      std::printf("mismatch at position %zu\n", pos);
      return 1;
    }
    bal += log.value[v];
    hi = std::max(hi, log.value[v]);
    ++pos;
    if (log.next[v] == v) break;
    v = log.next[v];
  }
  std::printf("verified: dense reorder + running balance + running max for"
              " %zu records\n", pos);
  std::printf("final balance = %lld, largest single deposit = %lld\n",
              static_cast<long long>(bal), static_cast<long long>(hi));
  return 0;
}
