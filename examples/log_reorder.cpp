// Pointer-chained log reordering: a transaction log whose records were
// appended wherever space was free, each record pointing at the next. List
// ranking turns the chain into a dense array in one parallel pass (rank =
// destination slot), and a generic-operator list scan computes running
// balances and running maxima without materializing the ordered array.
//
// All three passes go through one host-backend lr90::Engine as a single
// run_batch, so they share a warmed workspace.
//
//   $ ./log_reorder [records]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 200000;

  // Synthesize the fragmented log: storage order is a random permutation of
  // append order; values are signed transaction amounts.
  Rng rng(99);
  const LinkedList log = random_list(n, rng, ValueInit::kSigned);
  std::printf("fragmented log: %zu records, first record in slot %u\n", n,
              log.head);

  // One engine, one batch: rank (dense reorder slots), plus-scan (running
  // balance), max-scan (largest earlier deposit).
  Engine engine({.backend = BackendKind::kHost});
  const Request requests[] = {
      RankRequest{&log},
      ScanRequest{&log, ScanOp::kPlus},
      ScanRequest{&log, ScanOp::kMax},
  };
  const std::vector<RunResult> results = engine.run_batch(requests);
  for (const RunResult& r : results) {
    if (!r.ok()) {
      std::printf("batch request failed: %s\n", r.status.message.c_str());
      return 1;
    }
  }
  const std::vector<value_t>& rank = results[0].scan;
  const std::vector<value_t>& balance = results[1].scan;
  const std::vector<value_t>& high = results[2].scan;

  // Rank -> scatter into a dense, time-ordered array.
  std::vector<value_t> ordered(n);
  for (std::size_t slot = 0; slot < n; ++slot)
    ordered[static_cast<std::size_t>(rank[slot])] = log.value[slot];

  // Verify the three outputs against a serial replay of the ordered array.
  value_t bal = 0, hi = OpMax::identity();
  std::size_t pos = 0;
  index_t v = log.head;
  while (true) {
    if (balance[v] != bal || high[v] != hi ||
        ordered[pos] != log.value[v]) {
      std::printf("mismatch at position %zu\n", pos);
      return 1;
    }
    bal += log.value[v];
    hi = std::max(hi, log.value[v]);
    ++pos;
    if (log.next[v] == v) break;
    v = log.next[v];
  }
  std::printf("verified: dense reorder + running balance + running max for"
              " %zu records (workspace reuse hits: %llu)\n",
              pos,
              static_cast<unsigned long long>(
                  engine.workspace().reuse_hits()));
  std::printf("final balance = %lld, largest single deposit = %lld\n",
              static_cast<long long>(bal), static_cast<long long>(hi));
  return 0;
}
