// Euler-tour technique on top of list ranking: compute depth, preorder
// number, and subtree size of every node of a random tree with a constant
// number of parallel list scans (apps/euler_tour.hpp) -- the classic
// downstream application the paper motivates ("list ranking ... is used as
// a primitive for many tree and graph algorithms").
//
//   $ ./euler_tour [nodes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/euler_tour.hpp"
#include "lists/validate.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  Rng rng(7);
  const RootedTree tree = random_tree(nodes, rng);
  const EulerTour tour = build_euler_tour(tree);
  std::printf("random tree: %zu nodes (root %u) -> Euler tour of %zu arcs\n",
              nodes, tree.root, tour.arcs.size());
  if (!tour.arcs.empty() && !is_valid_list(tour.arcs)) {
    std::puts("tour construction bug");
    return 1;
  }

  // One host engine serves all three label computations, so the scans
  // share a warmed-up workspace (apps/euler_tour runs through the Engine
  // facade; any backend would do).
  Engine engine({.backend = BackendKind::kHost});
  const TreeLabels labels = tree_labels(tree, engine);

  // Verify the parallel labels against local tree identities.
  for (std::size_t v = 0; v < nodes; ++v) {
    if (static_cast<index_t>(v) == tree.root) continue;
    const index_t p = tree.parent[v];
    if (labels.depth[v] != labels.depth[p] + 1 ||
        labels.preorder[v] <= labels.preorder[p] ||
        labels.subtree_size[v] >= labels.subtree_size[p]) {
      std::printf("label inconsistency at node %zu\n", v);
      return 1;
    }
  }

  const value_t max_depth =
      *std::max_element(labels.depth.begin(), labels.depth.end());
  value_t leaves = 0;
  for (const value_t s : labels.subtree_size) leaves += s == 1;
  std::printf("verified %zu nodes: max depth %lld, %lld leaves, "
              "root subtree size %lld\n",
              nodes, static_cast<long long>(max_depth),
              static_cast<long long>(leaves),
              static_cast<long long>(labels.subtree_size[tree.root]));
  return 0;
}
