// Quickstart: build a random linked list, rank it with one lr90::Engine on
// the simulated Cray C90 and with another on the real host, and verify the
// two answers agree.
//
//   $ ./quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 100000;

  // A list whose traversal order is a random permutation of memory order:
  // the hard, cache-hostile case the paper targets.
  Rng rng(2024);
  const LinkedList list = random_list(n, rng);
  std::printf("built a random linked list with %zu vertices (head = %u)\n",
              list.size(), list.head);

  // 1. Rank on the simulated Cray C90 with the paper's algorithm.
  EngineOptions sim_opt;
  sim_opt.backend = BackendKind::kSim;
  sim_opt.processors = 4;
  Engine sim(std::move(sim_opt));
  const RunResult simulated = sim.rank(list, Method::kReidMiller);
  if (!simulated.ok()) {
    std::printf("sim backend failed: %s\n", simulated.status.message.c_str());
    return 1;
  }
  std::printf("simulated C90 (%u proc, %s): %.0f cycles, %.2f ns/vertex"
              " (simulator ran %.1f ms on this host)\n",
              sim.options().processors, method_name(simulated.method_used),
              simulated.stats.sim_cycles, simulated.stats.sim_ns_per_vertex,
              simulated.stats.wall_ns / 1e6);

  // 2. Rank on this machine with the OpenMP host backend.
  Engine host({.backend = BackendKind::kHost});
  const RunResult real = host.rank(list);
  if (!real.ok()) {
    std::printf("host backend failed: %s\n", real.status.message.c_str());
    return 1;
  }
  std::printf("host (%s): %.2f ms wall\n", method_name(real.method_used),
              real.stats.wall_ns / 1e6);

  // 3. Verify both against the serial reference.
  const std::vector<value_t> want = reference_rank(list);
  if (simulated.scan != want || real.scan != want) {
    std::puts("MISMATCH -- this is a bug");
    return 1;
  }
  std::printf("verified: both backends agree with the serial reference\n");
  std::printf("example ranks: head=%lld, vertex 0 has rank %lld\n",
              static_cast<long long>(simulated.scan[list.head]),
              static_cast<long long>(simulated.scan[0]));
  return 0;
}
