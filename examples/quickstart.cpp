// Quickstart: build a random linked list, rank it on the simulated Cray
// C90 and on the host, and verify the two answers agree.
//
//   $ ./quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "core/api.hpp"
#include "core/parallel_host.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"

int main(int argc, char** argv) {
  using namespace lr90;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 100000;

  // A list whose traversal order is a random permutation of memory order:
  // the hard, cache-hostile case the paper targets.
  Rng rng(2024);
  const LinkedList list = random_list(n, rng);
  std::printf("built a random linked list with %zu vertices (head = %u)\n",
              list.size(), list.head);

  // 1. Rank on the simulated Cray C90 with the paper's algorithm.
  SimOptions opt;
  opt.method = Method::kReidMiller;
  opt.processors = 4;
  const SimResult sim = sim_list_rank(list, opt);
  std::printf("simulated C90 (%u proc, %s): %.0f cycles, %.2f ns/vertex\n",
              opt.processors, method_name(sim.method_used), sim.cycles,
              sim.ns_per_vertex);

  // 2. Rank on this machine with the OpenMP host path.
  const std::vector<value_t> host = host_list_rank(list);

  // 3. Verify both against the serial reference.
  const std::vector<value_t> want = reference_rank(list);
  if (sim.scan != want || host != want) {
    std::puts("MISMATCH -- this is a bug");
    return 1;
  }
  std::printf("verified: both paths agree with the serial reference\n");
  std::printf("example ranks: head=%lld, vertex 0 has rank %lld\n",
              static_cast<long long>(sim.scan[list.head]),
              static_cast<long long>(sim.scan[0]));
  return 0;
}
