// Serving-layer scaling bench: aggregate req/s and latency percentiles of
// an EngineServer as the number of client threads grows.
//
// Each client runs a closed-loop: submit one request, wait for its future,
// repeat. With one client every request pays the full submit -> worker
// wakeup -> run -> fulfil -> client wakeup round trip; with several
// concurrent clients the queue stays occupied, the workers never sleep
// between requests, and adaptive micro-batching coalesces the backlog into
// run_batch calls that pay one queue critical section and one workspace
// lease for many requests. The speedup column against the 1-client row
// isolates exactly that serving-layer overhead amortization (the requests
// themselves are small on purpose) -- even a single-core machine shows it,
// because the win is fewer context switches and condvar wakeups per
// request, not parallel compute.
//
// Also reports the pooled-workspace allocation counters around the
// measured phases: after warmup the steady state must not allocate.
//
//   $ ./serve_throughput [n] [requests_per_client] [workers]
//       n                   list length per request  (default 32768)
//       requests_per_client closed-loop length       (default 400)
//       workers             server worker threads    (default 0 = one per
//                           hardware thread)
//
// The workload is deliberately hot-key: every client ranks the same list,
// so the 4-client rows benefit from request collapsing (one engine run per
// batch of identical requests) on top of micro-batching -- which is why
// the speedup shows even on a single-core machine, where closed-loop
// clients cannot add parallel compute.
//
// Exits non-zero if the 4-client aggregate throughput fails to reach 2x
// the 1-client baseline or the steady state allocated workspace memory --
// the acceptance gate this bench exists to keep honest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "lists/generators.hpp"
#include "serve/server.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;
using Clock = std::chrono::steady_clock;

struct LoadResult {
  double seconds = 0.0;          ///< wall time of the whole closed loop
  double reqs = 0.0;             ///< requests completed across clients
  std::vector<double> lat_us;    ///< per-request latency, microseconds
  unsigned cursors = 0;          ///< cursors-in-flight the engines reported
  bool packed = false;           ///< the packed hot path served the load
};

/// Runs `clients` closed-loop threads of `per_client` rank requests each.
LoadResult run_load(EngineServer& server, const LinkedList& list,
                    unsigned clients, std::size_t per_client) {
  LoadResult out;
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto s = Clock::now();
        RunResult r = server.submit(RankRequest{&list}).get();
        const auto e = Clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       r.status.message.c_str());
          std::exit(1);
        }
        if (c == 0 && i == 0) {  // execution shape is per-run deterministic
          out.cursors = r.stats.host_interleave;
          out.packed = r.stats.host_packed;
        }
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(e - s).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.reqs = static_cast<double>(clients) * static_cast<double>(per_client);
  for (auto& per : lat)
    out.lat_us.insert(out.lat_us.end(), per.begin(), per.end());
  std::sort(out.lat_us.begin(), out.lat_us.end());
  return out;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  const std::size_t per_client =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;
  const unsigned workers =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10))
               : 0;

  Rng rng(42);
  const LinkedList list = random_list(n, rng);

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  // Two engine threads force the sublist kernel (not the serial walk), so
  // the workspace is genuinely exercised and its zero-alloc steady state
  // is a meaningful claim; inter-request parallelism still comes from the
  // worker pool, the serving-layer axis this bench measures.
  opt.engine.threads = 2;
  opt.workers = workers;
  opt.batch_threshold = 1;
  opt.max_batch = 64;
  EngineServer server(opt);

  std::printf("serve_throughput: n=%zu, %zu reqs/client, %zu workers, "
              "max_batch=%zu\n\n",
              n, per_client, server.workers(), opt.max_batch);

  // Warm every pooled workspace (and the allocator) before measuring.
  run_load(server, list, 2 * static_cast<unsigned>(server.workers()), 64);
  const std::uint64_t warm_allocs = server.stats().pool.allocations;

  BenchJson json("serve_throughput");
  stamp_provenance(json);
  json.meta("n", static_cast<double>(n));
  json.meta("reqs_per_client", static_cast<double>(per_client));
  json.meta("workers", static_cast<double>(server.workers()));
  json.meta("engine_threads", 2.0);

  TextTable table(
      {"clients", "req/s", "p50 us", "p99 us", "speedup", "cursors"});
  double baseline = 0.0;
  double at4 = 0.0;
  for (const unsigned clients : {1u, 2u, 4u, 8u}) {
    const LoadResult r = run_load(server, list, clients, per_client);
    const double rps = r.reqs / r.seconds;
    if (clients == 1) baseline = rps;
    if (clients == 4) at4 = rps;
    const double p50 = percentile(r.lat_us, 0.50);
    const double p99 = percentile(r.lat_us, 0.99);
    table.add_row({std::to_string(clients), TextTable::num(rps, 0),
                   TextTable::num(p50, 1), TextTable::num(p99, 1),
                   TextTable::num(rps / baseline, 2) + "x",
                   std::to_string(r.cursors) +
                       (r.packed ? " (packed)" : "")});
    json.row();
    json.field("clients", static_cast<double>(clients));
    json.field("req_per_s", rps);
    json.field("p50_us", p50);
    json.field("p99_us", p99);
    json.field("speedup_vs_1_client", rps / baseline);
    json.field("cursors", static_cast<double>(r.cursors));
    json.field("packed", r.packed ? 1.0 : 0.0);
  }
  table.print();

  const ServerStats stats = server.stats();
  const std::uint64_t steady_allocs = stats.pool.allocations - warm_allocs;
  const double speedup = at4 / baseline;
  std::printf(
      "\nbatches: %llu for %llu requests (mean batch %.2f, peak %llu); "
      "%llu hot-key duplicates collapsed\n"
      "workspace allocations after warmup: %llu (reuse hits %llu)\n"
      "4-client speedup over 1-client submission loop: %.2fx\n",
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.completed),
      stats.batches > 0
          ? static_cast<double>(stats.completed) /
                static_cast<double>(stats.batches)
          : 0.0,
      static_cast<unsigned long long>(stats.peak_batch),
      static_cast<unsigned long long>(stats.collapsed),
      static_cast<unsigned long long>(steady_allocs),
      static_cast<unsigned long long>(stats.pool.reuse_hits), speedup);
  // The two parallelism axes multiplied: worker pool (inter-request) x
  // per-engine host threads (intra-request, RunStats::host_threads peak).
  std::printf(
      "machine parallelism: %zu workers x %llu intra-request threads "
      "= %llu\n",
      server.workers(),
      static_cast<unsigned long long>(stats.intra_threads_peak),
      static_cast<unsigned long long>(
          server.workers() * stats.intra_threads_peak));
  json.meta("intra_threads_peak",
            static_cast<double>(stats.intra_threads_peak));

  // --- Snapshot hot-key phase: the cross-request cache steady state. ---
  // Register the bench list as a snapshot, warm the shared caches with a
  // single run, zero the counters, then hammer the handle from 8
  // closed-loop clients. Steady state must answer every request from the
  // result memo: zero engine runs, zero packed-slab builds, hit rate 1.
  SnapshotHandle handle;
  if (const Status s = server.register_snapshot(list, handle); !s.ok()) {
    std::fprintf(stderr, "register_snapshot failed: %s\n",
                 s.message.c_str());
    return 1;
  }
  SnapshotRequest hot;
  hot.snapshot_id = handle.snapshot_id;
  {
    RunResult warm = server.submit(hot).get();
    if (!warm.ok()) {
      std::fprintf(stderr, "snapshot warmup failed: %s\n",
                   warm.status.message.c_str());
      return 1;
    }
  }
  // Quiesce before zeroing: a worker bumps completed_ only AFTER it has
  // fulfilled the batch's futures, so joining every client (and even the
  // warmup future) does not prove the counters have settled -- a late
  // batch epilogue (the warmup's, or the engine phase's last) would land
  // after reset_stats() and show up as a phantom engine run in the
  // measured window. submitted_ is bumped synchronously at accept time,
  // so completed == submitted means every accepted job is fully
  // accounted; the resident entry proves the memo is warm.
  for (ServerStats s = server.stats();
       s.cache_resident_entries == 0 || s.completed < s.submitted;
       s = server.stats())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.reset_stats();

  constexpr unsigned kHotClients = 8;
  std::vector<std::vector<double>> hot_lat(kHotClients);
  std::vector<std::thread> hot_threads;
  const auto hot_t0 = Clock::now();
  for (unsigned c = 0; c < kHotClients; ++c) {
    hot_threads.emplace_back([&, c] {
      hot_lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto s = Clock::now();
        RunResult r = server.submit(hot).get();
        const auto e = Clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "hot-key request failed: %s\n",
                       r.status.message.c_str());
          std::exit(1);
        }
        hot_lat[c].push_back(
            std::chrono::duration<double, std::micro>(e - s).count());
      }
    });
  }
  for (auto& t : hot_threads) t.join();
  const double hot_seconds =
      std::chrono::duration<double>(Clock::now() - hot_t0).count();
  std::vector<double> hot_sorted;
  for (auto& per : hot_lat)
    hot_sorted.insert(hot_sorted.end(), per.begin(), per.end());
  std::sort(hot_sorted.begin(), hot_sorted.end());
  const double hot_reqs =
      static_cast<double>(kHotClients) * static_cast<double>(per_client);
  const double hot_rps = hot_reqs / hot_seconds;
  const double hot_p50 = percentile(hot_sorted, 0.50);
  const double hot_p99 = percentile(hot_sorted, 0.99);

  const ServerStats hot_stats = server.stats();
  const double hot_lookups = static_cast<double>(hot_stats.result_hits) +
                             static_cast<double>(hot_stats.result_misses);
  const double hit_rate =
      hot_lookups > 0.0
          ? static_cast<double>(hot_stats.result_hits) / hot_lookups
          : 0.0;
  std::printf(
      "\nsnapshot hot key (%u clients x %zu): %.0f req/s, p50 %.1f us, "
      "p99 %.1f us; cache hit rate %.4f, engine runs %llu, packed builds "
      "%llu\n",
      kHotClients, per_client, hot_rps, hot_p50, hot_p99, hit_rate,
      static_cast<unsigned long long>(hot_stats.completed),
      static_cast<unsigned long long>(hot_stats.pool.packed_builds));
  json.row();
  json.field("clients", static_cast<double>(kHotClients));
  json.field("variant", std::string("snapshot-hotkey"));
  json.field("req_per_s", hot_rps);
  json.field("p50_us", hot_p50);
  json.field("p99_us", hot_p99);
  json.field("cache_hit_efficiency", hit_rate);
  json.field("packed_builds",
             static_cast<double>(hot_stats.pool.packed_builds));
  json.field("engine_runs", static_cast<double>(hot_stats.completed));

  const std::string json_path = bench_json_path("BENCH_serve.json");
  if (json.write(json_path))
    std::printf("wrote %s\n", json_path.c_str());

  // SERVE_THROUGHPUT_LENIENT downgrades the wall-clock speedup gate to a
  // warning (shared CI runners make timing assertions flaky); the
  // zero-allocation gate is deterministic and stays hard either way.
  const bool lenient = std::getenv("SERVE_THROUGHPUT_LENIENT") != nullptr;
  bool failed = false;
  if (steady_allocs != 0) {
    std::puts("FAIL: steady state grew a pooled workspace");
    failed = true;
  }
  if (speedup < 2.0) {
    if (lenient) {
      std::puts("WARN: 4-client speedup below 2x (lenient mode, not fatal)");
    } else {
      std::puts("FAIL: 4-client speedup below 2x");
      failed = true;
    }
  }
  // The snapshot gates are deterministic (no wall clock involved), so
  // they stay hard even in lenient mode.
  if (hot_stats.completed != 0 || hot_stats.pool.packed_builds != 0) {
    std::puts("FAIL: snapshot hot-key steady state ran the engine again");
    failed = true;
  }
  if (hit_rate < 0.99) {
    std::puts("FAIL: snapshot hot-key cache hit rate below 0.99");
    failed = true;
  }
  if (!failed)
    std::puts("OK: >=2x at 4 clients, zero-alloc steady state, "
              "zero-run snapshot hot key");
  return failed ? 1 : 0;
}
