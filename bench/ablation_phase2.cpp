// Ablation: the Phase-2 method switch (paper Section 2.5). The reduced
// list of m+1 sublist sums can be scanned serially, with Wyllie, or
// recursively; the paper switches empirically. This bench forces each
// method for several reduced-list sizes.
#include <cstdio>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  std::puts("Ablation: Phase-2 policy for the reduced list (list scan,"
            " 1 proc)\n");

  const std::size_t n = 2000000;
  Rng rng(3);
  const LinkedList list = random_list(n, rng, ValueInit::kUniformSmall);

  TextTable t({"m (sublists)", "phase2=serial", "phase2=wyllie",
               "phase2=recursive"});
  for (const double m : {2000.0, 8000.0, 32000.0, 100000.0}) {
    std::vector<std::string> row{TextTable::num(m, 0)};
    struct Policy {
      std::size_t serial_threshold;
      std::size_t wyllie_threshold;
    };
    const Policy policies[] = {
        {1u << 30, 1u << 30},  // always serial
        {0, 1u << 30},         // always Wyllie
        {0, 0},                // always recurse
    };
    for (const auto& pol : policies) {
      EngineOptions eo;
      eo.backend = BackendKind::kSim;
      eo.reid_miller.m = m;
      eo.reid_miller.serial_threshold = pol.serial_threshold;
      eo.reid_miller.wyllie_threshold = pol.wyllie_threshold;
      Engine engine(std::move(eo));
      const RunResult r =
          engine.scan(list, ScanOp::kPlus, Method::kReidMiller);
      if (!r.ok()) {
        std::fprintf(stderr, "m=%.0f failed: %s\n", m,
                     r.status.message.c_str());
        return 1;
      }
      row.push_back(
          TextTable::num(r.stats.sim_cycles / static_cast<double>(n), 2));
    }
    t.add_row(row);
  }
  t.print();
  std::puts("\n(cycles/vertex; serial wins for small m, Wyllie for moderate,"
            " recursion for large)");
  return 0;
}
