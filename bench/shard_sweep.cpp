// Sharded / out-of-core sweep: the second-level Reid-Miller reduction
// (src/shard/) measured against the all-in-RAM sharded run and the serial
// walk, on chunked-locality lists where sharding is meant to live.
//
// The workload is blocked_list(n, 8192): a random permutation of 8192-
// vertex contiguous blocks, sequential inside each block -- the "mostly
// local, occasionally far" layout of lists that arrive from external
// sources. Under an id-range shard plan its shard-boundary segment count
// is bounded by the block count, so the second-level reduced list stays
// tiny and pass B is noise; what this bench actually measures is the
// streaming cost of passes A and C under the three residency regimes:
//
//   serial-walk    the pointer-chasing oracle (no sharding at all)
//   sharded-ram    P shards, unlimited byte budget: every shard stays
//                  resident, the spill tier never engages
//   sharded-spill  the same plan under a budget of ~2 shards: every
//                  acquire loads from the spill file, evictions stream
//                  shards out, the prefetcher hides the next load
//
// Every measured run is verified bit-exact against the serial oracle
// before its timing is accepted -- a fast wrong answer is not a result.
//
// Gate (the PR's acceptance bar, smoke config): at the largest n
// measured, sharded-spill must finish within 3x sharded-ram, and the
// spill run must have actually spilled >= 4 times (otherwise the tier
// under test never ran). SHARD_SWEEP_LENIENT=1 downgrades a miss to a
// warning (CI runners with unknown disk). The JSON trajectory is written
// either way.
//
//   $ ./shard_sweep [max_n] [reps] [--full]
//
// --full appends the out-of-core acceptance point: n = 2^27 ranked under
// a budget that forces >= 4 spills, bit-exact vs the serial oracle.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/workspace.hpp"
#include "lists/generators.hpp"
#include "shard/sharded.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

constexpr std::size_t kBlock = 8192;  ///< locality grain of the workload
constexpr unsigned kShards = 8;      ///< shard plan of every sharded row

/// Serial-oracle ranks (and the baseline timing denominator).
std::vector<value_t> oracle_rank(const LinkedList& list) {
  std::vector<value_t> want(list.size());
  for_each_in_order(list, [&](index_t v, std::size_t pos) {
    want[v] = static_cast<value_t>(pos);
  });
  return want;
}

/// One measured sharded configuration: median ms over `reps` runs, every
/// run verified bit-exact against `want` before its timing counts.
struct Measured {
  double ms = 0.0;
  shard::ShardRunStats stats;  ///< from the last rep
  bool exact = true;
};

Measured measure_sharded(const LinkedList& list, std::size_t byte_budget,
                         unsigned threads, std::size_t reps,
                         const std::vector<value_t>& want) {
  shard::ShardExec exec;
  exec.shards = kShards;
  exec.threads = threads;
  exec.interleave = 8;
  exec.byte_budget = byte_budget;
  Measured m;
  std::vector<value_t> out(list.size(), 0);
  Workspace ws;
  std::vector<double> ms;
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    const Status s = shard::sharded_scan(list, /*rank=*/true, ScanOp::kPlus,
                                         exec, ws, std::span<value_t>(out),
                                         m.stats);
    const auto t1 = Clock::now();
    if (!s.ok() || out != want) {
      m.exact = false;
      return m;
    }
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  m.ms = median(ms);
  return m;
}

/// The spill budget: room for ~2 of the plan's P shards, so passes A and
/// C must stream the rest through the spill files.
std::size_t spill_budget(std::size_t n) {
  const std::size_t per_shard =
      shard::shard_payload_bytes((n + kShards - 1) / kShards);
  return 2 * per_shard + 4096;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_n = 1u << 22;
  std::size_t reps = 3;
  bool full = false;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (++pos == 1) {
      max_n = std::max<std::size_t>(1u << 20,
                                    std::strtoull(argv[i], nullptr, 10));
    } else {
      reps = std::max<std::size_t>(1, std::strtoull(argv[i], nullptr, 10));
    }
  }
  const bool lenient = std::getenv("SHARD_SWEEP_LENIENT") != nullptr;
  const unsigned threads = 2;  // fixed: rows comparable across machines

  BenchJson json("shard_sweep");
  stamp_provenance(json);
  json.meta("workload", "blocked list (8192-vertex chunks), rank");
  json.meta("shards", static_cast<double>(kShards));
  json.meta("threads", static_cast<double>(threads));
  json.meta("max_n", static_cast<double>(max_n));
  json.meta("reps", static_cast<double>(reps));

  std::printf("shard_sweep: n up to %zu, %zu reps, P=%u shards%s\n\n",
              max_n, reps, kShards, full ? ", --full acceptance point" : "");

  bool ok = true;
  double gate_ram_ms = 0.0, gate_spill_ms = 0.0;
  std::uint64_t gate_spills = 0;
  std::size_t gate_n = 0;

  for (std::size_t n = 1u << 20; n <= max_n; n *= 4) {
    Rng rng(0x5eed + n);
    const LinkedList list = blocked_list(n, kBlock, rng);
    const double nd = static_cast<double>(n);

    std::vector<double> serial_ms;
    std::vector<value_t> want;
    for (std::size_t i = 0; i < reps; ++i) {
      const auto t0 = Clock::now();
      want = oracle_rank(list);
      const auto t1 = Clock::now();
      serial_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const double serial = median(serial_ms);
    json.row();
    json.field("n", nd);
    json.field("variant", "serial-walk");
    json.field("median_ms", serial);
    json.field("ns_per_elem", serial * 1e6 / nd);

    const Measured ram = measure_sharded(list, /*byte_budget=*/0, threads,
                                         reps, want);
    const Measured spill = measure_sharded(list, spill_budget(n), threads,
                                           reps, want);
    if (!ram.exact || !spill.exact) {
      std::printf("FAIL: sharded run diverged from the serial oracle at "
                  "n=%zu (%s)\n",
                  n, !ram.exact ? "ram" : "spill");
      return 1;
    }

    TextTable table({"variant", "P", "median ms", "ns/elem", "vs serial",
                     "segments", "spills"});
    table.add_row({"serial-walk", "-", TextTable::num(serial, 2),
                   TextTable::num(serial * 1e6 / nd, 2), "-", "-", "-"});
    const auto add = [&](const char* name, const Measured& m, bool spilled) {
      table.add_row({name, std::to_string(kShards),
                     TextTable::num(m.ms, 2),
                     TextTable::num(m.ms * 1e6 / nd, 2),
                     TextTable::num(serial / m.ms, 2) + "x",
                     std::to_string(m.stats.segments),
                     std::to_string(m.stats.store.spills)});
      json.row();
      json.field("n", nd);
      json.field("variant", name);
      json.field("shards", static_cast<double>(m.stats.shards));
      json.field("segments", static_cast<double>(m.stats.segments));
      json.field("spilled", spilled ? 1.0 : 0.0);
      json.field("median_ms", m.ms);
      json.field("ns_per_elem", m.ms * 1e6 / nd);
    };
    add("sharded-ram", ram, false);
    add("sharded-spill", spill, true);
    if (!spill.stats.store.spilled || ram.stats.store.spilled) {
      std::printf("FAIL: spill tier mis-engaged at n=%zu (ram spilled=%d, "
                  "spill spilled=%d)\n",
                  n, int(ram.stats.store.spilled),
                  int(spill.stats.store.spilled));
      return 1;
    }

    gate_ram_ms = ram.ms;
    gate_spill_ms = spill.ms;
    gate_spills = spill.stats.store.spills;
    gate_n = n;
    // Store behaviour of the largest spill run, as meta: loads/spills and
    // the prefetch hit count are residency-timing dependent, so they are
    // context for humans, not compared row fields.
    json.meta("spill_loads", static_cast<double>(spill.stats.store.loads));
    json.meta("spill_spills", static_cast<double>(spill.stats.store.spills));
    json.meta("spill_prefetch_hits",
              static_cast<double>(spill.stats.store.prefetch_hits));

    std::printf("n = %zu\n", n);
    table.print();
    std::printf("\n");
  }

  if (full) {
    // The out-of-core acceptance point: n = 2^27 under a ~2-shard budget,
    // bit-exact vs the serial oracle with >= 4 spills. One rep -- this is
    // a correctness-under-pressure demonstration, not a timing row (it is
    // deliberately NOT written into the gated JSON, so smoke baselines
    // stay comparable).
    const std::size_t n = std::size_t{1} << 27;
    std::printf("full: out-of-core acceptance at n=2^27...\n");
    Rng rng(0x5eed + n);
    const LinkedList list = blocked_list(n, kBlock, rng);
    const std::vector<value_t> want = oracle_rank(list);
    const Measured m = measure_sharded(list, spill_budget(n), threads,
                                       /*reps=*/1, want);
    if (!m.exact || m.stats.store.spills < 4) {
      std::printf("FAIL: full acceptance point (exact=%d, spills=%llu)\n",
                  int(m.exact),
                  static_cast<unsigned long long>(m.stats.store.spills));
      return 1;
    }
    std::printf("full: n=2^27 bit-exact under budget, %.0f ms, "
                "%llu loads, %llu spills, %llu prefetch hits\n\n",
                m.ms, static_cast<unsigned long long>(m.stats.store.loads),
                static_cast<unsigned long long>(m.stats.store.spills),
                static_cast<unsigned long long>(m.stats.store.prefetch_hits));
  }

  const std::string path = bench_json_path("BENCH_shard.json");
  if (!json.write(path)) return 1;
  std::printf("wrote %s\n", path.c_str());

  // The gate: out-of-core within 3x all-in-RAM sharded at the largest n,
  // and the spill tier must have genuinely engaged (>= 4 spills).
  const double ratio = gate_ram_ms > 0.0 ? gate_spill_ms / gate_ram_ms : 0.0;
  std::printf("gate: sharded-spill vs sharded-ram at n=%zu: %.2fx "
              "(need <= 3.00x), %llu spills (need >= 4)\n",
              gate_n, ratio,
              static_cast<unsigned long long>(gate_spills));
  if (ratio > 0.0 && ratio <= 3.0 && gate_spills >= 4) {
    std::puts("gate ok");
    return 0;
  }
  if (lenient) {
    std::puts("GATE MISS (SHARD_SWEEP_LENIENT set: warning only)");
    return 0;
  }
  std::puts("GATE MISS");
  return 1;
}
