// Latency-hiding sweep: packed multi-cursor traversal vs the seed
// single-cursor kernel, W x n, single thread.
//
// The paper's core claim is that chasing 64+ list chains at once turns a
// latency-bound traversal into a bandwidth-bound one (Cray vector
// gathers, VL = 64). The host analog is the packed multi-cursor kernel of
// core/host_exec.hpp: one gather per element from the single-gather slab,
// W independent load chains in flight per thread via round-robin cursors
// and software prefetch. This bench sweeps
//
//   W in {1, 2, 4, 8, 16, 32}  x  n in {2^16 .. max_n}
//
// over random-permutation lists (the paper's workload: memory position
// uncorrelated with list position) on ONE thread, against two
// single-cursor baselines:
//
//   serial     the plain ordered walk (1 dependent load chain);
//   seed-1cur  the seed's phase-1/3 sublist kernel, frozen here verbatim:
//              single cursor per sublist, value gather + is_tail bitmap
//              access per element, O(n) owner-table refill.
//
// Where the CPU can gather (simd_gather_available()), the sweep adds the
// SIMD gather tier at W in {4, 8, 16, 32, 64} as "simd" rows: the
// closest host analog yet of the paper's VL = 64 hardware gather.
//
// Gates (the PR acceptance bars): at n = 2^20 the packed W=8 kernel must
// beat seed-1cur by >= 1.5x, and -- on gather-capable hardware only --
// the best simd width must beat packed W=8 by >= 1.2x. When max_n < 2^20
// (CI smoke runs) the gate degrades to "best width >= seed-1cur" --
// still meaningful on shared runners, and INTERLEAVE_SWEEP_LENIENT=1
// downgrades any miss to a
// warning. Every row lands in BENCH_hotpath.json (LR90_BENCH_JSON_PATH
// overrides the path); the committed perf trajectory lives in
// bench/trajectory/ and tools/bench_compare.py diffs fresh runs
// against it.
//
//   $ ./interleave_sweep [max_n] [reps]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/host_exec.hpp"
#include "lists/generators.hpp"
#include "lists/ops.hpp"
#include "support/bench_json.hpp"
#include "support/cpu_features.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <class F>
double median_ms(std::size_t reps, F&& f) {
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const auto t1 = Clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median(ms);
}

/// The SEED's three-phase kernel, frozen at the pre-interleave state as
/// the differential baseline: one cursor per sublist, a value gather and
/// a bitmap access per element, full O(n) owner refill in phase 2. Do
/// not "fix" this copy -- its whole point is to stay what the seed did.
void seed_single_cursor_scan(const LinkedList& list, std::size_t sublists,
                             Workspace& ws, std::span<value_t> out) {
  const std::size_t n = list.size();
  const std::size_t want = std::min(sublists, n / 2);
  host_exec::choose_boundaries(list, want - 1, ws, list.find_tail());
  ws.fit_uninit(ws.heads, want);
  ws.heads.clear();
  ws.heads.push_back(list.head);
  for (const index_t r : ws.picks) ws.heads.push_back(list.next[r]);
  const std::size_t k = ws.heads.size();

  ws.fit(ws.sums, k, OpPlus::identity());
  ws.fit(ws.tails, k, kNoVertex);
  for (std::size_t j = 0; j < k; ++j) {
    index_t v = ws.heads[j];
    value_t acc = OpPlus::identity();
    while (true) {
      acc = acc + list.value[v];
      if (ws.is_tail[v]) break;
      v = list.next[v];
    }
    ws.sums[j] = acc;
    ws.tails[j] = v;
  }

  ws.fit(ws.owner_of_head, n, kNoVertex);
  for (std::size_t j = 0; j < k; ++j)
    ws.owner_of_head[ws.heads[j]] = static_cast<index_t>(j);
  ws.fit(ws.headscan, k, OpPlus::identity());
  {
    value_t acc = OpPlus::identity();
    std::size_t j = 0;
    for (std::size_t seen = 0; seen < k; ++seen) {
      ws.headscan[j] = acc;
      acc = acc + ws.sums[j];
      const index_t t = ws.tails[j];
      if (list.next[t] == t) break;
      j = ws.owner_of_head[list.next[t]];
    }
  }

  for (std::size_t j = 0; j < k; ++j) {
    index_t v = ws.heads[j];
    value_t acc = ws.headscan[j];
    while (true) {
      out[v] = acc;
      acc = acc + list.value[v];
      if (ws.is_tail[v]) break;
      v = list.next[v];
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The sweep starts at 2^16; clamp so a smaller argument still measures
  // one size instead of writing an empty JSON and a spurious gate miss.
  const std::size_t max_n = std::max<std::size_t>(
      1u << 16,
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 22));
  const std::size_t reps = std::max<std::size_t>(
      3, argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5);
  const bool lenient = std::getenv("INTERLEAVE_SWEEP_LENIENT") != nullptr;
  constexpr unsigned kWidths[] = {1, 2, 4, 8, 16, 32};
  // The vector-family widths mirror the tuner's grid: lane groups of 4,
  // up to the paper's VL = 64.
  constexpr unsigned kSimdWidths[] = {4, 8, 16, 32, 64};
  constexpr std::size_t kSublists = 64;
  const bool simd = simd_gather_available();

  BenchJson json("interleave_sweep");
  stamp_provenance(json);
  json.meta("workload", "random-permutation list, OpPlus over ones");
  json.meta("threads", 1.0);
  json.meta("sublists", static_cast<double>(kSublists));
  json.meta("max_n", static_cast<double>(max_n));
  json.meta("reps", static_cast<double>(reps));
  json.meta("simd_gather", simd ? 1.0 : 0.0);

  std::printf("interleave_sweep: n up to %zu, %zu reps, 1 thread, "
              "%zu sublists\n\n",
              max_n, reps, kSublists);

  double gate_seed_ms = 0.0;      // seed-1cur at the gate size
  double gate_packed8_ms = 0.0;   // packed W=8 at the gate size
  double gate_simd_ms = 0.0;      // best simd width at the gate size
  double gate_best_ratio = 0.0;   // best packed speedup at the largest n
  std::size_t gate_n = 0;

  for (std::size_t n = 1u << 16; n <= max_n; n *= 4) {
    Rng rng(0x5eed + n);
    const LinkedList list = random_list(n, rng);
    std::vector<value_t> out(n);
    Workspace ws;
    const double nd = static_cast<double>(n);

    const double serial = median_ms(reps, [&] {
      host_exec::serial_scan_into(list, std::span<value_t>(out), OpPlus{});
    });
    const double seed1 = median_ms(reps, [&] {
      seed_single_cursor_scan(list, kSublists, ws,
                              std::span<value_t>(out));
    });

    TextTable table({"variant", "W", "median ms", "ns/elem",
                     "vs seed-1cur"});
    table.add_row({"serial-walk", "1", TextTable::num(serial, 2),
                   TextTable::num(serial * 1e6 / nd, 2),
                   TextTable::num(seed1 / serial, 2) + "x"});
    table.add_row({"seed-1cur", "1", TextTable::num(seed1, 2),
                   TextTable::num(seed1 * 1e6 / nd, 2), "1.00x"});
    json.row();
    json.field("n", nd);
    json.field("variant", "serial-walk");
    json.field("median_ms", serial);
    json.field("ns_per_elem", serial * 1e6 / nd);
    json.row();
    json.field("n", nd);
    json.field("variant", "seed-1cur");
    json.field("median_ms", seed1);
    json.field("ns_per_elem", seed1 * 1e6 / nd);

    double best_ratio = 0.0;
    for (const unsigned w : kWidths) {
      host_exec::HostPlan plan;
      plan.threads = 1;
      plan.sublists = kSublists;
      plan.interleave = w;
      const double ms = median_ms(reps, [&] {
        // Fresh seed per rep: each run redraws boundaries exactly like a
        // fresh engine run would (no packed-slab cache hits).
        ws.rng = Rng(0x5eed);
        ws.invalidate_packed();
        host_exec::scan_into(list, OpPlus{}, plan, ws,
                             std::span<value_t>(out));
      });
      const double ratio = seed1 / ms;
      best_ratio = std::max(best_ratio, ratio);
      table.add_row({"packed", std::to_string(w), TextTable::num(ms, 2),
                     TextTable::num(ms * 1e6 / nd, 2),
                     TextTable::num(ratio, 2) + "x"});
      json.row();
      json.field("n", nd);
      json.field("variant", "packed");
      json.field("w", static_cast<double>(w));
      json.field("median_ms", ms);
      json.field("ns_per_elem", ms * 1e6 / nd);
      json.field("speedup_vs_seed", ratio);
      if (n == (1u << 20) && w == 8) {
        gate_seed_ms = seed1;
        gate_packed8_ms = ms;
      }
    }
    for (const unsigned w : kSimdWidths) {
      if (!simd) break;  // no usable AVX2: the simd rows are meaningless
      host_exec::HostPlan plan;
      plan.threads = 1;
      plan.sublists = kSublists;
      plan.interleave = w;
      plan.tier = KernelTier::kSimdGather;
      const double ms = median_ms(reps, [&] {
        ws.rng = Rng(0x5eed);
        ws.invalidate_packed();
        host_exec::scan_into(list, OpPlus{}, plan, ws,
                             std::span<value_t>(out));
      });
      const double ratio = seed1 / ms;
      best_ratio = std::max(best_ratio, ratio);
      table.add_row({"simd", std::to_string(w), TextTable::num(ms, 2),
                     TextTable::num(ms * 1e6 / nd, 2),
                     TextTable::num(ratio, 2) + "x"});
      json.row();
      json.field("n", nd);
      json.field("variant", "simd");
      json.field("w", static_cast<double>(w));
      json.field("median_ms", ms);
      json.field("ns_per_elem", ms * 1e6 / nd);
      json.field("speedup_vs_seed", ratio);
      if (n == (1u << 20) && (gate_simd_ms == 0.0 || ms < gate_simd_ms))
        gate_simd_ms = ms;
    }
    gate_best_ratio = best_ratio;
    gate_n = n;
    std::printf("n = %zu\n", n);
    table.print();
    std::printf("\n");
  }

  const std::string path = bench_json_path("BENCH_hotpath.json");
  if (!json.write(path)) return 1;
  std::printf("wrote %s\n", path.c_str());

  // The gate. Full runs (max_n >= 2^20): packed W=8 must beat the seed
  // kernel by >= 1.5x at n = 2^20. Smoke runs: the best packed width must
  // at least match the seed kernel at the largest n measured.
  bool ok = true;
  if (gate_packed8_ms > 0.0) {
    const double ratio = gate_seed_ms / gate_packed8_ms;
    std::printf("gate: packed W=8 vs seed-1cur at n=2^20: %.2fx "
                "(need >= 1.50x)\n",
                ratio);
    if (ratio < 1.5) ok = false;
    // The SIMD gate only binds where the hardware can gather: the best
    // vector width must beat the scalar-cursor packed kernel at W=8.
    if (simd && gate_simd_ms > 0.0) {
      const double sratio = gate_packed8_ms / gate_simd_ms;
      std::printf("gate: simd best-W vs packed W=8 at n=2^20: %.2fx "
                  "(need >= 1.20x)\n",
                  sratio);
      if (sratio < 1.2) ok = false;
    } else if (!simd) {
      std::printf("gate: no usable AVX2 gather on this CPU; simd gate "
                  "skipped\n");
    }
  } else {
    std::printf("gate (smoke, n=%zu): best packed width vs seed-1cur: "
                "%.2fx (need >= 1.00x)\n",
                gate_n, gate_best_ratio);
    if (gate_best_ratio < 1.0) ok = false;
  }
  if (ok) {
    std::puts("gate ok");
    return 0;
  }
  if (lenient) {
    std::puts("GATE MISS (INTERLEAVE_SWEEP_LENIENT set: warning only)");
    return 0;
  }
  std::puts("GATE MISS");
  return 1;
}
