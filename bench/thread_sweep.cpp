// Thread-scaling sweep of the packed hot path: T x W x n, the host
// reproduction of the paper's Fig. 11 (multiprocessor speedup).
//
// PR 4 reproduced the paper's vector dimension (W cursors in flight per
// worker ~ Cray VL); this bench measures the Section 5 processor
// dimension on top: the same packed single-gather kernels with T workers
// feeding their W-cursor sets from the shared claim counter, the slab
// built in per-thread ranges, and phase 2 scanned blocked. The sweep runs
//
//   T in {1, 2, 4, 8}  x  W in {4, 8, 16}  x  n in {2^18 .. max_n}
//
// over random-permutation lists (ranking: the all-ones scan) at a FIXED
// sublist count, so every (T, W) cell does identical work and the ratios
// are pure scheduling. Two reference rows per n: the serial walk, and the
// Engine's fully-auto plan (threads = 0, interleave = 0 -- what the joint
// (T x W) planner picks by itself). Per-phase wall clock from ExecInfo
// lands in BENCH_threads.json together with per-phase parallel efficiency
// E_p(T) = t_p(1) / (T * t_p(T)) against the same-W one-thread row.
//
// Gate (the PR's acceptance bar): at n = 2^22, packed T=4/W=8 must beat
// its own T=1/W=8 time by >= 2.5x. The gate needs hardware: fewer than 4
// hardware threads (or a smoke run with max_n < 2^22) degrades it to a
// sanity bound -- threading must not lose more than half -- and
// THREAD_SWEEP_LENIENT=1 downgrades any miss to a warning (CI runners).
// The JSON trajectory is written either way.
//
//   $ ./thread_sweep [max_n] [reps]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/host_exec.hpp"
#include "lists/generators.hpp"
#include "lists/ops.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One timed configuration: median total ms plus per-phase medians.
struct Cell {
  double total_ms = 0.0;
  double build_ms = 0.0;
  double phase1_ms = 0.0;
  double phase2_ms = 0.0;
  double phase3_ms = 0.0;
  bool phase2_parallel = false;
};

Cell measure(const LinkedList& list, unsigned threads, unsigned W,
             std::size_t sublists, std::size_t reps, Workspace& ws,
             std::span<value_t> out) {
  host_exec::HostPlan plan;
  plan.threads = threads;
  plan.sublists = sublists;
  plan.interleave = W;
  std::vector<double> total, build, p1, p2, p3;
  bool p2par = false;
  for (std::size_t i = 0; i < reps; ++i) {
    // Fresh seed per rep: each run redraws boundaries exactly like a
    // fresh engine run would (no packed-slab cache hits).
    ws.rng = Rng(0x5eed);
    ws.invalidate_packed();
    const auto t0 = Clock::now();
    const host_exec::ExecInfo info = host_exec::rank_into(list, plan, ws, out);
    const auto t1 = Clock::now();
    total.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    build.push_back(info.build_ns * 1e-6);
    p1.push_back(info.phase1_ns * 1e-6);
    p2.push_back(info.phase2_ns * 1e-6);
    p3.push_back(info.phase3_ns * 1e-6);
    p2par = info.phase2_parallel;
  }
  return Cell{median(total), median(build), median(p1), median(p2),
              median(p3), p2par};
}

/// Per-phase parallel efficiency t1 / (T * tT); 0 when unmeasurable.
double efficiency(double t1_ms, double tT_ms, unsigned T) {
  return tT_ms > 0.0 ? t1_ms / (static_cast<double>(T) * tT_ms) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n = std::max<std::size_t>(
      1u << 18,
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 22));
  const std::size_t reps = std::max<std::size_t>(
      1, argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5);
  const bool lenient = std::getenv("THREAD_SWEEP_LENIENT") != nullptr;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  constexpr unsigned kThreads[] = {1, 2, 4, 8};
  constexpr unsigned kWidths[] = {4, 8, 16};
  constexpr std::size_t kSublists = 512;  // fixed: identical work per cell
  constexpr std::size_t kGateN = 1u << 22;
  constexpr unsigned kGateT = 4;
  constexpr unsigned kGateW = 8;

  BenchJson json("thread_sweep");
  stamp_provenance(json);
  json.meta("workload", "random-permutation list, rank (all-ones scan)");
  json.meta("sublists", static_cast<double>(kSublists));
  json.meta("max_n", static_cast<double>(max_n));
  json.meta("reps", static_cast<double>(reps));

  std::printf("thread_sweep: n up to %zu, %zu reps, %u hardware threads, "
              "%zu sublists\n\n",
              max_n, reps, hw, kSublists);

  double gate_t1_ms = 0.0;  // packed T=1, W=8 at the gate size
  double gate_t4_ms = 0.0;  // packed T=4, W=8 at the gate size
  double last_t1_ms = 0.0;  // same pair at the largest n measured
  double last_t4_ms = 0.0;
  std::size_t last_n = 0;

  for (std::size_t n = 1u << 18; n <= max_n; n *= 4) {
    Rng rng(0x5eed + n);
    const LinkedList list = random_list(n, rng);
    std::vector<value_t> out(n);
    Workspace ws;
    const double nd = static_cast<double>(n);

    const double serial = [&] {
      std::vector<double> ms;
      for (std::size_t i = 0; i < reps; ++i) {
        const auto t0 = Clock::now();
        for_each_in_order(list, [&](index_t v, std::size_t pos) {
          out[v] = static_cast<value_t>(pos);
        });
        const auto t1 = Clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      return median(ms);
    }();
    json.row();
    json.field("n", nd);
    json.field("variant", "serial-walk");
    json.field("median_ms", serial);
    json.field("ns_per_elem", serial * 1e6 / nd);

    TextTable table({"variant", "T", "W", "median ms", "ns/elem",
                     "vs T=1", "eff p1", "eff p3", "p2 par"});
    table.add_row({"serial-walk", "1", "-", TextTable::num(serial, 2),
                   TextTable::num(serial * 1e6 / nd, 2), "-", "-", "-",
                   "-"});

    for (const unsigned w : kWidths) {
      Cell base;  // the T=1 row of this width: the scaling denominator
      for (const unsigned t : kThreads) {
        const Cell c = measure(list, t, w, kSublists, reps, ws,
                               std::span<value_t>(out));
        if (t == 1) base = c;
        const double speedup = c.total_ms > 0.0 ? base.total_ms / c.total_ms
                                                : 0.0;
        const double e1 = efficiency(base.phase1_ms, c.phase1_ms, t);
        const double e3 = efficiency(base.phase3_ms, c.phase3_ms, t);
        table.add_row({"packed", std::to_string(t), std::to_string(w),
                       TextTable::num(c.total_ms, 2),
                       TextTable::num(c.total_ms * 1e6 / nd, 2),
                       TextTable::num(speedup, 2) + "x",
                       TextTable::num(e1, 2), TextTable::num(e3, 2),
                       c.phase2_parallel ? "yes" : "no"});
        json.row();
        json.field("n", nd);
        json.field("variant", "packed");
        json.field("t", static_cast<double>(t));
        json.field("w", static_cast<double>(w));
        json.field("median_ms", c.total_ms);
        json.field("ns_per_elem", c.total_ms * 1e6 / nd);
        json.field("speedup_vs_t1", speedup);
        json.field("build_ms", c.build_ms);
        json.field("phase1_ms", c.phase1_ms);
        json.field("phase2_ms", c.phase2_ms);
        json.field("phase3_ms", c.phase3_ms);
        json.field("phase1_efficiency", e1);
        json.field("phase3_efficiency", e3);
        json.field("phase2_parallel", c.phase2_parallel ? 1.0 : 0.0);
        if (w == kGateW) {
          if (t == 1) last_t1_ms = c.total_ms;
          if (t == kGateT) last_t4_ms = c.total_ms;
          if (n == kGateN && t == 1) gate_t1_ms = c.total_ms;
          if (n == kGateN && t == kGateT) gate_t4_ms = c.total_ms;
        }
      }
    }
    last_n = n;

    // The fully-auto plan: the (T, W) cell the joint planner picks with
    // EngineOptions{threads=0, interleave=0}, measured under the same
    // harness as the grid cells (same warm output buffer, same sublist
    // count) so the row judges the planner's choice, not Engine API
    // overheads like cold result pages.
    {
      EngineOptions eo;
      eo.backend = BackendKind::kHost;
      const Engine engine(eo);
      const Planner::Decision d =
          engine.planner().decide(n, Method::kAuto, /*rank=*/true);
      const unsigned t = d.method == Method::kSerial ? 1 : d.threads;
      const unsigned w = d.interleave;
      double auto_ms = serial;
      if (d.method != Method::kSerial) {
        const Cell c = measure(list, t, std::max(1u, w), kSublists, reps,
                               ws, std::span<value_t>(out));
        auto_ms = c.total_ms;
      }
      table.add_row({"auto-plan", std::to_string(t), std::to_string(w),
                     TextTable::num(auto_ms, 2),
                     TextTable::num(auto_ms * 1e6 / nd, 2), "-", "-", "-",
                     "-"});
      json.row();
      json.field("n", nd);
      json.field("variant", "auto-plan");
      // picked_* not t/w: the planner's choice follows the hardware, so
      // these must not be part of the row identity bench_compare matches
      // on (they are hardware-shape fields, skipped cross-machine).
      json.field("picked_t", static_cast<double>(t));
      json.field("picked_w", static_cast<double>(w));
      json.field("median_ms", auto_ms);
      json.field("ns_per_elem", auto_ms * 1e6 / nd);
    }

    std::printf("n = %zu\n", n);
    table.print();
    std::printf("\n");
  }

  const std::string path = bench_json_path("BENCH_threads.json");
  if (!json.write(path)) return 1;
  std::printf("wrote %s\n", path.c_str());

  // The gate. Full runs on capable hardware: T=4 must beat T=1 by 2.5x
  // at n = 2^22, same width. Smoke runs or < 4 hardware threads: sanity
  // only -- threading must not lose more than half (oversubscribing a
  // small machine cannot speed anything up, so demanding 2.5x there
  // would only measure the container, not the code).
  bool ok = true;
  const bool capable = hw >= kGateT;
  if (gate_t4_ms > 0.0 && capable) {
    const double ratio = gate_t1_ms / gate_t4_ms;
    std::printf("gate: packed T=4 vs T=1 at W=8, n=2^22: %.2fx "
                "(need >= 2.50x)\n",
                ratio);
    if (ratio < 2.5) ok = false;
  } else if (last_t4_ms > 0.0) {
    const double ratio = last_t1_ms / last_t4_ms;
    std::printf("gate (%s, n=%zu): packed T=4 vs T=1 at W=8: %.2fx "
                "(need >= 0.50x)\n",
                capable ? "smoke" : "undersized hardware", last_n, ratio);
    if (ratio < 0.5) ok = false;
  }
  if (ok) {
    std::puts("gate ok");
    return 0;
  }
  if (lenient) {
    std::puts("GATE MISS (THREAD_SWEEP_LENIENT set: warning only)");
    return 0;
  }
  std::puts("GATE MISS");
  return 1;
}
