// Reproduces Fig. 10: the expected-survivor curve g(x) for n = 10000,
// m = 199, and the optimal load-balancing step schedule derived from Eq. 4.
// Also validates Section 4.4's claim that Eq. 3 predicts the measured
// (simulated) execution accurately while Eq. 5 over-estimates it.
#include <cstdio>

#include "analysis/schedule.hpp"
#include "analysis/sublist_stats.hpp"
#include "analysis/tuner.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  CheckedRunner sim;  // records wrong answers, exits non-zero
  const double n = 10000, m = 199;
  const CostConstants k = CostConstants::from(vm::CostTable::cray_c90());
  const TuneResult tuned = tune(n, k);
  const auto sched = balance_schedule_auto(n, m, tuned.s1, k);

  std::puts("Fig. 10: g(x) and the optimal balance schedule");
  std::printf("(n=%.0f, m=%.0f, tuned S1=%.0f, %zu balance points;"
              " paper used 11)\n\n", n, m, tuned.s1, sched.size());

  TextTable t({"i", "S_i", "g(S_i) active", "interval"});
  double prev = 0;
  int i = 1;
  for (const double s : sched) {
    t.add_row({TextTable::num(static_cast<long long>(i++)),
               TextTable::num(s, 0),
               TextTable::num(g_survivors(n, m, s), 1),
               TextTable::num(s - prev, 0)});
    prev = s;
  }
  t.print();

  // Section 4.4: Eq. 3 predicts, Eq. 5 over-estimates.
  std::puts("\nprediction vs simulation (one processor, list scan):");
  TextTable p({"n", "Eq.3 predict", "Eq.5 bound", "simulated", "eq3/sim"});
  for (const std::size_t nn : {10000u, 100000u, 1000000u}) {
    const TuneResult tr = tune(static_cast<double>(nn), k);
    const auto s =
        balance_schedule_auto(static_cast<double>(nn), tr.m, tr.s1, k);
    const double eq3 =
        expected_cycles_eq3(static_cast<double>(nn), tr.m, s, k) +
        phase2_serial_cycles(tr.m, k);
    const double eq5 = expected_cycles_eq5(static_cast<double>(nn), tr.m,
                                           tr.s1, s.size(), k);
    const double measured = sim(Method::kReidMiller, nn, 1, false).cycles;
    p.add_row({TextTable::num(static_cast<long long>(nn)),
               TextTable::num(eq3, 0), TextTable::num(eq5, 0),
               TextTable::num(measured, 0),
               TextTable::num(eq3 / measured, 3)});
  }
  p.print();
  return sim.exit_code();
}
