// Reproduces Fig. 11: execution time per vertex (ns) of our list scan on
// 1, 2, 4, and 8 processors of the simulated Cray C90, as a function of
// list length, plus the asymptotic cycles-per-vertex the paper reports
// (scan: 7.4 / 3.9 / 2.0 / 1.1; rank: 5.1 / 2.6 / 1.4 / 0.75).
#include <cstdio>

#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  CheckedRunner sim;  // records wrong answers, exits non-zero
  std::puts("Fig. 11: list-scan ns/vertex on 1, 2, 4, 8 processors\n");

  TextTable t({"n", "1 proc", "2 proc", "4 proc", "8 proc"});
  for (const std::size_t n :
       {4096u, 16384u, 65536u, 262144u, 1048576u, 4194304u}) {
    std::vector<std::string> row{TextTable::num(static_cast<long long>(n))};
    for (const unsigned p : {1u, 2u, 4u, 8u}) {
      row.push_back(
          TextTable::num(sim(Method::kReidMiller, n, p, false)
                             .ns_per_vertex, 1));
    }
    t.add_row(row);
  }
  t.print();

  std::puts("\nasymptotic cycles/vertex at n=4M:");
  std::puts("            scan (paper)   rank (paper)");
  const std::size_t big = 4194304;
  const double paper_scan[] = {7.4, 3.9, 2.0, 1.1};
  const double paper_rank[] = {5.1, 2.6, 1.4, 0.75};
  int i = 0;
  for (const unsigned p : {1u, 2u, 4u, 8u}) {
    const double scan =
        sim(Method::kReidMiller, big, p, false).cycles_per_vertex;
    const double rank =
        sim(Method::kReidMillerEncoded, big, p, true).cycles_per_vertex;
    std::printf("  %u proc:  %5.2f (%4.2f)    %5.2f (%4.2f)\n", p, scan,
                paper_scan[i], rank, paper_rank[i]);
    ++i;
  }
  return sim.exit_code();
}
