// Wall-clock google-benchmark of the host-path implementations: the serial
// walk, the Engine's OpenMP host backend (workspace reused across
// iterations), the legacy one-shot shim for comparison, and (for context)
// the host cost of the simulator itself. Run with --benchmark_filter=...
// to narrow.
#include <benchmark/benchmark.h>

#include <map>

#include "apps/euler_tour.hpp"
#include "baselines/serial.hpp"
#include "core/engine.hpp"
#include "core/parallel_host.hpp"
#include "lists/generators.hpp"
#include "lists/transform.hpp"
#include "vm/segmented.hpp"

namespace {

using namespace lr90;

const LinkedList& cached_list(std::size_t n) {
  static std::map<std::size_t, LinkedList> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(n);
    it = cache.emplace(n, random_list(n, rng, ValueInit::kUniformSmall))
             .first;
  }
  return it->second;
}

void BM_SerialScanHost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  std::vector<value_t> out(n);
  for (auto _ : state) {
    serial_scan_host(l, std::span<value_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialScanHost)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_EngineHostScan(benchmark::State& state) {
  // The Engine path: the workspace warms up on the first iteration and
  // every later run reuses it (state.counters report the reuse ratio).
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  EngineOptions eo;
  eo.backend = BackendKind::kHost;
  eo.threads = static_cast<unsigned>(state.range(1));
  Engine engine(std::move(eo));
  for (auto _ : state) {
    auto r = engine.scan(l);
    benchmark::DoNotOptimize(r.scan.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["ws_alloc"] =
      static_cast<double>(engine.workspace().allocations());
  state.counters["ws_reuse"] =
      static_cast<double>(engine.workspace().reuse_hits());
}
BENCHMARK(BM_EngineHostScan)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 2})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4});

// The deprecated shim is the subject under measurement here (its per-call
// scratch cost vs the Engine's warm workspace), so keep calling it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
void BM_HostListScanShim(benchmark::State& state) {
  // Legacy one-shot shim: allocates a fresh workspace every call.
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  HostOptions opt;
  opt.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto out = host_list_scan(l, OpPlus{}, opt);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HostListScanShim)->Args({1 << 20, 2})->Args({1 << 20, 4});
#pragma GCC diagnostic pop

void BM_EngineHostRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  Engine engine({.backend = BackendKind::kHost});
  for (auto _ : state) {
    auto r = engine.rank(l);
    benchmark::DoNotOptimize(r.scan.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineHostRank)->Arg(1 << 16)->Arg(1 << 20);

void BM_EngineRunBatch(benchmark::State& state) {
  // A batch of independent rank requests through one warm workspace.
  const auto lists_count = static_cast<std::size_t>(state.range(0));
  const auto each = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  std::vector<LinkedList> lists;
  lists.reserve(lists_count);
  for (std::size_t i = 0; i < lists_count; ++i)
    lists.push_back(random_list(each, rng));
  std::vector<Request> requests;
  requests.reserve(lists_count);
  for (const LinkedList& l : lists)
    requests.push_back(RankRequest{&l});
  Engine engine({.backend = BackendKind::kHost});
  for (auto _ : state) {
    auto results = engine.run_batch(requests);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lists_count * each));
  state.counters["ws_alloc"] =
      static_cast<double>(engine.workspace().allocations());
}
BENCHMARK(BM_EngineRunBatch)->Args({256, 256})->Args({16, 65536});

void BM_SimReidMiller(benchmark::State& state) {
  // Host cost of the functional simulation itself (not simulated ns).
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  Engine engine(std::move(eo));
  for (auto _ : state) {
    auto r = engine.scan(l, ScanOp::kPlus, Method::kReidMiller);
    benchmark::DoNotOptimize(r.scan.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimReidMiller)->Arg(1 << 14)->Arg(1 << 18);

void BM_EulerTourLabels(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const RootedTree tree = random_tree(n, rng);
  for (auto _ : state) {
    auto labels = tree_labels(tree);
    benchmark::DoNotOptimize(labels.depth.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EulerTourLabels)->Arg(1 << 14)->Arg(1 << 18);

void BM_RankManyBatch(benchmark::State& state) {
  // The concat-once-rank-once batching of lists/transform.hpp, for
  // comparison with BM_EngineRunBatch's per-request execution.
  const auto lists_count = static_cast<std::size_t>(state.range(0));
  const auto each = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  std::vector<LinkedList> lists;
  lists.reserve(lists_count);
  for (std::size_t i = 0; i < lists_count; ++i)
    lists.push_back(random_list(each, rng));
  for (auto _ : state) {
    auto ranks = rank_many(lists);
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lists_count * each));
}
BENCHMARK(BM_RankManyBatch)->Args({256, 256})->Args({16, 65536});

void BM_SegmentedScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  std::vector<value_t> v(n);
  std::vector<std::uint8_t> flags(n, 0);
  for (auto& x : v) x = static_cast<value_t>(rng.uniform(100));
  for (std::size_t i = 0; i < n; i += 97) flags[i] = 1;
  std::vector<value_t> out(n);
  vm::Machine m(vm::MachineConfig{}, vm::CostTable::zero());
  for (auto _ : state) {
    vm::segmented_exclusive_scan(m, 0, std::span<const value_t>(v), flags,
                                 std::span<value_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentedScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimWyllie(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LinkedList& l = cached_list(n);
  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  Engine engine(std::move(eo));
  for (auto _ : state) {
    auto r = engine.scan(l, ScanOp::kPlus, Method::kWyllie);
    benchmark::DoNotOptimize(r.scan.data());
  }
}
BENCHMARK(BM_SimWyllie)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
