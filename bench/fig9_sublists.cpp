// Reproduces Fig. 9: expected length of the j-th shortest sublist when a
// list of n = 10000 vertices is split at m random positions, compared with
// observed lengths over 20 samples (min / average / max).
#include <cstdio>

#include "analysis/sublist_stats.hpp"
#include "lists/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  std::puts("Fig. 9: expected vs observed j-th shortest sublist length");
  std::puts("(n = 10000, 20 samples per m; error range is min..max)\n");

  const std::size_t n = 10000;
  Rng listgen(42);
  const LinkedList list = random_list(n, listgen);

  for (const std::size_t m : {50u, 100u, 200u, 400u}) {
    std::printf("m = %zu\n", m);
    std::vector<RunningStats> by_j(m + 1);
    std::size_t min_count = m + 1;
    for (int sample = 0; sample < 20; ++sample) {
      Rng picker(1000 + sample);
      std::vector<index_t> tails;
      tails.reserve(m);
      for (std::size_t i = 0; i < m; ++i)
        tails.push_back(static_cast<index_t>(picker.uniform(n)));
      const auto lengths = observed_sublist_lengths(list, tails);
      min_count = std::min(min_count, lengths.size());
      for (std::size_t j = 0; j < lengths.size(); ++j)
        by_j[j].add(static_cast<double>(lengths[j]));
    }
    TextTable t({"j", "expected", "observed avg", "min", "max"});
    for (const double frac : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      const auto j = static_cast<std::size_t>(
          frac * static_cast<double>(min_count - 1));
      t.add_row({TextTable::num(static_cast<long long>(j)),
                 TextTable::num(expected_jth_shortest(
                     static_cast<double>(n), static_cast<double>(m),
                     static_cast<double>(j)), 1),
                 TextTable::num(by_j[j].mean(), 1),
                 TextTable::num(by_j[j].min(), 0),
                 TextTable::num(by_j[j].max(), 0)});
    }
    t.print();
    std::puts("");
  }
  return 0;
}
