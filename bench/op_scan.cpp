// Operator-layer overhead gate: the generic associative-operator path
// must cost no more than 5% over the hard-coded sum scan.
//
// Three tiers of the same sum scan over one random list:
//
//   hard-coded   host_exec::scan_into(list, OpPlus{}, ...) -- the operator
//                inlined at compile time, the fastest the kernel gets;
//   dispatched   with_scan_op(ScanOp::kPlus, ...) around the same kernel
//                call -- adds the one runtime switch per run that every
//                OpRequest pays;
//   engine       Engine::run(OpRequest{...}) -- the full facade: planner
//                decision, result allocation, stats.
//
// Every tier produces a fresh result vector per run (the Engine's API
// contract), so the comparison isolates the dispatch machinery rather
// than the allocator.
//
// The gate: the dispatched and engine medians must stay within 5% of the
// hard-coded median (OP_SCAN_LENIENT=1 downgrades a miss to a warning for
// noisy shared runners). Also prints the ns/vertex of every registered
// operator through the engine -- the new workloads the layer opens.
//
// A fourth tier gates the fault-injection framework's disabled fast path
// (support/faultpoint.hpp): the dispatched scan plus one disabled
// FaultSite::fire() check per 1024 vertices -- a deliberately generous
// model of the I/O-edge density a spill-tier run pays -- must stay
// within 1% of the plain dispatched tier, so production binaries carry
// the chaos hooks for free.
//
//   $ ./op_scan [n] [reps]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "core/host_exec.hpp"
#include "lists/generators.hpp"
#include "lists/ops.hpp"
#include "support/bench_json.hpp"
#include "support/faultpoint.hpp"

namespace {

using namespace lr90;
using Clock = std::chrono::steady_clock;

/// Never armed: measures exactly what every production fault site costs
/// while injection is globally disabled.
fault::FaultSite g_probe{"bench.op_scan.probe",
                         "disabled-overhead probe (never armed)"};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <class F>
double time_once(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const std::size_t reps = std::max<std::size_t>(
      1, argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9);
  const bool lenient = std::getenv("OP_SCAN_LENIENT") != nullptr;
  // Keeps the faultpoint 1% gate hard even under OP_SCAN_LENIENT: the
  // faulted and dispatched tiers run the same kernel interleaved, so
  // their ratio is robust where the machine-relative 5% gates are not.
  const bool fault_strict = std::getenv("OP_SCAN_FAULT_STRICT") != nullptr;

  Rng rng(41);
  const LinkedList list = random_list(n, rng, ValueInit::kSigned);

  Engine engine({.backend = BackendKind::kHost});

  // The hard-coded reference runs the kernel exactly as the engine's host
  // backend does: same plan (threads, sublists, interleave width), same
  // workspace discipline -- so the tiers differ only by dispatch layers.
  Workspace ws;
  const Planner::Decision decision =
      engine.planner().decide(n, Method::kAuto, /*rank=*/false);
  host_exec::HostPlan plan;
  plan.threads = decision.method == Method::kSerial ? 1 : decision.threads;
  plan.sublists = static_cast<std::size_t>(decision.sublists);
  plan.interleave = decision.interleave;

  // Every tier returns a fresh result vector (the API contract); the
  // volatile sink keeps the runs observable.
  volatile value_t sink = 0;
  auto run_hard = [&] {
    std::vector<value_t> res(n);
    host_exec::scan_into(list, OpPlus{}, plan, ws, std::span<value_t>(res));
    sink = res[list.head];
  };
  auto run_dispatched = [&] {
    std::vector<value_t> res(n);
    with_scan_op(ScanOp::kPlus, [&](auto op) {
      host_exec::scan_into(list, op, plan, ws, std::span<value_t>(res));
    });
    sink = res[list.head];
  };
  auto run_engine = [&] {
    const RunResult r = engine.run(OpRequest{&list, ScanOp::kPlus});
    if (!r.ok()) {
      std::fprintf(stderr, "engine run failed: %s\n",
                   r.status.message.c_str());
      std::exit(1);
    }
    sink = r.scan[list.head];
  };
  auto run_faulted = [&] {
    std::vector<value_t> res(n);
    with_scan_op(ScanOp::kPlus, [&](auto op) {
      host_exec::scan_into(list, op, plan, ws, std::span<value_t>(res));
    });
    // The disabled fast path, at spill-run I/O-edge density.
    bool fired = false;
    for (std::size_t i = 0; i < n; i += 1024) fired |= g_probe.fire();
    if (fired) std::exit(2);  // unreachable: the probe is never armed
    sink = res[list.head];
  };

  // Warm every path (page-in, workspace growth), then interleave the reps
  // so drift hits all tiers equally.
  run_hard();
  run_dispatched();
  run_engine();
  run_faulted();
  std::vector<double> hard, dispatched, eng, faulted;
  for (std::size_t i = 0; i < reps; ++i) {
    hard.push_back(time_once(run_hard));
    dispatched.push_back(time_once(run_dispatched));
    eng.push_back(time_once(run_engine));
    faulted.push_back(time_once(run_faulted));
  }
  const double h = median(hard), d = median(dispatched), e = median(eng);
  const double f = median(faulted);

  // Micro-cost of one disabled fire(): a relaxed load plus a branch.
  constexpr std::size_t kFireCalls = 1u << 24;
  const double fire_ms = time_once([&] {
    bool any = false;
    for (std::size_t i = 0; i < kFireCalls; ++i) any |= g_probe.fire();
    if (any) std::exit(2);
  });

  std::printf("sum scan over %zu vertices, %zu reps (median ms):\n", n,
              reps);
  std::printf("  %-22s %8.2f ms  %6.2f ns/vertex\n", "hard-coded kernel", h,
              h * 1e6 / static_cast<double>(n));
  std::printf("  %-22s %8.2f ms  %+6.2f%% vs hard-coded\n",
              "with_scan_op dispatch", d, (d / h - 1.0) * 100.0);
  std::printf("  %-22s %8.2f ms  %+6.2f%% vs hard-coded\n",
              "Engine OpRequest", e, (e / h - 1.0) * 100.0);
  std::printf("  %-22s %8.2f ms  %+6.2f%% vs dispatch\n",
              "dispatch + faultpoints", f, (f / d - 1.0) * 100.0);
  std::printf("  disabled fire(): %.2f ns/call over %zu calls\n",
              fire_ms * 1e6 / static_cast<double>(kFireCalls), kFireCalls);

  BenchJson json("op_scan");
  stamp_provenance(json);
  json.meta("n", static_cast<double>(n));
  json.meta("reps", static_cast<double>(reps));
  json.meta("workload", "random-permutation list, signed values");
  auto tier_row = [&](const char* tier, double ms) {
    json.row();
    json.field("tier", tier);
    json.field("median_ms", ms);
    json.field("ns_per_elem", ms * 1e6 / static_cast<double>(n));
    json.field("vs_hard_coded", ms / h);
  };
  tier_row("hard-coded", h);
  tier_row("with_scan_op", d);
  tier_row("engine", e);
  json.row();
  json.field("tier", "faultpoint");
  json.field("median_ms", f);
  json.field("vs_dispatched", f / d);
  json.field("fire_ns_per_call",
             fire_ms * 1e6 / static_cast<double>(kFireCalls));

  // The new workloads: every registered operator through the same engine.
  std::printf("\nevery operator via OpRequest (median ms):\n");
  for (const ScanOp op : kAllScanOps) {
    std::vector<double> ms;
    unsigned interleave = 0;
    bool packed = false;
    for (std::size_t i = 0; i < std::max<std::size_t>(3, reps / 3); ++i) {
      ms.push_back(time_once([&] {
        const RunResult r = engine.run(OpRequest{&list, op});
        if (!r.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", scan_op_name(op),
                       r.status.message.c_str());
          std::exit(1);
        }
        interleave = r.stats.host_interleave;
        packed = r.stats.host_packed;
      }));
    }
    const double m = median(ms);
    std::printf("  %-10s %8.2f ms  (%s, %u cursors)\n", scan_op_name(op), m,
                packed ? "packed" : "unpacked", interleave);
    json.row();
    json.field("tier", "operator");
    json.field("op", scan_op_name(op));
    json.field("median_ms", m);
    json.field("packed", packed ? 1.0 : 0.0);
    json.field("cursors", static_cast<double>(interleave));
  }

  const std::string json_path = bench_json_path("BENCH_op_scan.json");
  if (json.write(json_path))
    std::printf("\nwrote %s\n", json_path.c_str());

  bool ok = true;
  const double limit = 1.05;
  if (d > h * limit) {
    std::printf("\nGATE MISS: dispatch path %.2f%% over hard-coded "
                "(limit 5%%)\n",
                (d / h - 1.0) * 100.0);
    ok = false;
  }
  if (e > h * limit) {
    std::printf("\nGATE MISS: engine path %.2f%% over hard-coded "
                "(limit 5%%)\n",
                (e / h - 1.0) * 100.0);
    ok = false;
  }
  bool fault_miss = false;
  if (f > d * 1.01) {
    std::printf("\nGATE MISS: disabled faultpoints cost %.2f%% over the "
                "dispatch tier (limit 1%%)\n",
                (f / d - 1.0) * 100.0);
    ok = false;
    fault_miss = true;
  }
  if (ok) {
    std::printf("\ngate ok: generic paths within 5%% of the hard-coded "
                "sum scan, disabled faultpoints within 1%% of dispatch\n");
    return 0;
  }
  if (lenient && !(fault_miss && fault_strict)) {
    std::printf("OP_SCAN_LENIENT set: reporting only, not failing\n");
    return 0;
  }
  return 1;
}
