// Ablation: memory-bandwidth contention. The paper attributes its reduced
// speedup at higher processor counts to "the available memory bandwidth
// per processor decreases" (Section 2.5, Fig. 3) and cites Mansour-Nisan-
// Vishkin [23] on throughput/time trade-offs. This bench sweeps the
// contention factor gamma of the simulated machine to show how bandwidth
// sharing shapes the speedup curve -- including the ideal gamma = 0
// machine the PRAM model assumes.
#include <cstdio>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  std::puts("Ablation: memory contention factor vs 8-processor speedup");
  std::puts("(list scan, n=2^21; gamma=0.063 is the calibrated Cray C90)\n");

  const std::size_t n = 1u << 21;
  Rng rng(11);
  const LinkedList list = random_list(n, rng, ValueInit::kUniformSmall);

  TextTable t({"gamma", "1 proc c/v", "8 proc c/v", "speedup @8",
               "bandwidth tax"});
  for (const double gamma : {0.0, 0.03, 0.063, 0.12, 0.25, 0.5}) {
    double cycles[2];
    int i = 0;
    for (const unsigned p : {1u, 8u}) {
      EngineOptions eo;
      eo.backend = BackendKind::kSim;
      eo.processors = p;
      eo.machine.contention_gamma = gamma;
      Engine engine(std::move(eo));
      const RunResult r =
          engine.scan(list, ScanOp::kPlus, Method::kReidMiller);
      if (!r.ok()) {
        std::fprintf(stderr, "gamma %.3f p=%u failed: %s\n", gamma, p,
                     r.status.message.c_str());
        return 1;
      }
      cycles[i++] = r.stats.sim_cycles;
    }
    const double factor = 1.0 + gamma * 3.0;  // log2(8) = 3
    t.add_row({TextTable::num(gamma, 3),
               TextTable::num(cycles[0] / static_cast<double>(n), 2),
               TextTable::num(cycles[1] / static_cast<double>(n), 2),
               TextTable::num(cycles[0] / cycles[1], 2),
               TextTable::num(factor, 2)});
  }
  t.print();
  std::puts("\n(speedup should approach 8/tax as gamma grows; gamma=0 is the"
            " ideal EREW PRAM)");
  return 0;
}
