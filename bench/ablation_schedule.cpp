// Ablation: how much does the Eq. 4 optimal load-balancing schedule buy
// over (a) never balancing and (b) balancing at a fixed uniform interval?
// This isolates the paper's Section 4.3 design choice.
#include <cstdio>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  std::puts("Ablation: load-balancing schedule policy (list scan, 1 proc)\n");

  TextTable t({"n", "optimal (Eq.4)", "uniform", "none", "none/optimal"});
  for (const std::size_t n : {10000u, 100000u, 1000000u}) {
    Rng rng(n);
    const LinkedList list = random_list(n, rng, ValueInit::kUniformSmall);
    double cycles[3] = {0, 0, 0};
    const ScheduleKind kinds[] = {ScheduleKind::kOptimal,
                                  ScheduleKind::kUniform, ScheduleKind::kNone};
    for (int i = 0; i < 3; ++i) {
      EngineOptions eo;
      eo.backend = BackendKind::kSim;
      eo.reid_miller.schedule = kinds[i];
      Engine engine(std::move(eo));
      const RunResult r =
          engine.scan(list, ScanOp::kPlus, Method::kReidMiller);
      if (!r.ok()) {
        std::fprintf(stderr, "n=%zu schedule %d failed: %s\n", n, i,
                     r.status.message.c_str());
        return 1;
      }
      cycles[i] = r.stats.sim_cycles;
    }
    t.add_row({TextTable::num(static_cast<long long>(n)),
               TextTable::num(cycles[0] / static_cast<double>(n), 2),
               TextTable::num(cycles[1] / static_cast<double>(n), 2),
               TextTable::num(cycles[2] / static_cast<double>(n), 2),
               TextTable::num(cycles[2] / cycles[0], 2)});
  }
  t.print();
  std::puts("\n(cycles/vertex; optimal should win, 'none' pays for chasing"
            " finished sublists)");
  return 0;
}
