// Network front-door bench: closed-loop throughput and latency of the
// event-loop TCP server over real loopback sockets, plus the overload
// scenario the back-pressure mapping exists for.
//
// Phase 1 (closed loop): N client connections each run submit -> wait ->
// repeat against one NetServer on an ephemeral 127.0.0.1 port. Every
// response is compared against a direct Engine run of the same list --
// a HARD bit-exactness gate, because a fast server returning different
// ranks is not a server. Reports req/s and p50/p99 latency per
// connection count.
//
// Phase 2 (overload): a deliberately tiny server (one worker, one queue
// slot, no batching) takes a pipelined burst many times deeper than its
// queue. The gate: every request is answered -- kOk or an explicit
// RETRY_AFTER with a usable hint -- with at least one RETRY_AFTER
// observed and zero hangs, zero drops, zero protocol errors. A client
// then honours the hints and must land the request within a bounded
// number of retries.
//
//   $ ./net_throughput [n] [requests_per_conn]
//       n                 list length per request  (default 32768)
//       requests_per_conn closed-loop length       (default 200)
//
// Writes BENCH_net.json (BenchJson + provenance stamp). The reject rate
// of the overload phase is scheduling-dependent, so it lives in meta,
// not in a gated row field. NET_THROUGHPUT_LENIENT downgrades the
// wall-clock scaling gate to a warning for shared CI runners; the
// bit-exactness, answered-everything, and >=1-RETRY_AFTER gates are
// deterministic and stay hard either way.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;
using net::NetClient;
using net::ResponseFrame;
using net::WireStatus;
using Clock = std::chrono::steady_clock;

struct LoadResult {
  double seconds = 0.0;        ///< wall time of the whole closed loop
  double reqs = 0.0;           ///< requests answered kOk across conns
  std::vector<double> lat_us;  ///< per-request latency, microseconds
  std::uint64_t retries = 0;   ///< RETRY_AFTER answers honoured
  std::uint64_t mismatches = 0;  ///< responses that were not bit-exact
};

/// Runs `conns` closed-loop connections of `per_conn` rank requests
/// each; every kOk response is checked against `want`.
LoadResult run_load(std::uint16_t port, const LinkedList& list,
                    const std::vector<value_t>& want, unsigned conns,
                    std::size_t per_conn) {
  LoadResult out;
  std::vector<LoadResult> per(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.connect_to("127.0.0.1", port).ok()) {
        per[c].mismatches += per_conn;  // count the whole loop as failed
        return;
      }
      per[c].lat_us.reserve(per_conn);
      for (std::size_t i = 0; i < per_conn; ++i) {
        const auto s = Clock::now();
        ResponseFrame resp;
        bool answered = false;
        // The closed loop honours back-pressure: a RETRY_AFTER waits the
        // hinted time and resubmits (bounded), like a well-behaved client.
        for (int attempt = 0; attempt < 100; ++attempt) {
          if (!client.rank(list, resp).ok()) break;
          if (resp.status != WireStatus::kRetryAfter) {
            answered = true;
            break;
          }
          per[c].retries += 1;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(resp.retry_after_ms));
        }
        const auto e = Clock::now();
        if (!answered || resp.status != WireStatus::kOk ||
            resp.values != want) {
          per[c].mismatches += 1;
          continue;
        }
        per[c].reqs += 1.0;
        per[c].lat_us.push_back(
            std::chrono::duration<double, std::micro>(e - s).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const LoadResult& p : per) {
    out.reqs += p.reqs;
    out.retries += p.retries;
    out.mismatches += p.mismatches;
    out.lat_us.insert(out.lat_us.end(), p.lat_us.begin(), p.lat_us.end());
  }
  std::sort(out.lat_us.begin(), out.lat_us.end());
  return out;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Phase 2: the overload scenario. Returns false on gate failure.
bool run_overload(BenchJson& json) {
  NetServerOptions opt;
  opt.serve.engine.backend = BackendKind::kHost;
  opt.serve.engine.threads = 1;
  opt.serve.workers = 1;
  opt.serve.queue_capacity = 1;
  opt.serve.max_batch = 1;
  NetServer server(opt);
  if (!server.start().ok()) {
    std::puts("FAIL: overload server did not start");
    return false;
  }
  Rng rng(17);
  const LinkedList list = random_list(60000, rng);
  Engine direct(server.options().serve.engine);
  const std::vector<value_t> want = direct.run(RankRequest{&list}).scan;

  NetClient client;
  if (!client.connect_to("127.0.0.1", server.port()).ok()) {
    std::puts("FAIL: overload client did not connect");
    return false;
  }
  constexpr int kBurst = 32;
  std::vector<std::uint32_t> ids(kBurst);
  for (int i = 0; i < kBurst; ++i)
    if (!client.send_rank(list, ids[i]).ok()) {
      std::puts("FAIL: overload send failed");
      return false;
    }
  int ok = 0, retry = 0;
  for (int i = 0; i < kBurst; ++i) {
    ResponseFrame resp;
    if (!client.read_response(resp).ok()) {
      std::printf("FAIL: overload response %d never arrived\n", i);
      return false;
    }
    if (resp.status == WireStatus::kOk) {
      if (resp.values != want) {
        std::puts("FAIL: overload kOk response not bit-exact");
        return false;
      }
      ++ok;
    } else if (resp.status == WireStatus::kRetryAfter) {
      ++retry;
    } else {
      std::printf("FAIL: unexpected overload status %s\n",
                  wire_status_name(resp.status));
      return false;
    }
  }
  // Honouring the hint must land the request in bounded retries.
  bool landed = false;
  int attempts = 0;
  for (; attempts < 100 && !landed; ++attempts) {
    ResponseFrame resp;
    if (!client.rank(list, resp).ok()) break;
    if (resp.status == WireStatus::kOk) {
      landed = resp.values == want;
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(resp.retry_after_ms));
  }
  const net::NetStats stats = server.net_stats();
  server.stop();

  std::printf(
      "\noverload (1 worker, 1 queue slot, %d-deep burst): %d served, "
      "%d RETRY_AFTER (%.0f%% rejected), hint-honouring client landed "
      "after %d retries\n",
      kBurst, ok, retry, 100.0 * retry / kBurst, attempts);
  json.meta("overload_burst", static_cast<double>(kBurst));
  json.meta("overload_reject_rate", static_cast<double>(retry) / kBurst);

  if (ok + retry != kBurst) {
    std::puts("FAIL: overload dropped a request (answers != burst)");
    return false;
  }
  if (retry < 1) {
    std::puts("FAIL: a 32-deep burst against one queue slot must reject");
    return false;
  }
  if (ok < 1) {
    std::puts("FAIL: overload served nothing");
    return false;
  }
  if (!landed) {
    std::puts("FAIL: hint-honouring retry loop never landed");
    return false;
  }
  if (stats.protocol_errors != 0) {
    std::puts("FAIL: overload produced protocol errors");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  const std::size_t per_conn =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  Rng rng(42);
  const LinkedList list = random_list(n, rng);

  NetServerOptions opt;
  opt.serve.engine.backend = BackendKind::kHost;
  opt.serve.engine.threads = 1;  // parallelism = the worker pool axis
  opt.serve.workers = 2;
  NetServer server(opt);
  if (!server.start().ok()) {
    std::puts("FAIL: server did not start");
    return 1;
  }
  // The reference answer from an identically-configured direct engine.
  Engine direct(server.options().serve.engine);
  const RunResult ref = direct.run(RankRequest{&list});
  if (!ref.ok()) {
    std::puts("FAIL: direct engine reference run failed");
    return 1;
  }

  std::printf("net_throughput: n=%zu, %zu reqs/conn, 2 workers, port %u\n\n",
              n, per_conn, server.port());

  // Warm the pooled engines and the loopback path before measuring.
  run_load(server.port(), list, ref.scan, 2, 32);

  BenchJson json("net_throughput");
  stamp_provenance(json);
  json.meta("n", static_cast<double>(n));
  json.meta("reqs_per_conn", static_cast<double>(per_conn));
  json.meta("workers", 2.0);

  TextTable table({"conns", "req/s", "p50 us", "p99 us", "speedup"});
  double baseline = 0.0;
  double at4 = 0.0;
  std::uint64_t mismatches = 0;
  for (const unsigned conns : {1u, 2u, 4u, 8u}) {
    const LoadResult r =
        run_load(server.port(), list, ref.scan, conns, per_conn);
    mismatches += r.mismatches;
    const double rps = r.reqs / r.seconds;
    if (conns == 1) baseline = rps;
    if (conns == 4) at4 = rps;
    const double p50 = percentile(r.lat_us, 0.50);
    const double p99 = percentile(r.lat_us, 0.99);
    table.add_row({std::to_string(conns), TextTable::num(rps, 0),
                   TextTable::num(p50, 1), TextTable::num(p99, 1),
                   TextTable::num(rps / baseline, 2) + "x"});
    json.row();
    json.field("clients", static_cast<double>(conns));
    json.field("req_per_s", rps);
    json.field("p50_us", p50);
    json.field("p99_us", p99);
    json.field("speedup_vs_1_conn", rps / baseline);
    json.field("bit_exact", r.mismatches == 0 ? 1.0 : 0.0);
  }
  table.print();

  const net::NetStats stats = server.net_stats();
  std::printf(
      "\nframes in %llu, responses out %llu, bytes in %.1f MiB out %.1f "
      "MiB, protocol errors %llu\n",
      static_cast<unsigned long long>(stats.frames_in),
      static_cast<unsigned long long>(stats.responses_out),
      static_cast<double>(stats.bytes_in) / (1024.0 * 1024.0),
      static_cast<double>(stats.bytes_out) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(stats.protocol_errors));
  server.stop();

  bool failed = false;
  if (mismatches != 0) {
    std::printf("FAIL: %llu responses were not bit-exact against the "
                "direct engine\n",
                static_cast<unsigned long long>(mismatches));
    failed = true;
  }
  if (stats.protocol_errors != 0) {
    std::puts("FAIL: the closed loop produced protocol errors");
    failed = true;
  }

  if (!run_overload(json)) failed = true;

  const std::string json_path = bench_json_path("BENCH_net.json");
  if (json.write(json_path))
    std::printf("wrote %s\n", json_path.c_str());

  // NET_THROUGHPUT_LENIENT downgrades the wall-clock gate (flaky on
  // shared runners); every correctness gate above stays hard. The gate
  // asks that concurrency never COLLAPSES aggregate throughput (a
  // serialization bug in the loop would); genuine scaling needs more
  // than one core, which a CI runner or dev sandbox may not have.
  const bool lenient = std::getenv("NET_THROUGHPUT_LENIENT") != nullptr;
  if (at4 < 0.7 * baseline) {
    if (lenient) {
      std::puts("WARN: 4-conn throughput collapsed vs 1-conn "
                "(lenient mode, not fatal)");
    } else {
      std::puts("FAIL: 4-conn throughput collapsed below 70% of 1-conn");
      failed = true;
    }
  }
  if (!failed)
    std::puts("OK: bit-exact over sockets, overload answered with "
              "RETRY_AFTER, nothing hung");
  return failed ? 1 : 0;
}
