// Reproduces Fig. 3: speedup of the list-scan algorithm relative to one
// processor, for various list sizes. Shows near-linear scaling that
// degrades as memory bandwidth per processor drops, and poorer speedups for
// small lists where fixed overheads dominate.
#include <cstdio>

#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  CheckedRunner sim;  // records wrong answers, exits non-zero
  std::puts("Fig. 3: relative speedup of our list scan vs #processors");
  std::puts("(paper: close to linear, tapering with p; worse for small n)\n");

  const std::size_t sizes[] = {8192, 65536, 524288, 4194304};
  const unsigned procs[] = {1, 2, 4, 8, 16};

  TextTable t({"p", "n=8192", "n=65536", "n=524288", "n=4194304"});
  double base[4] = {0, 0, 0, 0};
  for (const unsigned p : procs) {
    std::vector<std::string> row{TextTable::num(static_cast<long long>(p))};
    for (std::size_t i = 0; i < 4; ++i) {
      const double cycles =
          sim(Method::kReidMiller, sizes[i], p, false).cycles;
      if (p == 1) base[i] = cycles;
      row.push_back(TextTable::num(base[i] / cycles, 2));
    }
    t.add_row(row);
  }
  t.print();
  return sim.exit_code();
}
