// Reproduces Fig. 1: execution time per vertex (ns) of the list-scan
// algorithms on one processor of the (simulated) Cray C90, as a function of
// list length. Shows the Wyllie sawtooth, the serial flat line, the large
// random-mate constants, and the crossover where the Reid-Miller algorithm
// overtakes Wyllie (paper: near n = 1000).
#include <cstdio>

#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  CheckedRunner sim;  // records wrong answers, exits non-zero
  std::puts("Fig. 1: list-scan ns/vertex vs n, one processor");
  std::puts("(paper shape: Wyllie sawtooth crossing ours near n~1000;\n"
            " MR ~20x ours and ~3.5x serial; AM between serial and MR)\n");

  TextTable t({"n", "serial", "wyllie", "miller-reif", "anderson-miller",
               "ours"});
  // Log-spaced n including off-power points so the sawtooth shows.
  const std::size_t ns[] = {64,    96,    128,   192,   256,    384,
                            512,   768,   1024,  1536,  2048,   4096,
                            8192,  16384, 32768, 65536, 131072, 262144,
                            524288, 1048576};
  for (const std::size_t n : ns) {
    t.add_row({TextTable::num(static_cast<long long>(n)),
               TextTable::num(sim(Method::kSerial, n, 1, false)
                                  .ns_per_vertex, 1),
               TextTable::num(sim(Method::kWyllie, n, 1, false)
                                  .ns_per_vertex, 1),
               TextTable::num(sim(Method::kMillerReif, n, 1, false)
                                  .ns_per_vertex, 1),
               TextTable::num(sim(Method::kAndersonMiller, n, 1, false)
                                  .ns_per_vertex, 1),
               TextTable::num(sim(Method::kReidMiller, n, 1, false)
                                  .ns_per_vertex, 1)});
  }
  t.print();

  // Ratio block at the largest n (the Section 2.3/2.4 claims).
  const std::size_t big = 1048576;
  const double ours = sim(Method::kReidMiller, big, 1, false).ns_per_vertex;
  const double serial = sim(Method::kSerial, big, 1, false).ns_per_vertex;
  const double mr = sim(Method::kMillerReif, big, 1, false).ns_per_vertex;
  const double am =
      sim(Method::kAndersonMiller, big, 1, false).ns_per_vertex;
  std::printf("\nlong-list ratios at n=%zu:\n", big);
  std::printf("  miller-reif / ours        = %5.1f   (paper ~20)\n", mr / ours);
  std::printf("  miller-reif / serial      = %5.2f   (paper ~3.5)\n",
              mr / serial);
  std::printf("  anderson-miller / ours    = %5.1f   (paper ~7)\n", am / ours);
  std::printf("  miller-reif / and-miller  = %5.2f   (paper ~3)\n", mr / am);
  std::printf("  serial / ours             = %5.2f   (paper ~5.9 for scan)\n",
              serial / ours);
  return sim.exit_code();
}
