// Ablation: the Anderson-Miller coin bias (paper Section 2.4). Biasing the
// male probability to 0.9 was their "most important optimization",
// reducing rounds and run time by ~40% versus the unbiased coin.
#include <cstdio>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  std::puts("Ablation: Anderson-Miller male-coin bias (rank, 1 proc,"
            " n=200000)\n");

  const std::size_t n = 200000;
  Rng gen(1);
  const LinkedList list = random_list(n, gen);

  TextTable t({"bias", "rounds", "cycles/vertex", "vs bias 0.9"});
  double best = 0;
  for (const double bias : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    EngineOptions eo;
    eo.backend = BackendKind::kSim;
    eo.seed = 7;
    eo.anderson_miller.male_bias = bias;
    eo.anderson_miller.serial_switch = 0;
    eo.verify_output = true;
    Engine engine(std::move(eo));
    const RunResult r = engine.rank(list, Method::kAndersonMiller);
    if (!r.ok()) {
      std::fprintf(stderr, "bias %.2f failed: %s\n", bias,
                   r.status.message.c_str());
      return 1;
    }
    const double cpv = r.stats.sim_cycles / static_cast<double>(n);
    if (bias == 0.9) best = cpv;
    t.add_row({TextTable::num(bias, 2),
               TextTable::num(static_cast<long long>(r.stats.algo.rounds)),
               TextTable::num(cpv, 2), ""});
  }
  t.print();
  std::printf("\nbias 0.9 cycles/vertex = %.2f (paper: ~40%% faster than"
              " unbiased)\n", best);
  return 0;
}
