// Reproduces Table II: comparison of the list-ranking algorithms -- time
// class, measured work (link steps per vertex), constants (measured cycles
// per vertex on one simulated processor), and extra space in words.
//
// Paper rows: serial O(n)/small/c, Wyllie O(n log n)/small/n+c, randomized
// O(n)/medium/>2n, ours O(n)/small/5p+c.
#include <cstdio>

#include "core/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  CheckedRunner sim;  // records wrong answers, exits non-zero
  using Row = std::pair<Method, const char*>;
  const std::size_t n = 1u << 19;  // 512K vertices

  std::puts("Table II: list-ranking algorithm comparison (measured at n=2^19,");
  std::puts("one simulated processor; space is words beyond list + output)\n");

  TextTable t({"Algorithm", "Time", "Work", "steps/vertex", "cycles/vertex",
               "Extra space"});
  const Row rows[] = {
      {Method::kSerial, "O(n)"},
      {Method::kWyllie, "O((n log n)/p + log n)"},
      {Method::kMillerReif, "O(n/p + log n)"},
      {Method::kAndersonMiller, "O(n/p + log n)"},
      {Method::kReidMillerEncoded, "O(n/p + log^2 n)"},
  };
  for (const auto& [method, time] : rows) {
    const SimRun run = sim(method, n, 1, /*rank=*/true);
    const char* work =
        method == Method::kWyllie ? "O(n log n)" : "O(n)";
    t.add_row({method_name(method), time, work,
               TextTable::num(static_cast<double>(run.stats.link_steps) /
                                  static_cast<double>(n),
                              2),
               TextTable::num(run.cycles_per_vertex, 2),
               TextTable::num(
                   static_cast<long long>(run.stats.extra_words))});
  }
  t.print();
  std::puts("\npaper space column: serial c | Wyllie n+c | randomized >2n |"
            " ours 5p+c");
  return sim.exit_code();
}
