// Ablation: sensitivity to the number of sublists m around the tuned value
// (paper Section 4.4: m and S1 are chosen to minimize the cost model within
// about two percent).
#include <cstdio>

#include "analysis/tuner.hpp"
#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace lr90;
  const std::size_t n = 1000000;
  const CostConstants k = CostConstants::from(vm::CostTable::cray_c90());
  const TuneResult tuned = tune(static_cast<double>(n), k);

  std::printf("Ablation: m sensitivity at n=%zu (tuned m=%.0f, S1=%.0f)\n\n",
              n, tuned.m, tuned.s1);

  Rng rng(9);
  const LinkedList list = random_list(n, rng, ValueInit::kUniformSmall);

  TextTable t({"m / tuned", "m", "cycles/vertex", "vs tuned"});
  double at_tuned = 0;
  const double factors[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  for (const double f : factors) {
    EngineOptions eo;
    eo.backend = BackendKind::kSim;
    eo.reid_miller.m = tuned.m * f;
    eo.reid_miller.s1 = tuned.s1;
    Engine engine(std::move(eo));
    const RunResult r = engine.scan(list, ScanOp::kPlus, Method::kReidMiller);
    if (!r.ok()) {
      std::fprintf(stderr, "m=%.0f failed: %s\n", tuned.m * f,
                   r.status.message.c_str());
      return 1;
    }
    const double cpv = r.stats.sim_cycles / static_cast<double>(n);
    if (f == 1.0) at_tuned = cpv;
    t.add_row({TextTable::num(f, 3), TextTable::num(tuned.m * f, 0),
               TextTable::num(cpv, 2),
               f == 1.0 ? "1.00" : ""});
  }
  t.print();
  std::printf("\ntuned m cycles/vertex: %.2f (neighbourhood should be flat"
              " near the optimum)\n", at_tuned);
  return 0;
}
