// Reproduces Table I: asymptotic execution time (ns per vertex) of list
// ranking and list scan -- DEC Alpha workstation (cache / memory), Cray C90
// serial, and the vectorized algorithm on 1, 2, 4, and 8 processors.
//
// Paper values for reference:
//   rank:  98  690  177  21.3  10.9  5.8  3.1
//   scan: 200  990  183  30.8  16.1  8.5  4.6
#include <cstdio>

#include "analysis/workstation_model.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"

namespace {

using namespace lr90;

double vectorized_ns(CheckedRunner& sim, std::size_t n, unsigned p,
                     bool rank) {
  const Method method = rank ? Method::kReidMillerEncoded : Method::kReidMiller;
  return sim(method, n, p, rank).ns_per_vertex;
}

}  // namespace

int main() {
  using lr90::TextTable;
  lr90::CheckedRunner sim;  // records wrong answers, exits non-zero
  std::puts("Table I: asymptotic ns/vertex, list rank and list scan");
  std::puts("(paper: rank 98/690/177/21.3/10.9/5.8/3.1,"
            " scan 200/990/183/30.8/16.1/8.5/4.6)\n");

  const std::size_t n = 1u << 21;  // 2M vertices: asymptotic regime
  const lr90::WorkstationModel alpha;

  TextTable t({"Algorithm", "Alpha cache", "Alpha memory", "C90 serial",
               "Vectorized", "2 proc", "4 proc", "8 proc"});

  {
    std::vector<std::string> row{"List rank"};
    row.push_back(TextTable::num(alpha.rank_ns_per_vertex(1000), 1));
    row.push_back(TextTable::num(alpha.rank_ns_per_vertex(100000000), 1));
    row.push_back(TextTable::num(
        sim(lr90::Method::kSerial, n, 1, true).ns_per_vertex, 1));
    for (const unsigned p : {1u, 2u, 4u, 8u})
      row.push_back(TextTable::num(vectorized_ns(sim, n, p, true), 1));
    t.add_row(row);
  }
  {
    std::vector<std::string> row{"List scan"};
    row.push_back(TextTable::num(alpha.scan_ns_per_vertex(1000), 1));
    row.push_back(TextTable::num(alpha.scan_ns_per_vertex(100000000), 1));
    row.push_back(TextTable::num(
        sim(lr90::Method::kSerial, n, 1, false).ns_per_vertex, 1));
    for (const unsigned p : {1u, 2u, 4u, 8u})
      row.push_back(TextTable::num(vectorized_ns(sim, n, p, false), 1));
    t.add_row(row);
  }
  t.print();
  return sim.exit_code();
}
