// The serial list-scan algorithm (paper Section 2.1).
//
// Walks the list from the head accumulating the operator; O(n) time, small
// constants, and the yardstick every parallel algorithm must beat. On the
// simulated Cray C90 the walk is a scalar (non-vectorizable) loop costing
// ~42 cycles per vertex for ranking and ~43.6 for scanning (Table I).
#pragma once

#include <span>

#include "baselines/algo_stats.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "vm/machine.hpp"

namespace lr90 {

/// Exclusive serial list scan into `out` (indexed by vertex).
/// Host-only: no simulated machine, no cycle accounting.
template <ListOp Op = OpPlus>
void serial_scan_host(const LinkedList& list, std::span<value_t> out,
                      Op op = {}) {
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
}

/// Exclusive serial list scan on the simulated machine, charged to `proc`.
/// `as_rank` selects the (slightly cheaper) list-ranking cycle cost.
template <ListOp Op = OpPlus>
AlgoStats serial_scan(vm::Machine& m, unsigned proc, const LinkedList& list,
                      std::span<value_t> out, Op op = {},
                      bool as_rank = false) {
  serial_scan_host(list, out, op);
  const auto& c = m.costs();
  const double per_vertex =
      as_rank ? c.serial_rank_per_vertex : c.serial_scan_per_vertex;
  m.charge_scalar(proc,
                  per_vertex * static_cast<double>(list.size()) +
                      c.serial_startup,
                  list.size());
  AlgoStats stats;
  stats.rounds = 1;
  stats.link_steps = list.size();
  stats.extra_words = 0;
  return stats;
}

/// Serial list ranking (scan of all-ones with integer addition); ignores
/// list values, as ranking only reads the link array.
AlgoStats serial_rank(vm::Machine& m, unsigned proc, const LinkedList& list,
                      std::span<value_t> out);

}  // namespace lr90
