// Miller-Reif randomized "random mate" list scan (paper Section 2.3).
//
// Every active vertex flips an unbiased male/female coin each round; a
// female whose successor is a male splices that successor out (accumulating
// its value), so about 1/4 of the vertices leave per round. Spliced vertices
// are recorded and reintroduced in reverse order during a reconstruction
// phase. Following the paper's implementation, the active-vertex state is
// compressed ("packed") into contiguous vector elements every round.
//
// The paper measures this algorithm at roughly 20x slower than its own and
// 3.5x slower than serial on long lists: random-number generation, the
// extra communication to establish mates, ~4 expected attempts per splice,
// per-round packing, and the reconstruction phase all add constants.
//
// Runs on every configured processor of the machine: the active set is a
// lockstep SIMD computation, so each round's vector work is divided into
// per-processor chunks with a barrier per round (the paper notes the
// random-mate algorithms "scale almost linearly with the number of
// processors"). Invariant maintained on the working copy: val[u] = op-sum
// of the original values of the vertices from u up to (but excluding)
// nxt[u].
#pragma once

#include <span>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace lr90 {

namespace detail {
/// One splice record: `splicer` removed `spliced`, and `before` was
/// splicer's accumulated value at that moment, i.e. the op-sum from splicer
/// up to (but excluding) spliced. Hence prefix(spliced) =
/// op(prefix(splicer), before).
struct SpliceRec {
  index_t splicer;
  index_t spliced;
  value_t before;
};
}  // namespace detail

template <ListOp Op = OpPlus>
AlgoStats miller_reif_scan(vm::Machine& m, const LinkedList& list,
                           std::span<value_t> out, Rng& rng, Op op = {}) {
  AlgoStats stats;
  const std::size_t n = list.size();
  const double cycles_before = m.max_cycles();
  const unsigned p = m.processors();
  // Divides one vector operation over x elements across the processors.
  auto charge_all = [&](const vm::VectorCosts& c_, std::size_t x) {
    for (unsigned t = 0; t < p; ++t)
      m.charge(t, c_, x * (t + 1) / p - x * t / p);
  };
  if (n == 0) return stats;
  out[list.head] = Op::identity();
  if (n == 1) return stats;

  const auto& c = m.costs();
  const index_t tail = list.find_tail();

  // Working copies (the contraction mutates them; the input is untouched).
  std::vector<index_t> nxt(list.next);
  std::vector<value_t> val(list.value);

  // Active vertex ids, packed each round.
  std::vector<index_t> ids;
  ids.reserve(n);
  for (std::size_t v = 0; v < n; ++v) ids.push_back(static_cast<index_t>(v));

  std::vector<std::uint8_t> coin_at(n, 0);   // coin board, by vertex
  std::vector<std::uint8_t> dead(n, 0);      // spliced-out flag, by vertex
  std::vector<detail::SpliceRec> recs;
  recs.reserve(n);
  std::vector<std::size_t> round_end;  // recs.size() after each round

  // Contract until only head and tail remain active.
  while (ids.size() > 2) {
    const std::size_t x = ids.size();
    ++stats.rounds;
    stats.link_steps += x;

    // 1. Flip coins for every active vertex and post them on the board.
    //    (Vectorized PRNG draw + scatter.)
    std::vector<std::uint8_t> coin(x);
    for (std::size_t i = 0; i < x; ++i) coin[i] = rng.coin() ? 1 : 0;
    charge_all(c.coin, x);
    for (std::size_t i = 0; i < x; ++i) coin_at[ids[i]] = coin[i];
    charge_all(c.scatter, x);

    // 2. Gather successor, its coin, and its successor, plus the
    //    write-and-read-back handshake that claims the mate ("the extra
    //    communication to establish random mates", Section 2.3).
    charge_all(c.gather, x);   // s = nxt[id]
    charge_all(c.gather, x);   // coin_at[s]
    charge_all(c.gather, x);   // nxt[s] (tail detection)
    charge_all(c.scatter, x);  // post claim at the mate
    charge_all(c.gather, x);   // read the claim back
    charge_all(c.map2, x);     // eligibility mask
    // 3. Masked splice: val/nxt/dead updates + record compression.
    charge_all(c.gather, x);   // val[s]
    charge_all(c.scatter, x);  // val[u] update
    charge_all(c.scatter, x);  // nxt[u] update
    charge_all(c.scatter, x);  // dead[s] = 1
    charge_all(c.pack, x);     // compress splice records (3 fields)
    charge_all(c.pack, x);
    charge_all(c.pack, x);
    for (std::size_t i = 0; i < x; ++i) {
      const index_t u = ids[i];
      const index_t s = nxt[u];
      if (coin[i] != 0) continue;            // u must be female
      if (s == u) continue;                  // u is the tail
      if (coin_at[s] != 1) continue;         // successor must be male
      if (nxt[s] == s) continue;             // never splice the tail
      recs.push_back({u, s, val[u]});
      val[u] = op(val[u], val[s]);
      nxt[u] = nxt[s];
      dead[s] = 1;
      ++stats.splices;
    }
    round_end.push_back(recs.size());

    // 4. Pack the active set: remove spliced vertices. The paper compresses
    //    the remaining vertices' state into contiguous vector elements; we
    //    charge packs for the id array plus three state arrays.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < x; ++i) {
      if (!dead[ids[i]]) ids[keep++] = ids[i];
    }
    ids.resize(keep);
    charge_all(c.gather, x);  // dead[id] mask
    charge_all(c.pack, x);    // id
    charge_all(c.pack, x);    // val state
    charge_all(c.pack, x);    // nxt state
    charge_all(c.pack, x);    // coin state
    m.synchronize();          // per-round barrier
  }

  // End state: head -> tail. Seed the two known prefixes; combine the
  // head's value through the operator so the output is canonical even
  // when the input carries bits the operator ignores (OpSegSum).
  out[list.head] = Op::identity();
  out[tail] = op(Op::identity(), val[list.head]);

  // Reconstruction: replay rounds in reverse; all splicer prefixes needed by
  // round r are final by the time round r is replayed.
  std::size_t hi = recs.size();
  for (std::size_t r = round_end.size(); r-- > 0;) {
    const std::size_t lo = r == 0 ? 0 : round_end[r - 1];
    for (std::size_t i = lo; i < hi; ++i) {
      out[recs[i].spliced] = op(out[recs[i].splicer], recs[i].before);
    }
    const std::size_t cnt = hi - lo;
    if (cnt > 0) {
      charge_all(c.gather, cnt);   // prefix[splicer]
      charge_all(c.map2, cnt);     // combine
      charge_all(c.scatter, cnt);  // prefix[spliced]
      m.synchronize();             // replay-round barrier
    }
    hi = lo;
  }

  // nxt + val + ids + coin boards + dead + 3-field records.
  stats.extra_words = 2 * n + n + 2 * n + 3 * n;
  stats.sim_cycles = m.max_cycles() - cycles_before;
  return stats;
}

/// Miller-Reif list ranking (all-ones addition).
AlgoStats miller_reif_rank(vm::Machine& m, const LinkedList& list,
                           std::span<value_t> out, Rng& rng);

}  // namespace lr90
