// Per-run statistics reported by every list-scan algorithm.
//
// These power the Table II "work" and "space" columns and let tests assert
// algorithmic behaviour (e.g. Wyllie performs exactly ceil(log2(n-1))
// rounds; Miller-Reif needs ~4 attempts per splice).
#pragma once

#include <cstdint>

namespace lr90 {

struct AlgoStats {
  /// Parallel rounds executed (pointer-jumping rounds, random-mate rounds,
  /// or load-balancing intervals, depending on the algorithm).
  std::uint64_t rounds = 0;
  /// Total link traversals / element steps across all rounds (the "work").
  std::uint64_t link_steps = 0;
  /// Vertices spliced out (random-mate algorithms only).
  std::uint64_t splices = 0;
  /// Peak words of memory allocated beyond the input list and the output
  /// array (the Table II "space" column).
  std::uint64_t extra_words = 0;
  /// Simulated Cray C90 cycles consumed by this run (delta on the Machine).
  double sim_cycles = 0.0;
};

}  // namespace lr90
