#include "baselines/wyllie.hpp"

namespace lr90 {

AlgoStats wyllie_rank(vm::Machine& m, const LinkedList& list,
                      std::span<value_t> out) {
  LinkedList ones;
  ones.next = list.next;
  ones.head = list.head;
  ones.value.assign(list.size(), 1);
  return wyllie_scan(m, ones, out, OpPlus{});
}

}  // namespace lr90
