#include "baselines/anderson_miller.hpp"

namespace lr90 {

AlgoStats anderson_miller_rank(vm::Machine& m, const LinkedList& list,
                               std::span<value_t> out, Rng& rng,
                               const AndersonMillerOptions& opt) {
  LinkedList ones;
  ones.next = list.next;
  ones.head = list.head;
  ones.value.assign(list.size(), 1);
  return anderson_miller_scan(m, ones, out, rng, OpPlus{}, opt);
}

}  // namespace lr90
