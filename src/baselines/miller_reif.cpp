#include "baselines/miller_reif.hpp"

namespace lr90 {

AlgoStats miller_reif_rank(vm::Machine& m, const LinkedList& list,
                           std::span<value_t> out, Rng& rng) {
  LinkedList ones;
  ones.next = list.next;
  ones.head = list.head;
  ones.value.assign(list.size(), 1);
  return miller_reif_scan(m, ones, out, rng, OpPlus{});
}

}  // namespace lr90
