// Anderson-Miller randomized list scan (paper Section 2.4).
//
// The machine's vector lanes act as element processors; each is assigned a
// queue of n/q consecutive vertices and repeatedly attempts to retire the
// vertex at the top of its queue, so no load balancing (packing) is ever
// needed. Per round:
//
//   * every active top flips a coin (the paper's key optimization biases it
//     male with probability 0.9, keeping ~90% of active lanes retiring
//     per round);
//   * only tops carry coins -- every other vertex is implicitly female. A
//    male top may retire ("splice out") unless the vertex pointing at it is
//    a male top too, which each top detects by posting its coin at its
//    successor and checking what was posted at itself;
//   * retiring is lazy: the vertex is marked dead with its (value, next)
//    state frozen; the alive top that later points at a dead vertex absorbs
//    it (accumulates its value, bypasses its link) one hop per round,
//    recording the absorption for the reconstruction phase.
//
// On a machine with p processors the queue count defaults to p times the
// vector length (every physical processor contributes its own element
// processors) and each round's vector work is charged across processors
// with a barrier per round; the paper observes that Anderson-Miller
// "scales almost linearly" and beats serial on multiple processors.
//
// When fewer than `serial_switch` queues remain active the contraction
// stops and the remaining contracted chain is finished serially (the
// paper's "we did switch to the serial algorithm when only a few queues
// remained"). Spliced vertices are filled in by replaying the absorption
// records in reverse, exactly as in Miller-Reif.
//
// The whole-list head and tail are never retired; they anchor the final
// serial walk.
#pragma once

#include <span>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "baselines/miller_reif.hpp"  // detail::SpliceRec
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace lr90 {

struct AndersonMillerOptions {
  /// Probability a top's coin is male. The paper found 0.9 cuts rounds and
  /// run time by ~40% versus the unbiased 0.5.
  double male_bias = 0.9;
  /// Number of element-processor queues; 0 means "machine vector length
  /// times processor count" (128 per processor on the Cray C90).
  unsigned num_queues = 0;
  /// Stop contracting and finish serially when at most this many queues are
  /// still active. 0 disables the switch (contract to the bitter end).
  unsigned serial_switch = 16;
};

template <ListOp Op = OpPlus>
AlgoStats anderson_miller_scan(vm::Machine& m, const LinkedList& list,
                               std::span<value_t> out, Rng& rng, Op op = {},
                               const AndersonMillerOptions& opt = {}) {
  AlgoStats stats;
  const std::size_t n = list.size();
  const double cycles_before = m.max_cycles();
  constexpr unsigned kProc = 0;
  const unsigned p = m.processors();
  auto charge_all = [&](const vm::VectorCosts& c_, std::size_t x) {
    for (unsigned t = 0; t < p; ++t)
      m.charge(t, c_, x * (t + 1) / p - x * t / p);
  };
  if (n == 0) return stats;
  out[list.head] = Op::identity();
  if (n == 1) return stats;

  const auto& c = m.costs();
  const index_t tail = list.find_tail();
  const std::size_t q = std::min<std::size_t>(
      n, opt.num_queues
             ? opt.num_queues
             : static_cast<std::size_t>(m.config().vector_length) * p);

  // Working copies; frozen in place when a vertex dies.
  std::vector<index_t> nxt(list.next);
  std::vector<value_t> val(list.value);
  // 0 = alive; otherwise the round in which the vertex retired. Absorbing
  // only vertices that died in *earlier* rounds keeps every reconstruction
  // record's dependency in a strictly later round, so reverse-round replay
  // needs no intra-round ordering.
  std::vector<std::uint32_t> dead_round(n, 0);

  // Queue i owns the consecutive block [lo_i, hi_i).
  std::vector<std::size_t> cur(q), hi(q);
  for (std::size_t i = 0; i < q; ++i) {
    cur[i] = n * i / q;
    hi[i] = n * (i + 1) / q;
  }
  // Skip vertices that are never retired (whole-list head and tail).
  auto skip_protected = [&](std::size_t i) {
    while (cur[i] < hi[i] && (cur[i] == list.head || cur[i] == tail ||
                              dead_round[cur[i]] != 0)) {
      ++cur[i];
    }
  };
  for (std::size_t i = 0; i < q; ++i) skip_protected(i);

  // Round-stamped "posted coin" board: posted_round[v] == round means some
  // alive top with successor v posted its coin there this round.
  std::vector<std::uint32_t> posted_round(n, 0);
  std::vector<std::uint8_t> posted_coin(n, 0);
  std::vector<std::uint8_t> top_coin(n, 0);

  std::vector<detail::SpliceRec> recs;
  recs.reserve(n);
  std::vector<std::size_t> round_end;

  std::uint32_t round = 0;
  while (true) {
    std::size_t active = 0;
    for (std::size_t i = 0; i < q; ++i)
      if (cur[i] < hi[i]) ++active;
    if (active == 0) break;
    if (opt.serial_switch > 0 && active <= opt.serial_switch) break;

    ++round;
    ++stats.rounds;
    stats.link_steps += q;  // full vector length processed, no packing

    // 1. Coins for active tops; post at self and at successor.
    for (std::size_t i = 0; i < q; ++i) {
      if (cur[i] >= hi[i]) continue;
      const index_t v = static_cast<index_t>(cur[i]);
      top_coin[v] = rng.coin(opt.male_bias) ? 1 : 0;
    }
    charge_all(c.coin, q);
    charge_all(c.scatter, q);  // top_coin board
    for (std::size_t i = 0; i < q; ++i) {
      if (cur[i] >= hi[i]) continue;
      const index_t v = static_cast<index_t>(cur[i]);
      const index_t s = nxt[v];
      posted_round[s] = round;
      posted_coin[s] = top_coin[v];
    }
    charge_all(c.gather, q);   // nxt[v]
    charge_all(c.scatter, q);  // posted_round
    charge_all(c.scatter, q);  // posted_coin

    // 2. Death check: a male top retires unless a male top points at it.
    for (std::size_t i = 0; i < q; ++i) {
      if (cur[i] >= hi[i]) continue;
      const index_t v = static_cast<index_t>(cur[i]);
      if (top_coin[v] != 1) continue;  // female: survives this round
      const bool pointed_by_male =
          posted_round[v] == round && posted_coin[v] == 1;
      if (pointed_by_male) continue;
      dead_round[v] = round;  // frozen with current val/nxt
      ++stats.splices;
    }
    charge_all(c.gather, q);  // posted board at v
    charge_all(c.map2, q);    // retire mask
    charge_all(c.scatter, q);  // dead flags

    // 3. Absorb. A surviving top merges one dead successor per round; a
    //    top retiring *this* round first clears its whole pending dead
    //    chain so its frozen forwarding state always points at a live
    //    vertex (this bounds the final serial walk by the live remnant
    //    and is what lets the algorithm scale on multiple processors).
    //    Only earlier-round deaths are absorbed, so no record created
    //    this round can depend on another record from the same round;
    //    a retiring top's own successor never died this round (it was
    //    posted a male coin). Chain clearing runs as extra masked vector
    //    passes, charged by the deepest chain in the round.
    std::size_t extra_passes = 0;
    for (std::size_t i = 0; i < q; ++i) {
      if (cur[i] >= hi[i]) continue;
      const index_t u = static_cast<index_t>(cur[i]);
      const bool retiring = dead_round[u] == round;
      std::size_t hops = 0;
      while (true) {
        const index_t s = nxt[u];
        if (s == u) break;
        if (dead_round[s] == 0 || dead_round[s] >= round) break;
        recs.push_back({u, s, val[u]});
        val[u] = op(val[u], val[s]);
        nxt[u] = nxt[s];
        ++hops;
        if (!retiring) break;  // survivors: one hop per round
      }
      if (hops > 1) extra_passes = std::max(extra_passes, hops - 1);
    }
    round_end.push_back(recs.size());
    for (std::size_t pass = 0; pass <= extra_passes; ++pass) {
      charge_all(c.gather, q);   // dead[s]
      charge_all(c.gather, q);   // val[s]
      charge_all(c.gather, q);   // nxt[s]
      charge_all(c.map2, q);     // accumulate
      charge_all(c.scatter, q);  // val[u]
      charge_all(c.scatter, q);  // nxt[u]
    }
    // Record append: one compress of the absorb mask plus indexed stores
    // of the three record fields at the running record count.
    charge_all(c.pack, q);
    charge_all(c.scatter, q);
    charge_all(c.scatter, q);

    // 4. Advance queues whose top died.
    for (std::size_t i = 0; i < q; ++i) {
      if (cur[i] >= hi[i]) continue;
      if (dead_round[cur[i]] != 0) ++cur[i];
      skip_protected(i);
    }
    charge_all(c.map2, q);
    m.synchronize();  // per-round barrier
  }

  // Serial finish: walk the contracted chain from the head. Every vertex
  // still in the chain (alive tops, untouched queue remainders, dead but
  // not-yet-absorbed vertices, and the tail) receives its prefix directly.
  {
    std::size_t walked = 0;
    value_t acc = Op::identity();
    index_t v = list.head;
    while (true) {
      out[v] = acc;
      acc = op(acc, val[v]);
      ++walked;
      const index_t s = nxt[v];
      if (s == v) break;
      v = s;
    }
    m.charge_scalar(kProc,
                    c.serial_scan_per_vertex * static_cast<double>(walked) +
                        c.serial_startup,
                    walked);
  }

  // Reconstruction: reverse-replay absorption records (see miller_reif.hpp
  // for why reverse round order resolves all dependencies).
  std::size_t rhi = recs.size();
  for (std::size_t r = round_end.size(); r-- > 0;) {
    const std::size_t lo = r == 0 ? 0 : round_end[r - 1];
    for (std::size_t i = lo; i < rhi; ++i) {
      out[recs[i].spliced] = op(out[recs[i].splicer], recs[i].before);
    }
    const std::size_t cnt = rhi - lo;
    if (cnt > 0) {
      charge_all(c.gather, cnt);
      charge_all(c.map2, cnt);
      charge_all(c.scatter, cnt);
      m.synchronize();  // replay-round barrier
    }
    rhi = lo;
  }

  // nxt+val working copies, dead flags, boards, queue state, records.
  stats.extra_words = 2 * n + n + 3 * n + 2 * q + 3 * n;
  stats.sim_cycles = m.max_cycles() - cycles_before;
  return stats;
}

/// Anderson-Miller list ranking (all-ones addition).
AlgoStats anderson_miller_rank(vm::Machine& m, const LinkedList& list,
                               std::span<value_t> out, Rng& rng,
                               const AndersonMillerOptions& opt = {});

}  // namespace lr90
