// Wyllie's pointer-jumping list scan (paper Section 2.2).
//
// Every vertex repeatedly replaces its pointer with its pointer's pointer
// while accumulating values, finishing after ceil(log2(n-1)) rounds. Simple
// and vectorizes perfectly, but O(n log n) work: the per-vertex cost grows
// with log n, producing the sawtooth curve of Fig. 1 (a new tooth whenever
// ceil(log2(n-1)) increments).
//
// Formulation note. The textbook formulation jumps along successors and
// yields suffix sums, which converts to prefix sums only for invertible
// operators. To support any associative operator (min, max, the packed
// segmented-sum / affine / max-plus operators, ...) without inverses, we
// jump along the predecessor list: after building pred[] with one scatter
// pass, initialize
//     acc[v] = value[pred(v)]   (identity at the head, whose pred is itself)
//     ptr[v] = pred(v)
// and iterate acc[v] = op(acc[ptr[v]], acc[v]); ptr[v] = ptr[ptr[v]].
// acc[v] always covers a contiguous run of vertices ending just before v
// and acc[ptr[v]] the contiguous run just before *that*, so combining
// earlier-run-first preserves list order -- which is what keeps the
// non-commutative operators exact (lists/ops.hpp combine order contract).
// The head acts as the self-loop "tail" of the predecessor list and carries
// the identity, so no masking is needed (the paper's destructive-identity
// trick). On convergence acc[v] = op over all vertices before v: exactly
// the exclusive scan.
//
// Runs on all configured processors of the machine: vertices are split into
// contiguous chunks, one per processor, with a barrier per round (Wyllie
// "scales almost linearly with the number of processors", Section 2.2).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "vm/machine.hpp"

namespace lr90 {

namespace detail {
/// Number of pointer-jumping rounds for a list of n vertices.
inline unsigned wyllie_rounds(std::size_t n) {
  if (n <= 2) return 0;  // ceil(log2(n-1)) with log2(1) == 0
  unsigned r = 0;
  std::size_t span = 1;
  while (span < n - 1) {
    span <<= 1;
    ++r;
  }
  return r;
}
}  // namespace detail

/// Exclusive list scan by pointer jumping on the simulated machine.
template <ListOp Op = OpPlus>
AlgoStats wyllie_scan(vm::Machine& m, const LinkedList& list,
                      std::span<value_t> out, Op op = {}) {
  AlgoStats stats;
  const std::size_t n = list.size();
  const double cycles_before = m.max_cycles();
  if (n == 0) return stats;
  if (n == 1) {
    out[list.head] = Op::identity();
    return stats;
  }

  const unsigned p = m.processors();

  // Build the predecessor list with one scatter pass: pred[next[v]] = v
  // (skipping the tail's self-loop), then pin pred[head] = head so the head
  // is the self-loop "tail" of the predecessor list.
  std::vector<index_t> pred(n);
  for (unsigned proc = 0; proc < p; ++proc) {
    const std::size_t lo = n * proc / p, hi = n * (proc + 1) / p;
    for (std::size_t v = lo; v < hi; ++v) {
      if (list.next[v] != static_cast<index_t>(v))
        pred[list.next[v]] = static_cast<index_t>(v);
    }
    m.charge(proc, m.costs().scatter, hi - lo);
  }
  pred[list.head] = list.head;
  m.synchronize();

  // acc[v] = value[pred(v)] (identity at head), ptr[v] = pred(v). The
  // identity-combine canonicalizes values whose ignored bits the operator
  // drops (OpSegSum), so even the zero-round n == 2 case is bit-exact.
  std::vector<value_t> acc(n), acc2(n);
  std::vector<index_t> ptr(pred), ptr2(n);
  for (unsigned proc = 0; proc < p; ++proc) {
    const std::size_t lo = n * proc / p, hi = n * (proc + 1) / p;
    for (std::size_t v = lo; v < hi; ++v) {
      acc[v] = (pred[v] == static_cast<index_t>(v))
                   ? Op::identity()
                   : op(Op::identity(), list.value[pred[v]]);
    }
    m.charge(proc, m.costs().gather, hi - lo);
  }
  m.synchronize();

  const unsigned rounds = detail::wyllie_rounds(n);
  for (unsigned r = 0; r < rounds; ++r) {
    for (unsigned proc = 0; proc < p; ++proc) {
      const std::size_t lo = n * proc / p, hi = n * (proc + 1) / p;
      // acc2[v] = op(acc[ptr[v]], acc[v]) -- the earlier run first, so
      // non-commutative operators stay exact; ptr2[v] = ptr[ptr[v]].
      for (std::size_t v = lo; v < hi; ++v) {
        acc2[v] = op(acc[ptr[v]], acc[v]);
        ptr2[v] = ptr[ptr[v]];
      }
      m.charge(proc, m.costs().gather, hi - lo);  // gather acc[ptr]
      m.charge(proc, m.costs().gather, hi - lo);  // gather ptr[ptr]
      m.charge(proc, m.costs().map2, hi - lo);    // combine
      stats.link_steps += hi - lo;
    }
    m.synchronize();
    acc.swap(acc2);
    ptr.swap(ptr2);
  }
  stats.rounds = rounds;

  for (std::size_t v = 0; v < n; ++v) out[v] = acc[v];
  m.charge(0, m.costs().copy, n);

  // pred/ptr/ptr2 (index words) + acc/acc2 (value words).
  stats.extra_words = 5 * n;
  stats.sim_cycles = m.max_cycles() - cycles_before;
  return stats;
}

/// Wyllie list ranking: scan of all-ones under addition.
AlgoStats wyllie_rank(vm::Machine& m, const LinkedList& list,
                      std::span<value_t> out);

}  // namespace lr90
