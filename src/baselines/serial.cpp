#include "baselines/serial.hpp"

namespace lr90 {

AlgoStats serial_rank(vm::Machine& m, unsigned proc, const LinkedList& list,
                      std::span<value_t> out) {
  value_t acc = 0;
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    ++acc;
  });
  const auto& c = m.costs();
  m.charge_scalar(proc,
                  c.serial_rank_per_vertex * static_cast<double>(list.size()) +
                      c.serial_startup,
                  list.size());
  AlgoStats stats;
  stats.rounds = 1;
  stats.link_steps = list.size();
  return stats;
}

}  // namespace lr90
