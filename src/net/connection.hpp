// Per-connection state of the event-loop TCP server: one Connection per
// accepted socket, owned and touched exclusively by the loop thread.
//
// A connection moves through read -> parse -> dispatch -> write phases
// driven entirely by readiness events (the Gigablast TcpServer request-
// state idiom: many sockets, one nonblocking loop, no thread per
// connection). Incoming bytes accumulate in `in` until parse_frame
// carves complete frames off the front; dispatched engine work completes
// on EngineServer worker threads and is married back to the connection
// via the loop's completion queue; encoded responses accumulate in `out`
// and drain whenever the socket is writable.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lr90::net {

/// One accepted socket's state machine, confined to the loop thread.
struct Connection {
  int fd = -1;            ///< the nonblocking socket
  std::uint64_t id = 0;   ///< loop-unique serial (fds are reused; ids not)

  std::vector<std::uint8_t> in;   ///< unparsed incoming bytes
  std::vector<std::uint8_t> out;  ///< encoded, not-yet-written responses
  std::size_t out_off = 0;        ///< bytes of `out` already written

  std::size_t in_flight = 0;  ///< dispatched requests not yet answered
  /// Stop reading and close once `out` drains and in_flight hits zero
  /// (protocol error, plaintext one-shot, or server drain).
  bool closing = false;
  /// The peer spoke plaintext ("STATS\n"/"HEALTH\n"), not frames; the
  /// response is raw text and the connection closes after it.
  bool plaintext = false;

  std::chrono::steady_clock::time_point last_activity;  ///< idle clock
  /// When queued response bytes first stalled (epoch = not stalled). The
  /// loop arms it while pending_out() > 0, any send() progress clears
  /// it, and a stall older than write_timeout_s closes the connection.
  std::chrono::steady_clock::time_point write_stalled_since{};

  /// Bytes still queued for writing.
  std::size_t pending_out() const { return out.size() - out_off; }
  /// True when the loop should POLLOUT this socket.
  bool wants_write() const { return pending_out() > 0; }
  /// True when every response this connection is owed has been written.
  bool drained() const { return in_flight == 0 && pending_out() == 0; }

  /// Drops the already-written prefix of `out` (called once the buffer
  /// fully drains, so steady state never memmoves).
  void compact_out() {
    if (out_off == out.size()) {
      out.clear();
      out_off = 0;
    }
  }
};

}  // namespace lr90::net
