#include "net/wire.hpp"

#include <cstring>

namespace lr90::net {

namespace {

// -- little-endian primitives ----------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(u >> shift));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/// A strict cursor over a payload: every read checks the remaining
/// length first, so a malformed frame can never walk past the buffer.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  bool u8(std::uint8_t& v) {
    if (n_ < 1) return false;
    v = p_[0];
    advance(1);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (n_ < 4) return false;
    v = static_cast<std::uint32_t>(p_[0]) |
        static_cast<std::uint32_t>(p_[1]) << 8 |
        static_cast<std::uint32_t>(p_[2]) << 16 |
        static_cast<std::uint32_t>(p_[3]) << 24;
    advance(4);
    return true;
  }

  bool i64(std::int64_t& v) {
    if (n_ < 8) return false;
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i)
      u |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    v = static_cast<std::int64_t>(u);
    advance(8);
    return true;
  }

  bool u64(std::uint64_t& v) {
    std::int64_t s = 0;
    if (!i64(s)) return false;
    v = static_cast<std::uint64_t>(s);
    return true;
  }

  bool bytes(std::size_t len, const std::uint8_t*& out) {
    if (n_ < len) return false;
    out = p_;
    advance(len);
    return true;
  }

  std::size_t remaining() const { return n_; }

 private:
  void advance(std::size_t k) {
    p_ += k;
    n_ -= k;
  }
  const std::uint8_t* p_;
  std::size_t n_;
};

void put_header(std::vector<std::uint8_t>& out, MsgKind kind,
                std::uint32_t request_id, std::uint32_t payload_len,
                std::uint32_t deadline_ms = 0) {
  put_u8(out, kMagic0);
  put_u8(out, kMagic1);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u32(out, request_id);
  put_u32(out, payload_len);
  put_u32(out, deadline_ms);
}

/// Payload bytes of a list body: n, head, next[], value[].
std::uint32_t list_body_len(const LinkedList& list) {
  return static_cast<std::uint32_t>(4 + 4 + list.size() * 12);
}

void put_list(std::vector<std::uint8_t>& out, const LinkedList& list) {
  put_u32(out, static_cast<std::uint32_t>(list.size()));
  put_u32(out, list.head);
  for (const index_t nxt : list.next) put_u32(out, nxt);
  for (const value_t v : list.value) put_i64(out, v);
}

/// Decodes a list body; checks head range and exact length consumption.
WireError read_list(Reader& r, LinkedList& list) {
  std::uint32_t n = 0;
  std::uint32_t head = 0;
  if (!r.u32(n) || !r.u32(head)) return WireError::kBadLength;
  // The element arrays must fit the remaining payload exactly; a count
  // that claims more than the frame carries is rejected before any
  // allocation sized from it.
  if (r.remaining() != static_cast<std::size_t>(n) * 12)
    return WireError::kBadLength;
  if (n == 0) {
    if (head != kNoVertex) return WireError::kBadPayload;
  } else if (head >= n) {
    return WireError::kBadPayload;
  }
  list.next.resize(n);
  list.value.resize(n);
  list.head = head;
  list.tail = kNoVertex;  // recomputed lazily server-side (find_tail)
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!r.u32(list.next[i])) return WireError::kBadLength;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!r.i64(list.value[i])) return WireError::kBadLength;
  }
  return WireError::kOk;
}

bool valid_kind(std::uint8_t k) {
  switch (static_cast<MsgKind>(k)) {
    case MsgKind::kRankRequest:
    case MsgKind::kScanRequest:
    case MsgKind::kStatsRequest:
    case MsgKind::kHealthRequest:
    case MsgKind::kRegisterSnapshotRequest:
    case MsgKind::kReleaseSnapshotRequest:
    case MsgKind::kUpdateSnapshotRequest:
    case MsgKind::kSnapshotRankRequest:
    case MsgKind::kSnapshotScanRequest:
    case MsgKind::kResponse:
      return true;
  }
  return false;
}

constexpr std::uint8_t kMaxMethod =
    static_cast<std::uint8_t>(Method::kReidMillerEncoded);
constexpr std::uint8_t kMaxOp = static_cast<std::uint8_t>(ScanOp::kMaxPlus);
constexpr std::uint8_t kMaxWireStatus =
    static_cast<std::uint8_t>(WireStatus::kDeadlineExceeded);

}  // namespace

const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kInvalidInput: return "invalid-input";
    case WireStatus::kUnsupported: return "unsupported";
    case WireStatus::kWrongAnswer: return "wrong-answer";
    case WireStatus::kRetryAfter: return "retry-after";
    case WireStatus::kShuttingDown: return "shutting-down";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kInternalError: return "internal-error";
    case WireStatus::kStaleGeneration: return "stale-generation";
    case WireStatus::kCorruptSlab: return "corrupt-slab";
    case WireStatus::kResourceExhausted: return "resource-exhausted";
    case WireStatus::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kNeedMore: return "need-more";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadKind: return "bad-kind";
    case WireError::kOversized: return "oversized";
    case WireError::kBadLength: return "bad-length";
    case WireError::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

WireError parse_frame(const std::uint8_t* data, std::size_t len,
                      FrameView& out, std::size_t& frame_len) {
  // Reject garbage as early as the bytes allow: magic and version are
  // checked on whatever prefix has arrived, so a misdirected HTTP client
  // is refused after one byte instead of after a 16-byte header.
  if (len >= 1 && data[0] != kMagic0) return WireError::kBadMagic;
  if (len >= 2 && data[1] != kMagic1) return WireError::kBadMagic;
  if (len >= 3 && data[2] != kWireVersion) return WireError::kBadVersion;
  if (len >= 4 && !valid_kind(data[3])) return WireError::kBadKind;
  if (len < kHeaderSize) return WireError::kNeedMore;

  Reader r(data, len);
  std::uint8_t b = 0;
  std::uint32_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t deadline_ms = 0;
  r.u8(b); r.u8(b); r.u8(b);  // magic + version, already validated
  r.u8(b);
  const auto kind = static_cast<MsgKind>(b);
  r.u32(request_id);
  r.u32(payload_len);
  r.u32(deadline_ms);
  if (payload_len > kMaxPayload) return WireError::kOversized;
  if (r.remaining() < payload_len) return WireError::kNeedMore;

  out.kind = kind;
  out.request_id = request_id;
  out.deadline_ms = deadline_ms;
  out.payload = std::span<const std::uint8_t>(data + kHeaderSize,
                                              payload_len);
  frame_len = kHeaderSize + payload_len;
  return WireError::kOk;
}

WireError decode_request(const FrameView& frame, RequestFrame& out) {
  out.kind = frame.kind;
  out.request_id = frame.request_id;
  out.deadline_ms = frame.deadline_ms;
  Reader r(frame.payload.data(), frame.payload.size());
  switch (frame.kind) {
    case MsgKind::kStatsRequest:
    case MsgKind::kHealthRequest:
      return frame.payload.empty() ? WireError::kOk : WireError::kBadLength;
    case MsgKind::kRankRequest: {
      std::uint8_t method = 0;
      if (!r.u8(method)) return WireError::kBadLength;
      if (method > kMaxMethod) return WireError::kBadPayload;
      out.method = static_cast<Method>(method);
      return read_list(r, out.list);
    }
    case MsgKind::kScanRequest: {
      std::uint8_t method = 0;
      std::uint8_t op = 0;
      if (!r.u8(method) || !r.u8(op)) return WireError::kBadLength;
      if (method > kMaxMethod || op > kMaxOp) return WireError::kBadPayload;
      out.method = static_cast<Method>(method);
      out.op = static_cast<ScanOp>(op);
      return read_list(r, out.list);
    }
    case MsgKind::kRegisterSnapshotRequest:
      return read_list(r, out.list);
    case MsgKind::kReleaseSnapshotRequest: {
      if (!r.u64(out.snapshot_id)) return WireError::kBadLength;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    }
    case MsgKind::kUpdateSnapshotRequest: {
      if (!r.u64(out.snapshot_id)) return WireError::kBadLength;
      return read_list(r, out.list);
    }
    case MsgKind::kSnapshotRankRequest: {
      std::uint8_t method = 0;
      if (!r.u8(method)) return WireError::kBadLength;
      if (method > kMaxMethod) return WireError::kBadPayload;
      out.method = static_cast<Method>(method);
      if (!r.u64(out.snapshot_id) || !r.u64(out.generation))
        return WireError::kBadLength;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    }
    case MsgKind::kSnapshotScanRequest: {
      std::uint8_t method = 0;
      std::uint8_t op = 0;
      if (!r.u8(method) || !r.u8(op)) return WireError::kBadLength;
      if (method > kMaxMethod || op > kMaxOp) return WireError::kBadPayload;
      out.method = static_cast<Method>(method);
      out.op = static_cast<ScanOp>(op);
      if (!r.u64(out.snapshot_id) || !r.u64(out.generation))
        return WireError::kBadLength;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    }
    case MsgKind::kResponse:
      return WireError::kBadKind;  // a response is not a request
  }
  return WireError::kBadKind;
}

void encode_rank_request(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const LinkedList& list,
                         Method method, std::uint32_t deadline_ms) {
  put_header(out, MsgKind::kRankRequest, request_id,
             1 + list_body_len(list), deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(method));
  put_list(out, list);
}

void encode_scan_request(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const LinkedList& list,
                         ScanOp op, Method method,
                         std::uint32_t deadline_ms) {
  put_header(out, MsgKind::kScanRequest, request_id,
             2 + list_body_len(list), deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(method));
  put_u8(out, static_cast<std::uint8_t>(op));
  put_list(out, list);
}

void encode_plain_request(std::vector<std::uint8_t>& out, MsgKind kind,
                          std::uint32_t request_id) {
  put_header(out, kind, request_id, 0);
}

void encode_register_snapshot_request(std::vector<std::uint8_t>& out,
                                      std::uint32_t request_id,
                                      const LinkedList& list) {
  put_header(out, MsgKind::kRegisterSnapshotRequest, request_id,
             list_body_len(list));
  put_list(out, list);
}

void encode_update_snapshot_request(std::vector<std::uint8_t>& out,
                                    std::uint32_t request_id,
                                    std::uint64_t snapshot_id,
                                    const LinkedList& list) {
  put_header(out, MsgKind::kUpdateSnapshotRequest, request_id,
             8 + list_body_len(list));
  put_u64(out, snapshot_id);
  put_list(out, list);
}

void encode_release_snapshot_request(std::vector<std::uint8_t>& out,
                                     std::uint32_t request_id,
                                     std::uint64_t snapshot_id) {
  put_header(out, MsgKind::kReleaseSnapshotRequest, request_id, 8);
  put_u64(out, snapshot_id);
}

void encode_snapshot_rank_request(std::vector<std::uint8_t>& out,
                                  std::uint32_t request_id,
                                  std::uint64_t snapshot_id,
                                  std::uint64_t generation, Method method,
                                  std::uint32_t deadline_ms) {
  put_header(out, MsgKind::kSnapshotRankRequest, request_id, 1 + 16,
             deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(method));
  put_u64(out, snapshot_id);
  put_u64(out, generation);
}

void encode_snapshot_scan_request(std::vector<std::uint8_t>& out,
                                  std::uint32_t request_id,
                                  std::uint64_t snapshot_id,
                                  std::uint64_t generation, ScanOp op,
                                  Method method,
                                  std::uint32_t deadline_ms) {
  put_header(out, MsgKind::kSnapshotScanRequest, request_id, 2 + 16,
             deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(method));
  put_u8(out, static_cast<std::uint8_t>(op));
  put_u64(out, snapshot_id);
  put_u64(out, generation);
}

WireError decode_response(const FrameView& frame, ResponseFrame& out) {
  if (frame.kind != MsgKind::kResponse) return WireError::kBadKind;
  out.request_id = frame.request_id;
  Reader r(frame.payload.data(), frame.payload.size());
  std::uint8_t status = 0;
  std::uint8_t body = 0;
  if (!r.u8(status) || !r.u8(body)) return WireError::kBadLength;
  if (status > kMaxWireStatus) return WireError::kBadPayload;
  out.status = static_cast<WireStatus>(status);
  out.values.clear();
  out.text.clear();
  out.retry_after_ms = 0;
  out.snapshot_id = 0;
  out.generation = 0;
  switch (static_cast<BodyKind>(body)) {
    case BodyKind::kNone:
      out.body = BodyKind::kNone;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    case BodyKind::kValues: {
      out.body = BodyKind::kValues;
      std::uint32_t count = 0;
      if (!r.u32(count)) return WireError::kBadLength;
      if (r.remaining() != static_cast<std::size_t>(count) * 8)
        return WireError::kBadLength;
      out.values.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!r.i64(out.values[i])) return WireError::kBadLength;
      }
      return WireError::kOk;
    }
    case BodyKind::kText: {
      out.body = BodyKind::kText;
      std::uint32_t len = 0;
      if (!r.u32(len)) return WireError::kBadLength;
      if (r.remaining() != len) return WireError::kBadLength;
      const std::uint8_t* p = nullptr;
      if (!r.bytes(len, p)) return WireError::kBadLength;
      out.text.assign(reinterpret_cast<const char*>(p), len);
      return WireError::kOk;
    }
    case BodyKind::kRetry: {
      out.body = BodyKind::kRetry;
      if (!r.u32(out.retry_after_ms)) return WireError::kBadLength;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    }
    case BodyKind::kSnapshot: {
      out.body = BodyKind::kSnapshot;
      if (!r.u64(out.snapshot_id) || !r.u64(out.generation))
        return WireError::kBadLength;
      return r.remaining() == 0 ? WireError::kOk : WireError::kBadLength;
    }
  }
  return WireError::kBadPayload;  // unknown body kind
}

void encode_values_response(std::vector<std::uint8_t>& out,
                            std::uint32_t request_id, WireStatus status,
                            std::span<const value_t> values) {
  put_header(out, MsgKind::kResponse, request_id,
             static_cast<std::uint32_t>(2 + 4 + values.size() * 8));
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, static_cast<std::uint8_t>(BodyKind::kValues));
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const value_t v : values) put_i64(out, v);
}

void encode_text_response(std::vector<std::uint8_t>& out,
                          std::uint32_t request_id, WireStatus status,
                          std::string_view text) {
  put_header(out, MsgKind::kResponse, request_id,
             static_cast<std::uint32_t>(2 + 4 + text.size()));
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, static_cast<std::uint8_t>(BodyKind::kText));
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

void encode_retry_response(std::vector<std::uint8_t>& out,
                           std::uint32_t request_id,
                           std::uint32_t retry_after_ms) {
  put_header(out, MsgKind::kResponse, request_id, 2 + 4);
  put_u8(out, static_cast<std::uint8_t>(WireStatus::kRetryAfter));
  put_u8(out, static_cast<std::uint8_t>(BodyKind::kRetry));
  put_u32(out, retry_after_ms);
}

void encode_status_response(std::vector<std::uint8_t>& out,
                            std::uint32_t request_id, WireStatus status) {
  put_header(out, MsgKind::kResponse, request_id, 2);
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, static_cast<std::uint8_t>(BodyKind::kNone));
}

void encode_snapshot_response(std::vector<std::uint8_t>& out,
                              std::uint32_t request_id, WireStatus status,
                              std::uint64_t snapshot_id,
                              std::uint64_t generation) {
  put_header(out, MsgKind::kResponse, request_id, 2 + 16);
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, static_cast<std::uint8_t>(BodyKind::kSnapshot));
  put_u64(out, snapshot_id);
  put_u64(out, generation);
}

WireStatus wire_status_of(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kInvalidInput: return WireStatus::kInvalidInput;
    case StatusCode::kUnsupported: return WireStatus::kUnsupported;
    case StatusCode::kWrongAnswer: return WireStatus::kWrongAnswer;
    case StatusCode::kUnavailable: return WireStatus::kInternalError;
    case StatusCode::kStaleGeneration: return WireStatus::kStaleGeneration;
    case StatusCode::kCorruptSlab: return WireStatus::kCorruptSlab;
    case StatusCode::kResourceExhausted:
      return WireStatus::kResourceExhausted;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
  }
  return WireStatus::kInternalError;
}

}  // namespace lr90::net
