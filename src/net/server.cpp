#include "net/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "support/faultpoint.hpp"

namespace lr90::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Longest plaintext command line accepted before the connection is
/// declared a protocol error ("STATS\r\n" is 7 bytes; 64 leaves slack).
constexpr std::size_t kMaxPlainLine = 64;

/// Hard cap on buffered-but-unparsed input: one maximal frame plus its
/// header. More than this without a parsable frame is a protocol error.
constexpr std::size_t kMaxInBuffer = kHeaderSize + kMaxPayload;

// Fault-injection sites at the socket edges (tests/fault_test.cpp).
fault::FaultSite f_recv_io{"net.recv.io",
                           "recv() fails with EIO: connection torn down"};
fault::FaultSite f_send_io{"net.send.io",
                           "send() fails with EIO: connection torn down"};
fault::FaultSite f_send_stall{
    "net.send.stall",
    "peer stops draining its socket: queued bytes make no progress"};

}  // namespace

NetServer::NetServer(NetServerOptions opt) : opt_(std::move(opt)) {
  // The loop must never block in submit(), and wire input is untrusted:
  // force the two engine-side settings the protocol depends on.
  opt_.serve.reject_when_full = true;
  opt_.serve.engine.validate_input = true;
  retry_ = RetryPolicy(opt_.retry_min_ms, opt_.retry_max_ms);
}

NetServer::~NetServer() { stop(); }

Status NetServer::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    return Status::success();  // idempotent

  // A peer that disappears mid-write must surface as EPIPE on the send,
  // not kill the process. Belt (process-wide ignore) and suspenders
  // (MSG_NOSIGNAL on every send).
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::invalid("bad bind address: " + opt_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, opt_.backlog) < 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("bind/listen failed on " + opt_.bind_address +
                               ":" + std::to_string(opt_.port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("pipe2() failed");
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  engine_ = std::make_unique<serve::EngineServer>(opt_.serve);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  return Status::success();
}

void NetServer::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the loop out of poll() so it notices the stop request now.
  if (wake_w_ >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t rc = ::write(wake_w_, &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  engine_->shutdown();
  // Close the wake pipe only after the engine workers are gone: a late
  // completion callback may still poke it during the drain.
  ::close(wake_r_);
  ::close(wake_w_);
  wake_r_ = wake_w_ = -1;
  running_.store(false, std::memory_order_release);
}

void NetServer::bump(std::uint64_t NetStats::* field, std::uint64_t by) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += by;
}

NetStats NetServer::net_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

serve::ServerStats NetServer::serve_stats() const {
  return engine_ ? engine_->stats() : serve::ServerStats{};
}

std::string NetServer::health_text() const {
  const bool serving = running_.load(std::memory_order_acquire) &&
                       !stopping_.load(std::memory_order_acquire);
  return serving ? "ok\n" : "draining\n";
}

std::string NetServer::stats_text() const {
  const serve::ServerStats s = serve_stats();
  const NetStats n = net_stats();
  std::ostringstream out;
  out << "health " << (health_text() == "ok\n" ? 1 : 0) << '\n'
      << "workers " << (engine_ ? engine_->workers() : 0) << '\n'
      << "queue_depth " << (engine_ ? engine_->queue_depth() : 0) << '\n'
      << "queue_capacity " << opt_.serve.queue_capacity << '\n'
      << "queue_depth_hwm " << s.queue_depth_hwm << '\n'
      << "submitted " << s.submitted << '\n'
      << "completed " << s.completed << '\n'
      << "rejected " << s.rejected << '\n'
      << "batches " << s.batches << '\n'
      << "collapsed " << s.collapsed << '\n'
      << "rank_requests " << s.rank_requests << '\n'
      << "scan_requests " << s.scan_requests << '\n'
      << "intra_threads_peak " << s.intra_threads_peak << '\n'
      << "tier_legacy_runs " << s.tier_legacy_runs << '\n'
      << "tier_packed_runs " << s.tier_packed_runs << '\n'
      << "tier_simd_runs " << s.tier_simd_runs << '\n'
      << "packed_builds " << s.pool.packed_builds << '\n'
      << "snapshots_live " << s.snapshots_live << '\n'
      << "snapshot_updates " << s.snapshot_updates << '\n'
      << "stale_rejections " << s.stale_rejections << '\n'
      << "slab_hits " << s.slab_hits << '\n'
      << "slab_misses " << s.slab_misses << '\n'
      << "slab_evictions " << s.slab_evictions << '\n'
      << "result_hits " << s.result_hits << '\n'
      << "result_misses " << s.result_misses << '\n'
      << "result_evictions " << s.result_evictions << '\n'
      << "cache_resident_bytes " << s.cache_resident_bytes << '\n'
      << "cache_resident_entries " << s.cache_resident_entries << '\n'
      << "sharded_runs " << s.sharded_runs << '\n'
      << "shard_spills " << s.shard_spills << '\n'
      << "shard_prefetch_hits " << s.shard_prefetch_hits << '\n'
      << "shard_corrupt_slabs " << s.shard_corrupt_slabs << '\n'
      << "shard_repacks " << s.shard_repacks << '\n'
      << "shard_degraded " << s.shard_degraded << '\n'
      << "spill_reclaim_failures " << s.spill_reclaim_failures << '\n'
      << "deadline_expired " << s.deadline_expired << '\n'
      << "net_accepted " << n.accepted << '\n'
      << "net_closed " << n.closed << '\n'
      << "net_idle_closed " << n.idle_closed << '\n'
      << "net_peer_resets " << n.peer_resets << '\n'
      << "net_protocol_errors " << n.protocol_errors << '\n'
      << "net_frames_in " << n.frames_in << '\n'
      << "net_responses_out " << n.responses_out << '\n'
      << "net_retry_after_sent " << n.retry_after_sent << '\n'
      << "net_req_rank " << n.req_rank << '\n'
      << "net_req_scan " << n.req_scan << '\n'
      << "net_req_stats " << n.req_stats << '\n'
      << "net_req_health " << n.req_health << '\n'
      << "net_req_snapshot_admin " << n.req_snapshot_admin << '\n'
      << "net_req_snapshot_rank " << n.req_snapshot_rank << '\n'
      << "net_req_snapshot_scan " << n.req_snapshot_scan << '\n'
      << "net_stale_generation_sent " << n.stale_generation_sent << '\n'
      << "net_bytes_in " << n.bytes_in << '\n'
      << "net_bytes_out " << n.bytes_out << '\n'
      << "net_write_timeouts " << n.write_timeouts << '\n'
      << "net_partial_frame_aborts " << n.partial_frame_aborts << '\n'
      << "net_deadline_exceeded_sent " << n.deadline_exceeded_sent << '\n';
  return out.str();
}

// -- the event loop ---------------------------------------------------------

void NetServer::loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  const Clock::time_point start_time = Clock::now();
  Clock::time_point drain_deadline{};
  bool draining = false;

  while (true) {
    // Graceful-stop transition: close the listener so no new connections
    // arrive, then give in-flight responses drain_timeout_s to flush.
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline = Clock::now() + std::chrono::duration_cast<
          Clock::duration>(std::chrono::duration<double>(
              std::max(0.0, opt_.drain_timeout_s)));
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [id, c] : conns_) c.closing = true;
    }

    if (draining) {
      // Reap every connection that is fully answered; force the rest
      // once the deadline passes.
      std::vector<std::uint64_t> done;
      const bool expired = Clock::now() >= drain_deadline;
      for (auto& [id, c] : conns_)
        if (expired || c.drained()) done.push_back(id);
      for (const std::uint64_t id : done)
        close_connection(id, /*counted_reset=*/false);
      if (conns_.empty()) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, c] : conns_) {
      short events = POLLIN;
      if (c.wants_write()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
      fd_conn.push_back(id);
    }

    int timeout_ms = draining ? 20 : 200;
    if (!draining && opt_.idle_timeout_s > 0 && !conns_.empty()) {
      // Wake in time to close whichever connection idles out first.
      double soonest = opt_.idle_timeout_s;
      const auto now = Clock::now();
      for (auto& [id, c] : conns_) {
        if (!c.drained()) continue;
        const double idle =
            std::chrono::duration<double>(now - c.last_activity).count();
        soonest = std::min(soonest, opt_.idle_timeout_s - idle);
      }
      timeout_ms = std::clamp(static_cast<int>(soonest * 1000.0) + 1, 1,
                              timeout_ms);
    }

    ::poll(fds.data(), fds.size(), timeout_ms);

    // Feed the back-pressure policy one (time, completed) sample per
    // iteration; the RETRY_AFTER hint tracks the real drain rate.
    retry_.observe(seconds_since(start_time), engine_->stats().completed);

    // Wake pipe first: completed engine runs become queued responses
    // before this iteration's writability is acted on.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    drain_completions();

    std::size_t idx = 1;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        while (true) {
          const int fd =
              ::accept4(listen_fd_, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          if (conns_.size() >= opt_.max_connections) {
            ::close(fd);
            bump(&NetStats::refused_over_cap);
            continue;
          }
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Connection c;
          c.fd = fd;
          c.id = next_conn_id_++;
          c.last_activity = Clock::now();
          const std::uint64_t id = c.id;
          conns_.emplace(id, std::move(c));
          bump(&NetStats::accepted);
        }
      }
      ++idx;
    }

    for (; idx < fds.size(); ++idx) {
      const std::uint64_t id = fd_conn[idx];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      if (fds[idx].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with pending input still delivers POLLIN first on
        // Linux; by the time only HUP/ERR remains the peer is gone.
        close_connection(id, /*counted_reset=*/false);
        continue;
      }
      if (fds[idx].revents & POLLIN) on_readable(it->second);
      it = conns_.find(id);
      if (it == conns_.end()) continue;
      if (fds[idx].revents & POLLOUT) on_writable(it->second);
    }

    // A completion handled above may have queued bytes on a socket that
    // is writable right now; opportunistically flush instead of waiting
    // one poll round trip.
    std::vector<std::uint64_t> flush;
    for (auto& [id, c] : conns_)
      if (c.wants_write()) flush.push_back(id);
    for (const std::uint64_t id : flush) {
      auto it = conns_.find(id);
      if (it != conns_.end()) on_writable(it->second);
    }

    // Closing connections with nothing left to say close now; idle ones
    // time out; connections whose queued response bytes stall (peer
    // stopped draining its socket) are cut off after write_timeout_s so
    // a dead reader can never pin loop-side buffer memory forever.
    std::vector<std::uint64_t> to_close;
    const auto now = Clock::now();
    for (auto& [id, c] : conns_) {
      if (opt_.write_timeout_s > 0 && c.pending_out() > 0) {
        if (c.write_stalled_since == Clock::time_point{}) {
          c.write_stalled_since = now;  // arm: bytes queued, none moving
        } else if (std::chrono::duration<double>(now - c.write_stalled_since)
                       .count() > opt_.write_timeout_s) {
          bump(&NetStats::write_timeouts);
          to_close.push_back(id);
          continue;
        }
      }
      if (c.closing && c.drained()) {
        to_close.push_back(id);
      } else if (!draining && opt_.idle_timeout_s > 0 && c.drained() &&
                 std::chrono::duration<double>(now - c.last_activity)
                         .count() > opt_.idle_timeout_s) {
        bump(&NetStats::idle_closed);
        to_close.push_back(id);
      }
    }
    for (const std::uint64_t id : to_close)
      close_connection(id, /*counted_reset=*/false);
  }
}

void NetServer::close_connection(std::uint64_t id, bool counted_reset) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& c = it->second;
  // A teardown holding an unconsumed partial request frame means the
  // peer died mid-frame (e.g. halfway through a snapshot REGISTER body).
  // Count it and free the half-parsed bytes explicitly: nothing of the
  // partial body was dispatched, so the registry and the engine never
  // saw it -- the frame either parsed completely or not at all.
  if (!c.plaintext && !c.in.empty() && c.in[0] == kMagic0)
    bump(&NetStats::partial_frame_aborts);
  std::vector<std::uint8_t>().swap(c.in);
  ::close(c.fd);
  conns_.erase(it);
  if (counted_reset) bump(&NetStats::peer_resets);
  bump(&NetStats::closed);
}

void NetServer::on_readable(Connection& c) {
  if (c.closing) {  // no longer parsing; swallow and wait for the drain
    char buf[4096];
    while (::recv(c.fd, buf, sizeof(buf), 0) > 0) {
    }
    return;
  }
  if (f_recv_io.fire()) {  // injected read-side I/O failure
    close_connection(c.id, /*counted_reset=*/true);
    return;
  }
  char buf[64 * 1024];
  bool got_bytes = false;
  while (true) {
    const ssize_t k = ::recv(c.fd, buf, sizeof(buf), 0);
    if (k > 0) {
      c.in.insert(c.in.end(), buf, buf + k);
      bump(&NetStats::bytes_in, static_cast<std::uint64_t>(k));
      got_bytes = true;
      if (c.in.size() > kMaxInBuffer) {
        bump(&NetStats::protocol_errors);
        close_connection(c.id, /*counted_reset=*/false);
        return;
      }
      continue;
    }
    if (k == 0) {  // orderly EOF from the peer
      close_connection(c.id, /*counted_reset=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(c.id, /*counted_reset=*/errno == ECONNRESET);
    return;
  }
  if (!got_bytes) return;
  c.last_activity = Clock::now();
  parse_input(c);
}

void NetServer::parse_input(Connection& c) {
  std::size_t off = 0;
  while (off < c.in.size()) {
    FrameView frame;
    std::size_t frame_len = 0;
    const WireError e =
        parse_frame(c.in.data() + off, c.in.size() - off, frame, frame_len);
    if (e == WireError::kNeedMore) break;
    if (e == WireError::kBadMagic && off == 0 && !c.plaintext) {
      // Not the frame protocol: maybe a human with netcat, or an HTTP
      // client asking `GET /stats`. Only the first line matters (bounded
      // by kMaxPlainLine); anything after it -- HTTP request headers,
      // say -- is discarded because the reply closes the connection.
      const auto nl =
          std::find(c.in.begin(), c.in.end(), std::uint8_t('\n'));
      if (nl != c.in.end() &&
          static_cast<std::size_t>(nl - c.in.begin()) <= kMaxPlainLine) {
        handle_plaintext(c);
        return;
      }
      break;  // need the rest of the line, or oversized: refused below
    }
    if (e != WireError::kOk) {
      // Unrecoverable framing error: answer with the typed reason (best
      // effort -- the request id is 0 unless the header parsed) and
      // close after the flush.
      bump(&NetStats::protocol_errors);
      encode_text_response(c.out, 0, WireStatus::kBadRequest,
                           std::string("protocol error: ") +
                               wire_error_name(e) + "\n");
      bump(&NetStats::responses_out);
      c.closing = true;
      break;
    }
    bump(&NetStats::frames_in);
    RequestFrame req;
    const WireError de = decode_request(frame, req);
    if (de != WireError::kOk) {
      bump(&NetStats::protocol_errors);
      encode_text_response(c.out, frame.request_id, WireStatus::kBadRequest,
                           std::string("bad request: ") +
                               wire_error_name(de) + "\n");
      bump(&NetStats::responses_out);
      c.closing = true;
      break;
    }
    dispatch(c, req);
    off += frame_len;
    if (c.closing) break;
  }
  if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
  if (c.in.size() > kMaxPlainLine && !c.in.empty() &&
      c.in[0] != kMagic0 && !c.closing) {
    // A non-frame stream that never produced a newline within the line
    // budget: refuse it.
    bump(&NetStats::protocol_errors);
    c.closing = true;
  }
}

void NetServer::handle_plaintext(Connection& c) {
  auto nl = std::find(c.in.begin(), c.in.end(), std::uint8_t('\n'));
  std::string line(c.in.begin(), nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  c.in.clear();
  c.plaintext = true;
  c.closing = true;  // one-shot: answer, flush, close
  if (line.rfind("GET ", 0) == 0) {
    // A minimal HTTP/1.0 adapter over the same one-shot line protocol, so
    // `curl http://host:port/stats` scrapes the counters without a wire
    // client. The connection is already closing: any request headers
    // still in flight are swallowed by on_readable until the flush.
    std::string path = line.substr(4);
    if (const auto sp = path.find(' '); sp != std::string::npos)
      path.resize(sp);
    std::string status = "200 OK";
    std::string body;
    if (path == "/stats") {
      bump(&NetStats::req_stats);
      body = stats_text();
    } else if (path == "/health") {
      bump(&NetStats::req_health);
      body = health_text();
    } else {
      status = "404 Not Found";
      body = "not found\n";
    }
    std::string resp;
    resp.reserve(body.size() + 128);
    resp += "HTTP/1.0 ";
    resp += status;
    resp += "\r\nContent-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: ";
    resp += std::to_string(body.size());
    resp += "\r\nConnection: close\r\n\r\n";
    resp += body;
    c.out.insert(c.out.end(), resp.begin(), resp.end());
    if (path == "/stats" || path == "/health") {
      bump(&NetStats::responses_out);
    } else {
      bump(&NetStats::protocol_errors);
    }
  } else if (line == "STATS") {
    bump(&NetStats::req_stats);
    const std::string text = stats_text();
    c.out.insert(c.out.end(), text.begin(), text.end());
    bump(&NetStats::responses_out);
  } else if (line == "HEALTH") {
    bump(&NetStats::req_health);
    const std::string text = health_text();
    c.out.insert(c.out.end(), text.begin(), text.end());
    bump(&NetStats::responses_out);
  } else {
    bump(&NetStats::protocol_errors);
    const std::string text = "bad request\n";
    c.out.insert(c.out.end(), text.begin(), text.end());
  }
}

void NetServer::dispatch(Connection& c, RequestFrame& req) {
  switch (req.kind) {
    case MsgKind::kStatsRequest:
      bump(&NetStats::req_stats);
      encode_text_response(c.out, req.request_id, WireStatus::kOk,
                           stats_text());
      bump(&NetStats::responses_out);
      return;
    case MsgKind::kHealthRequest:
      bump(&NetStats::req_health);
      encode_text_response(c.out, req.request_id, WireStatus::kOk,
                           health_text());
      bump(&NetStats::responses_out);
      return;
    case MsgKind::kRegisterSnapshotRequest:
    case MsgKind::kUpdateSnapshotRequest:
    case MsgKind::kReleaseSnapshotRequest:
      dispatch_snapshot_admin(c, req);
      return;
    case MsgKind::kSnapshotRankRequest:
    case MsgKind::kSnapshotScanRequest:
      dispatch_snapshot_run(c, req);
      return;
    case MsgKind::kRankRequest:
    case MsgKind::kScanRequest:
      break;
    case MsgKind::kResponse:
      return;  // unreachable: decode_request rejected it
  }

  const bool rank = req.kind == MsgKind::kRankRequest;
  bump(rank ? &NetStats::req_rank : &NetStats::req_scan);
  if (stopping_.load(std::memory_order_acquire)) {
    encode_status_response(c.out, req.request_id,
                           WireStatus::kShuttingDown);
    bump(&NetStats::responses_out);
    return;
  }

  // The engine borrows the list by pointer for the whole run; move the
  // decoded copy into shared ownership that the completion keeps alive.
  auto list = std::make_shared<LinkedList>(std::move(req.list));
  Request engine_req;
  engine_req.list = list.get();
  engine_req.rank = rank;
  engine_req.op = req.op;
  engine_req.method = req.method;
  engine_req.deadline_ms = req.deadline_ms;

  c.in_flight += 1;
  const std::uint64_t conn_id = c.id;
  const std::uint32_t request_id = req.request_id;
  const Clock::time_point deadline =
      req.deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(req.deadline_ms)
          : Clock::time_point::max();
  // The callback runs on an EngineServer worker thread (or inline right
  // here on a queue-full rejection): enqueue the completion and poke the
  // wake pipe; the loop does the encoding.
  engine_->submit(engine_req, [this, conn_id, request_id, list,
                               deadline](RunResult&& r) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{conn_id, request_id, std::move(r), list, 0, deadline});
    }
    const char byte = 0;
    [[maybe_unused]] const ssize_t rc = ::write(wake_w_, &byte, 1);
  });
}

void NetServer::dispatch_snapshot_admin(Connection& c, RequestFrame& req) {
  bump(&NetStats::req_snapshot_admin);
  if (stopping_.load(std::memory_order_acquire)) {
    encode_status_response(c.out, req.request_id,
                           WireStatus::kShuttingDown);
    bump(&NetStats::responses_out);
    return;
  }
  // Registration is control-plane work (rare, client-paced): the O(n)
  // validate + copy runs inline on the loop thread rather than costing a
  // queue round trip.
  if (req.kind == MsgKind::kReleaseSnapshotRequest) {
    if (engine_->drop_snapshot(req.snapshot_id)) {
      encode_snapshot_response(c.out, req.request_id, WireStatus::kOk,
                               req.snapshot_id, 0);
    } else {
      encode_text_response(c.out, req.request_id, WireStatus::kInvalidInput,
                           "unknown snapshot id\n");
    }
    bump(&NetStats::responses_out);
    return;
  }
  serve::SnapshotHandle handle;
  const Status s =
      req.kind == MsgKind::kRegisterSnapshotRequest
          ? engine_->register_snapshot(std::move(req.list), handle)
          : engine_->update_snapshot(req.snapshot_id, std::move(req.list),
                                     handle);
  if (s.ok()) {
    encode_snapshot_response(c.out, req.request_id, WireStatus::kOk,
                             handle.snapshot_id, handle.generation);
  } else {
    encode_text_response(c.out, req.request_id, wire_status_of(s.code),
                         s.message + "\n");
  }
  bump(&NetStats::responses_out);
}

void NetServer::dispatch_snapshot_run(Connection& c, RequestFrame& req) {
  const bool rank = req.kind == MsgKind::kSnapshotRankRequest;
  bump(rank ? &NetStats::req_snapshot_rank : &NetStats::req_snapshot_scan);
  if (stopping_.load(std::memory_order_acquire)) {
    encode_status_response(c.out, req.request_id,
                           WireStatus::kShuttingDown);
    bump(&NetStats::responses_out);
    return;
  }
  serve::SnapshotRequest sreq;
  sreq.snapshot_id = req.snapshot_id;
  sreq.generation = req.generation;
  sreq.rank = rank;
  sreq.op = req.op;
  sreq.method = req.method;
  sreq.deadline_ms = req.deadline_ms;

  c.in_flight += 1;
  const std::uint64_t conn_id = c.id;
  const std::uint32_t request_id = req.request_id;
  const std::uint64_t snapshot_id = req.snapshot_id;
  const Clock::time_point deadline =
      req.deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(req.deadline_ms)
          : Clock::time_point::max();
  // Unknown-id / stale / cache-hit answers invoke this callback inline
  // right here; real runs invoke it from a worker. Either way the loop
  // encodes on the next drain.
  engine_->submit(sreq, [this, conn_id, request_id, snapshot_id,
                         deadline](RunResult&& r) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(Completion{conn_id, request_id, std::move(r),
                                        nullptr, snapshot_id, deadline});
    }
    const char byte = 0;
    [[maybe_unused]] const ssize_t rc = ::write(wake_w_, &byte, 1);
  });
}

void NetServer::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& comp : done) {
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection died while running
    finish_completion(it->second, comp);
  }
}

void NetServer::finish_completion(Connection& c, const Completion& done) {
  if (c.in_flight > 0) c.in_flight -= 1;
  const RunResult& r = done.result;
  if (r.ok()) {
    encode_values_response(c.out, done.request_id, WireStatus::kOk,
                           std::span<const value_t>(r.scan));
  } else if (r.status.code == StatusCode::kStaleGeneration) {
    // The snapshot was superseded while the request named an old
    // generation: the typed refusal carries the CURRENT generation so
    // the client can retarget without a round trip to stats.
    encode_snapshot_response(c.out, done.request_id,
                             WireStatus::kStaleGeneration, done.snapshot_id,
                             r.stats.snapshot_generation);
    bump(&NetStats::stale_generation_sent);
  } else if (r.status.code == StatusCode::kUnavailable) {
    // The serving layer's back-pressure, made explicit on the wire: a
    // full queue earns a retry hint from the live depth and drain rate;
    // a shutdown tells the client not to bother. A request with a wire
    // deadline clamps the hint to its remaining budget -- and a budget
    // already spent gets DEADLINE_EXCEEDED: telling that client to
    // retry would only buy a second guaranteed failure.
    if (engine_->accepting() &&
        !stopping_.load(std::memory_order_acquire)) {
      std::uint32_t budget_ms = 0;  // 0 = no deadline
      bool expired = false;
      if (done.deadline != Clock::time_point::max()) {
        const auto left = done.deadline - Clock::now();
        const auto left_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(left)
                .count();
        if (left_ms <= 0) {
          expired = true;
        } else {
          budget_ms = static_cast<std::uint32_t>(std::min<long long>(
              left_ms, std::numeric_limits<std::uint32_t>::max()));
        }
      }
      if (expired) {
        encode_status_response(c.out, done.request_id,
                               WireStatus::kDeadlineExceeded);
        bump(&NetStats::deadline_exceeded_sent);
      } else {
        encode_retry_response(
            c.out, done.request_id,
            retry_.hint_ms(engine_->queue_depth(), budget_ms));
        bump(&NetStats::retry_after_sent);
      }
    } else {
      encode_status_response(c.out, done.request_id,
                             WireStatus::kShuttingDown);
    }
  } else {
    if (r.status.code == StatusCode::kDeadlineExceeded)
      bump(&NetStats::deadline_exceeded_sent);
    encode_text_response(c.out, done.request_id,
                         wire_status_of(r.status.code),
                         r.status.message + "\n");
  }
  bump(&NetStats::responses_out);
  c.last_activity = Clock::now();
}

void NetServer::on_writable(Connection& c) {
  if (f_send_stall.fire()) return;  // injected stall: bytes stay queued
  while (c.pending_out() > 0) {
    if (f_send_io.fire()) {  // injected write-side I/O failure
      close_connection(c.id, /*counted_reset=*/true);
      return;
    }
    const ssize_t k =
        ::send(c.fd, c.out.data() + c.out_off, c.pending_out(),
               MSG_NOSIGNAL);
    if (k > 0) {
      c.out_off += static_cast<std::size_t>(k);
      bump(&NetStats::bytes_out, static_cast<std::uint64_t>(k));
      // Progress re-arms the stalled-write clock.
      c.write_stalled_since = Clock::time_point{};
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (k < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the peer went away mid-response. A clean,
    // counted teardown -- never a signal, never a crash.
    close_connection(c.id,
                     /*counted_reset=*/errno == EPIPE ||
                         errno == ECONNRESET);
    return;
  }
  c.compact_out();
  c.last_activity = Clock::now();
}

}  // namespace lr90::net
