// A small blocking client for the listrank90 wire protocol -- the
// counterpart the benches, tests, and the net_demo example drive against
// NetServer. One connection per client, synchronous round trips by
// default, with the send/receive halves exposed separately so callers
// can pipeline several requests down one socket before reading.
//
//   NetClient client;
//   if (!client.connect_to("127.0.0.1", port).ok()) ...
//   ResponseFrame resp;
//   Status s = client.rank(list, resp);       // transport-level status
//   if (resp.status == WireStatus::kOk) use(resp.values);
//   if (resp.status == WireStatus::kRetryAfter) wait(resp.retry_after_ms);
//
// The Status return reports the TRANSPORT outcome (connected, framed,
// decoded); the server's answer -- including RETRY_AFTER back-pressure --
// arrives typed in ResponseFrame::status for the caller to act on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace lr90::net {

/// Blocking wire-protocol client; confined to one thread at a time.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();  ///< closes the socket

  NetClient(const NetClient&) = delete;             ///< not copyable
  NetClient& operator=(const NetClient&) = delete;  ///< not copyable
  NetClient(NetClient&& other) noexcept;            ///< movable
  NetClient& operator=(NetClient&& other) noexcept;  ///< movable

  /// Connects to host:port (dotted-quad host). `timeout_s` bounds every
  /// subsequent send/receive, so a dead server fails typed instead of
  /// hanging the caller.
  Status connect_to(const std::string& host, std::uint16_t port,
                    double timeout_s = 5.0);
  /// Closes the connection (idempotent).
  void close();
  /// True while the socket is open.
  bool connected() const { return fd_ >= 0; }

  /// One rank round trip: encodes, sends, waits for the response.
  /// `deadline_ms` > 0 rides the wire header: a job still queued when
  /// the budget expires is answered kDeadlineExceeded without running,
  /// and a back-pressure RETRY_AFTER hint is clamped to the remainder.
  Status rank(const LinkedList& list, ResponseFrame& out,
              Method method = Method::kAuto, std::uint32_t deadline_ms = 0);
  /// One scan round trip under `op`.
  Status scan(const LinkedList& list, ScanOp op, ResponseFrame& out,
              Method method = Method::kAuto, std::uint32_t deadline_ms = 0);
  /// Fetches the plaintext serving counters (framed kStatsRequest).
  Status stats_text(std::string& out);
  /// Fetches the plaintext liveness probe (framed kHealthRequest).
  Status health_text(std::string& out);

  // -- snapshot round trips ------------------------------------------------
  // On kOk the server's answer carries a kSnapshot body: read the handle
  // from out.snapshot_id / out.generation. A snapshot-addressed run that
  // names a superseded generation comes back kStaleGeneration with the
  // CURRENT generation in out.generation -- retarget and resend.

  /// Registers `list` as an immutable server-side snapshot.
  Status register_snapshot(const LinkedList& list, ResponseFrame& out);
  /// Replaces the list behind `snapshot_id`, bumping its generation.
  Status update_snapshot(std::uint64_t snapshot_id, const LinkedList& list,
                         ResponseFrame& out);
  /// Drops the snapshot (its caches invalidate server-side).
  Status release_snapshot(std::uint64_t snapshot_id, ResponseFrame& out);
  /// One snapshot-addressed rank round trip. `generation` 0 = current.
  Status snapshot_rank(std::uint64_t snapshot_id, std::uint64_t generation,
                       ResponseFrame& out, Method method = Method::kAuto,
                       std::uint32_t deadline_ms = 0);
  /// One snapshot-addressed scan round trip under `op`.
  Status snapshot_scan(std::uint64_t snapshot_id, std::uint64_t generation,
                       ScanOp op, ResponseFrame& out,
                       Method method = Method::kAuto,
                       std::uint32_t deadline_ms = 0);

  // -- pipelining primitives (N sends, then N reads, one socket) ----------

  /// Sends a rank request without waiting; returns its request id.
  Status send_rank(const LinkedList& list, std::uint32_t& request_id,
                   Method method = Method::kAuto);
  /// Sends a scan request without waiting; returns its request id.
  Status send_scan(const LinkedList& list, ScanOp op,
                   std::uint32_t& request_id, Method method = Method::kAuto);
  /// Blocks for the next response frame on the socket (any request id).
  Status read_response(ResponseFrame& out);

  /// Sends raw bytes verbatim (tests: corrupt frames, plaintext probes).
  Status send_raw(const void* data, std::size_t len);
  /// Reads everything until the server closes the connection (tests:
  /// the plaintext STATS/HEALTH one-shot path).
  Status read_until_eof(std::string& out);

 private:
  Status round_trip(const std::vector<std::uint8_t>& frame,
                    std::uint32_t request_id, ResponseFrame& out);
  Status fill_input();  ///< one recv into in_, typed errors

  int fd_ = -1;                    ///< the blocking socket
  std::uint32_t next_id_ = 1;      ///< request-id counter
  std::vector<std::uint8_t> in_;   ///< bytes received, not yet framed
};

}  // namespace lr90::net

namespace lr90 {
/// The client type, re-exported at the library root.
using net::NetClient;
}  // namespace lr90
