#include "net/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace lr90::net {

namespace {

timeval timeval_of(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                             tv.tv_sec)) * 1e6);
  return tv;
}

}  // namespace

NetClient::~NetClient() { close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      in_(std::move(other.in_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    in_ = std::move(other.in_);
  }
  return *this;
}

Status NetClient::connect_to(const std::string& host, std::uint16_t port,
                             double timeout_s) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::unavailable("socket() failed");
  const timeval tv = timeval_of(timeout_s);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status::invalid("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    close();
    return Status::unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(errno));
  }
  in_.clear();
  return Status::success();
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::send_raw(const void* data, std::size_t len) {
  if (fd_ < 0) return Status::unavailable("not connected");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    close();
    return Status::unavailable(std::string("send failed: ") +
                               std::strerror(errno));
  }
  return Status::success();
}

Status NetClient::fill_input() {
  std::uint8_t buf[64 * 1024];
  const ssize_t k = ::recv(fd_, buf, sizeof(buf), 0);
  if (k > 0) {
    in_.insert(in_.end(), buf, buf + k);
    return Status::success();
  }
  if (k == 0) {
    close();
    return Status::unavailable("server closed the connection");
  }
  if (errno == EINTR) return Status::success();
  close();
  return Status::unavailable(std::string("recv failed: ") +
                             std::strerror(errno));
}

Status NetClient::read_response(ResponseFrame& out) {
  if (fd_ < 0) return Status::unavailable("not connected");
  while (true) {
    FrameView frame;
    std::size_t frame_len = 0;
    const WireError e =
        parse_frame(in_.data(), in_.size(), frame, frame_len);
    if (e == WireError::kOk) {
      const WireError de = decode_response(frame, out);
      in_.erase(in_.begin(), in_.begin() + frame_len);
      if (de != WireError::kOk)
        return Status::invalid(std::string("bad response frame: ") +
                               wire_error_name(de));
      return Status::success();
    }
    if (e != WireError::kNeedMore)
      return Status::invalid(std::string("bad response frame: ") +
                             wire_error_name(e));
    const Status s = fill_input();
    if (!s.ok()) return s;
  }
}

Status NetClient::round_trip(const std::vector<std::uint8_t>& frame,
                             std::uint32_t request_id, ResponseFrame& out) {
  Status s = send_raw(frame.data(), frame.size());
  if (!s.ok()) return s;
  s = read_response(out);
  if (!s.ok()) return s;
  if (out.request_id != request_id)
    return Status::invalid("response id " + std::to_string(out.request_id) +
                           " does not match request id " +
                           std::to_string(request_id));
  return Status::success();
}

Status NetClient::send_rank(const LinkedList& list,
                            std::uint32_t& request_id, Method method) {
  request_id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_rank_request(frame, request_id, list, method);
  return send_raw(frame.data(), frame.size());
}

Status NetClient::send_scan(const LinkedList& list, ScanOp op,
                            std::uint32_t& request_id, Method method) {
  request_id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_scan_request(frame, request_id, list, op, method);
  return send_raw(frame.data(), frame.size());
}

Status NetClient::rank(const LinkedList& list, ResponseFrame& out,
                       Method method, std::uint32_t deadline_ms) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_rank_request(frame, id, list, method, deadline_ms);
  return round_trip(frame, id, out);
}

Status NetClient::scan(const LinkedList& list, ScanOp op,
                       ResponseFrame& out, Method method,
                       std::uint32_t deadline_ms) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_scan_request(frame, id, list, op, method, deadline_ms);
  return round_trip(frame, id, out);
}

Status NetClient::register_snapshot(const LinkedList& list,
                                    ResponseFrame& out) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_register_snapshot_request(frame, id, list);
  return round_trip(frame, id, out);
}

Status NetClient::update_snapshot(std::uint64_t snapshot_id,
                                  const LinkedList& list,
                                  ResponseFrame& out) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_update_snapshot_request(frame, id, snapshot_id, list);
  return round_trip(frame, id, out);
}

Status NetClient::release_snapshot(std::uint64_t snapshot_id,
                                   ResponseFrame& out) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_release_snapshot_request(frame, id, snapshot_id);
  return round_trip(frame, id, out);
}

Status NetClient::snapshot_rank(std::uint64_t snapshot_id,
                                std::uint64_t generation, ResponseFrame& out,
                                Method method, std::uint32_t deadline_ms) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_snapshot_rank_request(frame, id, snapshot_id, generation, method,
                               deadline_ms);
  return round_trip(frame, id, out);
}

Status NetClient::snapshot_scan(std::uint64_t snapshot_id,
                                std::uint64_t generation, ScanOp op,
                                ResponseFrame& out, Method method,
                                std::uint32_t deadline_ms) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_snapshot_scan_request(frame, id, snapshot_id, generation, op,
                               method, deadline_ms);
  return round_trip(frame, id, out);
}

Status NetClient::stats_text(std::string& out) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_plain_request(frame, MsgKind::kStatsRequest, id);
  ResponseFrame resp;
  const Status s = round_trip(frame, id, resp);
  if (!s.ok()) return s;
  out = resp.text;
  return Status::success();
}

Status NetClient::health_text(std::string& out) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_plain_request(frame, MsgKind::kHealthRequest, id);
  ResponseFrame resp;
  const Status s = round_trip(frame, id, resp);
  if (!s.ok()) return s;
  out = resp.text;
  return Status::success();
}

Status NetClient::read_until_eof(std::string& out) {
  if (fd_ < 0) return Status::unavailable("not connected");
  out.assign(in_.begin(), in_.end());
  in_.clear();
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t k = ::recv(fd_, buf, sizeof(buf), 0);
    if (k > 0) {
      out.append(reinterpret_cast<const char*>(buf),
                 static_cast<std::size_t>(k));
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k == 0) {
      close();
      return Status::success();
    }
    close();
    return Status::unavailable(std::string("recv failed: ") +
                               std::strerror(errno));
  }
}

}  // namespace lr90::net
