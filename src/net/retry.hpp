// The RETRY_AFTER hint: how long a rejected client should wait before
// retrying, derived from what the server actually observes -- the current
// queue backlog and the recent drain rate -- instead of a fixed constant.
//
// The event loop feeds the policy one sample per iteration (monotonic
// time + the EngineServer's completed-jobs counter); completions per
// second are smoothed with a time-constant EWMA so one fast or slow batch
// does not whipsaw the hint. A rejected request is then told to come back
// after roughly the time the present backlog needs to drain:
//
//     hint_ms = (depth + 1) / drain_rate, clamped to [min_ms, max_ms]
//
// Before any drain rate has been observed (cold server under instant
// overload) the hint falls back to a per-queued-job constant. The policy
// is a plain value type with injected time, so tests drive it
// deterministically (tests/net_server_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace lr90::net {

/// Computes back-pressure retry hints from queue depth and drain rate.
class RetryPolicy {
 public:
  /// Hints are clamped to [min_ms, max_ms].
  explicit RetryPolicy(std::uint32_t min_ms = 1, std::uint32_t max_ms = 2000)
      : min_ms_(min_ms), max_ms_(std::max(max_ms, min_ms)) {}

  /// Feeds one sample: `now_s` monotonic seconds, `completed` the
  /// monotonic completed-jobs counter. Call regularly (every event-loop
  /// iteration); out-of-order or repeated timestamps are ignored.
  void observe(double now_s, std::uint64_t completed) {
    if (last_t_ < 0.0) {  // first sample: baseline only
      last_t_ = now_s;
      last_completed_ = completed;
      return;
    }
    // A non-advancing timestamp is ignored outright -- including its
    // baseline. Folding it in would let a later honest sample compute a
    // rate against a rolled-back origin.
    if (now_s <= last_t_) return;
    if (completed < last_completed_) {
      // The completed counter went backwards (a stats reset):
      // re-baseline without deriving a rate.
      last_t_ = now_s;
      last_completed_ = completed;
      return;
    }
    const double dt = now_s - last_t_;
    const double inst = static_cast<double>(completed - last_completed_) / dt;
    // A degenerate dt (down at clock / double granularity, e.g. right
    // after a counter re-baseline) can push `inst` to infinity while the
    // EWMA weight underflows to exactly zero -- and inf * 0 would poison
    // rate_ with NaN permanently. Such a sample carries no usable rate:
    // treat it as a baseline only.
    if (!std::isfinite(inst)) {
      last_t_ = now_s;
      last_completed_ = completed;
      return;
    }
    // EWMA with time constant kTauS: irregular sample spacing weighted
    // by how much time each sample actually covers. -expm1 keeps the
    // weight positive for tiny dt where 1 - exp(-dt/tau) rounds to 0.
    const double alpha = -std::expm1(-dt / kTauS);
    rate_ += (inst - rate_) * alpha;
    last_t_ = now_s;
    last_completed_ = completed;
  }

  /// The smoothed drain rate in completions per second (0 until two
  /// samples with progress have been observed).
  double drain_rate() const { return rate_; }

  /// The wait hint for a client rejected while `depth` jobs are queued.
  /// A zero, denormal, or non-finite drain rate (cold start, counter
  /// re-baseline, degenerate samples) never reaches the division: the
  /// quotient would overflow -- or, for NaN, make the clamp and the
  /// uint32 cast undefined -- so those cases take the cold fallback and
  /// the result is always inside [min_ms, max_ms].
  std::uint32_t hint_ms(std::size_t depth) const {
    const double jobs = static_cast<double>(depth) + 1.0;
    double ms = 0.0;
    if (std::isfinite(rate_) && rate_ > kMinRate) {
      ms = jobs / rate_ * 1000.0;
    } else {
      ms = jobs * kColdMsPerJob;  // no usable drain rate observed
    }
    ms = std::min(ms, static_cast<double>(max_ms_));
    return std::max(min_ms_, static_cast<std::uint32_t>(ms));
  }

  /// Deadline-aware hint: like hint_ms(depth), additionally clamped to
  /// the client's remaining deadline budget. A hint telling the client
  /// to come back after its own deadline would guarantee the retry is
  /// wasted, so the budget caps the wait -- but never below min_ms (a
  /// zero hint reads as "retry immediately" and stampedes the queue).
  /// A zero budget means "no deadline": the plain hint is returned.
  std::uint32_t hint_ms(std::size_t depth,
                        std::uint32_t deadline_budget_ms) const {
    const std::uint32_t base = hint_ms(depth);
    if (deadline_budget_ms == 0) return base;
    return std::max(min_ms_, std::min(base, deadline_budget_ms));
  }

 private:
  static constexpr double kTauS = 0.5;       ///< EWMA time constant
  static constexpr double kColdMsPerJob = 10.0;  ///< pre-observation guess
  /// Smallest rate the hint will divide by: everything below (including
  /// denormals) is indistinguishable from "no drain observed".
  static constexpr double kMinRate = 1e-9;
  std::uint32_t min_ms_;                     ///< hint floor
  std::uint32_t max_ms_;                     ///< hint ceiling
  double rate_ = 0.0;                        ///< EWMA completions/sec
  double last_t_ = -1.0;                     ///< previous sample time
  std::uint64_t last_completed_ = 0;         ///< previous counter value
};

}  // namespace lr90::net
