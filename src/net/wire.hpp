// The listrank90 wire protocol: a compact length-prefixed binary codec
// for carrying Rank/Scan/OpRequest and RunResult over a byte stream.
//
// Every message is one frame:
//
//   offset  size  field
//   0       2     magic      "LR" (0x4C 0x52)
//   2       1     version    kWireVersion (2)
//   3       1     kind       MsgKind
//   4       4     request id little-endian; echoed verbatim in the response
//   8       4     payload length in bytes, little-endian, <= kMaxPayload
//   12      4     deadline   relative deadline in ms, little-endian; 0 =
//                            none. On requests: the client's remaining
//                            budget, carried into Request::deadline_ms
//                            (expired-in-queue jobs answer
//                            kDeadlineExceeded without running). On
//                            responses: 0.
//   16      len   payload    kind-specific (layouts below)
//
// Request payloads (all integers little-endian; "list body" =
// u32 n; u32 head; n x u32 next; n x i64 value):
//   kRankRequest             u8 method; list body
//   kScanRequest             u8 method; u8 op; list body
//   kStatsRequest            (empty)
//   kHealthRequest           (empty)
//   kRegisterSnapshotRequest list body
//   kUpdateSnapshotRequest   u64 snapshot_id; list body
//   kReleaseSnapshotRequest  u64 snapshot_id
//   kSnapshotRankRequest     u8 method; u64 snapshot_id; u64 generation
//   kSnapshotScanRequest     u8 method; u8 op; u64 snapshot_id;
//                            u64 generation
//
// Response payload (kResponse):
//   u8 status (WireStatus); u8 body (BodyKind); then
//     kValues   u32 count; count x i64   -- the scan/rank answer
//     kText     u32 len; len bytes       -- stats/health text, error detail
//     kRetry    u32 retry_after_ms       -- back-pressure hint (kRetryAfter)
//     kSnapshot u64 snapshot_id; u64 generation -- a snapshot handle: the
//               registered/updated handle on kOk, the CURRENT generation
//               to retarget on kStaleGeneration
//     kNone     (nothing)
//
// Decoding is strict and bounds-checked: every read is validated against
// the remaining buffer, sizes must match the declared payload length
// exactly, and every malformed-frame class maps to a typed WireError --
// truncation is kNeedMore (feed more bytes), everything else is a hard
// protocol error the server answers with kBadRequest and a close. No
// decode ever reads past the supplied buffer (tests/net_wire_test.cpp
// runs the corruption harness under ASan/UBSan to keep that true).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"

/// The network front door: wire codec, event-loop TCP server, and the
/// blocking client used by the benches and tests.
namespace lr90::net {

inline constexpr std::uint8_t kMagic0 = 0x4C;  ///< 'L'
inline constexpr std::uint8_t kMagic1 = 0x52;  ///< 'R'
/// Current frame version. v2 widened the header with the deadline field
/// (v1 peers are refused with kBadVersion -- no silent misparse).
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kHeaderSize = 16;   ///< bytes before payload
/// Largest accepted payload (64 MiB, ~5.6M-vertex lists): a declared
/// length beyond this is rejected before any allocation, so a corrupt or
/// hostile length prefix cannot balloon server memory.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

/// Frame kinds. Requests are < 0x80; responses have the top bit set.
enum class MsgKind : std::uint8_t {
  kRankRequest = 1,    ///< exclusive list rank
  kScanRequest = 2,    ///< exclusive list scan under any ScanOp
  kStatsRequest = 3,   ///< plaintext serving counters (body kText)
  kHealthRequest = 4,  ///< plaintext liveness probe (body kText)
  kRegisterSnapshotRequest = 5,  ///< register an immutable list snapshot
  kReleaseSnapshotRequest = 6,   ///< drop a registered snapshot
  kUpdateSnapshotRequest = 7,    ///< replace a snapshot (generation bump)
  kSnapshotRankRequest = 8,      ///< rank a registered snapshot
  kSnapshotScanRequest = 9,      ///< scan a registered snapshot
  kResponse = 0x81,    ///< the one response kind; the id names the request
};

/// Response status on the wire. Mirrors lr90::StatusCode where a run
/// actually happened, plus the serving-layer outcomes that never reach an
/// engine (back-pressure, shutdown, protocol errors).
enum class WireStatus : std::uint8_t {
  kOk = 0,            ///< the request ran; body carries the answer
  kInvalidInput = 1,  ///< malformed list (StatusCode::kInvalidInput)
  kUnsupported = 2,   ///< method/operator combo (StatusCode::kUnsupported)
  kWrongAnswer = 3,   ///< verify_output mismatch (StatusCode::kWrongAnswer)
  kRetryAfter = 4,    ///< queue full; body kRetry carries the wait hint
  kShuttingDown = 5,  ///< server draining; do not retry here
  kBadRequest = 6,    ///< protocol error; the connection will close
  kInternalError = 7, ///< engine failure that produced no typed status
  /// The addressed snapshot generation was superseded; the kSnapshot
  /// body carries the current generation to retarget.
  kStaleGeneration = 8,
  kCorruptSlab = 9,         ///< spilled slab failed integrity, unrecovered
  kResourceExhausted = 10,  ///< disk/RAM could not hold the run
  kDeadlineExceeded = 11,   ///< deadline passed before the work ran
};

/// Short stable name of `s` ("ok", "retry-after", ...).
const char* wire_status_name(WireStatus s);

/// Typed decode outcome. kNeedMore is the streaming signal (an honest
/// prefix of a valid frame); every other non-kOk value is a protocol
/// error -- the frame can never become valid with more bytes.
enum class WireError : std::uint8_t {
  kOk = 0,        ///< a complete, well-formed frame
  kNeedMore,      ///< valid so far, but the buffer ends mid-frame
  kBadMagic,      ///< first bytes are not "LR"
  kBadVersion,    ///< version byte != kWireVersion
  kBadKind,       ///< kind byte names no MsgKind
  kOversized,     ///< declared payload length > kMaxPayload
  kBadLength,     ///< payload length inconsistent with the kind's layout
  kBadPayload,    ///< payload content out of range (method/op/head/body)
};

/// Short stable name of `e` ("ok", "need-more", "bad-magic", ...).
const char* wire_error_name(WireError e);

/// Body discriminator of a response payload.
enum class BodyKind : std::uint8_t {
  kNone = 0,    ///< no body
  kValues = 1,  ///< the scan/rank vector
  kText = 2,    ///< plaintext (stats/health) or an error detail
  kRetry = 3,   ///< a retry-after hint in milliseconds
  kSnapshot = 4,  ///< a snapshot handle (id + generation)
};

/// A parsed frame header plus a view of its payload bytes (borrowed from
/// the caller's buffer; valid only while that buffer is).
struct FrameView {
  MsgKind kind = MsgKind::kResponse;  ///< what the frame is
  std::uint32_t request_id = 0;       ///< correlation id (echoed back)
  std::uint32_t deadline_ms = 0;      ///< relative deadline; 0 = none
  std::span<const std::uint8_t> payload;  ///< kind-specific bytes
};

/// Parses one frame from the front of [data, data+len). On kOk fills
/// `out` and sets `frame_len` to the bytes consumed (header + payload).
/// On kNeedMore nothing is consumed; call again with more bytes. Any
/// other error is fatal for the stream (resynchronization is not
/// attempted -- a binary framing error closes the connection).
WireError parse_frame(const std::uint8_t* data, std::size_t len,
                      FrameView& out, std::size_t& frame_len);

// -- requests ---------------------------------------------------------------

/// A decoded request frame: the engine-facing request fields plus an
/// owned copy of the list (the wire buffer is transient; the engine run
/// is not).
struct RequestFrame {
  MsgKind kind = MsgKind::kRankRequest;  ///< rank/scan/stats/health/...
  std::uint32_t request_id = 0;          ///< echoed in the response
  Method method = Method::kAuto;         ///< requested algorithm
  ScanOp op = ScanOp::kPlus;             ///< scan operator (kScanRequest)
  LinkedList list;                       ///< decoded list (rank/scan/
                                         ///< register/update)
  std::uint64_t snapshot_id = 0;   ///< snapshot kinds: the addressed id
  std::uint64_t generation = 0;    ///< snapshot rank/scan: pinned gen
  std::uint32_t deadline_ms = 0;   ///< header deadline field; 0 = none
};

/// Decodes a request frame's payload. Strict: the payload length must
/// match the declared n exactly (kBadLength), method/op bytes must name
/// registered enumerators and head must be in range (kBadPayload).
/// Structural list validity (every next in range, one tail...) is NOT
/// checked here -- the serving layer runs the engine with
/// validate_input, which types malformed lists as kInvalidInput.
WireError decode_request(const FrameView& frame, RequestFrame& out);

/// Appends a rank-request frame for `list` to `out`.
void encode_rank_request(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const LinkedList& list,
                         Method method = Method::kAuto,
                         std::uint32_t deadline_ms = 0);
/// Appends a scan-request frame for `list` under `op` to `out`.
void encode_scan_request(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const LinkedList& list,
                         ScanOp op, Method method = Method::kAuto,
                         std::uint32_t deadline_ms = 0);
/// Appends an empty-payload request frame (stats/health) to `out`.
void encode_plain_request(std::vector<std::uint8_t>& out, MsgKind kind,
                          std::uint32_t request_id);
/// Appends a register-snapshot request frame for `list` to `out`.
void encode_register_snapshot_request(std::vector<std::uint8_t>& out,
                                      std::uint32_t request_id,
                                      const LinkedList& list);
/// Appends an update-snapshot request frame (new `list` under
/// `snapshot_id`) to `out`.
void encode_update_snapshot_request(std::vector<std::uint8_t>& out,
                                    std::uint32_t request_id,
                                    std::uint64_t snapshot_id,
                                    const LinkedList& list);
/// Appends a release-snapshot request frame to `out`.
void encode_release_snapshot_request(std::vector<std::uint8_t>& out,
                                     std::uint32_t request_id,
                                     std::uint64_t snapshot_id);
/// Appends a snapshot-addressed rank request frame to `out`
/// (generation 0 = current).
void encode_snapshot_rank_request(std::vector<std::uint8_t>& out,
                                  std::uint32_t request_id,
                                  std::uint64_t snapshot_id,
                                  std::uint64_t generation,
                                  Method method = Method::kAuto,
                                  std::uint32_t deadline_ms = 0);
/// Appends a snapshot-addressed scan request frame to `out`.
void encode_snapshot_scan_request(std::vector<std::uint8_t>& out,
                                  std::uint32_t request_id,
                                  std::uint64_t snapshot_id,
                                  std::uint64_t generation, ScanOp op,
                                  Method method = Method::kAuto,
                                  std::uint32_t deadline_ms = 0);

// -- responses --------------------------------------------------------------

/// A decoded response frame; which member is meaningful follows `body`.
struct ResponseFrame {
  std::uint32_t request_id = 0;          ///< which request this answers
  WireStatus status = WireStatus::kOk;   ///< outcome class
  BodyKind body = BodyKind::kNone;       ///< which member below is set
  std::vector<value_t> values;           ///< kValues: the answer vector
  std::string text;                      ///< kText: stats/health/detail
  std::uint32_t retry_after_ms = 0;      ///< kRetry: back-pressure hint
  std::uint64_t snapshot_id = 0;   ///< kSnapshot: the handle's id
  std::uint64_t generation = 0;    ///< kSnapshot: the handle's generation
};

/// Decodes a response frame's payload (strict, like decode_request).
WireError decode_response(const FrameView& frame, ResponseFrame& out);

/// Appends a kValues response frame to `out`.
void encode_values_response(std::vector<std::uint8_t>& out,
                            std::uint32_t request_id, WireStatus status,
                            std::span<const value_t> values);
/// Appends a kText response frame to `out`.
void encode_text_response(std::vector<std::uint8_t>& out,
                          std::uint32_t request_id, WireStatus status,
                          std::string_view text);
/// Appends a kRetry response frame (status kRetryAfter) to `out`.
void encode_retry_response(std::vector<std::uint8_t>& out,
                           std::uint32_t request_id,
                           std::uint32_t retry_after_ms);
/// Appends a bodyless response frame to `out`.
void encode_status_response(std::vector<std::uint8_t>& out,
                            std::uint32_t request_id, WireStatus status);
/// Appends a kSnapshot response frame (a handle) to `out`: the
/// registered/updated handle on kOk, the current generation to retarget
/// on kStaleGeneration.
void encode_snapshot_response(std::vector<std::uint8_t>& out,
                              std::uint32_t request_id, WireStatus status,
                              std::uint64_t snapshot_id,
                              std::uint64_t generation);

/// Maps an engine StatusCode onto the wire. kUnavailable is deliberately
/// absent from the mapping: the serving layer distinguishes queue-full
/// (kRetryAfter + hint) from shutdown (kShuttingDown) before encoding.
WireStatus wire_status_of(StatusCode code);

}  // namespace lr90::net
