// lr90::net::NetServer -- the network front door: a single-threaded
// nonblocking event-loop TCP server (poll, level-triggered) fronting an
// EngineServer, so out-of-process clients can rank and scan lists over
// the wire protocol defined in net/wire.hpp.
//
//   NetServer server({.port = 0});            // 0 = ephemeral
//   Status s = server.start();                // binds, listens, spawns loop
//   ... clients connect to 127.0.0.1:server.port() ...
//   server.stop();                            // drains, then closes
//
// Design (the Gigablast TcpServer/Loop request-state idiom):
//   * ONE loop thread multiplexes every socket with poll(); no thread per
//     connection, so the intra-request (threads x W) engine hot path
//     keeps the cores. Each Connection (net/connection.hpp) is a little
//     state machine: read -> parse -> dispatch -> write.
//   * Engine work never runs on the loop thread: requests are submitted
//     to the EngineServer with the callback flavour of submit(); worker
//     threads push completions onto a queue and poke a wake pipe, and
//     the loop marries results back to connections and encodes responses.
//   * Back-pressure maps to the wire: the EngineServer runs
//     reject_when_full, and a queue-full rejection becomes an explicit
//     RETRY_AFTER response carrying a hint computed by RetryPolicy from
//     the live queue depth and the observed drain rate -- never a hung
//     connection, never a silent drop.
//   * stop() is graceful: the listener closes first, in-flight requests
//     finish and their responses flush (bounded by drain_timeout_s),
//     then connections close and the EngineServer shuts down.
//   * SIGPIPE is ignored (plus MSG_NOSIGNAL on every send); a peer that
//     vanishes mid-write (EPIPE/ECONNRESET) is a counted, clean teardown.
//   * A plaintext escape hatch: a connection whose first bytes are not
//     the frame magic may say "STATS\n" or "HEALTH\n" (netcat-friendly)
//     and gets the same text a framed kStatsRequest/kHealthRequest
//     returns, then a close.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/retry.hpp"
#include "net/wire.hpp"
#include "serve/server.hpp"

namespace lr90::net {

/// Configuration of a NetServer.
struct NetServerOptions {
  /// The EngineServer beneath the loop. reject_when_full is forced ON
  /// (the loop must never block in submit) and validate_input is forced
  /// ON for the pooled engines (wire input is untrusted; malformed lists
  /// must come back kInvalidInput, not corrupt a kernel).
  serve::ServerOptions serve;
  std::string bind_address = "127.0.0.1";  ///< dotted-quad listen address
  std::uint16_t port = 0;  ///< listen port; 0 = ephemeral (see port())
  int backlog = 128;       ///< listen(2) backlog
  std::size_t max_connections = 256;  ///< accepted sockets beyond this are
                                      ///< immediately closed (counted)
  /// Connections idle (no traffic, nothing in flight) longer than this
  /// are closed; <= 0 disables the timeout.
  double idle_timeout_s = 30.0;
  /// Bound on how long stop() waits for in-flight responses to flush
  /// before closing connections anyway.
  double drain_timeout_s = 5.0;
  /// A connection whose queued response bytes make no progress for this
  /// long (peer stopped draining its socket) is closed and counted
  /// (write_timeouts); <= 0 disables the timeout. Progress -- any send()
  /// that moves bytes -- re-arms the clock.
  double write_timeout_s = 10.0;
  /// RETRY_AFTER hint clamp (RetryPolicy min/max milliseconds).
  std::uint32_t retry_min_ms = 1;
  std::uint32_t retry_max_ms = 2000;  ///< hint ceiling
};

/// Event-loop counters, all monotonic since start(). Written only by the
/// loop thread; readable from any thread via NetServer::net_stats().
struct NetStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t closed = 0;           ///< connections fully torn down
  std::uint64_t refused_over_cap = 0; ///< accepts dropped at max_connections
  std::uint64_t idle_closed = 0;      ///< closes by idle timeout
  std::uint64_t peer_resets = 0;      ///< EPIPE/ECONNRESET teardowns
  std::uint64_t protocol_errors = 0;  ///< malformed frames / bad plaintext
  std::uint64_t frames_in = 0;        ///< well-formed request frames
  std::uint64_t responses_out = 0;    ///< response frames fully encoded
  std::uint64_t retry_after_sent = 0; ///< back-pressure RETRY_AFTER answers
  std::uint64_t req_rank = 0;         ///< per-kind request counters...
  std::uint64_t req_scan = 0;         ///< ...
  std::uint64_t req_stats = 0;        ///< ...(plaintext STATS included)
  std::uint64_t req_health = 0;       ///< ...(plaintext HEALTH included)
  std::uint64_t req_snapshot_admin = 0;  ///< register/update/release frames
  std::uint64_t req_snapshot_rank = 0;   ///< snapshot-addressed rank frames
  std::uint64_t req_snapshot_scan = 0;   ///< snapshot-addressed scan frames
  std::uint64_t stale_generation_sent = 0;  ///< STALE_GENERATION responses
  std::uint64_t bytes_in = 0;         ///< payload bytes read
  std::uint64_t bytes_out = 0;        ///< payload bytes written
  // Failure-model counters (docs/ARCHITECTURE.md, "Failure model").
  std::uint64_t write_timeouts = 0;   ///< closes by stalled-write timeout
  /// Connections torn down holding a partial request frame (peer died
  /// mid-frame); the half-parsed body is freed with the connection and
  /// nothing of it reaches the registry or the engine.
  std::uint64_t partial_frame_aborts = 0;
  std::uint64_t deadline_exceeded_sent = 0;  ///< DEADLINE_EXCEEDED answers
};

/// The event-loop TCP server. start()/stop() and the stats accessors may
/// be called from any thread; everything socket-facing runs on the one
/// internal loop thread.
class NetServer {
 public:
  /// Stores the options; no sockets are touched until start().
  explicit NetServer(NetServerOptions opt = {});
  ~NetServer();  ///< stop()

  NetServer(const NetServer&) = delete;             ///< not copyable
  NetServer& operator=(const NetServer&) = delete;  ///< not copyable

  /// Binds, listens, spawns the loop thread and the EngineServer.
  /// Typed failure (kUnavailable) when the address cannot be bound.
  Status start();
  /// Graceful shutdown: close the listener, drain in-flight responses
  /// (bounded by drain_timeout_s), close connections, stop the engine
  /// workers. Idempotent; safe from any thread except the loop itself.
  void stop();

  /// True between a successful start() and stop().
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the ephemeral pick when options.port was 0);
  /// 0 before start().
  std::uint16_t port() const { return port_; }
  /// Snapshot of the event-loop counters.
  NetStats net_stats() const;
  /// Snapshot of the EngineServer counters beneath the loop (empty
  /// before start()).
  serve::ServerStats serve_stats() const;
  /// The resolved options.
  const NetServerOptions& options() const { return opt_; }

  /// The plaintext stats/health body (exposed for tests: the framed and
  /// netcat paths return exactly this text).
  std::string stats_text() const;
  std::string health_text() const;  ///< "ok\n" serving, "draining\n" not

 private:
  /// A finished engine run travelling from a worker thread to the loop.
  struct Completion {
    std::uint64_t conn_id = 0;   ///< which connection asked
    std::uint32_t request_id = 0;  ///< which of its requests
    RunResult result;            ///< the engine's answer
    /// Keeps the decoded list alive until the run has completed (the
    /// engine borrows it by pointer). Null for snapshot-addressed runs
    /// (the registry pins the list).
    std::shared_ptr<LinkedList> list;
    /// Nonzero for snapshot-addressed runs: lets a kStaleGeneration
    /// result be answered with a kSnapshot body naming the snapshot and
    /// its CURRENT generation (from RunStats::snapshot_generation).
    std::uint64_t snapshot_id = 0;
    /// Absolute deadline carried from the wire header (max() = none):
    /// lets a queue-full RETRY_AFTER hint be clamped to the remaining
    /// budget -- a hint past the client's own deadline guarantees a
    /// wasted retry -- and an already-spent budget answer
    /// DEADLINE_EXCEEDED instead.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  void loop();
  void on_readable(Connection& c);
  void on_writable(Connection& c);
  void parse_input(Connection& c);
  void dispatch(Connection& c, RequestFrame& req);
  void dispatch_snapshot_admin(Connection& c, RequestFrame& req);
  void dispatch_snapshot_run(Connection& c, RequestFrame& req);
  void handle_plaintext(Connection& c);
  void drain_completions();
  void finish_completion(Connection& c, const Completion& done);
  void close_connection(std::uint64_t id, bool counted_reset);
  void bump(std::uint64_t NetStats::* field, std::uint64_t by = 1);

  NetServerOptions opt_;                    ///< resolved configuration
  std::unique_ptr<serve::EngineServer> engine_;  ///< the serving layer
  std::thread loop_thread_;                 ///< the one event-loop thread
  std::atomic<bool> running_{false};        ///< between start() and stop()
  std::atomic<bool> stopping_{false};       ///< stop() requested
  std::uint16_t port_ = 0;                  ///< bound port
  int listen_fd_ = -1;                      ///< listening socket
  int wake_r_ = -1;                         ///< completion wake pipe (read)
  int wake_w_ = -1;                         ///< completion wake pipe (write)

  std::map<std::uint64_t, Connection> conns_;  ///< loop thread only
  std::uint64_t next_conn_id_ = 1;             ///< loop thread only
  RetryPolicy retry_;                          ///< loop thread only

  std::mutex completions_mu_;               ///< guards completions_
  std::vector<Completion> completions_;     ///< worker -> loop hand-off

  mutable std::mutex stats_mu_;  ///< guards stats_ for cross-thread reads
  NetStats stats_;               ///< counters (loop writes, others read)

  std::mutex lifecycle_mu_;  ///< serializes start()/stop()
};

}  // namespace lr90::net

namespace lr90 {
/// The network layer's primary types, re-exported at the library root.
using net::NetServer;
using net::NetServerOptions;
using net::NetStats;
}  // namespace lr90
