// lr90::Engine -- the unified entry point of the listrank90 library.
//
// The library grew two disjoint API families: the simulated-Cray-C90 path
// (sim_list_rank / sim_list_scan, core/api.hpp) and the real-hardware
// OpenMP path (host_list_rank / host_list_scan, core/parallel_host.hpp),
// each with its own option struct, result shape, and auto-dispatch policy.
// The Engine puts one facade in front of both:
//
//   Engine engine({.backend = BackendKind::kHost});
//   RunResult r = engine.rank(list);            // scan: engine.scan(list)
//   if (!r.ok()) report(r.status);              // typed errors, no aborts
//
// An Engine owns
//   * an ExecutionBackend -- SimBackend (wraps vm::Machine), HostBackend
//     (wraps the OpenMP sublist kernel), or SerialBackend (the degenerate
//     single-walk case);
//   * a Planner that resolves Method::kAuto per backend by consulting the
//     paper's cost equations and tuner (analysis/cost_eqs, analysis/tuner)
//     instead of hard-coded crossovers;
//   * a Workspace of reusable scratch buffers, so repeated calls (and
//     run_batch) stop paying per-call allocation -- the paper's "assign
//     work once, balance locally" discipline applied to memory.
//
// Results carry one merged RunStats: wall-clock always, simulated
// cycles/ns when the backend simulates, AlgoStats always.
//
// The legacy families remain as thin shims over the Engine (see
// core/api.hpp and core/parallel_host.hpp).
//
// Thread-safety contract: an Engine (its Workspace and backend scratch
// state) is confined to one thread at a time -- engines are cheap, use one
// per thread. The Planner is safe to share: decide() may be called
// concurrently (its tune memo is internally synchronized). For serving
// concurrent traffic through pooled engines, see serve/server.hpp
// (lr90::EngineServer).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/tuner.hpp"
#include "baselines/algo_stats.hpp"
#include "baselines/anderson_miller.hpp"
#include "core/kernel_tier.hpp"
#include "core/reid_miller.hpp"
#include "core/workspace.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

/// The listrank90 library: list ranking and list scan after Reid-Miller
/// (SPAA '94), on a simulated Cray C90 or real OpenMP hardware.
namespace lr90 {

// -- methods (moved here from core/api.hpp; api.hpp re-exposes them) -------

/// The list-ranking / list-scan algorithm families the backends can run.
enum class Method {
  kAuto,               ///< let the Planner pick from the cost model
  kSerial,             ///< single serial walk (the paper's baseline)
  kWyllie,             ///< Wyllie pointer jumping
  kMillerReif,         ///< Miller-Reif random mate
  kAndersonMiller,     ///< Anderson-Miller random mate
  kReidMiller,         ///< the paper's random-sublist algorithm
  kReidMillerEncoded,  ///< rank only: the single-gather packed fast path
};

/// Short stable name of `m` ("serial", "reid-miller", ...) for tables/CLIs.
const char* method_name(Method m);

/// Legacy fixed thresholds for Method::kAuto (empirical crossovers, Fig. 1)
/// used by the sim_list_* shims. New code goes through the Planner, which
/// derives the crossovers from the cost model instead.
inline constexpr std::size_t kAutoSerialMax = 128;   ///< serial up to here
inline constexpr std::size_t kAutoWyllieMax = 1024;  ///< then Wyllie to here
/// Resolves `requested` == kAuto by the legacy fixed thresholds.
Method resolve_auto(std::size_t n, Method requested);

// -- backends ---------------------------------------------------------------

/// Which execution substrate an Engine drives.
enum class BackendKind {
  kSerial,  ///< single serial walk on the host (degenerate reference)
  kSim,     ///< simulated Cray C90 (vm::Machine); reports cycles and ns
  kHost,    ///< real execution, OpenMP-parallel when available
};

/// Short stable name of `k` ("serial", "sim", "host").
const char* backend_name(BackendKind k);

// -- kernel tiers -----------------------------------------------------------
// lr90::KernelTier and kernel_tier_name() live in core/kernel_tier.hpp
// (included above) so the kernel layer can name tiers without the Engine
// facade; this header is their public home.

// -- status -----------------------------------------------------------------

/// Error taxonomy of a run; every failure is reported, never aborted on.
enum class StatusCode {
  kOk,            ///< the run succeeded
  kInvalidInput,  ///< malformed list / request
  kUnsupported,   ///< method or operator the backend cannot run
  kWrongAnswer,   ///< verify_output found a mismatch with the reference
  kUnavailable,   ///< the serving layer rejected the request (shutdown/full)
  kStaleGeneration,  ///< the addressed snapshot generation was superseded
  kCorruptSlab,   ///< a spilled shard slab failed its integrity check
  kResourceExhausted,  ///< disk/RAM could not hold the run (ENOSPC, alloc)
  kDeadlineExceeded,   ///< the request's deadline passed before it ran
};

/// Short stable name of `c` ("ok", "invalid-input", ...).
const char* status_code_name(StatusCode c);

/// A typed outcome: a code plus a human-readable detail message.
struct Status {
  StatusCode code = StatusCode::kOk;  ///< the outcome class
  std::string message;                ///< details when code != kOk

  /// True iff the operation succeeded.
  bool ok() const { return code == StatusCode::kOk; }
  /// The all-ok status.
  static Status success() { return {}; }
  /// A kInvalidInput status carrying `msg`.
  static Status invalid(std::string msg);
  /// A kUnsupported status carrying `msg`.
  static Status unsupported(std::string msg);
  /// A kWrongAnswer status carrying `msg`.
  static Status wrong_answer(std::string msg);
  /// A kUnavailable status carrying `msg`.
  static Status unavailable(std::string msg);
  /// A kStaleGeneration status carrying `msg`.
  static Status stale_generation(std::string msg);
  /// A kCorruptSlab status carrying `msg`.
  static Status corrupt_slab(std::string msg);
  /// A kResourceExhausted status carrying `msg`.
  static Status resource_exhausted(std::string msg);
  /// A kDeadlineExceeded status carrying `msg`.
  static Status deadline_exceeded(std::string msg);
};

// -- requests ---------------------------------------------------------------

// The runtime operator taxonomy (ScanOp, with_scan_op, op_cost_factor)
// lives with the operator layer in lists/ops.hpp; requests here carry a
// ScanOp value and the backends dispatch it onto the ListOp types once
// per run.

/// An exclusive list-rank request (number of predecessors per vertex).
struct RankRequest {
  const LinkedList* list = nullptr;  ///< the input; must outlive the run
  Method method = Method::kAuto;     ///< algorithm; kAuto = Planner's pick
};

/// An exclusive list-scan request under a runtime operator.
struct ScanRequest {
  const LinkedList* list = nullptr;  ///< the input; must outlive the run
  ScanOp op = ScanOp::kPlus;         ///< the scan's combining operator
  Method method = Method::kAuto;     ///< algorithm; kAuto = Planner's pick
};

/// A generic associative-operator scan request: any registered ScanOp
/// (including the packed segmented-sum / affine / max-plus operators),
/// any method, any backend. The preferred spelling for operator
/// workloads; one type with ScanRequest, so every Engine / EngineServer
/// entry point accepts either name.
using OpRequest = ScanRequest;

/// The unified request run_batch consumes; converts from any family.
struct Request {
  const LinkedList* list = nullptr;  ///< the input; must outlive the run
  bool rank = true;                  ///< rank (true) or scan (false)
  ScanOp op = ScanOp::kPlus;         ///< ignored when rank
  Method method = Method::kAuto;     ///< algorithm; kAuto = Planner's pick
  /// Optional cross-request packed slab (serve/slab_cache.hpp), installed
  /// into the workspace for this run. Only sound when `list` is an
  /// immutable snapshot the slab was built from; null for ordinary runs.
  std::shared_ptr<const PackedSlab> slab;
  /// Pinned spill directory for a sharded run ("" = the engine's
  /// ShardOptions default). Set by the serving layer to its per-snapshot-
  /// generation directory so shard files are written once and reused
  /// across requests; only sound for immutable snapshot lists.
  std::string shard_spill_dir;
  /// Relative deadline in milliseconds (0 = none). Carried through the
  /// wire header and the EngineServer queue: a request still queued when
  /// its deadline passes is answered kDeadlineExceeded without running.
  std::uint32_t deadline_ms = 0;

  Request() = default;  ///< an empty (listless) request; run() rejects it
  /// Converts a rank request.
  Request(const RankRequest& r)  // NOLINT(google-explicit-constructor)
      : list(r.list), rank(true), method(r.method) {}
  /// Converts a scan / operator-scan request.
  Request(const ScanRequest& s)  // NOLINT(google-explicit-constructor)
      : list(s.list), rank(false), op(s.op), method(s.method) {}
};

// -- results ----------------------------------------------------------------

/// Merged statistics: wall-clock and AlgoStats always; simulated figures
/// when the backend simulates (has_sim).
struct RunStats {
  AlgoStats algo;        ///< rounds / link steps / extra space
  double wall_ns = 0.0;  ///< host wall-clock of the execution

  bool has_sim = false;           ///< the sim_* fields below are meaningful
  double sim_cycles = 0.0;        ///< simulated machine cycles
  double sim_ns = 0.0;            ///< simulated wall time
  double sim_ns_per_vertex = 0.0; ///< sim_ns / n (0 for an empty list)
  vm::OpCounters ops;             ///< simulated data-movement counters

  // Host-backend execution shape (zero/false on the other backends), so
  // benches and the serving layer can report cursors-in-flight and
  // intra-request thread scaling.
  unsigned host_interleave = 0;   ///< cursors in flight per worker
  unsigned host_threads = 0;      ///< worker threads the run actually used
  bool host_packed = false;       ///< the single-gather packed slab ran
  bool host_packed_cached = false;  ///< slab reused from the batch cache
  /// The kernel tier that ACTUALLY executed the hot phases (host backend;
  /// kAuto on the other backends and on runs that never reached the host
  /// kernels). Reports runtime downgrades the plan could not see: a
  /// value missing the 32-bit lane lands on kLegacy, a gather-incapable
  /// CPU lands kSimdGather plans on kPackedCursors.
  KernelTier kernel_tier = KernelTier::kAuto;

  // Per-phase wall clock of the host sublist kernel (zero on the serial
  // walk and other backends), so benches can compute per-phase parallel
  // efficiency E(T) = t_phase(1) / (T * t_phase(T)) across a thread sweep.
  double host_build_ns = 0.0;   ///< boundaries + heads + slab build
  double host_phase1_ns = 0.0;  ///< per-sublist inclusive scans
  double host_phase2_ns = 0.0;  ///< reduced-list scan over sublist sums
  double host_phase3_ns = 0.0;  ///< per-sublist expansion
  /// Share of the phase wall clock spent in multi-worker phases (the
  /// Amdahl fraction); 0 when no phases were timed.
  double host_parallel_frac = 0.0;

  // Sharded execution (src/shard/): all zero when the run was unsharded.
  unsigned shard_count = 0;          ///< shards the run split into
  std::uint64_t shard_segments = 0;  ///< reduced-list length (2nd level)
  std::uint64_t shard_loads = 0;     ///< shard-file loads (spill tier)
  std::uint64_t shard_spills = 0;    ///< residencies evicted by the budget
  std::uint64_t shard_prefetch_hits = 0;  ///< loads the prefetcher served
  bool shard_spilled = false;        ///< the out-of-core tier was active
  std::uint64_t shard_corrupt_slabs = 0;  ///< slabs failing integrity checks
  std::uint64_t shard_repacks = 0;   ///< slabs rewritten from the source
  std::uint64_t shard_degraded = 0;  ///< shards served resident (spill down)

  /// For snapshot-addressed serving requests (serve/server.hpp): the
  /// snapshot generation this result was computed against -- on a
  /// kStaleGeneration rejection, the CURRENT generation the client should
  /// retarget. 0 for non-snapshot runs.
  std::uint64_t snapshot_generation = 0;
};

/// The outcome of one run: typed status, the answer, and statistics.
struct RunResult {
  Status status;              ///< kOk, or why the run failed
  std::vector<value_t> scan;  ///< exclusive scan/rank per vertex index
  Method method_used = Method::kAuto;          ///< what actually ran
  BackendKind backend = BackendKind::kSerial;  ///< where it ran
  RunStats stats;             ///< merged wall-clock / simulated figures

  /// True iff the run succeeded (shorthand for status.ok()).
  bool ok() const { return status.ok(); }
};

// -- options ----------------------------------------------------------------

/// Sharded / out-of-core execution knobs (src/shard/): splitting a run
/// into P contiguous id-range shards ranked independently, with
/// cross-shard cursors resolved by a second-level Reid-Miller pass, and an
/// optional spill tier that keeps at most `byte_budget` shard bytes
/// resident (mmapped ShardFiles + async prefetch).
struct ShardOptions {
  /// Let the Planner shard automatically when n exceeds the packed path's
  /// 2^31 link-lane bound, or when the list's bytes exceed `byte_budget`.
  bool auto_shard = true;
  /// Pinned shard count; 0 = auto (1 forces a single-shard sharded run,
  /// which tests use to exercise the machinery on small lists).
  unsigned shards = 0;
  /// Resident shard-byte budget for the spill tier; 0 = all-in-RAM (no
  /// shard files are ever written).
  std::size_t byte_budget = 0;
  /// Spill directory. "" = a fresh ephemeral per-run directory under the
  /// system temp dir, removed when the run ends. A non-empty directory is
  /// treated as pinned: shard files whose headers match are REUSED across
  /// runs and left on disk -- only sound for immutable lists (the serving
  /// layer's snapshot contract).
  std::string spill_dir;
  /// Async prefetch depth for the spill tier (0 disables the prefetcher).
  unsigned prefetch = 1;
  /// Allow the spill tier's counted degraded mode: shards whose spill
  /// files cannot be written (ENOSPC/EIO) or reloaded (after a failed
  /// repack) are served from the always-resident source arrays and
  /// counted (RunStats::shard_degraded). Off = strict: those failures
  /// become typed kResourceExhausted / kCorruptSlab run errors instead.
  bool degrade = true;
};

/// Everything an Engine is configured with; value-semantic and copyable
/// (an EngineServer stamps one per pooled worker engine).
struct EngineOptions {
  /// Which execution substrate to drive.
  BackendKind backend = BackendKind::kHost;
  /// Simulated processors (sim backend; overrides machine.processors).
  unsigned processors = 1;
  /// Host worker threads; 0 = auto: the Planner picks the count jointly
  /// with the packed-path width W from the host cost model, capped at
  /// the OpenMP (or hardware) thread count. > 0 pins the cap explicitly
  /// (small runs still shed threads before going serial).
  unsigned threads = 0;
  /// Sublists per thread the host planner targets (more = better balance,
  /// more overhead).
  unsigned sublists_per_thread = 64;
  /// Which host kernel family serves the hot phases. kAuto lets the
  /// Planner pick from the cost model and CPUID (the SIMD gather tier is
  /// considered only where simd_gather_available()); pinning a tier
  /// forces that family, subject to the typed runtime fallbacks
  /// (non-lane-capable operators and n > 2^31 run kLegacy; kSimdGather
  /// without usable AVX2 runs kPackedCursors). Replaces the implicit
  /// "interleave == 0 means auto" contract.
  KernelTier tier = KernelTier::kAuto;
  /// DEPRECATED width alias (one release): cursors in flight per worker
  /// on the packed hot path. 0 = let the Planner pick from the host cost
  /// model (analysis/tuner host_tune); 1..64 pins the width (the
  /// interleave sweep forces every candidate through this knob). It no
  /// longer selects the kernel family -- use `tier` for that; a pinned
  /// width with tier == kAuto is mapped (with a one-time stderr warning
  /// in Planner::decide) to "prefer the packed family at this W".
  unsigned interleave = 0;
  /// Seed of the per-run RNG reseeding (results are deterministic in it).
  std::uint64_t seed = kDefaultSeed;
  vm::MachineConfig machine;           ///< sim backend configuration
  ReidMillerOptions reid_miller;       ///< sim backend algorithm knobs
  AndersonMillerOptions anderson_miller;  ///< sim backend baseline knobs
  /// Run the O(n) structural validator on every input first; malformed
  /// lists yield StatusCode::kInvalidInput instead of undefined behaviour.
  bool validate_input = false;
  /// Check every answer against the serial reference; mismatches yield
  /// StatusCode::kWrongAnswer. Costs one serial pass per run.
  bool verify_output = false;
  /// Sharded / out-of-core execution knobs (host backend only).
  ShardOptions shard;
};

// -- planner ----------------------------------------------------------------

/// Resolves Method::kAuto and picks the sublist count per backend.
///
/// Sim backend: chooses the cheapest of serial / Wyllie / Reid-Miller by
/// the paper's cost model -- the serial scalar line, a Wyllie estimate
/// built from the machine's vector costs (2 gathers + 1 combine per round
/// plus a barrier), and the tuner's Eq. 3 + Phase-2 minimum -- rather than
/// the legacy hard-coded kAutoSerialMax/kAutoWyllieMax thresholds. Also
/// reports the tuned m and S_1 so the algorithm skips re-tuning.
///
/// Host backend: serial below a small per-thread break-even, otherwise the
/// sublist kernel with threads * sublists_per_thread sublists (the paper's
/// oversubscription discipline; the tuner models C90 vector startups, which
/// do not exist on the host). Packed-capable requests plan the full
/// execution shape on the joint (threads x W) host cost model
/// (analysis/tuner host_tune): with EngineOptions::threads == 0 the grid
/// search picks both the worker count and the interleave width, the
/// paper's Section 5 processor dimension joined to its Section 3 vector
/// length.
class Planner {
 public:
  /// Builds a planner for the given engine configuration.
  explicit Planner(const EngineOptions& opt);

  /// The planner's answer: resolved method plus tuned execution shape.
  struct Decision {
    Method method = Method::kSerial;  ///< resolved algorithm (never kAuto)
    double sublists = 0.0;  ///< m (sim Reid-Miller) / total target (host)
    double s1 = 0.0;        ///< first balance interval (sim Reid-Miller)
    unsigned threads = 1;   ///< host worker threads (host backend only)
    /// Host kernel tier planned for the hot phases (never kAuto on the
    /// host backend; kAuto elsewhere). The kernels may still downgrade
    /// at run time -- RunStats::kernel_tier reports what actually ran.
    KernelTier tier = KernelTier::kAuto;
    /// Host packed-path interleave width W (cursors in flight per
    /// worker); 0 selects the legacy unpacked kernels. Set for
    /// packed-capable host runs from the tune memo (or the pinned
    /// EngineOptions::interleave).
    unsigned interleave = 0;
    /// Host worker threads for a RUNTIME fallback from the packed path
    /// to the legacy kernels (a value missing the 32-bit lane): the
    /// packed-optimal `threads` can be lower than the unpacked kernels
    /// want, so the planner carries the breakeven-shed count separately.
    /// 0 = same as `threads`.
    unsigned legacy_threads = 0;
    double predicted_cycles = 0.0;  ///< sim cost-model estimate; 0 if n/a
    /// Shards the run splits into (src/shard/ two-level path); 0 = the
    /// ordinary unsharded execution. Set from a pinned
    /// ShardOptions::shards, or automatically when n exceeds the packed
    /// path's 2^31 link-lane bound or the resident byte budget -- the
    /// typed fallback for "too big": never a silently wrong packed run.
    unsigned shard_count = 0;
  };

  /// Plans one run of length n. `requested` != kAuto is honoured verbatim
  /// (the backend may still reject it as unsupported). `op` feeds the
  /// operator's combine cost (op_cost_factor) into the model, so kAuto
  /// crossovers shift for the more expensive packed operators; ranking
  /// always plans as ScanOp::kPlus.
  Decision decide(std::size_t n, Method requested, bool rank,
                  ScanOp op = ScanOp::kPlus) const;

  /// Cost-model estimate behind the sim decision: cycles of the serial
  /// walk on the configured processor count (exposed for tests/benches).
  /// `op` scales the per-element terms by its combine cost.
  double serial_cycles(std::size_t n, bool rank,
                       ScanOp op = ScanOp::kPlus) const;
  /// Cost-model estimate of Wyllie pointer jumping (see serial_cycles).
  double wyllie_cycles(std::size_t n, bool rank,
                       ScanOp op = ScanOp::kPlus) const;
  /// Cost-model estimate of the Reid-Miller algorithm (see serial_cycles).
  double reid_miller_cycles(std::size_t n, bool rank,
                            ScanOp op = ScanOp::kPlus) const;

 private:
  TuneResult tuned(double n, bool rank_kernels, double op_factor) const;
  HostTuneResult host_tuned(double n, double op_factor, unsigned max_threads,
                            TuneTier tier) const;

  BackendKind backend_;
  unsigned processors_;
  unsigned threads_;
  unsigned sublists_per_thread_;
  unsigned pinned_interleave_;  ///< caller-pinned interleave (0 = auto)
  KernelTier tier_;             ///< caller-requested kernel tier
  ShardOptions shard_;          ///< sharding knobs (host backend only)
  double pinned_m_;   ///< caller-pinned reid_miller.m (<= 0 = auto)
  double pinned_s1_;  ///< caller-pinned reid_miller.s1 (<= 0 = auto)
  double contention_;
  double sync_cycles_;
  vm::CostTable table_;
  /// tune() results memoized per (n, kernel family, operator cost factor).
  /// The memo is guarded by its own mutex so decide() is safe to call
  /// concurrently (the rest of the Planner is immutable after
  /// construction); it lives behind a unique_ptr to keep the Planner --
  /// and the Engine holding it -- movable.
  struct TuneMemo {
    /// One memo key: (n, rank-kernel family, op_cost_factor).
    using Key = std::tuple<double, bool, double>;
    std::mutex mu;                        ///< guards both caches
    std::map<Key, TuneResult> cache;      ///< per (n, family, op factor)
    /// Joint host_tune() results per (n, op factor, max threads, tier
    /// search mode): the hot-path (tier, threads, W) triple and the
    /// tiered-vs-serial-walk model totals. Keyed on the tier axis so a
    /// forced-scalar run and a gather-capable run never share an entry.
    std::map<std::tuple<double, double, unsigned, int>, HostTuneResult>
        host_cache;
  };
  std::unique_ptr<TuneMemo> memo_;
};

// -- backend interface ------------------------------------------------------

/// What an Engine drives: one execution substrate behind a uniform
/// interface (SerialBackend / SimBackend / HostBackend in engine.cpp).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;  ///< backends own their machines
  /// Which substrate this is.
  virtual BackendKind kind() const = 0;
  /// Executes the planned request into `result` (scan already sized).
  virtual Status execute(const Request& req, const Planner::Decision& plan,
                         Workspace& ws, RunResult& result) = 0;
  /// The simulated machine of the last run (sim backend only; null
  /// otherwise). Valid until the next execute().
  virtual const vm::Machine* machine() const { return nullptr; }
};

// -- engine -----------------------------------------------------------------

/// The unified entry point: one facade over the serial / simulated-C90 /
/// OpenMP-host execution paths. Confined to one thread at a time (the
/// Workspace and backend scratch are unsynchronized); for concurrent
/// traffic, pool engines behind an EngineServer (serve/server.hpp).
class Engine {
 public:
  /// Builds the backend, planner, and workspace for `opt`.
  explicit Engine(EngineOptions opt = {});
  ~Engine();  ///< releases the backend and all workspace memory
  Engine(Engine&&) noexcept;             ///< engines are movable...
  Engine& operator=(Engine&&) noexcept;  ///< ...but not copyable

  /// Exclusive list rank (number of predecessors per vertex).
  RunResult rank(const LinkedList& list, Method method = Method::kAuto);
  /// Exclusive list scan under `op`.
  RunResult scan(const LinkedList& list, ScanOp op = ScanOp::kPlus,
                 Method method = Method::kAuto);
  /// Runs one unified request.
  RunResult run(const Request& req);
  /// Runs a batch front to back on this engine's workspace; one result per
  /// request (failures are per-request, the batch never aborts).
  std::vector<RunResult> run_batch(std::span<const Request> requests);
  /// The coalescing hook behind run_batch: runs the batch front to back
  /// and hands each result to `sink(index, RunResult&&)` as it completes,
  /// so a serving layer can fulfil per-request futures without waiting for
  /// (or storing) the whole batch. Within the batch the workspace's
  /// packed-slab cache is live: consecutive requests over the same list
  /// (the serving layer's collapsed hot-key traffic) build the
  /// single-gather slab once.
  template <class Sink>
  void run_batch_each(std::span<const Request> requests, Sink&& sink) {
    const BatchScope scope(*this);
    for (std::size_t i = 0; i < requests.size(); ++i) sink(i, run(requests[i]));
  }

  /// The options this engine was built with.
  const EngineOptions& options() const { return opt_; }
  /// The planner resolving Method::kAuto for this engine.
  const Planner& planner() const { return planner_; }
  /// This engine's reusable scratch memory.
  Workspace& workspace() { return ws_; }
  /// Read-only view of the scratch memory (for allocation counters).
  const Workspace& workspace() const { return ws_; }
  /// Simulated machine of the last run (sim backend only; null otherwise).
  /// For post-run introspection, e.g. per-kernel cycle breakdowns.
  const vm::Machine* sim_machine() const { return backend_->machine(); }

 private:
  /// Marks a batch in flight. The packed-slab cache is trusted only
  /// between runs of one batch: the keyed arrays are alive for the whole
  /// batch (every request holds them), and a cache-hit run reads only
  /// the slab's self-consistent snapshot (host_exec phase 2 chains by
  /// slab links), so even a caller who mutates a list between two batch
  /// runs -- e.g. a serving client whose earlier future already resolved
  /// -- gets the coherent as-of-build answer, never a stale/live mix.
  /// Outside a batch every run() invalidates the cache first.
  struct BatchScope {
    explicit BatchScope(Engine& e) : engine(e), prev(e.in_batch_) {
      e.ws_.invalidate_packed();
      e.ws_.set_packed_trusted(true);
      e.in_batch_ = true;
    }
    ~BatchScope() {
      engine.in_batch_ = prev;
      engine.ws_.set_packed_trusted(prev);
    }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;
    Engine& engine;  ///< the engine whose batch flag is scoped
    bool prev;       ///< nesting: restore the outer scope's flag
  };

  EngineOptions opt_;
  Planner planner_;
  std::unique_ptr<ExecutionBackend> backend_;
  Workspace ws_;
  bool in_batch_ = false;
};

}  // namespace lr90
