// lr90::Engine -- the unified entry point of the listrank90 library.
//
// The library grew two disjoint API families: the simulated-Cray-C90 path
// (sim_list_rank / sim_list_scan, core/api.hpp) and the real-hardware
// OpenMP path (host_list_rank / host_list_scan, core/parallel_host.hpp),
// each with its own option struct, result shape, and auto-dispatch policy.
// The Engine puts one facade in front of both:
//
//   Engine engine({.backend = BackendKind::kHost});
//   RunResult r = engine.rank(list);            // scan: engine.scan(list)
//   if (!r.ok()) report(r.status);              // typed errors, no aborts
//
// An Engine owns
//   * an ExecutionBackend -- SimBackend (wraps vm::Machine), HostBackend
//     (wraps the OpenMP sublist kernel), or SerialBackend (the degenerate
//     single-walk case);
//   * a Planner that resolves Method::kAuto per backend by consulting the
//     paper's cost equations and tuner (analysis/cost_eqs, analysis/tuner)
//     instead of hard-coded crossovers;
//   * a Workspace of reusable scratch buffers, so repeated calls (and
//     run_batch) stop paying per-call allocation -- the paper's "assign
//     work once, balance locally" discipline applied to memory.
//
// Results carry one merged RunStats: wall-clock always, simulated
// cycles/ns when the backend simulates, AlgoStats always.
//
// The legacy families remain as thin shims over the Engine (see
// core/api.hpp and core/parallel_host.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "baselines/anderson_miller.hpp"
#include "core/reid_miller.hpp"
#include "core/workspace.hpp"
#include "lists/linked_list.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace lr90 {

// -- methods (moved here from core/api.hpp; api.hpp re-exposes them) -------

enum class Method {
  kAuto,
  kSerial,
  kWyllie,
  kMillerReif,
  kAndersonMiller,
  kReidMiller,
  kReidMillerEncoded,  ///< rank only: the single-gather packed fast path
};

const char* method_name(Method m);

/// Legacy fixed thresholds for Method::kAuto (empirical crossovers, Fig. 1)
/// used by the sim_list_* shims. New code goes through the Planner, which
/// derives the crossovers from the cost model instead.
inline constexpr std::size_t kAutoSerialMax = 128;
inline constexpr std::size_t kAutoWyllieMax = 1024;
Method resolve_auto(std::size_t n, Method requested);

// -- backends ---------------------------------------------------------------

enum class BackendKind {
  kSerial,  ///< single serial walk on the host (degenerate reference)
  kSim,     ///< simulated Cray C90 (vm::Machine); reports cycles and ns
  kHost,    ///< real execution, OpenMP-parallel when available
};

const char* backend_name(BackendKind k);

// -- status -----------------------------------------------------------------

enum class StatusCode {
  kOk,
  kInvalidInput,  ///< malformed list / request
  kUnsupported,   ///< method or operator the backend cannot run
  kWrongAnswer,   ///< verify_output found a mismatch with the reference
};

const char* status_code_name(StatusCode c);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  static Status success() { return {}; }
  static Status invalid(std::string msg);
  static Status unsupported(std::string msg);
  static Status wrong_answer(std::string msg);
};

// -- requests ---------------------------------------------------------------

/// Binary associative operator of a scan request, runtime-dispatchable.
/// (The template entry points remain available for custom operators.)
enum class ScanOp { kPlus, kMin, kMax, kXor };

const char* scan_op_name(ScanOp op);

struct RankRequest {
  const LinkedList* list = nullptr;
  Method method = Method::kAuto;
};

struct ScanRequest {
  const LinkedList* list = nullptr;
  ScanOp op = ScanOp::kPlus;
  Method method = Method::kAuto;
};

/// The unified request run_batch consumes; converts from either family.
struct Request {
  const LinkedList* list = nullptr;
  bool rank = true;
  ScanOp op = ScanOp::kPlus;  ///< ignored when rank
  Method method = Method::kAuto;

  Request() = default;
  Request(const RankRequest& r)  // NOLINT(google-explicit-constructor)
      : list(r.list), rank(true), method(r.method) {}
  Request(const ScanRequest& s)  // NOLINT(google-explicit-constructor)
      : list(s.list), rank(false), op(s.op), method(s.method) {}
};

// -- results ----------------------------------------------------------------

/// Merged statistics: wall-clock and AlgoStats always; simulated figures
/// when the backend simulates (has_sim).
struct RunStats {
  AlgoStats algo;
  double wall_ns = 0.0;  ///< host wall-clock of the execution

  bool has_sim = false;
  double sim_cycles = 0.0;        ///< simulated machine cycles
  double sim_ns = 0.0;            ///< simulated wall time
  double sim_ns_per_vertex = 0.0;
  vm::OpCounters ops;             ///< simulated data-movement counters
};

struct RunResult {
  Status status;
  std::vector<value_t> scan;  ///< exclusive scan/rank per vertex index
  Method method_used = Method::kAuto;
  BackendKind backend = BackendKind::kSerial;
  RunStats stats;

  bool ok() const { return status.ok(); }
};

// -- options ----------------------------------------------------------------

struct EngineOptions {
  BackendKind backend = BackendKind::kHost;
  /// Simulated processors (sim backend; overrides machine.processors).
  unsigned processors = 1;
  /// Host worker threads; 0 = OpenMP default (host backend).
  unsigned threads = 0;
  /// Sublists per thread the host planner targets (more = better balance,
  /// more overhead).
  unsigned sublists_per_thread = 64;
  std::uint64_t seed = kDefaultSeed;
  vm::MachineConfig machine;           ///< sim backend configuration
  ReidMillerOptions reid_miller;       ///< sim backend algorithm knobs
  AndersonMillerOptions anderson_miller;
  /// Run the O(n) structural validator on every input first; malformed
  /// lists yield StatusCode::kInvalidInput instead of undefined behaviour.
  bool validate_input = false;
  /// Check every answer against the serial reference; mismatches yield
  /// StatusCode::kWrongAnswer. Costs one serial pass per run.
  bool verify_output = false;
};

// -- planner ----------------------------------------------------------------

/// Resolves Method::kAuto and picks the sublist count per backend.
///
/// Sim backend: chooses the cheapest of serial / Wyllie / Reid-Miller by
/// the paper's cost model -- the serial scalar line, a Wyllie estimate
/// built from the machine's vector costs (2 gathers + 1 combine per round
/// plus a barrier), and the tuner's Eq. 3 + Phase-2 minimum -- rather than
/// the legacy hard-coded kAutoSerialMax/kAutoWyllieMax thresholds. Also
/// reports the tuned m and S_1 so the algorithm skips re-tuning.
///
/// Host backend: serial below a small per-thread break-even, otherwise the
/// sublist kernel with threads * sublists_per_thread sublists (the paper's
/// oversubscription discipline; the tuner models C90 vector startups, which
/// do not exist on the host).
class Planner {
 public:
  explicit Planner(const EngineOptions& opt);

  struct Decision {
    Method method = Method::kSerial;
    double sublists = 0.0;  ///< m (sim Reid-Miller) / total target (host)
    double s1 = 0.0;        ///< first balance interval (sim Reid-Miller)
    unsigned threads = 1;   ///< host worker threads (host backend only)
    double predicted_cycles = 0.0;  ///< sim cost-model estimate; 0 if n/a
  };

  /// Plans one run of length n. `requested` != kAuto is honoured verbatim
  /// (the backend may still reject it as unsupported).
  Decision decide(std::size_t n, Method requested, bool rank) const;

  // Cost-model estimates behind the sim decision, exposed for tests and
  // benches (cycles on the configured processor count).
  double serial_cycles(std::size_t n, bool rank) const;
  double wyllie_cycles(std::size_t n, bool rank) const;
  double reid_miller_cycles(std::size_t n, bool rank) const;

 private:
  TuneResult tuned(double n, bool rank_kernels) const;

  BackendKind backend_;
  unsigned processors_;
  unsigned threads_;
  unsigned sublists_per_thread_;
  double pinned_m_;   ///< caller-pinned reid_miller.m (<= 0 = auto)
  double pinned_s1_;  ///< caller-pinned reid_miller.s1 (<= 0 = auto)
  double contention_;
  double sync_cycles_;
  vm::CostTable table_;
  /// tune() results memoized per (n, kernel family). Planner (like Engine)
  /// is not thread-safe; engines are cheap, use one per thread.
  mutable std::map<std::pair<double, bool>, TuneResult> tune_cache_;
};

// -- backend interface ------------------------------------------------------

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual BackendKind kind() const = 0;
  /// Executes the planned request into `result` (scan already sized).
  virtual Status execute(const Request& req, const Planner::Decision& plan,
                         Workspace& ws, RunResult& result) = 0;
  /// The simulated machine of the last run (sim backend only; null
  /// otherwise). Valid until the next execute().
  virtual const vm::Machine* machine() const { return nullptr; }
};

// -- engine -----------------------------------------------------------------

class Engine {
 public:
  explicit Engine(EngineOptions opt = {});
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  /// Exclusive list rank (number of predecessors per vertex).
  RunResult rank(const LinkedList& list, Method method = Method::kAuto);
  /// Exclusive list scan under `op`.
  RunResult scan(const LinkedList& list, ScanOp op = ScanOp::kPlus,
                 Method method = Method::kAuto);
  /// Runs one unified request.
  RunResult run(const Request& req);
  /// Runs a batch front to back on this engine's workspace; one result per
  /// request (failures are per-request, the batch never aborts).
  std::vector<RunResult> run_batch(std::span<const Request> requests);

  const EngineOptions& options() const { return opt_; }
  const Planner& planner() const { return planner_; }
  Workspace& workspace() { return ws_; }
  const Workspace& workspace() const { return ws_; }
  /// Simulated machine of the last run (sim backend only; null otherwise).
  /// For post-run introspection, e.g. per-kernel cycle breakdowns.
  const vm::Machine* sim_machine() const { return backend_->machine(); }

 private:
  EngineOptions opt_;
  Planner planner_;
  std::unique_ptr<ExecutionBackend> backend_;
  Workspace ws_;
};

}  // namespace lr90
