#include "core/experiment.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "baselines/serial.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"

namespace lr90 {

SimRun run_sim(Method method, std::size_t n, unsigned p, bool rank,
               std::uint64_t seed, const ReidMillerOptions& rm) {
  Rng rng(seed);
  const LinkedList list =
      random_list(n, rng, rank ? ValueInit::kOnes : ValueInit::kUniformSmall);

  SimOptions opt;
  opt.method = method;
  opt.processors = p;
  opt.seed = rng.next_u64();
  opt.reid_miller = rm;
  const SimResult result =
      rank ? sim_list_rank(list, opt) : sim_list_scan(list, opt);

  // Verify against the serial reference; a bench that lies is worthless.
  std::vector<value_t> expect(n, 0);
  serial_scan_host(list, std::span<value_t>(expect));
  if (result.scan != expect) {
    std::fprintf(stderr,
                 "run_sim: %s produced a wrong answer (n=%zu, p=%u)\n",
                 method_name(method), n, p);
    std::abort();
  }

  SimRun run;
  run.cycles = result.cycles;
  run.ns = result.ns;
  run.ns_per_vertex = result.ns_per_vertex;
  run.cycles_per_vertex =
      n > 0 ? result.cycles / static_cast<double>(n) : 0.0;
  run.stats = result.stats;
  return run;
}

}  // namespace lr90
