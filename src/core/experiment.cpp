#include "core/experiment.hpp"

#include <cstdio>

#include "lists/generators.hpp"

namespace lr90 {

SimRun run_sim(Method method, std::size_t n, unsigned p, bool rank,
               std::uint64_t seed, const ReidMillerOptions& rm) {
  Rng rng(seed);
  const LinkedList list =
      random_list(n, rng, rank ? ValueInit::kOnes : ValueInit::kUniformSmall);

  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  eo.processors = p;
  eo.seed = rng.next_u64();
  eo.reid_miller = rm;
  eo.verify_output = true;  // a bench that lies is worthless
  Engine engine(std::move(eo));

  Request req;
  req.list = &list;
  req.rank = rank;
  req.method = method;
  const RunResult result = engine.run(req);

  SimRun run;
  run.status = result.status;
  run.cycles = result.stats.sim_cycles;
  run.ns = result.stats.sim_ns;
  run.ns_per_vertex = result.stats.sim_ns_per_vertex;
  run.cycles_per_vertex =
      n > 0 ? result.stats.sim_cycles / static_cast<double>(n) : 0.0;
  run.stats = result.stats.algo;
  return run;
}

SimRun CheckedRunner::operator()(Method method, std::size_t n, unsigned p,
                                 bool rank, std::uint64_t seed,
                                 const ReidMillerOptions& rm) {
  SimRun run = run_sim(method, n, p, rank, seed, rm);
  if (!run.ok()) {
    std::fprintf(stderr, "run_sim: %s failed (n=%zu, p=%u): [%s] %s\n",
                 method_name(method), n, p,
                 status_code_name(run.status.code),
                 run.status.message.c_str());
    failed_ = true;
  }
  return run;
}

}  // namespace lr90
