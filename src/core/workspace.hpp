// Reusable per-engine scratch memory.
//
// The host execution path needs a handful of O(n) and O(k) scratch arrays
// (sublist boundary bitmap, heads/sums/tails, the head-ownership table).
// Allocating them per call dominates the cost of ranking short lists and
// fragments the heap under batched traffic, so an Engine owns one Workspace
// and every run re-fits the same buffers: capacity only ever grows, and a
// warmed-up workspace serves steady-state traffic with zero allocations.
//
// Two hot-path refinements live here as well:
//
//  * the packed slab -- the host kernels' single-gather representation
//    (lists/encode.hpp hot_pack): one 64-bit word per vertex fusing link,
//    value lane, and sublist-tail flag. Building it is one sequential O(n)
//    pass; the slab is cached under a content key so a batch of runs over
//    the same list (the serving layer's collapsed hot-key traffic) builds
//    it once. The cache is only trusted inside an Engine batch, where the
//    caller's thread is blocked inside run_batch and cannot mutate the
//    list behind the key's pointers.
//  * the epoch-stamped head-ownership table -- phase 2 needs owner_of_head
//    only at the k sublist heads, so refilling an O(n) array per run was
//    pure waste; a per-run epoch stamp makes stale entries invisible and
//    the per-run cost O(k).
//
// The counters make reuse observable: `allocations()` increments whenever a
// fit must grow a buffer, `reuse_hits()` whenever existing capacity was
// enough, `packed_builds()` whenever the packed slab is (re)built rather
// than served from cache. Tests assert that a batch of same-shaped requests
// stops allocating after the first one.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lists/encode.hpp"
#include "lists/linked_list.hpp"
#include "support/rng.hpp"

namespace lr90 {

/// An immutable, shareable copy of the packed hot-path artifacts: the
/// single-gather slab (lists/encode.hpp hot_pack words) plus the sublist
/// heads it was decomposed under. Exported from a Workspace after a build
/// (export_packed_slab) and installed into any Workspace before a run
/// (install_shared_slab), it lets a serving layer cache the dominant fixed
/// cost of the packed path -- the O(n) slab build -- across requests and
/// across workers. Holders share it by shared_ptr-to-const; the struct is
/// never mutated after export.
struct PackedSlab {
  std::vector<index_t> heads;   ///< sublist head vertices (decomposition)
  std::vector<packed_t> words;  ///< hot_pack word per vertex
  std::size_t n = 0;            ///< list length the slab was built from
  bool ones = false;            ///< value lane forced to 1 (ranking)

  /// Approximate resident footprint, for byte-budget cache accounting.
  std::size_t bytes() const {
    return heads.capacity() * sizeof(index_t) +
           words.capacity() * sizeof(packed_t) + sizeof(*this);
  }
};

/// Reusable per-engine scratch memory: capacity only grows, so a warmed-up
/// workspace serves steady-state traffic with zero allocations. Not
/// thread-safe -- each Engine (and each EngineServer worker) owns one.
class Workspace {
 public:
  // -- scratch buffers (backends wire these directly) --------------------
  std::vector<std::uint8_t> is_tail;      ///< by vertex: sublist tail flag
  std::vector<index_t> heads;             ///< sublist head vertices
  std::vector<index_t> tails;             ///< sublist tail vertices
  std::vector<index_t> picks;             ///< chosen boundary vertices
  std::vector<index_t> owner_of_head;     ///< by vertex: owning sublist id
  std::vector<value_t> sums;              ///< per-sublist inclusive sums
  std::vector<value_t> headscan;          ///< per-sublist exclusive scan
  std::vector<index_t> order;             ///< sublist ids in list order (ph 2)
  std::vector<value_t> block_sums;        ///< per-worker phase-2 block sums
  std::vector<value_t> verify;            ///< serial reference (verify_output)
  std::vector<packed_t> packed;           ///< hot-path single-gather slab
  LinkedList scratch_list;                ///< mutable copy of an input list

  /// RNG used for boundary picks; reseeded per run from the engine options
  /// so results do not depend on what ran before.
  Rng rng{kDefaultSeed};

  Workspace() = default;
  /// Workspaces move with their Engine (buffers transfer, counters copy).
  Workspace(Workspace&& other) noexcept
      : is_tail(std::move(other.is_tail)),
        heads(std::move(other.heads)),
        tails(std::move(other.tails)),
        picks(std::move(other.picks)),
        owner_of_head(std::move(other.owner_of_head)),
        sums(std::move(other.sums)),
        headscan(std::move(other.headscan)),
        order(std::move(other.order)),
        block_sums(std::move(other.block_sums)),
        verify(std::move(other.verify)),
        packed(std::move(other.packed)),
        scratch_list(std::move(other.scratch_list)),
        rng(other.rng),
        shared_slab_(std::move(other.shared_slab_)),
        owner_stamp_(std::move(other.owner_stamp_)),
        owner_epoch_(other.owner_epoch_),
        packed_key_(other.packed_key_),
        packed_live_(other.packed_live_),
        packed_trusted_(other.packed_trusted_),
        allocations_(other.allocations()),
        reuse_hits_(other.reuse_hits()),
        packed_builds_(other.packed_builds()) {}
  /// Move-assignment counterpart of the move constructor.
  Workspace& operator=(Workspace&& other) noexcept {
    is_tail = std::move(other.is_tail);
    heads = std::move(other.heads);
    tails = std::move(other.tails);
    picks = std::move(other.picks);
    owner_of_head = std::move(other.owner_of_head);
    sums = std::move(other.sums);
    headscan = std::move(other.headscan);
    order = std::move(other.order);
    block_sums = std::move(other.block_sums);
    verify = std::move(other.verify);
    packed = std::move(other.packed);
    scratch_list = std::move(other.scratch_list);
    rng = other.rng;
    shared_slab_ = std::move(other.shared_slab_);
    owner_stamp_ = std::move(other.owner_stamp_);
    owner_epoch_ = other.owner_epoch_;
    packed_key_ = other.packed_key_;
    packed_live_ = other.packed_live_;
    packed_trusted_ = other.packed_trusted_;
    allocations_.store(other.allocations(), std::memory_order_relaxed);
    reuse_hits_.store(other.reuse_hits(), std::memory_order_relaxed);
    packed_builds_.store(other.packed_builds(), std::memory_order_relaxed);
    return *this;
  }

  /// Buffer-growth events: a fit() that had to (re)allocate. The counters
  /// are atomic so a serving layer's telemetry can read them while the
  /// owning worker runs (the buffers themselves remain single-threaded).
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  /// Fits served entirely from existing capacity.
  std::uint64_t reuse_hits() const {
    return reuse_hits_.load(std::memory_order_relaxed);
  }
  /// Times the packed hot-path slab was (re)built; a batch of runs over
  /// the same list should count one.
  std::uint64_t packed_builds() const {
    return packed_builds_.load(std::memory_order_relaxed);
  }

  /// Zeroes all counters (buffers and their capacity are untouched), so a
  /// serving layer's stats reset can restart the allocation bookkeeping
  /// from a warmed state. Call at a quiescent point: concurrent fits on
  /// the owning thread may be lost from the new tallies.
  void reset_counters() {
    allocations_.store(0, std::memory_order_relaxed);
    reuse_hits_.store(0, std::memory_order_relaxed);
    packed_builds_.store(0, std::memory_order_relaxed);
  }

  /// Sizes `v` to n elements, all set to `init`, reusing capacity.
  template <class T>
  std::vector<T>& fit(std::vector<T>& v, std::size_t n, T init) {
    note(v.capacity() >= n);
    v.assign(n, init);
    return v;
  }

  /// Sizes `v` to n elements without initializing new content.
  template <class T>
  std::vector<T>& fit_uninit(std::vector<T>& v, std::size_t n) {
    note(v.capacity() >= n);
    v.clear();
    v.resize(n);
    return v;
  }

  // -- epoch-stamped head-ownership table --------------------------------

  /// Opens a fresh owner_of_head generation over `n` vertices: O(1) after
  /// the table first grows to n (the epoch bump invalidates every old
  /// entry), where a full refill would be O(n) per run.
  void owner_begin(std::size_t n) {
    note(owner_of_head.capacity() >= n && owner_stamp_.capacity() >= n);
    if (owner_of_head.size() < n) owner_of_head.resize(n);
    if (owner_stamp_.size() < n) owner_stamp_.resize(n, 0);
    if (++owner_epoch_ == 0) {  // wrapped: stamps from 2^32 runs ago could
      std::fill(owner_stamp_.begin(), owner_stamp_.end(), 0u);  // collide
      owner_epoch_ = 1;
    }
  }
  /// Records vertex `v` as the head of sublist `j` in the open generation.
  void owner_set(index_t v, index_t j) {
    owner_of_head[v] = j;
    owner_stamp_[v] = owner_epoch_;
  }
  /// The sublist owning head `v`, or kNoVertex if not set this generation.
  index_t owner_get(index_t v) const {
    return owner_stamp_[v] == owner_epoch_ ? owner_of_head[v] : kNoVertex;
  }

  // -- packed-slab cache -------------------------------------------------

  /// Identity of a packed slab: which arrays it was built from (by
  /// pointer: the cache is only trusted while the caller is blocked
  /// inside a batch and cannot mutate them), the sublist-boundary inputs
  /// (count and the RNG state the picks were drawn from), and whether
  /// values were overridden to ones (ranking).
  struct PackedKey {
    const void* next_data = nullptr;   ///< the list's link array
    const void* value_data = nullptr;  ///< the value array; null when `ones`
    std::size_t n = 0;                 ///< list length
    index_t head = kNoVertex;          ///< list head vertex
    std::size_t sublists = 0;  ///< boundary count the picks targeted
    bool ones = false;         ///< value lane forced to 1 (ranking)
    Rng rng_at_entry{0};       ///< draws repeat iff entry state matches

    /// Field-wise equality: same arrays, same boundary inputs.
    bool operator==(const PackedKey& o) const {
      return next_data == o.next_data && value_data == o.value_data &&
             n == o.n && head == o.head && sublists == o.sublists &&
             ones == o.ones && rng_at_entry == o.rng_at_entry;
    }
  };

  /// True iff the cached slab (and the ws.heads it was built with) was
  /// built under exactly `key` -- and the cache is currently trusted.
  /// Trust is granted only by Engine::run_batch (see
  /// set_packed_trusted): the key identifies arrays by pointer, which is
  /// only sound while the caller is provably unable to mutate them, so a
  /// direct host_exec caller never hits the cache.
  bool packed_cache_hit(const PackedKey& key) const {
    return packed_trusted_ && packed_live_ && packed_key_ == key;
  }
  /// Grants (or revokes) cache trust; only an Engine batch scope -- where
  /// the caller's thread is blocked and cannot mutate the keyed arrays --
  /// may grant it.
  void set_packed_trusted(bool trusted) { packed_trusted_ = trusted; }
  /// Marks the current slab + heads as built under `key`, and counts the
  /// build.
  void packed_cache_store(const PackedKey& key) {
    packed_key_ = key;
    packed_live_ = true;
    packed_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Drops the cached slab identity (the memory stays for reuse). Called
  /// outside batches -- where the caller could have mutated the list
  /// behind the key's pointers -- and whenever another path clobbers
  /// ws.heads.
  void invalidate_packed() { packed_live_ = false; }

  // -- shared (cross-request) slab -------------------------------------

  /// Installs an externally cached slab for the next run (null clears).
  /// The hot path uses it -- skipping boundary choice and the slab build
  /// entirely -- when its (n, ones, head count) match the run's plan;
  /// a mismatch falls back to the normal build. The caller (the serving
  /// layer) guarantees the slab outlives the run and matches the list
  /// being ranked: slabs must only ever be keyed on immutable snapshots.
  void install_shared_slab(std::shared_ptr<const PackedSlab> slab) {
    shared_slab_ = std::move(slab);
  }
  /// The installed shared slab, or null. Read by the hot path per run.
  const PackedSlab* shared_slab() const { return shared_slab_.get(); }
  /// Copies the live packed slab + heads out as an immutable PackedSlab
  /// for a cross-request cache, or returns null when no slab is live.
  /// Copies -- rather than moves -- so the workspace keeps its warmed
  /// capacity and steady state stays allocation-free.
  std::shared_ptr<const PackedSlab> export_packed_slab(bool ones) const {
    if (!packed_live_) return nullptr;
    auto slab = std::make_shared<PackedSlab>();
    slab->heads = heads;
    slab->words = packed;
    slab->n = packed.size();
    slab->ones = ones;
    return slab;
  }

  /// Copies `src` into the scratch list, reusing its capacity. Algorithms
  /// that mutate their input (the simulated Reid-Miller path) run on this
  /// copy so the caller's list stays const without a per-call allocation.
  LinkedList& fit_list(const LinkedList& src) {
    note(scratch_list.next.capacity() >= src.next.size() &&
         scratch_list.value.capacity() >= src.value.size());
    scratch_list.next = src.next;
    scratch_list.value = src.value;
    scratch_list.head = src.head;
    scratch_list.tail = src.tail;
    return scratch_list;
  }

  /// Copies `src`'s structure with every value forced to one (list ranking
  /// as a scan of all-ones), reusing capacity.
  LinkedList& fit_ones(const LinkedList& src) {
    note(scratch_list.next.capacity() >= src.next.size() &&
         scratch_list.value.capacity() >= src.next.size());
    scratch_list.next = src.next;
    scratch_list.value.assign(src.next.size(), 1);
    scratch_list.head = src.head;
    scratch_list.tail = src.tail;
    return scratch_list;
  }

  /// Releases all held memory (counters are kept).
  void release() {
    is_tail = {};
    heads = {};
    tails = {};
    picks = {};
    owner_of_head = {};
    sums = {};
    headscan = {};
    order = {};
    block_sums = {};
    verify = {};
    packed = {};
    scratch_list = {};
    shared_slab_ = nullptr;
    owner_stamp_ = {};
    owner_epoch_ = 0;
    packed_live_ = false;
    packed_trusted_ = false;
  }

 private:
  void note(bool fits) {
    if (fits) {
      reuse_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<const PackedSlab> shared_slab_;  ///< cross-request slab
  std::vector<std::uint32_t> owner_stamp_;  ///< owner_of_head generations
  std::uint32_t owner_epoch_ = 0;           ///< current generation
  PackedKey packed_key_;                    ///< identity of `packed`
  bool packed_live_ = false;                ///< packed_key_ is meaningful
  bool packed_trusted_ = false;             ///< an Engine batch is active
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> reuse_hits_{0};
  std::atomic<std::uint64_t> packed_builds_{0};
};

}  // namespace lr90
