// Reusable per-engine scratch memory.
//
// The host execution path needs a handful of O(n) and O(k) scratch arrays
// (sublist boundary bitmap, heads/sums/tails, the head-ownership table).
// Allocating them per call dominates the cost of ranking short lists and
// fragments the heap under batched traffic, so an Engine owns one Workspace
// and every run re-fits the same buffers: capacity only ever grows, and a
// warmed-up workspace serves steady-state traffic with zero allocations.
//
// The counters make reuse observable: `allocations()` increments whenever a
// fit must grow a buffer, `reuse_hits()` whenever existing capacity was
// enough. Tests assert that a batch of same-shaped requests stops
// allocating after the first one.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "lists/linked_list.hpp"
#include "support/rng.hpp"

namespace lr90 {

/// Reusable per-engine scratch memory: capacity only grows, so a warmed-up
/// workspace serves steady-state traffic with zero allocations. Not
/// thread-safe -- each Engine (and each EngineServer worker) owns one.
class Workspace {
 public:
  // -- scratch buffers (backends wire these directly) --------------------
  std::vector<std::uint8_t> is_tail;      ///< by vertex: sublist tail flag
  std::vector<index_t> heads;             ///< sublist head vertices
  std::vector<index_t> tails;             ///< sublist tail vertices
  std::vector<index_t> picks;             ///< chosen boundary vertices
  std::vector<index_t> owner_of_head;     ///< by vertex: owning sublist id
  std::vector<value_t> sums;              ///< per-sublist inclusive sums
  std::vector<value_t> headscan;          ///< per-sublist exclusive scan
  std::vector<value_t> verify;            ///< serial reference (verify_output)
  LinkedList scratch_list;                ///< mutable copy of an input list

  /// RNG used for boundary picks; reseeded per run from the engine options
  /// so results do not depend on what ran before.
  Rng rng{kDefaultSeed};

  Workspace() = default;
  /// Workspaces move with their Engine (buffers transfer, counters copy).
  Workspace(Workspace&& other) noexcept
      : is_tail(std::move(other.is_tail)),
        heads(std::move(other.heads)),
        tails(std::move(other.tails)),
        picks(std::move(other.picks)),
        owner_of_head(std::move(other.owner_of_head)),
        sums(std::move(other.sums)),
        headscan(std::move(other.headscan)),
        verify(std::move(other.verify)),
        scratch_list(std::move(other.scratch_list)),
        rng(other.rng),
        allocations_(other.allocations()),
        reuse_hits_(other.reuse_hits()) {}
  /// Move-assignment counterpart of the move constructor.
  Workspace& operator=(Workspace&& other) noexcept {
    is_tail = std::move(other.is_tail);
    heads = std::move(other.heads);
    tails = std::move(other.tails);
    picks = std::move(other.picks);
    owner_of_head = std::move(other.owner_of_head);
    sums = std::move(other.sums);
    headscan = std::move(other.headscan);
    verify = std::move(other.verify);
    scratch_list = std::move(other.scratch_list);
    rng = other.rng;
    allocations_.store(other.allocations(), std::memory_order_relaxed);
    reuse_hits_.store(other.reuse_hits(), std::memory_order_relaxed);
    return *this;
  }

  /// Buffer-growth events: a fit() that had to (re)allocate. The counters
  /// are atomic so a serving layer's telemetry can read them while the
  /// owning worker runs (the buffers themselves remain single-threaded).
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  /// Fits served entirely from existing capacity.
  std::uint64_t reuse_hits() const {
    return reuse_hits_.load(std::memory_order_relaxed);
  }

  /// Zeroes both counters (buffers and their capacity are untouched), so a
  /// serving layer's stats reset can restart the allocation bookkeeping
  /// from a warmed state. Call at a quiescent point: concurrent fits on
  /// the owning thread may be lost from the new tallies.
  void reset_counters() {
    allocations_.store(0, std::memory_order_relaxed);
    reuse_hits_.store(0, std::memory_order_relaxed);
  }

  /// Sizes `v` to n elements, all set to `init`, reusing capacity.
  template <class T>
  std::vector<T>& fit(std::vector<T>& v, std::size_t n, T init) {
    note(v.capacity() >= n);
    v.assign(n, init);
    return v;
  }

  /// Sizes `v` to n elements without initializing new content.
  template <class T>
  std::vector<T>& fit_uninit(std::vector<T>& v, std::size_t n) {
    note(v.capacity() >= n);
    v.clear();
    v.resize(n);
    return v;
  }

  /// Copies `src` into the scratch list, reusing its capacity. Algorithms
  /// that mutate their input (the simulated Reid-Miller path) run on this
  /// copy so the caller's list stays const without a per-call allocation.
  LinkedList& fit_list(const LinkedList& src) {
    note(scratch_list.next.capacity() >= src.next.size() &&
         scratch_list.value.capacity() >= src.value.size());
    scratch_list.next = src.next;
    scratch_list.value = src.value;
    scratch_list.head = src.head;
    return scratch_list;
  }

  /// Copies `src`'s structure with every value forced to one (list ranking
  /// as a scan of all-ones), reusing capacity.
  LinkedList& fit_ones(const LinkedList& src) {
    note(scratch_list.next.capacity() >= src.next.size() &&
         scratch_list.value.capacity() >= src.next.size());
    scratch_list.next = src.next;
    scratch_list.value.assign(src.next.size(), 1);
    scratch_list.head = src.head;
    return scratch_list;
  }

  /// Releases all held memory (counters are kept).
  void release() {
    is_tail = {};
    heads = {};
    tails = {};
    picks = {};
    owner_of_head = {};
    sums = {};
    headscan = {};
    verify = {};
    scratch_list = {};
  }

 private:
  void note(bool fits) {
    if (fits) {
      reuse_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> reuse_hits_{0};
};

}  // namespace lr90
