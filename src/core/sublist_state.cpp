#include "core/sublist_state.hpp"

#include <cassert>

namespace lr90 {

SublistSetup init_sublists(vm::Machine& machine, const LinkedList& list,
                           std::size_t m, Rng& rng,
                           std::span<value_t> board, index_t tail_hint) {
  const std::size_t n = list.size();
  assert(n >= 1);
  assert(board.size() == n);

  SublistSetup setup;
  setup.global_tail = tail_hint != kNoVertex ? tail_hint : list.find_tail();
  assert(setup.global_tail != kNoVertex);
  assert(list.next[setup.global_tail] == setup.global_tail);

  // Draw the m random positions (vectorized PRNG). The virtual processors
  // are divided over the physical processors, so all initialization
  // vector work is charged in parallel chunks.
  const unsigned p = machine.processors();
  std::vector<index_t> picks(m);
  for (auto& r : picks) r = static_cast<index_t>(rng.uniform(n));

  // Competition: write own index, read back, keep the winners. The global
  // tail is additionally excluded (its successor is itself).
  constexpr value_t kFree = -1;
  for (const index_t r : picks) board[r] = kFree;
  for (std::size_t j = 0; j < m; ++j)
    board[picks[j]] = static_cast<value_t>(j);
  for (unsigned t = 0; t < p; ++t) {
    const std::size_t chunk = m * (t + 1) / p - m * t / p;
    machine.charge(t, machine.costs().coin, chunk);
    machine.charge(t, machine.costs().scatter, chunk);
    machine.charge(t, machine.costs().gather, chunk);
  }

  setup.R.reserve(m + 1);
  setup.H.reserve(m + 1);
  setup.R.push_back(kNoVertex);  // P0
  setup.H.push_back(list.head);
  for (std::size_t j = 0; j < m; ++j) {
    const index_t r = picks[j];
    if (board[r] != static_cast<value_t>(j)) continue;  // lost competition
    if (r == setup.global_tail) continue;               // degenerate pick
    setup.R.push_back(r);
    setup.H.push_back(list.next[r]);  // gathered before any self-loops
  }
  const std::size_t k1 = setup.count();
  for (unsigned t = 0; t < p; ++t) {  // H gather, chunked
    machine.charge(t, machine.costs().gather,
                   k1 * (t + 1) / p - k1 * t / p);
  }

  return setup;
}

}  // namespace lr90
