// lr90::KernelTier -- the host kernel-family axis of the public API.
//
// Lives in its own header (included and re-exported by core/engine.hpp,
// where the rest of the Engine API is declared) so the execution kernel
// layer (core/host_exec.hpp) can name tiers without depending on the
// Engine facade.
#pragma once

namespace lr90 {

/// Which host traversal kernel family serves the hot phases (1 + 3) --
/// the first-class successor of the implicit "interleave == 0 means
/// legacy, host_packed bool, lane-capability fallback" contract that used
/// to be scattered across Engine/Planner/RunStats. The Planner resolves
/// kAuto per run; Planner::Decision::tier and RunStats::kernel_tier
/// report what was planned and what actually ran (a run can downgrade: a
/// value missing the 32-bit lane drops kPackedCursors/kSimdGather to
/// kLegacy, and kSimdGather drops to kPackedCursors on CPUs without
/// usable AVX2 -- typed fallbacks, never a wrong answer).
enum class KernelTier {
  kAuto,           ///< Planner's pick from the cost model + CPUID
  kLegacy,         ///< unpacked single-cursor kernels (the seed behaviour)
  kPackedCursors,  ///< packed slab + W scalar prefetching cursors (PR 4/5)
  kSimdGather,     ///< packed slab + AVX2 vector gather (VL=64's literal analog)
};

/// Short stable name of `t` ("auto", "legacy", "packed-cursors",
/// "simd-gather") for tables/CLIs/STATS text.
inline constexpr const char* kernel_tier_name(KernelTier t) {
  switch (t) {
    case KernelTier::kAuto: return "auto";
    case KernelTier::kLegacy: return "legacy";
    case KernelTier::kPackedCursors: return "packed-cursors";
    case KernelTier::kSimdGather: return "simd-gather";
  }
  return "?";
}

}  // namespace lr90
