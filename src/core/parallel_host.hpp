// Legacy host entry points -- thin shims over the host execution kernel
// (core/host_exec.hpp), which is what lr90::Engine's HostBackend runs.
//
// host_list_scan / host_list_rank keep their original one-call contract:
// build a plan from HostOptions, run the three-phase sublist scan on a
// local workspace, return the result vector. Every call pays the scratch
// allocations that an Engine amortizes across runs; batched or repeated
// callers should construct an Engine with BackendKind::kHost instead.
//
// The template entry point remains the way to scan under a custom operator
// type (the Engine's runtime ScanOp covers every registered operator in
// lists/ops.hpp: plus/min/max/xor and the packed seg-sum/affine/max-plus).
#pragma once

#include <vector>

#include "core/host_exec.hpp"
#include "core/workspace.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"

namespace lr90 {

struct HostOptions {
  /// Worker threads; 0 = the OpenMP default, or the hardware thread
  /// count on OpenMP-less builds (host_exec fans out over std::thread).
  unsigned threads = 0;
  /// Sublists per thread; the total sublist count is threads * per_thread
  /// (capped at n/2). More sublists = better balance, more overhead.
  unsigned sublists_per_thread = 64;
  std::uint64_t seed = kDefaultSeed;
};

/// Exclusive list scan on the host. Generic over the operator.
///
/// Deprecated: construct an Engine (core/engine.hpp) with
/// BackendKind::kHost and call Engine::run(ScanRequest{...}) -- the
/// runtime ScanOp covers every registered operator, the Engine amortizes
/// the scratch this shim reallocates per call, and only the Engine path
/// can plan the SIMD gather tier.
template <ListOp Op = OpPlus>
[[deprecated("use lr90::Engine::run with BackendKind::kHost (core/engine.hpp)")]]
std::vector<value_t> host_list_scan(const LinkedList& list, Op op = {},
                                    const HostOptions& opt = {}) {
  std::vector<value_t> out(list.size(), Op::identity());
  Workspace ws;
  ws.rng = Rng(opt.seed);
  host_exec::HostPlan plan;
  plan.threads = host_exec::effective_threads(opt.threads);
  plan.sublists = static_cast<std::size_t>(plan.threads) *
                  std::max(1u, opt.sublists_per_thread);
  host_exec::scan_into(list, op, plan, ws, std::span<value_t>(out));
  return out;
}

/// Exclusive list rank on the host.
///
/// Deprecated: use Engine::run(RankRequest{...}) on BackendKind::kHost.
[[deprecated("use lr90::Engine::run with BackendKind::kHost (core/engine.hpp)")]]
std::vector<value_t> host_list_rank(const LinkedList& list,
                                    const HostOptions& opt = {});

}  // namespace lr90
