// Portable host execution of the Reid-Miller algorithm (real wall clock,
// OpenMP threads when available).
//
// This is the "production" path a downstream user calls to rank real lists
// on real hardware. It is the same three-phase algorithm as the simulated
// version -- random sublists, reduced-list scan, final expansion -- but
// implemented non-destructively: sublist boundaries live in a bitmap
// instead of planted self-loops, so the input list is shared read-only
// across threads and no restoration pass is needed.
//
// Threads each own a contiguous block of sublists (the paper's "assign
// virtual processors to physical processors once, load balance only
// locally"); OpenMP dynamic scheduling within the block plays the role of
// the vector load balancing.
#pragma once

#include <vector>

#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"

namespace lr90 {

struct HostOptions {
  /// Worker threads; 0 = OpenMP default (or 1 without OpenMP).
  unsigned threads = 0;
  /// Sublists per thread; the total sublist count is threads * per_thread
  /// (capped at n/2). More sublists = better balance, more overhead.
  unsigned sublists_per_thread = 64;
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Exclusive list scan on the host. Generic over the operator.
template <class Op = OpPlus>
std::vector<value_t> host_list_scan(const LinkedList& list, Op op = {},
                                    const HostOptions& opt = {});

/// Exclusive list rank on the host.
std::vector<value_t> host_list_rank(const LinkedList& list,
                                    const HostOptions& opt = {});

// -- implementation ------------------------------------------------------

namespace host_detail {
unsigned effective_threads(unsigned requested);

/// Chooses boundary vertices (sublist tails): `count` distinct non-tail
/// picks plus the global tail, returned as a bitmap plus the pick list.
struct Boundaries {
  std::vector<std::uint8_t> is_tail;  // by vertex
  std::vector<index_t> picks;         // excludes the global tail
  index_t global_tail;
};
Boundaries choose_boundaries(const LinkedList& list, std::size_t count,
                             Rng& rng);
}  // namespace host_detail

/// Serial fallback used when parallelism cannot pay off.
template <class Op>
void serial_scan_fallback(const LinkedList& list, std::vector<value_t>& out,
                          Op op) {
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
}

template <class Op>
std::vector<value_t> host_list_scan(const LinkedList& list, Op op,
                                    const HostOptions& opt) {
  const std::size_t n = list.size();
  std::vector<value_t> out(n, Op::identity());
  if (n == 0) return out;
  if (n == 1) {
    out[list.head] = Op::identity();
    return out;
  }

  const unsigned threads = host_detail::effective_threads(opt.threads);
  std::size_t want = static_cast<std::size_t>(threads) *
                     std::max(1u, opt.sublists_per_thread);
  want = std::min(want, n / 2);
  Rng rng(opt.seed);

  if (threads == 1 || want < 2) {
    serial_scan_fallback(list, out, op);
    return out;
  }

  const host_detail::Boundaries b =
      host_detail::choose_boundaries(list, want, rng);

  // Sublist heads: the whole-list head plus each pick's successor. A pick
  // whose successor is itself a tail yields a single-vertex sublist.
  std::vector<index_t> heads;
  heads.reserve(b.picks.size() + 1);
  heads.push_back(list.head);
  for (const index_t r : b.picks) heads.push_back(list.next[r]);
  const std::size_t k = heads.size();

  // Phase 1: per-sublist inclusive sums; record each sublist's tail.
  std::vector<value_t> sums(k, Op::identity());
  std::vector<index_t> tails(k, kNoVertex);
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(threads)
#endif
  for (std::size_t j = 0; j < k; ++j) {
    index_t v = heads[j];
    value_t acc = Op::identity();
    while (true) {
      acc = op(acc, list.value[v]);
      if (b.is_tail[v]) break;
      v = list.next[v];
    }
    sums[j] = acc;
    tails[j] = v;
  }

  // Phase 2 (serial; k is tiny): order the sublists by chaining
  // tail -> successor head, then exclusive-scan their sums.
  std::vector<index_t> owner_of_head(n, kNoVertex);
  for (std::size_t j = 0; j < k; ++j) owner_of_head[heads[j]] =
      static_cast<index_t>(j);
  std::vector<value_t> headscan(k, Op::identity());
  {
    value_t acc = Op::identity();
    std::size_t j = 0;  // the first sublist starts at the list head
    for (std::size_t seen = 0; seen < k; ++seen) {
      headscan[j] = acc;
      acc = op(acc, sums[j]);
      const index_t t = tails[j];
      if (t == b.global_tail) break;
      const index_t nh = list.next[t];
      j = owner_of_head[nh];
    }
  }

  // Phase 3: expand each sublist from its head's scan value.
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(threads)
#endif
  for (std::size_t j = 0; j < k; ++j) {
    index_t v = heads[j];
    value_t acc = headscan[j];
    while (true) {
      out[v] = acc;
      acc = op(acc, list.value[v]);
      if (b.is_tail[v]) break;
      v = list.next[v];
    }
  }
  return out;
}

}  // namespace lr90
