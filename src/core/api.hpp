// Legacy public API of the listrank90 library -- thin shims over
// lr90::Engine (core/engine.hpp).
//
// Historically the library exposed two disjoint entry-point families:
//
//  * sim_list_rank / sim_list_scan (this header) -- run a chosen algorithm
//    on the simulated Cray C90 and report the simulated cost;
//  * host_list_rank / host_list_scan (core/parallel_host.hpp) -- portable
//    execution on the real host, parallelized with OpenMP when available.
//
// Both families now delegate to the Engine: these wrappers build a
// one-shot sim-backend Engine, translate SimOptions/SimResult, and keep
// the original contracts -- including Method::kAuto resolving by the
// legacy fixed thresholds (resolve_auto) rather than the Engine's
// cost-model Planner, and errors surfacing as std::invalid_argument
// throws rather than typed Status values. New code should construct an
// Engine directly: it unifies both backends, batches, and reuses its
// workspace across calls.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "core/engine.hpp"
#include "core/reid_miller.hpp"
#include "lists/linked_list.hpp"
#include "vm/machine.hpp"

namespace lr90 {

struct SimOptions {
  Method method = Method::kAuto;
  unsigned processors = 1;
  std::uint64_t seed = kDefaultSeed;
  vm::MachineConfig machine;     ///< processors field is overridden
  ReidMillerOptions reid_miller;
  /// When true, run the O(n) structural validator on the input first and
  /// throw std::invalid_argument (with the violation) on malformed lists.
  /// Off by default: the algorithms' preconditions are documented, and
  /// validation costs a full serial pass.
  bool validate_input = false;
};

struct SimResult {
  std::vector<value_t> scan;  ///< exclusive scan/rank per vertex index
  AlgoStats stats;
  Method method_used = Method::kAuto;
  double cycles = 0.0;         ///< simulated machine cycles
  double ns = 0.0;             ///< simulated wall time
  double ns_per_vertex = 0.0;
  vm::OpCounters ops;
};

/// List ranking on the simulated machine.
///
/// Deprecated: construct an Engine (core/engine.hpp) with
/// BackendKind::kSim and call Engine::run(RankRequest{...}) -- the Engine
/// amortizes planning and scratch across runs and reports the unified
/// RunStats (including the resolved kernel tier on the host backend).
[[deprecated("use lr90::Engine::run with BackendKind::kSim (core/engine.hpp)")]]
SimResult sim_list_rank(const LinkedList& list, const SimOptions& opt = {});

/// List scan (integer addition) on the simulated machine.
///
/// Deprecated: use Engine::run(ScanRequest{...}) on BackendKind::kSim.
[[deprecated("use lr90::Engine::run with BackendKind::kSim (core/engine.hpp)")]]
SimResult sim_list_scan(const LinkedList& list, const SimOptions& opt = {});

}  // namespace lr90
