// Public API of the listrank90 library.
//
// Two families of entry points:
//
//  * sim_list_rank / sim_list_scan -- run a chosen algorithm on the
//    simulated Cray C90 (vm::Machine) and report both the answer and the
//    simulated cost. This is what the paper's experiments use.
//  * host_list_rank / host_list_scan (core/parallel_host.hpp) -- portable
//    execution on the real host, parallelized with OpenMP when available.
//
// Method::kAuto picks the fastest algorithm for the list length the way
// the paper does for Phase 2 (Fig. 1): serial for short lists, Wyllie for
// moderate ones, Reid-Miller beyond the crossover (~1000 vertices).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/algo_stats.hpp"
#include "core/reid_miller.hpp"
#include "lists/linked_list.hpp"
#include "vm/machine.hpp"

namespace lr90 {

enum class Method {
  kAuto,
  kSerial,
  kWyllie,
  kMillerReif,
  kAndersonMiller,
  kReidMiller,
  kReidMillerEncoded,  ///< rank only: the single-gather packed fast path
};

const char* method_name(Method m);

struct SimOptions {
  Method method = Method::kAuto;
  unsigned processors = 1;
  std::uint64_t seed = 0x5eed5eedULL;
  vm::MachineConfig machine;     ///< processors field is overridden
  ReidMillerOptions reid_miller;
  /// When true, run the O(n) structural validator on the input first and
  /// throw std::invalid_argument (with the violation) on malformed lists.
  /// Off by default: the algorithms' preconditions are documented, and
  /// validation costs a full serial pass.
  bool validate_input = false;
};

struct SimResult {
  std::vector<value_t> scan;  ///< exclusive scan/rank per vertex index
  AlgoStats stats;
  Method method_used = Method::kAuto;
  double cycles = 0.0;         ///< simulated machine cycles
  double ns = 0.0;             ///< simulated wall time
  double ns_per_vertex = 0.0;
  vm::OpCounters ops;
};

/// Thresholds for Method::kAuto (empirical crossovers, Fig. 1).
inline constexpr std::size_t kAutoSerialMax = 128;
inline constexpr std::size_t kAutoWyllieMax = 1024;
Method resolve_auto(std::size_t n, Method requested);

/// List ranking on the simulated machine.
SimResult sim_list_rank(const LinkedList& list, const SimOptions& opt = {});

/// List scan (integer addition) on the simulated machine.
SimResult sim_list_scan(const LinkedList& list, const SimOptions& opt = {});

}  // namespace lr90
