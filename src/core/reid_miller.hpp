// The paper's list-scan algorithm (Sections 2.5, 3, 4, 5).
//
// Phase 1: split the list at m random positions into k+1 independent
//          sublists; every virtual processor traverses its sublist
//          accumulating the operator, load balancing (packing away finished
//          lanes) at the schedule points S_1 < S_2 < ... derived from the
//          cost model (analysis/schedule.hpp).
// Phase 2: scan the reduced list of sublist sums -- serially when small,
//          with Wyllie when moderate, recursively when large.
// Phase 3: re-traverse every sublist turning its head's scan value into the
//          scan of each vertex, load balancing on the same schedule.
// Restore: put back the links and values the initialization destroyed
//          (sublist tails were self-looped and their values replaced by the
//          operator identity so the inner loops need no conditionals).
//
// Work is O(n) with a small constant (about two traversals of the list);
// time is O(n/p + (n/m) log m) for m < n/log n (Theorem 1).
//
// Multiprocessor execution (Section 5): the virtual processors are divided
// once into contiguous blocks, one per physical processor; each processor
// load balances locally and runs to completion independently, so the
// machine synchronizes only a constant number of times and never load
// balances across processors.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "analysis/schedule.hpp"
#include "analysis/tuner.hpp"
#include "baselines/algo_stats.hpp"
#include "baselines/serial.hpp"
#include "baselines/wyllie.hpp"
#include "core/sublist_state.hpp"
#include "lists/encode.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace lr90 {

/// Load-balancing policy, for ablation studies of the schedule design.
enum class ScheduleKind {
  kOptimal,  ///< Eq. 4 minimizer of the cost model (the paper's choice)
  kUniform,  ///< balance every fixed number of link steps
  kNone,     ///< never balance: traverse until every lane finishes
};

struct ReidMillerOptions {
  /// Number of random split positions m; 0 = auto-tune from n (Section 4.4).
  double m = 0;
  /// First balance interval S_1; 0 = auto-tune.
  double s1 = 0;
  /// Phase 2 uses the serial algorithm at or below this reduced-list size
  /// (the paper empirically found serial best for small lists, Fig. 1) ...
  std::size_t serial_threshold = 1024;
  /// ... Wyllie up to this size, and recursion beyond it.
  std::size_t wyllie_threshold = 32768;
  /// Generate balance points out to this multiple of the expected longest
  /// sublist (the schedule self-extends if lanes remain).
  double schedule_longest_factor = 1.0;
  /// Load-balancing policy (ablation knob; kOptimal reproduces the paper).
  ScheduleKind schedule = ScheduleKind::kOptimal;
  /// Interval for ScheduleKind::kUniform; 0 = the mean sublist length n/m.
  std::size_t uniform_interval = 0;
};

namespace detail {

/// Builds the list of balance points for the options; always non-empty and
/// strictly increasing.
std::vector<double> make_schedule(double n, double m, double s1,
                                  const CostConstants& k,
                                  const ReidMillerOptions& opt);

/// Extends an exhausted schedule so stragglers always have a next balance
/// point (doubles the previous gap).
inline double next_balance_point(std::vector<double>& s) {
  const double last = s.back();
  const double prev = s.size() >= 2 ? s[s.size() - 2] : 0.0;
  const double next = last + std::max(1.0, 2.0 * (last - prev));
  s.push_back(next);
  return next;
}

/// Per-physical-processor lane state for Phases 1 and 3: the ids of the
/// still-active virtual processors plus their cursor and accumulator,
/// packed together at every balance point.
struct Lanes {
  std::vector<std::uint32_t> vp;   // surviving virtual-processor ids
  std::vector<index_t> cur;        // current vertex
  std::vector<value_t> acc;        // running sum (P1) or scan value (P3)

  std::size_t size() const { return vp.size(); }
};

}  // namespace detail

/// Exclusive list scan with the Reid-Miller algorithm on the simulated
/// machine, using every configured processor. The list is modified during
/// the run and restored before returning. `tail_hint` may pass the global
/// tail if the caller knows it (kNoVertex = find it, uncharged, treating
/// the tail as part of the list representation).
template <ListOp Op = OpPlus>
AlgoStats reid_miller_scan(vm::Machine& machine, LinkedList& list,
                           std::span<value_t> out, Rng& rng, Op op = {},
                           ReidMillerOptions opt = {},
                           index_t tail_hint = kNoVertex) {
  AlgoStats stats;
  const std::size_t n = list.size();
  const double cycles_before = machine.max_cycles();
  if (n == 0) return stats;
  out[list.head] = Op::identity();
  if (n == 1) return stats;

  const auto& costs = machine.costs();
  const CostConstants kc = CostConstants::from(costs, /*rank=*/false);

  // -- parameters (tuned per processor count, Section 5) ----------------
  double m = opt.m;
  double s1 = opt.s1;
  if (m <= 0 || s1 <= 0) {
    const TuneResult tuned =
        tune(static_cast<double>(n), kc, machine.processors(),
             machine.config().contention_factor());
    if (m <= 0) m = tuned.m;
    if (s1 <= 0) s1 = tuned.s1;
  }
  m = std::clamp(m, 1.0, static_cast<double>(n - 1));

  // Tiny lists: the parallel machinery cannot pay for itself; the public
  // API normally routes these to the serial algorithm, but stay correct
  // here too.
  if (n <= 4) {
    serial_scan(machine, 0, list, out, op);
    stats = AlgoStats{};
    stats.rounds = 1;
    stats.link_steps = n;
    stats.sim_cycles = machine.max_cycles() - cycles_before;
    return stats;
  }

  std::vector<double> schedule =
      detail::make_schedule(static_cast<double>(n), m, s1, kc, opt);

  // -- initialization (T_Initialize) ------------------------------------
  SublistSetup setup =
      init_sublists(machine, list, static_cast<std::size_t>(m), rng, out,
                    tail_hint);
  const std::size_t k1 = setup.count();  // k+1 sublists
  const index_t gtail = setup.global_tail;

  // Save and neutralize the sublist tails: value <- identity, link <- self.
  // Afterward every traversal loop is branch-free (the paper's trick).
  std::vector<value_t> saved(k1, Op::identity());
  const value_t gsaved = list.value[gtail];
  list.value[gtail] = Op::identity();
  for (std::size_t j = 1; j < k1; ++j) {
    const index_t r = setup.R[j];
    saved[j] = list.value[r];
    list.value[r] = Op::identity();
    list.next[r] = r;
  }
  const unsigned p = machine.processors();
  for (unsigned t = 0; t < p; ++t) {
    machine.charge_kernel(t, vm::Kernel::kInitialize,
                          k1 * (t + 1) / p - k1 * t / p);
  }
  machine.synchronize();
  std::vector<value_t> fsum(k1, Op::identity());
  std::vector<index_t> ftail(k1, kNoVertex);

  auto vp_lo = [&](unsigned t) { return k1 * t / p; };

  // -- Phase 1: sublist sums (T_InitialScan / T_InitialPack) -------------
  for (unsigned t = 0; t < p; ++t) {
    detail::Lanes lanes;
    for (std::size_t j = vp_lo(t); j < vp_lo(t + 1); ++j) {
      lanes.vp.push_back(static_cast<std::uint32_t>(j));
      lanes.cur.push_back(setup.H[j]);
      lanes.acc.push_back(Op::identity());
    }
    std::vector<double> sched = schedule;  // private extension per proc
    double done_steps = 0.0;
    std::size_t si = 0;
    while (!lanes.vp.empty()) {
      if (si >= sched.size()) detail::next_balance_point(sched);
      const double target = sched[si++];
      const auto steps = static_cast<std::size_t>(target - done_steps);
      done_steps = target;
      const std::size_t x = lanes.size();
      for (std::size_t step = 0; step < steps; ++step) {
        for (std::size_t l = 0; l < x; ++l) {
          const index_t c = lanes.cur[l];
          lanes.acc[l] = op(lanes.acc[l], list.value[c]);
          lanes.cur[l] = list.next[c];
        }
        machine.charge_kernel(t, vm::Kernel::kInitialScanStep, x);
        stats.link_steps += x;
      }
      // Balance: record finished lanes (cursor parked on a self-loop) and
      // pack the rest.
      std::size_t keep = 0;
      for (std::size_t l = 0; l < x; ++l) {
        const index_t c = lanes.cur[l];
        if (list.next[c] == c) {
          ftail[lanes.vp[l]] = c;
          fsum[lanes.vp[l]] = lanes.acc[l];
        } else {
          lanes.vp[keep] = lanes.vp[l];
          lanes.cur[keep] = lanes.cur[l];
          lanes.acc[keep] = lanes.acc[l];
          ++keep;
        }
      }
      lanes.vp.resize(keep);
      lanes.cur.resize(keep);
      lanes.acc.resize(keep);
      machine.charge_kernel(t, vm::Kernel::kInitialPack, x);
      ++stats.rounds;
    }
  }
  machine.synchronize();

  // -- Reduced list of sublist sums (T_FindSublistList) ------------------
  // The output array moonlights as the communication board: plant a
  // sentinel at every sublist tail, then every vp j >= 1 writes j at its
  // pick R[j]; reading the board at your own tail names your successor.
  LinkedList red;
  red.next.resize(k1);
  red.value.resize(k1);
  red.head = 0;
  {
    constexpr value_t kSentinel = -1;
    for (std::size_t j = 0; j < k1; ++j) out[ftail[j]] = kSentinel;
    for (std::size_t j = 1; j < k1; ++j)
      out[setup.R[j]] = static_cast<value_t>(j);
    for (std::size_t j = 0; j < k1; ++j) {
      const value_t su = out[ftail[j]];
      if (su == kSentinel) {
        red.next[j] = static_cast<index_t>(j);  // tail sublist
        red.value[j] = op(fsum[j], gsaved);
      } else {
        red.next[j] = static_cast<index_t>(su);
        red.value[j] = op(fsum[j], saved[static_cast<std::size_t>(su)]);
      }
    }
    for (unsigned t = 0; t < p; ++t) {
      machine.charge_kernel(t, vm::Kernel::kFindSublistList,
                            vp_lo(t + 1) - vp_lo(t));
    }
  }
  machine.synchronize();

  // -- Phase 2: scan the reduced list ------------------------------------
  std::vector<value_t> headscan(k1, Op::identity());
  if (k1 <= opt.serial_threshold) {
    serial_scan(machine, 0, red, std::span<value_t>(headscan), op);
  } else if (k1 <= opt.wyllie_threshold) {
    wyllie_scan(machine, red, std::span<value_t>(headscan), op);
  } else {
    ReidMillerOptions rec = opt;
    rec.m = 0;  // re-tune for the reduced size
    rec.s1 = 0;
    Rng sub = rng.split();
    reid_miller_scan(machine, red, std::span<value_t>(headscan), sub, op,
                     rec);
  }
  machine.synchronize();

  // -- Phase 3: final scan of every sublist (T_FinalScan / T_FinalPack) --
  for (unsigned t = 0; t < p; ++t) {
    detail::Lanes lanes;
    for (std::size_t j = vp_lo(t); j < vp_lo(t + 1); ++j) {
      lanes.vp.push_back(static_cast<std::uint32_t>(j));
      lanes.cur.push_back(setup.H[j]);
      lanes.acc.push_back(headscan[j]);
    }
    std::vector<double> sched = schedule;
    double done_steps = 0.0;
    std::size_t si = 0;
    while (!lanes.vp.empty()) {
      if (si >= sched.size()) detail::next_balance_point(sched);
      const double target = sched[si++];
      const auto steps = static_cast<std::size_t>(target - done_steps);
      done_steps = target;
      const std::size_t x = lanes.size();
      for (std::size_t step = 0; step < steps; ++step) {
        for (std::size_t l = 0; l < x; ++l) {
          const index_t c = lanes.cur[l];
          out[c] = lanes.acc[l];
          lanes.acc[l] = op(lanes.acc[l], list.value[c]);
          lanes.cur[l] = list.next[c];
        }
        machine.charge_kernel(t, vm::Kernel::kFinalScanStep, x);
        stats.link_steps += x;
      }
      std::size_t keep = 0;
      for (std::size_t l = 0; l < x; ++l) {
        const index_t c = lanes.cur[l];
        if (list.next[c] == c) {
          out[c] = lanes.acc[l];  // park the tail's own scan value
        } else {
          lanes.vp[keep] = lanes.vp[l];
          lanes.cur[keep] = lanes.cur[l];
          lanes.acc[keep] = lanes.acc[l];
          ++keep;
        }
      }
      lanes.vp.resize(keep);
      lanes.cur.resize(keep);
      lanes.acc.resize(keep);
      machine.charge_kernel(t, vm::Kernel::kFinalPack, x);
      ++stats.rounds;
    }
  }
  machine.synchronize();

  // -- Restoration (T_RestoreList) ---------------------------------------
  list.value[gtail] = gsaved;
  for (std::size_t j = 1; j < k1; ++j) {
    const index_t r = setup.R[j];
    list.next[r] = setup.H[j];
    list.value[r] = saved[j];
  }
  for (unsigned t = 0; t < p; ++t) {
    machine.charge_kernel(t, vm::Kernel::kRestoreList,
                          vp_lo(t + 1) - vp_lo(t));
  }
  machine.synchronize();

  // R/H (setup) + saved/fsum/ftail/headscan + two lanes arrays live at
  // once: ~9 words per virtual processor, the paper's O(p) extra space.
  stats.extra_words = 9 * k1;
  stats.splices = k1;
  stats.sim_cycles = machine.max_cycles() - cycles_before;
  return stats;
}

/// List ranking via the scan path (values forced to one).
AlgoStats reid_miller_rank(vm::Machine& machine, LinkedList& list,
                           std::span<value_t> out, Rng& rng,
                           ReidMillerOptions opt = {},
                           index_t tail_hint = kNoVertex);

/// List ranking with the paper's single-gather encoding: operates on the
/// packed (link << 32 | value) representation, halving the gathers in the
/// dominant loops (kernels kInitialScanRankStep / kFinalScanRankStep).
/// `packed` is the encoded list (mutated and restored); `head` its head.
AlgoStats reid_miller_rank_encoded(vm::Machine& machine,
                                   std::vector<packed_t>& packed,
                                   index_t head, std::span<value_t> out,
                                   Rng& rng, ReidMillerOptions opt = {},
                                   index_t tail_hint = kNoVertex);

}  // namespace lr90
