#include "core/api.hpp"

#include <stdexcept>
#include <utility>

namespace lr90 {

namespace {

SimResult run(const LinkedList& list, const SimOptions& opt, bool rank) {
  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  eo.processors = opt.processors;
  eo.seed = opt.seed;
  eo.machine = opt.machine;
  eo.reid_miller = opt.reid_miller;
  eo.validate_input = opt.validate_input;
  Engine engine(std::move(eo));

  Request req;
  req.list = &list;
  req.rank = rank;
  // Legacy contract: kAuto resolves by the fixed Fig. 1 thresholds, not
  // the Engine's cost-model planner.
  req.method = resolve_auto(list.size(), opt.method);

  RunResult r = engine.run(req);
  if (!r.ok()) throw std::invalid_argument(r.status.message);

  SimResult out;
  out.scan = std::move(r.scan);
  out.stats = r.stats.algo;
  out.method_used = r.method_used;
  out.cycles = r.stats.sim_cycles;
  out.ns = r.stats.sim_ns;
  out.ns_per_vertex = r.stats.sim_ns_per_vertex;
  out.ops = r.stats.ops;
  return out;
}

}  // namespace

SimResult sim_list_rank(const LinkedList& list, const SimOptions& opt) {
  return run(list, opt, /*rank=*/true);
}

SimResult sim_list_scan(const LinkedList& list, const SimOptions& opt) {
  return run(list, opt, /*rank=*/false);
}

}  // namespace lr90
