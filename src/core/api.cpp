#include "core/api.hpp"

#include <cassert>
#include <stdexcept>

#include "baselines/anderson_miller.hpp"
#include "baselines/miller_reif.hpp"
#include "baselines/serial.hpp"
#include "baselines/wyllie.hpp"
#include "lists/encode.hpp"
#include "lists/validate.hpp"

namespace lr90 {

const char* method_name(Method m) {
  switch (m) {
    case Method::kAuto: return "auto";
    case Method::kSerial: return "serial";
    case Method::kWyllie: return "wyllie";
    case Method::kMillerReif: return "miller-reif";
    case Method::kAndersonMiller: return "anderson-miller";
    case Method::kReidMiller: return "reid-miller";
    case Method::kReidMillerEncoded: return "reid-miller-encoded";
  }
  return "?";
}

Method resolve_auto(std::size_t n, Method requested) {
  if (requested != Method::kAuto) return requested;
  if (n <= kAutoSerialMax) return Method::kSerial;
  if (n <= kAutoWyllieMax) return Method::kWyllie;
  return Method::kReidMiller;
}

namespace {

SimResult run(const LinkedList& input, const SimOptions& opt, bool rank) {
  if (opt.validate_input) {
    if (const auto err = validate_list(input)) {
      throw std::invalid_argument("invalid linked list: " + *err);
    }
  }
  SimResult result;
  const std::size_t n = input.size();
  result.scan.assign(n, 0);
  const Method method = resolve_auto(n, opt.method);
  result.method_used = method;

  vm::MachineConfig cfg = opt.machine;
  cfg.processors = opt.processors;
  vm::Machine machine(cfg);
  Rng rng(opt.seed);
  std::span<value_t> out(result.scan);

  // Algorithms that mutate the list work on a copy so the input stays
  // const for callers (the in-place + restore behaviour is still exercised
  // directly by tests and benches).
  switch (method) {
    case Method::kSerial:
      result.stats = rank ? serial_rank(machine, 0, input, out)
                          : serial_scan(machine, 0, input, out);
      break;
    case Method::kWyllie:
      result.stats = rank ? wyllie_rank(machine, input, out)
                          : wyllie_scan(machine, input, out);
      break;
    case Method::kMillerReif:
      if (rank) {
        result.stats = miller_reif_rank(machine, input, out, rng);
      } else {
        result.stats = miller_reif_scan(machine, input, out, rng);
      }
      break;
    case Method::kAndersonMiller:
      if (rank) {
        result.stats = anderson_miller_rank(machine, input, out, rng);
      } else {
        result.stats = anderson_miller_scan(machine, input, out, rng);
      }
      break;
    case Method::kReidMiller: {
      LinkedList copy = input;
      result.stats =
          rank ? reid_miller_rank(machine, copy, out, rng, opt.reid_miller)
               : reid_miller_scan(machine, copy, out, rng, OpPlus{},
                                  opt.reid_miller);
      break;
    }
    case Method::kReidMillerEncoded: {
      if (!rank) {
        throw std::invalid_argument(
            "the encoded single-gather path supports ranking only");
      }
      LinkedList ones = input;
      ones.value.assign(n, 1);
      if (!can_encode(ones)) {
        throw std::invalid_argument(
            "list too long for the (link,value) 64-bit encoding");
      }
      std::vector<packed_t> packed = encode_list(ones);
      result.stats = reid_miller_rank_encoded(machine, packed, input.head,
                                              out, rng);
      break;
    }
    case Method::kAuto:
      assert(false && "resolve_auto never returns kAuto");
      break;
  }

  result.cycles = machine.max_cycles();
  result.ns = machine.elapsed_ns();
  result.ns_per_vertex = n > 0 ? result.ns / static_cast<double>(n) : 0.0;
  result.ops = machine.ops();
  return result;
}

}  // namespace

SimResult sim_list_rank(const LinkedList& list, const SimOptions& opt) {
  return run(list, opt, /*rank=*/true);
}

SimResult sim_list_scan(const LinkedList& list, const SimOptions& opt) {
  return run(list, opt, /*rank=*/false);
}

}  // namespace lr90
