#include "core/reid_miller.hpp"

#include <cmath>

#include "analysis/sublist_stats.hpp"

namespace lr90 {

namespace detail {

std::vector<double> make_schedule(double n, double m, double s1,
                                  const CostConstants& k,
                                  const ReidMillerOptions& opt) {
  switch (opt.schedule) {
    case ScheduleKind::kOptimal:
      return balance_schedule_auto(n, m, s1, k, opt.schedule_longest_factor);
    case ScheduleKind::kUniform: {
      const double interval =
          opt.uniform_interval > 0
              ? static_cast<double>(opt.uniform_interval)
              : std::max(1.0, std::floor(n / m));
      const double until = expected_longest(n, m);
      std::vector<double> s;
      for (double x = interval; x < until + interval; x += interval)
        s.push_back(std::floor(x));
      return s;
    }
    case ScheduleKind::kNone:
      // One balance point past the expected longest sublist; stragglers
      // extend it. Nothing is packed until (almost) everything is done.
      return {std::ceil(expected_longest(n, m)) + 1.0};
  }
  return {1.0};
}

}  // namespace detail

AlgoStats reid_miller_rank(vm::Machine& machine, LinkedList& list,
                           std::span<value_t> out, Rng& rng,
                           ReidMillerOptions opt, index_t tail_hint) {
  // Ranking is the all-ones scan; values are temporarily replaced so the
  // caller's list is preserved bit-for-bit (the traversal kernels are the
  // generic two-gather ones; see reid_miller_rank_encoded for the paper's
  // single-gather specialization).
  std::vector<value_t> kept;
  kept.swap(list.value);
  list.value.assign(list.next.size(), 1);
  AlgoStats stats = reid_miller_scan(machine, list, out, rng, OpPlus{}, opt,
                                     tail_hint);
  list.value.swap(kept);
  return stats;
}

AlgoStats reid_miller_rank_encoded(vm::Machine& machine,
                                   std::vector<packed_t>& packed,
                                   index_t head, std::span<value_t> out,
                                   Rng& rng, ReidMillerOptions opt,
                                   index_t tail_hint) {
  AlgoStats stats;
  const std::size_t n = packed.size();
  const double cycles_before = machine.max_cycles();
  if (n == 0) return stats;
  out[head] = 0;
  if (n == 1) return stats;

  const auto& costs = machine.costs();
  const CostConstants kc = CostConstants::from(costs, /*rank=*/true);

  double m = opt.m;
  double s1 = opt.s1;
  if (m <= 0 || s1 <= 0) {
    const TuneResult tuned =
        tune(static_cast<double>(n), kc, machine.processors(),
             machine.config().contention_factor());
    if (m <= 0) m = tuned.m;
    if (s1 <= 0) s1 = tuned.s1;
  }
  m = std::clamp(m, 1.0, static_cast<double>(n - 1));

  if (n <= 4) {
    // Serial walk over the packed representation.
    value_t acc = 0;
    index_t v = head;
    while (true) {
      out[v] = acc;
      acc += static_cast<value_t>(packed_value(packed[v]));
      const index_t nx = packed_link(packed[v]);
      if (nx == v) break;
      v = nx;
    }
    machine.charge_scalar(0,
                          costs.serial_rank_per_vertex *
                                  static_cast<double>(n) +
                              costs.serial_startup,
                          n);
    stats.rounds = 1;
    stats.link_steps = n;
    stats.sim_cycles = machine.max_cycles() - cycles_before;
    return stats;
  }

  std::vector<double> schedule =
      detail::make_schedule(static_cast<double>(n), m, s1, kc, opt);

  // -- initialization ----------------------------------------------------
  index_t gtail = tail_hint;
  if (gtail == kNoVertex) {
    for (std::size_t v = 0; v < n; ++v) {
      if (packed_link(packed[v]) == static_cast<index_t>(v)) {
        gtail = static_cast<index_t>(v);
        break;
      }
    }
  }
  assert(gtail != kNoVertex);

  // Picks + competition (same protocol as init_sublists, on packed links).
  const auto mm = static_cast<std::size_t>(m);
  const unsigned p = machine.processors();
  std::vector<index_t> picks(mm);
  for (auto& r : picks) r = static_cast<index_t>(rng.uniform(n));
  constexpr value_t kFree = -1;
  for (const index_t r : picks) out[r] = kFree;
  for (std::size_t j = 0; j < mm; ++j)
    out[picks[j]] = static_cast<value_t>(j);
  for (unsigned t = 0; t < p; ++t) {
    const std::size_t chunk = mm * (t + 1) / p - mm * t / p;
    machine.charge(t, costs.coin, chunk);
    machine.charge(t, costs.scatter, chunk);
    machine.charge(t, costs.gather, chunk);
  }

  std::vector<index_t> R{kNoVertex}, H{head};
  std::vector<packed_t> saved{0};
  R.reserve(mm + 1);
  H.reserve(mm + 1);
  saved.reserve(mm + 1);
  for (std::size_t j = 0; j < mm; ++j) {
    const index_t r = picks[j];
    if (out[r] != static_cast<value_t>(j)) continue;
    if (r == gtail) continue;
    R.push_back(r);
    H.push_back(packed_link(packed[r]));
    saved.push_back(packed[r]);
  }
  const std::size_t k1 = R.size();
  const packed_t gsaved = packed[gtail];
  // Neutralize tails: self-loop link, zero value -- one word per tail.
  packed[gtail] = pack_link_value(gtail, 0);
  for (std::size_t j = 1; j < k1; ++j)
    packed[R[j]] = pack_link_value(R[j], 0);
  for (unsigned t = 0; t < p; ++t) {
    machine.charge_kernel(t, vm::Kernel::kInitialize,
                          k1 * (t + 1) / p - k1 * t / p);
  }
  machine.synchronize();

  std::vector<value_t> fsum(k1, 0);
  std::vector<index_t> ftail(k1, kNoVertex);
  auto vp_lo = [&](unsigned t) { return k1 * t / p; };

  // -- Phase 1 (single gather per link step) -----------------------------
  for (unsigned t = 0; t < p; ++t) {
    detail::Lanes lanes;
    for (std::size_t j = vp_lo(t); j < vp_lo(t + 1); ++j) {
      lanes.vp.push_back(static_cast<std::uint32_t>(j));
      lanes.cur.push_back(H[j]);
      lanes.acc.push_back(0);
    }
    std::vector<double> sched = schedule;
    double done_steps = 0.0;
    std::size_t si = 0;
    while (!lanes.vp.empty()) {
      if (si >= sched.size()) detail::next_balance_point(sched);
      const double target = sched[si++];
      const auto steps = static_cast<std::size_t>(target - done_steps);
      done_steps = target;
      const std::size_t x = lanes.size();
      for (std::size_t step = 0; step < steps; ++step) {
        for (std::size_t l = 0; l < x; ++l) {
          const packed_t w = packed[lanes.cur[l]];  // the single gather
          lanes.acc[l] += static_cast<value_t>(packed_value(w));
          lanes.cur[l] = packed_link(w);
        }
        machine.charge_kernel(t, vm::Kernel::kInitialScanRankStep, x);
        stats.link_steps += x;
      }
      std::size_t keep = 0;
      for (std::size_t l = 0; l < x; ++l) {
        const index_t c = lanes.cur[l];
        if (packed_link(packed[c]) == c) {
          ftail[lanes.vp[l]] = c;
          fsum[lanes.vp[l]] = lanes.acc[l];
        } else {
          lanes.vp[keep] = lanes.vp[l];
          lanes.cur[keep] = lanes.cur[l];
          lanes.acc[keep] = lanes.acc[l];
          ++keep;
        }
      }
      lanes.vp.resize(keep);
      lanes.cur.resize(keep);
      lanes.acc.resize(keep);
      machine.charge_kernel(t, vm::Kernel::kInitialPack, x);
      ++stats.rounds;
    }
  }
  machine.synchronize();

  // -- reduced list ------------------------------------------------------
  LinkedList red;
  red.next.resize(k1);
  red.value.resize(k1);
  red.head = 0;
  {
    constexpr value_t kSentinel = -1;
    for (std::size_t j = 0; j < k1; ++j) out[ftail[j]] = kSentinel;
    for (std::size_t j = 1; j < k1; ++j)
      out[R[j]] = static_cast<value_t>(j);
    for (std::size_t j = 0; j < k1; ++j) {
      const value_t su = out[ftail[j]];
      if (su == kSentinel) {
        red.next[j] = static_cast<index_t>(j);
        red.value[j] =
            fsum[j] + static_cast<value_t>(packed_value(gsaved));
      } else {
        red.next[j] = static_cast<index_t>(su);
        red.value[j] =
            fsum[j] + static_cast<value_t>(packed_value(
                          saved[static_cast<std::size_t>(su)]));
      }
    }
    for (unsigned t = 0; t < p; ++t) {
      machine.charge_kernel(t, vm::Kernel::kFindSublistList,
                            vp_lo(t + 1) - vp_lo(t));
    }
  }
  machine.synchronize();

  // -- Phase 2 -----------------------------------------------------------
  std::vector<value_t> headscan(k1, 0);
  if (k1 <= opt.serial_threshold) {
    serial_scan(machine, 0, red, std::span<value_t>(headscan), OpPlus{});
  } else if (k1 <= opt.wyllie_threshold) {
    wyllie_scan(machine, red, std::span<value_t>(headscan), OpPlus{});
  } else {
    ReidMillerOptions rec = opt;
    rec.m = 0;
    rec.s1 = 0;
    Rng sub = rng.split();
    reid_miller_scan(machine, red, std::span<value_t>(headscan), sub,
                     OpPlus{}, rec);
  }
  machine.synchronize();

  // -- Phase 3 (single gather per link step) -----------------------------
  for (unsigned t = 0; t < p; ++t) {
    detail::Lanes lanes;
    for (std::size_t j = vp_lo(t); j < vp_lo(t + 1); ++j) {
      lanes.vp.push_back(static_cast<std::uint32_t>(j));
      lanes.cur.push_back(H[j]);
      lanes.acc.push_back(headscan[j]);
    }
    std::vector<double> sched = schedule;
    double done_steps = 0.0;
    std::size_t si = 0;
    while (!lanes.vp.empty()) {
      if (si >= sched.size()) detail::next_balance_point(sched);
      const double target = sched[si++];
      const auto steps = static_cast<std::size_t>(target - done_steps);
      done_steps = target;
      const std::size_t x = lanes.size();
      for (std::size_t step = 0; step < steps; ++step) {
        for (std::size_t l = 0; l < x; ++l) {
          const index_t c = lanes.cur[l];
          const packed_t w = packed[c];
          out[c] = lanes.acc[l];
          lanes.acc[l] += static_cast<value_t>(packed_value(w));
          lanes.cur[l] = packed_link(w);
        }
        machine.charge_kernel(t, vm::Kernel::kFinalScanRankStep, x);
        stats.link_steps += x;
      }
      std::size_t keep = 0;
      for (std::size_t l = 0; l < x; ++l) {
        const index_t c = lanes.cur[l];
        if (packed_link(packed[c]) == c) {
          out[c] = lanes.acc[l];
        } else {
          lanes.vp[keep] = lanes.vp[l];
          lanes.cur[keep] = lanes.cur[l];
          lanes.acc[keep] = lanes.acc[l];
          ++keep;
        }
      }
      lanes.vp.resize(keep);
      lanes.cur.resize(keep);
      lanes.acc.resize(keep);
      machine.charge_kernel(t, vm::Kernel::kFinalPack, x);
      ++stats.rounds;
    }
  }
  machine.synchronize();

  // -- restore -----------------------------------------------------------
  packed[gtail] = gsaved;
  for (std::size_t j = 1; j < k1; ++j) packed[R[j]] = saved[j];
  for (unsigned t = 0; t < p; ++t) {
    machine.charge_kernel(t, vm::Kernel::kRestoreList,
                          vp_lo(t + 1) - vp_lo(t));
  }
  machine.synchronize();

  stats.extra_words = 9 * k1;
  stats.splices = k1;
  stats.sim_cycles = machine.max_cycles() - cycles_before;
  return stats;
}

}  // namespace lr90
