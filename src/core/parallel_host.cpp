#include "core/parallel_host.hpp"

#include <algorithm>

#if defined(LISTRANK90_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lr90 {

namespace host_detail {

unsigned effective_threads(unsigned requested) {
  if (requested > 0) return requested;
#if defined(LISTRANK90_HAVE_OPENMP)
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

Boundaries choose_boundaries(const LinkedList& list, std::size_t count,
                             Rng& rng) {
  const std::size_t n = list.size();
  Boundaries b;
  b.is_tail.assign(n, 0);
  b.global_tail = list.find_tail();
  b.is_tail[b.global_tail] = 1;
  std::vector<std::uint32_t> sample = rng.sample_distinct(
      static_cast<std::uint32_t>(std::min(count, n - 1)),
      static_cast<std::uint32_t>(n));
  b.picks.reserve(sample.size());
  for (const std::uint32_t r : sample) {
    if (r == b.global_tail) continue;  // degenerate pick, drop it
    b.is_tail[r] = 1;
    b.picks.push_back(static_cast<index_t>(r));
  }
  return b;
}

}  // namespace host_detail

std::vector<value_t> host_list_rank(const LinkedList& list,
                                    const HostOptions& opt) {
  LinkedList ones;
  ones.next = list.next;
  ones.head = list.head;
  ones.value.assign(list.size(), 1);
  return host_list_scan(ones, OpPlus{}, opt);
}

}  // namespace lr90
