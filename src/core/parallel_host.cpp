#include "core/parallel_host.hpp"

// The shim is allowed to call its sibling shim without tripping its own
// deprecation.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace lr90 {

std::vector<value_t> host_list_rank(const LinkedList& list,
                                    const HostOptions& opt) {
  LinkedList ones;
  ones.next = list.next;
  ones.head = list.head;
  ones.value.assign(list.size(), 1);
  return host_list_scan(ones, OpPlus{}, opt);
}

}  // namespace lr90
