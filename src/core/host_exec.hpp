// The host execution kernel: Reid-Miller's three-phase sublist scan on real
// hardware (OpenMP threads when available), generic over the operator and
// allocation-free given a warmed-up Workspace.
//
// This is the single implementation behind both entry points:
//   * lr90::Engine with BackendKind::kHost (workspace reused across calls);
//   * the legacy host_list_scan/host_list_rank shims (one local workspace
//     per call, core/parallel_host.hpp).
//
// Same structure as the paper's algorithm, non-destructively: sublist
// boundaries live in a bitmap instead of planted self-loops, so the input
// list stays shared read-only across threads.
//
// Three traversal engines (core/kernel_tier.hpp KernelTier) implement
// phases 1 and 3:
//
//  * the LEGACY kernels (KernelTier::kLegacy; HostPlan::interleave == 0
//    under kAuto) -- one cursor per sublist, one dependent load per
//    element plus a second gather on the value array and a third random
//    access into the boundary bitmap. This is the seed behaviour, kept
//    for operators whose values need all 64 bits and as the differential
//    baseline.
//  * the PACKED multi-cursor kernels (KernelTier::kPackedCursors;
//    interleave >= 1 under kAuto) -- the modern-CPU analog of the paper's
//    VL=64 vector gathers. A single-gather slab (lists/encode.hpp
//    hot_pack: link + value lane + sublist-tail flag in one 64-bit word)
//    is built once per run -- and cached across same-list batch runs --
//    then each worker advances W independent sublist cursors round-robin
//    with software prefetch on every next hop. One random load per
//    element, W dependent-load chains in flight per thread: instead of
//    stalling a full memory round-trip per element, the core overlaps W
//    of them, exactly as the C90 overlapped 64 lanes of a vector gather.
//    Cursors that finish their sublist refill from a shared claim
//    counter; the last < W sublists drain scalar.
//  * the SIMD GATHER kernels (KernelTier::kSimdGather) -- the same W
//    cursors, but four lanes at a time through _mm256_i32gather_epi64:
//    the hot word already holds link + value + stop flag, so ONE vector
//    gather fetches four elements' everything, tails fall out of a sign
//    movemask, and the combine runs vertically in ymm registers. This is
//    the literal analog of the C90's hardware gather (VL=64 there, 4 x W
//    overlapping chains here). Compiled into every binary behind
//    __attribute__((target("avx2"))) and selected at RUN TIME via CPUID
//    (support/cpu_features.hpp); CPUs without usable AVX2 -- or runs with
//    LR90_FORCE_SCALAR set -- take kPackedCursors instead, bit-exactly.
//
// Every phase scales across worker threads (the paper's Section 5
// multiprocessor dimension, Fig. 11): the slab build splits into
// per-thread ranges, phases 1 and 3 feed each worker its own W-cursor set
// from the shared claim counter, and phase 2's reduced-list scan runs as
// a blocked two-pass prefix over operator-splittable prefixes once the
// sublist count is large enough to pay for it. Workers come from OpenMP
// when the build has it and plain std::thread otherwise, so OpenMP-less
// builds (and the TSan job) exercise the same parallel kernels.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "core/kernel_tier.hpp"
#include "core/workspace.hpp"
#include "lists/encode.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

#if defined(LISTRANK90_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lr90::host_exec {

/// Execution shape chosen by the Planner (or the legacy shims).
struct HostPlan {
  /// Worker threads to use (already resolved; >= 1).
  unsigned threads = 1;
  /// Total sublist count target; < 2 selects the serial fallback.
  std::size_t sublists = 0;
  /// Cursors in flight per worker on the packed hot path. 0 selects the
  /// legacy unpacked single-cursor kernels (the seed behaviour); >= 1
  /// selects the packed single-gather path -- when the operator's values
  /// fit the 32-bit lane -- with `interleave` round-robin cursors.
  unsigned interleave = 0;
  /// Worker threads when a packed plan falls back to the legacy kernels
  /// at run time (a value missing the 32-bit lane): the packed-optimal
  /// thread count can be lower than what the unpacked kernels want --
  /// they have no W-way latency hiding -- so the Planner supplies both.
  /// 0 = use `threads`.
  unsigned legacy_threads = 0;
  /// Which kernel family serves phases 1 + 3. kAuto preserves the legacy
  /// contract (interleave == 0 -> kLegacy, >= 1 -> kPackedCursors) for
  /// direct callers of this layer; the Planner always resolves it.
  /// kSimdGather downgrades at run time to kPackedCursors when the CPU
  /// has no usable AVX2 (or LR90_FORCE_SCALAR is set), and any packed
  /// tier downgrades to kLegacy when the operator's values miss the
  /// 32-bit lane or n exceeds kHotMaxVertices -- never a wrong answer.
  KernelTier tier = KernelTier::kAuto;
};

/// What one scan_into/rank_into call actually executed, for RunResult
/// stats and benches (cursors-in-flight and thread-scaling reporting).
struct ExecInfo {
  /// Cursors in flight per worker: W on the packed path, 1 on the legacy
  /// kernels and the serial walk, 0 when nothing ran (empty list).
  unsigned interleave = 0;
  /// Worker threads the run used: the plan's count on the sublist path, 1
  /// on the serial walk, 0 when nothing ran (empty list).
  unsigned threads = 0;
  bool packed = false;        ///< the single-gather slab path ran
  bool packed_cached = false; ///< ...and the slab came from the batch cache
  bool phase2_parallel = false;  ///< phase 2 ran the blocked parallel scan
  std::size_t sublists = 0;   ///< sublists used (0 = serial walk)
  /// The kernel family that ACTUALLY ran (after every runtime downgrade):
  /// kSimdGather / kPackedCursors for the packed phases, kLegacy for the
  /// unpacked kernels and the serial walk, kAuto when nothing ran (empty
  /// list).
  KernelTier tier = KernelTier::kAuto;

  // Per-phase wall clock, for parallel-efficiency reporting (zero on the
  // serial walk, which has no phases). build_ns covers boundary choice,
  // head collection, and the slab build; it is zero on a batch cache hit.
  double build_ns = 0.0;   ///< boundaries + heads + packed-slab build
  double phase1_ns = 0.0;  ///< per-sublist inclusive scans
  double phase2_ns = 0.0;  ///< reduced-list scan over sublist sums
  double phase3_ns = 0.0;  ///< per-sublist expansion

  /// Share of the phase wall clock spent in the multi-worker phases
  /// (build + 1 + 3, plus 2 when it ran blocked): the Amdahl fraction a
  /// bench divides by to judge thread scaling. 0 when nothing was timed.
  double parallel_frac() const {
    const double par =
        build_ns + phase1_ns + phase3_ns + (phase2_parallel ? phase2_ns : 0.0);
    const double total = build_ns + phase1_ns + phase2_ns + phase3_ns;
    return total > 0.0 ? par / total : 0.0;
  }
};

/// Hard cap on cursors per worker (stack-resident cursor state).
inline constexpr unsigned kMaxInterleave = 64;

/// Hard cap on worker threads per run (per-thread scratch such as the
/// phase-2 block sums is sized by this).
inline constexpr unsigned kMaxThreads = 256;

/// Smallest sublist count phase 2 parallelizes its reduced-list scan at;
/// below it the serial scan wins on fork/join overhead alone.
inline constexpr std::size_t kPhase2MinParallelSublists = 64;

/// Worker threads actually available for `requested` (0 = library default:
/// the OpenMP thread count, or the hardware thread count on OpenMP-less
/// builds, whose kernels fan out over std::thread instead).
inline unsigned effective_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
#if defined(LISTRANK90_HAVE_OPENMP)
  const auto omp = static_cast<unsigned>(std::max(1, omp_get_max_threads()));
  return std::min(omp, kMaxThreads);
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? std::min(hw, kMaxThreads) : 1;
#endif
}

/// Runs fn() concurrently on `threads` workers and waits for all of them:
/// the one worker-orchestration primitive every parallel kernel here
/// uses. OpenMP supplies the (pooled, cheap) team when the build has it;
/// plain std::thread otherwise -- the same code runs parallel in
/// OpenMP-less builds, which is also what lets the TSan job see the real
/// kernels. OpenMP may deliver a smaller team than requested, so workers
/// must divide their work dynamically (the kernels here claim fixed
/// blocks from an atomic counter) rather than by worker id.
template <class Fn>
void run_workers(unsigned threads, Fn&& fn) {
  threads = std::clamp(threads, 1u, kMaxThreads);
  if (threads == 1) {
    fn();
    return;
  }
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel num_threads(threads)
  fn();
#else
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back([&fn] { fn(); });
  fn();
  for (std::thread& th : pool) th.join();
#endif
}

/// The b-th of `blocks` contiguous balanced ranges over `count` items
/// (empty ranges when b >= count are fine). Workers claim block ids from
/// a shared atomic, so coverage is exact for any actual team size.
inline std::pair<std::size_t, std::size_t> block_range(std::size_t count,
                                                       std::size_t blocks,
                                                       std::size_t b) {
  const std::size_t base = count / blocks;
  const std::size_t extra = count % blocks;
  const std::size_t begin = b * base + std::min(b, extra);
  return {begin, begin + base + (b < extra ? 1 : 0)};
}

/// Fans block ids [0, count) out to `threads` workers through a shared
/// claim counter and calls body(block) for each: the one claim
/// discipline every parallel kernel here uses (exact coverage whatever
/// team size run_workers actually delivers).
template <class Body>
void claim_blocks(unsigned threads, std::size_t count, Body&& body) {
  std::atomic<std::size_t> next{0};
  run_workers(threads, [&] {
    for (std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
         b < count; b = next.fetch_add(1, std::memory_order_relaxed))
      body(b);
  });
}

/// Read-prefetch of the cache line holding `addr` (no-op when the
/// compiler has no intrinsic). The packed kernels issue one per cursor
/// per element, which is what keeps W load chains in flight.
inline void prefetch_ro(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/0);
#else
  (void)addr;
#endif
}

/// Serial walk fallback, used when parallelism cannot pay off.
template <ListOp Op>
void serial_scan_into(const LinkedList& list, std::span<value_t> out,
                      Op op = {}) {
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
}

/// Chooses `count` distinct sublist boundary vertices (plus the global
/// tail) into ws.is_tail / ws.picks. Rejection sampling against the bitmap
/// needs no per-call set: the pick density is at most 1/2, so the expected
/// number of retries per pick is below one.
inline void choose_boundaries(const LinkedList& list, std::size_t count,
                              Workspace& ws, index_t global_tail) {
  const std::size_t n = list.size();
  ws.fit(ws.is_tail, n, std::uint8_t{0});
  ws.fit_uninit(ws.picks, count);
  ws.picks.clear();  // keep capacity, refill below
  ws.is_tail[global_tail] = 1;
  while (ws.picks.size() < count) {
    const auto r = static_cast<index_t>(ws.rng.uniform(n));
    if (ws.is_tail[r]) continue;  // duplicate or the global tail: redraw
    ws.is_tail[r] = 1;
    ws.picks.push_back(r);
  }
}

/// Builds the single-gather slab into ws.packed from the list and the
/// per-run boundary bitmap (ws.is_tail must already be chosen): word v =
/// hot_pack(is_tail[v], next[v], value lane). One O(n) pass, split into
/// per-thread index ranges (hot_pack_range) claimed from an atomic
/// counter. `kOnes` forces every value lane to 1 (ranking) and cannot
/// fail; otherwise returns false -- slab contents unspecified -- if any
/// value does not round-trip through the signed 32-bit lane.
template <bool kOnes, ListOp Op>
bool build_packed(const LinkedList& list, Op, unsigned threads,
                  Workspace& ws, bool simd = false) {
  static_assert(kOnes || kOpLane32<Op>,
                "64-bit-value operators take the legacy kernels");
  const std::size_t n = list.size();
  ws.fit_uninit(ws.packed, n);
  const index_t* next = list.next.data();
  const value_t* val = kOnes ? nullptr : list.value.data();
  const std::uint8_t* tail = ws.is_tail.data();
  packed_t* out = ws.packed.data();
  const std::size_t blocks = std::max<std::size_t>(1, threads);
  std::atomic<bool> ok{true};
  claim_blocks(threads, blocks, [&](std::size_t b) {
    const auto [begin, end] = block_range(n, blocks, b);
    bool fit;
#if LR90_SIMD_GATHER_COMPILED
    // Callers pass simd only when simd_gather_available(); the target
    // function is called, never inlined here, so this stays legal on
    // non-AVX2 CPUs that never take the branch.
    if (simd)
      fit = hot_pack_range_simd(next, val, tail, out, begin, end);
    else
#else
    (void)simd;
#endif
      fit = hot_pack_range(next, val, tail, out, begin, end);
    if (!fit) ok.store(false, std::memory_order_relaxed);
  });
  return ok.load(std::memory_order_relaxed);
}

/// The multi-cursor driver shared by the packed phases: walks all `k`
/// sublists over `threads` workers, each keeping up to `W` cursors in
/// flight. Per element: ONE gather from the slab, a prefetch of the next
/// hop, then `step(vertex, word, acc)`; at a sublist tail,
/// `finish(sublist, tail_vertex, acc)` runs and the cursor refills from
/// the shared claim counter (perfect load balance; the final < W sublists
/// drain with shrinking parallelism). `init(sublist)` seeds the
/// accumulator.
template <class AccInit, class Step, class Finish>
void interleave_sublists(const packed_t* packed, const index_t* heads,
                         std::size_t k, unsigned threads, unsigned W,
                         AccInit init, Step step, Finish finish) {
  W = std::clamp(W, 1u, kMaxInterleave);
  std::atomic<std::size_t> next_claim{0};
  auto worker = [&]() {
    struct Cursor {
      index_t v;    ///< current vertex
      index_t j;    ///< owning sublist
      value_t acc;  ///< running combine
    };
    Cursor cur[kMaxInterleave];
    std::size_t active = 0;
    auto claim = [&]() -> bool {
      const std::size_t j =
          next_claim.fetch_add(1, std::memory_order_relaxed);
      if (j >= k) return false;
      cur[active] = Cursor{heads[j], static_cast<index_t>(j), init(j)};
      prefetch_ro(&packed[heads[j]]);
      ++active;
      return true;
    };
    for (unsigned i = 0; i < W && claim(); ++i) {
    }
    while (active > 0) {
      for (std::size_t i = 0; i < active;) {
        Cursor& c = cur[i];
        const packed_t w = packed[c.v];
        prefetch_ro(&packed[hot_link(w)]);
        step(c.v, w, c.acc);
        if (!hot_tail(w)) {
          c.v = hot_link(w);
          ++i;
          continue;
        }
        finish(c.j, c.v, c.acc);
        const std::size_t j =
            next_claim.fetch_add(1, std::memory_order_relaxed);
        if (j < k) {
          c = Cursor{heads[j], static_cast<index_t>(j), init(j)};
          prefetch_ro(&packed[heads[j]]);
          ++i;
        } else {
          --active;  // drain: rerun index i with the swapped-in cursor
          cur[i] = cur[active];
        }
      }
    }
  };
  run_workers(threads, worker);
}

#if LR90_SIMD_GATHER_COMPILED

/// Vertical (per-ymm-lane) combine for the SIMD gather kernels, one
/// specialization per lane-capable operator. Correct on the hot word's
/// sign-extended 32-bit value lanes because every vector op below is the
/// full 64-bit signed operation -- identical to what the scalar kernels
/// compute through Op::operator().
template <ListOp Op>
struct SimdCombine;

template <>
struct SimdCombine<OpPlus> {
  LR90_TARGET_AVX2 static __m256i combine(__m256i a, __m256i b) {
    return _mm256_add_epi64(a, b);
  }
};
template <>
struct SimdCombine<OpXor> {
  LR90_TARGET_AVX2 static __m256i combine(__m256i a, __m256i b) {
    return _mm256_xor_si256(a, b);
  }
};
template <>
struct SimdCombine<OpMin> {
  LR90_TARGET_AVX2 static __m256i combine(__m256i a, __m256i b) {
    // Signed 64-bit min (no _mm256_min_epi64 before AVX-512): where
    // a > b, take b. blendv picks from b where the mask's sign bit is
    // set, and cmpgt lanes are all-ones.
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
  }
};
template <>
struct SimdCombine<OpMax> {
  LR90_TARGET_AVX2 static __m256i combine(__m256i a, __m256i b) {
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
  }
};

/// One worker of the SIMD gather tier: phases 1 (kPhase3 == false, writes
/// sums/tails) and 3 (kPhase3 == true, reads headscan, scatters out) over
/// sublists claimed from the shared counter, W lanes in groups of 4.
///
/// Per group-iteration: ONE _mm256_i32gather_epi64 fetches four cursors'
/// hot words; the tail movemask (bit 63 is the lane's sign bit) splits a
/// branch-free all-advance fast path from the finish/refill slow path.
/// Groups whose refill finds the claim counter dry drain their live lanes
/// scalar and retire (the counter never refills, so the group can't come
/// back) -- the vector loop only ever sees full groups, and the last
/// < 4 x groups sublists drain with shrinking parallelism exactly like
/// the scalar multi-cursor driver.
///
/// All intrinsics live in THIS function (and SimdCombine) on purpose:
/// GCC lambdas do not inherit the target attribute, so the scalar-only
/// lambdas below may be lambdas but vector code may not.
template <ListOp Op, bool kPhase3>
LR90_TARGET_AVX2 void simd_gather_worker(
    const packed_t* packed, const index_t* heads, std::size_t k, unsigned W,
    std::atomic<std::size_t>& next_claim, value_t* sums, index_t* tails,
    const value_t* headscan, value_t* out, Op op) {
  static_assert(kOpLane32<Op>,
                "the SIMD gather tier serves lane-capable operators only");
  // Per-lane cursor state; group g owns lanes [4g, 4g+4). 32-byte
  // alignment lets the group loads/stores below be the aligned forms.
  alignas(32) index_t v[kMaxInterleave];
  alignas(32) value_t acc[kMaxInterleave];
  index_t own[kMaxInterleave];

  const auto lane_init = [&](std::size_t lane, std::size_t j) {
    v[lane] = heads[j];
    own[lane] = static_cast<index_t>(j);
    acc[lane] = kPhase3 ? headscan[j] : Op::identity();
    prefetch_ro(&packed[heads[j]]);
  };
  // Runs lane to the end of its sublist with the scalar hot-word loop
  // (same step/finish semantics as the vector path).
  const auto drain_lane = [&](std::size_t lane) {
    index_t cv = v[lane];
    value_t a = acc[lane];
    while (true) {
      const packed_t w = packed[cv];
      prefetch_ro(&packed[hot_link(w)]);
      if constexpr (kPhase3) out[cv] = a;
      a = op(a, hot_value(w));
      if (hot_tail(w)) {
        if constexpr (!kPhase3) {
          sums[own[lane]] = a;
          tails[own[lane]] = cv;
        }
        return;
      }
      cv = hot_link(w);
    }
  };

  std::size_t lanes = 0;
  while (lanes < W) {
    const std::size_t j = next_claim.fetch_add(1, std::memory_order_relaxed);
    if (j >= k) break;
    lane_init(lanes, j);
    ++lanes;
  }
  // A partial trailing group (claims ran dry mid-fill) drains scalar now,
  // so the vector loop only ever sees groups of 4 live lanes.
  std::size_t groups = lanes / 4;
  for (std::size_t l = groups * 4; l < lanes; ++l) drain_lane(l);

  const auto* base = reinterpret_cast<const long long*>(packed);
  const __m128i link_mask4 = _mm_set1_epi32(0x7fffffff);
  // Picks the low 32 bits of each 64-bit lane into the low 128 bits.
  const __m256i pick_even = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  alignas(16) index_t link_buf[4];
  alignas(32) value_t spill[4];

  while (groups > 0) {
    for (std::size_t g = 0; g < groups;) {
      index_t* gv = v + g * 4;
      value_t* gacc = acc + g * 4;
      const __m128i idx =
          _mm_load_si128(reinterpret_cast<const __m128i*>(gv));
      // THE gather: link + value lane + stop flag for four cursors in
      // one instruction (indices are < 2^31 by the hot-path bound, so
      // the signed-index interpretation is safe). The masked form with a
      // zeroed destination matters: vpgatherdq MERGES into its
      // destination register, so the plain intrinsic makes every gather
      // depend on the previous iteration's result and serializes the
      // groups (measured ~2x slower than the scalar cursors, getting
      // WORSE with more groups). GCC sees through a constant all-ones
      // mask and drops the dependency-breaking zero again, so both the
      // source and the mask come from inline asm it cannot fold: the
      // merge into a register written by a zero idiom outside the
      // dependency chain lets one gather per live group stay in flight.
      __m256i gsrc, gmask;
      asm("vpxor %t0, %t0, %t0" : "=x"(gsrc));
      asm("vpcmpeqd %t0, %t0, %t0" : "=x"(gmask));
      const __m256i w =
          _mm256_mask_i32gather_epi64(gsrc, base, idx, gmask, 8);
      const __m256i lo = _mm256_permutevar8x32_epi32(w, pick_even);
      const __m256i vals =
          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(lo));
      const __m256i hi =
          _mm256_permutevar8x32_epi32(_mm256_srli_epi64(w, 32), pick_even);
      const __m128i links =
          _mm_and_si128(_mm256_castsi256_si128(hi), link_mask4);
      __m256i accv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(gacc));
      if constexpr (kPhase3) {
        // Scatter out[v] = acc BEFORE the combine (exclusive scan). AVX2
        // has no scatter, so four scalar stores from the spilled lanes.
        _mm256_store_si256(reinterpret_cast<__m256i*>(spill), accv);
        out[gv[0]] = spill[0];
        out[gv[1]] = spill[1];
        out[gv[2]] = spill[2];
        out[gv[3]] = spill[3];
      }
      accv = SimdCombine<Op>::combine(accv, vals);
      _mm256_store_si256(reinterpret_cast<__m256i*>(gacc), accv);
      const int tmask = _mm256_movemask_pd(_mm256_castsi256_pd(w));
      if (tmask == 0) {
        // Fast path: no lane ended, all four advance.
        _mm_store_si128(reinterpret_cast<__m128i*>(gv), links);
        prefetch_ro(&packed[gv[0]]);
        prefetch_ro(&packed[gv[1]]);
        prefetch_ro(&packed[gv[2]]);
        prefetch_ro(&packed[gv[3]]);
        ++g;
        continue;
      }
      // Slow path: finish ended lanes and refill them from the counter.
      _mm_store_si128(reinterpret_cast<__m128i*>(link_buf), links);
      bool dry = false;
      for (int l = 0; l < 4; ++l) {
        if (!(tmask & (1 << l))) {
          gv[l] = link_buf[l];
          prefetch_ro(&packed[gv[l]]);
          continue;
        }
        if constexpr (!kPhase3) {
          sums[own[g * 4 + l]] = gacc[l];
          tails[own[g * 4 + l]] = gv[l];
        }
        const std::size_t j =
            next_claim.fetch_add(1, std::memory_order_relaxed);
        if (j < k) {
          lane_init(g * 4 + l, j);
        } else {
          dry = true;
          gv[l] = kNoVertex;  // no valid vertex: n <= 2^31 < kNoVertex
        }
      }
      if (!dry) {
        ++g;
        continue;
      }
      // Claims exhausted: drain this group's live lanes scalar, retire
      // the group by swapping in the last one.
      for (int l = 0; l < 4; ++l)
        if (gv[l] != kNoVertex) drain_lane(g * 4 + l);
      --groups;
      for (int l = 0; l < 4; ++l) {
        v[g * 4 + l] = v[groups * 4 + l];
        acc[g * 4 + l] = acc[groups * 4 + l];
        own[g * 4 + l] = own[groups * 4 + l];
      }
    }
  }
}

/// The SIMD counterpart of interleave_sublists: same claim discipline and
/// worker fan-out, phases distinguished by kPhase3 (phase 1 writes
/// sums/tails; phase 3 reads headscan and scatters out).
template <ListOp Op, bool kPhase3>
void simd_gather_sublists(const packed_t* packed, const index_t* heads,
                          std::size_t k, unsigned threads, unsigned W,
                          value_t* sums, index_t* tails,
                          const value_t* headscan, value_t* out, Op op) {
  std::atomic<std::size_t> next_claim{0};
  run_workers(threads, [&] {
    simd_gather_worker<Op, kPhase3>(packed, heads, k, W, next_claim, sums,
                                    tails, headscan, out, op);
  });
}

#endif  // LR90_SIMD_GATHER_COMPILED

/// Rounds a cursor budget to the SIMD tier's group shape: multiples of 4
/// lanes, at least one group, capped at kMaxInterleave.
inline unsigned simd_lane_count(unsigned W) {
  return std::min(kMaxInterleave, ((std::max(W, 4u) + 3u) / 4u) * 4u);
}

/// Exclusive list scan into `out` (sized n) per the plan, reusing `ws`.
/// Preconditions: `list` is a valid LinkedList, out.size() == list.size().
/// `kOnes` treats every value as 1 regardless of list.value (ranking);
/// only rank_into sets it.
template <ListOp Op, bool kOnes = false>
ExecInfo scan_into(const LinkedList& list, Op op, const HostPlan& plan,
                   Workspace& ws, std::span<value_t> out) {
  ExecInfo info;
  const std::size_t n = list.size();
  if (n == 0) return info;
  info.interleave = 1;
  info.threads = 1;
  info.tier = KernelTier::kLegacy;
  if (n == 1) {
    out[list.head] = Op::identity();
    return info;
  }

  auto serial_fallback = [&] {
    if constexpr (kOnes) {
      for_each_in_order(list, [&](index_t v, std::size_t pos) {
        out[v] = static_cast<value_t>(pos);
      });
    } else {
      serial_scan_into(list, out, op);
    }
    return info;
  };

  std::size_t want = std::min(plan.sublists, n / 2);
  // Resolve the kernel tier. kAuto preserves the legacy contract
  // (interleave >= 1 selects the packed cursors) for direct callers;
  // then the runtime downgrades apply in order -- kSimdGather needs
  // usable AVX2 (CPUID + LR90_FORCE_SCALAR, support/cpu_features.hpp),
  // and any packed tier needs the 32-bit value lane and the 31-bit link
  // bound. The packed path pays off even on one thread (W independent
  // load chains hide latency where the serial walk stalls on every hop);
  // the legacy kernels need real threads to beat the serial walk.
  KernelTier tier = plan.tier != KernelTier::kAuto
                        ? plan.tier
                        : (plan.interleave >= 1 ? KernelTier::kPackedCursors
                                                : KernelTier::kLegacy);
  bool simd = false;
#if LR90_SIMD_GATHER_COMPILED
  if constexpr (kOnes || kOpLane32<Op>)
    simd = tier == KernelTier::kSimdGather && simd_gather_available();
#endif
  if (tier == KernelTier::kSimdGather && !simd)
    tier = KernelTier::kPackedCursors;
  bool packed = tier != KernelTier::kLegacy && (kOnes || kOpLane32<Op>) &&
                n <= kHotMaxVertices;
  if (!packed) simd = false;
  if (want < 2 || (!packed && plan.threads <= 1)) return serial_fallback();

  const unsigned W = simd ? simd_lane_count(plan.interleave)
                          : std::clamp(plan.interleave, 1u, kMaxInterleave);
  // The vector tier retires a whole group of 4 lanes (draining the
  // group's survivors scalar) the moment a refill finds the claim
  // counter dry, so starvation is a cliff, not a taper: with k close to
  // W most of the work would run in the one-chain scalar drain. Keep
  // refills abundant -- at least 16 sublists per lane -- so the drain
  // tail is bounded by ~1/16 of the elements; phase 2 stays O(k) serial
  // and cheap at these counts.
  if (simd)
    want = std::min(
        std::max(want, static_cast<std::size_t>(W) *
                           std::max(1u, plan.threads) * 16),
        n / 2);
  // A shared (cross-request) slab, installed by the serving layer for
  // immutable snapshot lists, replaces both boundary choice and the slab
  // build outright when its shape matches this run's plan. Like the
  // batch-cache hit below, the RNG is left undrawn -- answers are exact
  // under any sublist decomposition.
  const PackedSlab* ext = nullptr;
  if (packed) {
    const PackedSlab* s = ws.shared_slab();
    if (s && s->n == n && s->ones == kOnes && s->heads.size() == want &&
        !s->words.empty())
      ext = s;
  }
  Workspace::PackedKey key;
  bool cache_hit = false;
  if (packed && !ext) {
    key.next_data = list.next.data();
    key.value_data = kOnes ? nullptr : list.value.data();
    key.n = n;
    key.head = list.head;
    key.sublists = want;
    key.ones = kOnes;
    key.rng_at_entry = ws.rng;  // before any draws: picks would repeat
    cache_hit = ws.packed_cache_hit(key);
  }
  using Clock = std::chrono::steady_clock;
  const auto since_ns = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
  };
  const unsigned legacy_threads =
      plan.legacy_threads > 0 ? plan.legacy_threads : plan.threads;
  const auto t_build = Clock::now();
  if (!ext && !cache_hit) {
    choose_boundaries(list, want - 1, ws, list.find_tail());
    // Sublist heads: the whole-list head plus each pick's successor. A
    // pick whose successor is itself a tail yields a single-vertex
    // sublist.
    ws.fit_uninit(ws.heads, want);
    ws.heads.clear();
    ws.heads.push_back(list.head);
    for (const index_t r : ws.picks) ws.heads.push_back(list.next[r]);
    bool built = false;
    if constexpr (kOnes || kOpLane32<Op>) {
      if (packed)
        built = build_packed<kOnes>(list, op, plan.threads, ws, simd);
    }
    if (built) {
      ws.packed_cache_store(key);
    } else {
      // Either the legacy kernels were planned, or some value misses the
      // 32-bit lane: the slab (if any) no longer matches ws.heads.
      if (packed && legacy_threads <= 1) {
        ws.invalidate_packed();
        return serial_fallback();
      }
      packed = false;
      simd = false;
      ws.invalidate_packed();
    }
  }
  // Slab pointers for the packed phases: the shared slab when installed,
  // the workspace's own otherwise. Resolved after the build section --
  // ws.heads/ws.packed may have reallocated during it.
  const packed_t* words = ext ? ext->words.data() : ws.packed.data();
  const index_t* heads = ext ? ext->heads.data() : ws.heads.data();
  const std::size_t k = ext ? ext->heads.size() : ws.heads.size();
  info.build_ns = (ext || cache_hit) ? 0.0 : since_ns(t_build);

  // From here on the worker count is path-dependent: the packed kernels
  // run the (possibly lower) packed-optimal count, a runtime fallback to
  // the legacy kernels takes the breakeven-shed count they want.
  const unsigned threads = packed ? plan.threads : legacy_threads;

  // The legacy kernels walk sublists claimed in chunks from a shared
  // counter -- the unpacked counterpart of the multi-cursor refill, and
  // the same dynamic balance the old OpenMP schedule(dynamic, 8) gave.
  constexpr std::size_t kLegacyChunk = 8;
  const auto legacy_sublists = [&](auto&& body) {
    claim_blocks(threads, (k + kLegacyChunk - 1) / kLegacyChunk,
                 [&](std::size_t c) {
                   const std::size_t j0 = c * kLegacyChunk;
                   const std::size_t j1 = std::min(k, j0 + kLegacyChunk);
                   for (std::size_t j = j0; j < j1; ++j) body(j);
                 });
  };

  // Phase 1: per-sublist inclusive sums; record each sublist's tail.
  const auto t_phase1 = Clock::now();
  ws.fit(ws.sums, k, Op::identity());
  ws.fit(ws.tails, k, kNoVertex);
  if (packed) {
    bool vectored = false;
#if LR90_SIMD_GATHER_COMPILED
    if constexpr (kOnes || kOpLane32<Op>) {
      if (simd) {
        simd_gather_sublists<Op, /*kPhase3=*/false>(
            words, heads, k, threads, W, ws.sums.data(), ws.tails.data(),
            nullptr, nullptr, op);
        vectored = true;
      }
    }
#endif
    if (!vectored)
      interleave_sublists(
          words, heads, k, threads, W,
          [&](std::size_t) { return Op::identity(); },
          [&](index_t, packed_t w, value_t& acc) {
            acc = op(acc, hot_value(w));
          },
          [&](index_t j, index_t v, value_t acc) {
            ws.sums[j] = acc;
            ws.tails[j] = v;
          });
  } else {
    legacy_sublists([&](std::size_t j) {
      index_t v = ws.heads[j];
      value_t acc = Op::identity();
      while (true) {
        acc = op(acc, kOnes ? value_t{1} : list.value[v]);
        if (ws.is_tail[v]) break;
        v = list.next[v];
      }
      ws.sums[j] = acc;
      ws.tails[j] = v;
    });
  }
  info.phase1_ns = since_ns(t_phase1);

  // Phase 2: order the sublists by chaining tail -> successor head (a
  // serial O(k) pointer-chase; the head-ownership table is
  // epoch-stamped, so no O(n) refill), then exclusive-scan their sums in
  // that order. Large sublist counts scan blocked across the workers:
  // contiguous prefixes of the order reduce in parallel, a serial pass
  // turns the block sums into block offsets, and the workers expand
  // their blocks -- combine order is preserved throughout, so
  // associativity alone (no commutativity) keeps the non-commutative
  // operators bit-exact. On the packed path successor links come from
  // the SLAB, never the live list: a cache-hit run then reads only the
  // self-consistent snapshot taken at build time, so a caller mutating
  // the list between the runs of a batch (e.g. after an earlier future
  // resolved) gets the coherent as-of-build answer instead of a
  // stale/live mix.
  const auto t_phase2 = Clock::now();
  ws.owner_begin(n);
  for (std::size_t j = 0; j < k; ++j)
    ws.owner_set(heads[j], static_cast<index_t>(j));
  ws.fit_uninit(ws.order, k);
  ws.order.clear();
  {
    std::size_t j = 0;  // the first sublist starts at the list head
    for (std::size_t seen = 0; seen < k; ++seen) {
      ws.order.push_back(static_cast<index_t>(j));
      const index_t t = ws.tails[j];
      const index_t nt = packed ? hot_link(words[t]) : list.next[t];
      if (nt == t) break;  // the global tail ends the chain
      const index_t owner = ws.owner_get(nt);
      if (owner == kNoVertex) break;  // defensive: malformed snapshot
      j = owner;
    }
  }
  // Sublists a malformed snapshot left out of the chain keep identity.
  ws.fit(ws.headscan, k, Op::identity());
  const std::size_t ordered = ws.order.size();
  if (threads > 1 && ordered >= kPhase2MinParallelSublists) {
    info.phase2_parallel = true;
    const std::size_t blocks = threads;
    ws.fit(ws.block_sums, blocks, Op::identity());
    claim_blocks(threads, blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(ordered, blocks, b);
      value_t acc = Op::identity();
      for (std::size_t i = begin; i < end; ++i)
        acc = op(acc, ws.sums[ws.order[i]]);
      ws.block_sums[b] = acc;
    });
    value_t acc = Op::identity();  // block sums -> exclusive block offsets
    for (std::size_t b = 0; b < blocks; ++b) {
      const value_t sum = ws.block_sums[b];
      ws.block_sums[b] = acc;
      acc = op(acc, sum);
    }
    claim_blocks(threads, blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(ordered, blocks, b);
      value_t acc = ws.block_sums[b];
      for (std::size_t i = begin; i < end; ++i) {
        const index_t j = ws.order[i];
        ws.headscan[j] = acc;
        acc = op(acc, ws.sums[j]);
      }
    });
  } else {
    value_t acc = Op::identity();
    for (std::size_t i = 0; i < ordered; ++i) {
      const index_t j = ws.order[i];
      ws.headscan[j] = acc;
      acc = op(acc, ws.sums[j]);
    }
  }
  info.phase2_ns = since_ns(t_phase2);

  // Phase 3: expand each sublist from its head's scan value.
  const auto t_phase3 = Clock::now();
  if (packed) {
    value_t* o = out.data();
    bool vectored = false;
#if LR90_SIMD_GATHER_COMPILED
    if constexpr (kOnes || kOpLane32<Op>) {
      if (simd) {
        simd_gather_sublists<Op, /*kPhase3=*/true>(
            words, heads, k, threads, W, nullptr, nullptr,
            ws.headscan.data(), o, op);
        vectored = true;
      }
    }
#endif
    if (!vectored)
      interleave_sublists(
          words, heads, k, threads, W,
          [&](std::size_t j) { return ws.headscan[j]; },
          [&](index_t v, packed_t w, value_t& acc) {
            o[v] = acc;
            acc = op(acc, hot_value(w));
          },
          [](index_t, index_t, value_t) {});
  } else {
    legacy_sublists([&](std::size_t j) {
      index_t v = ws.heads[j];
      value_t acc = ws.headscan[j];
      while (true) {
        out[v] = acc;
        acc = op(acc, kOnes ? value_t{1} : list.value[v]);
        if (ws.is_tail[v]) break;
        v = list.next[v];
      }
    });
  }
  info.phase3_ns = since_ns(t_phase3);

  info.interleave = packed ? W : 1;
  info.threads = threads;
  info.packed = packed;
  info.packed_cached = cache_hit || ext != nullptr;
  info.sublists = k;
  info.tier = packed ? (simd ? KernelTier::kSimdGather
                             : KernelTier::kPackedCursors)
                     : KernelTier::kLegacy;
  return info;
}

/// Exclusive list rank into `out`: the all-ones scan without ever
/// materializing a ones copy -- the packed slab's value lane is the
/// constant 1, the legacy kernels substitute it inline, and the serial
/// fallback writes positions directly. Correct for any plan.
inline ExecInfo rank_into(const LinkedList& list, const HostPlan& plan,
                          Workspace& ws, std::span<value_t> out) {
  return scan_into<OpPlus, /*kOnes=*/true>(list, OpPlus{}, plan, ws, out);
}

}  // namespace lr90::host_exec
