// The host execution kernel: Reid-Miller's three-phase sublist scan on real
// hardware (OpenMP threads when available), generic over the operator and
// allocation-free given a warmed-up Workspace.
//
// This is the single implementation behind both entry points:
//   * lr90::Engine with BackendKind::kHost (workspace reused across calls);
//   * the legacy host_list_scan/host_list_rank shims (one local workspace
//     per call, core/parallel_host.hpp).
//
// Same structure as the paper's algorithm, non-destructively: sublist
// boundaries live in a bitmap instead of planted self-loops, so the input
// list stays shared read-only across threads.
//
// Two traversal engines implement phases 1 and 3:
//
//  * the LEGACY kernels (HostPlan::interleave == 0) -- one cursor per
//    sublist, one dependent load per element plus a second gather on the
//    value array and a third random access into the boundary bitmap. This
//    is the seed behaviour, kept for operators whose values need all 64
//    bits and as the differential baseline.
//  * the PACKED multi-cursor kernels (interleave >= 1) -- the modern-CPU
//    analog of the paper's VL=64 vector gathers. A single-gather slab
//    (lists/encode.hpp hot_pack: link + value lane + sublist-tail flag in
//    one 64-bit word) is built once per run -- and cached across same-list
//    batch runs -- then each worker advances W independent sublist cursors
//    round-robin with software prefetch on every next hop. One random
//    load per element, W dependent-load chains in flight per thread:
//    instead of stalling a full memory round-trip per element, the core
//    overlaps W of them, exactly as the C90 overlapped 64 lanes of a
//    vector gather. Cursors that finish their sublist refill from a
//    shared claim counter; the last < W sublists drain scalar.
#pragma once

#include <algorithm>
#include <atomic>
#include <span>

#include "core/workspace.hpp"
#include "lists/encode.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"

#if defined(LISTRANK90_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lr90::host_exec {

/// Execution shape chosen by the Planner (or the legacy shims).
struct HostPlan {
  /// Worker threads to use (already resolved; >= 1).
  unsigned threads = 1;
  /// Total sublist count target; < 2 selects the serial fallback.
  std::size_t sublists = 0;
  /// Cursors in flight per worker on the packed hot path. 0 selects the
  /// legacy unpacked single-cursor kernels (the seed behaviour); >= 1
  /// selects the packed single-gather path -- when the operator's values
  /// fit the 32-bit lane -- with `interleave` round-robin cursors.
  unsigned interleave = 0;
};

/// What one scan_into/rank_into call actually executed, for RunResult
/// stats and benches (cursors-in-flight reporting).
struct ExecInfo {
  /// Cursors in flight per worker: W on the packed path, 1 on the legacy
  /// kernels and the serial walk, 0 when nothing ran (empty list).
  unsigned interleave = 0;
  bool packed = false;        ///< the single-gather slab path ran
  bool packed_cached = false; ///< ...and the slab came from the batch cache
  std::size_t sublists = 0;   ///< sublists used (0 = serial walk)
};

/// Hard cap on cursors per worker (stack-resident cursor state).
inline constexpr unsigned kMaxInterleave = 64;

/// Worker threads actually available for `requested` (0 = library default:
/// the OpenMP thread count, or 1 without OpenMP).
inline unsigned effective_threads(unsigned requested) {
  if (requested > 0) return requested;
#if defined(LISTRANK90_HAVE_OPENMP)
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

/// Read-prefetch of the cache line holding `addr` (no-op when the
/// compiler has no intrinsic). The packed kernels issue one per cursor
/// per element, which is what keeps W load chains in flight.
inline void prefetch_ro(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/0);
#else
  (void)addr;
#endif
}

/// Serial walk fallback, used when parallelism cannot pay off.
template <ListOp Op>
void serial_scan_into(const LinkedList& list, std::span<value_t> out,
                      Op op = {}) {
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
}

/// Chooses `count` distinct sublist boundary vertices (plus the global
/// tail) into ws.is_tail / ws.picks. Rejection sampling against the bitmap
/// needs no per-call set: the pick density is at most 1/2, so the expected
/// number of retries per pick is below one.
inline void choose_boundaries(const LinkedList& list, std::size_t count,
                              Workspace& ws, index_t global_tail) {
  const std::size_t n = list.size();
  ws.fit(ws.is_tail, n, std::uint8_t{0});
  ws.fit_uninit(ws.picks, count);
  ws.picks.clear();  // keep capacity, refill below
  ws.is_tail[global_tail] = 1;
  while (ws.picks.size() < count) {
    const auto r = static_cast<index_t>(ws.rng.uniform(n));
    if (ws.is_tail[r]) continue;  // duplicate or the global tail: redraw
    ws.is_tail[r] = 1;
    ws.picks.push_back(r);
  }
}

/// Builds the single-gather slab into ws.packed from the list and the
/// per-run boundary bitmap (ws.is_tail must already be chosen): word v =
/// hot_pack(is_tail[v], next[v], value lane). One sequential O(n) pass.
/// `kOnes` forces every value lane to 1 (ranking) and cannot fail;
/// otherwise returns false -- slab contents unspecified -- if any value
/// does not round-trip through the signed 32-bit lane.
template <bool kOnes, ListOp Op>
bool build_packed(const LinkedList& list, Op, unsigned threads,
                  Workspace& ws) {
  static_assert(kOnes || kOpLane32<Op>,
                "64-bit-value operators take the legacy kernels");
  const std::size_t n = list.size();
  ws.fit_uninit(ws.packed, n);
  const index_t* next = list.next.data();
  const value_t* val = list.value.data();
  const std::uint8_t* tail = ws.is_tail.data();
  packed_t* out = ws.packed.data();
  bool ok = true;
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(static) num_threads(threads) \
    reduction(&& : ok)
#endif
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const value_t v = kOnes ? value_t{1} : val[i];
    ok = ok && hot_value_fits(v);
    out[i] = hot_pack(tail[i] != 0, next[i],
                      static_cast<std::uint32_t>(
                          static_cast<std::uint64_t>(v)));
  }
  (void)threads;
  return ok;
}

/// The multi-cursor driver shared by the packed phases: walks all `k`
/// sublists over `threads` workers, each keeping up to `W` cursors in
/// flight. Per element: ONE gather from the slab, a prefetch of the next
/// hop, then `step(vertex, word, acc)`; at a sublist tail,
/// `finish(sublist, tail_vertex, acc)` runs and the cursor refills from
/// the shared claim counter (perfect load balance; the final < W sublists
/// drain with shrinking parallelism). `init(sublist)` seeds the
/// accumulator.
template <class AccInit, class Step, class Finish>
void interleave_sublists(const packed_t* packed, const index_t* heads,
                         std::size_t k, unsigned threads, unsigned W,
                         AccInit init, Step step, Finish finish) {
  W = std::clamp(W, 1u, kMaxInterleave);
  std::atomic<std::size_t> next_claim{0};
  auto worker = [&]() {
    struct Cursor {
      index_t v;    ///< current vertex
      index_t j;    ///< owning sublist
      value_t acc;  ///< running combine
    };
    Cursor cur[kMaxInterleave];
    std::size_t active = 0;
    auto claim = [&]() -> bool {
      const std::size_t j =
          next_claim.fetch_add(1, std::memory_order_relaxed);
      if (j >= k) return false;
      cur[active] = Cursor{heads[j], static_cast<index_t>(j), init(j)};
      prefetch_ro(&packed[heads[j]]);
      ++active;
      return true;
    };
    for (unsigned i = 0; i < W && claim(); ++i) {
    }
    while (active > 0) {
      for (std::size_t i = 0; i < active;) {
        Cursor& c = cur[i];
        const packed_t w = packed[c.v];
        prefetch_ro(&packed[hot_link(w)]);
        step(c.v, w, c.acc);
        if (!hot_tail(w)) {
          c.v = hot_link(w);
          ++i;
          continue;
        }
        finish(c.j, c.v, c.acc);
        const std::size_t j =
            next_claim.fetch_add(1, std::memory_order_relaxed);
        if (j < k) {
          c = Cursor{heads[j], static_cast<index_t>(j), init(j)};
          prefetch_ro(&packed[heads[j]]);
          ++i;
        } else {
          --active;  // drain: rerun index i with the swapped-in cursor
          cur[i] = cur[active];
        }
      }
    }
  };
#if defined(LISTRANK90_HAVE_OPENMP)
  if (threads > 1) {
#pragma omp parallel num_threads(threads)
    worker();
    return;
  }
#endif
  (void)threads;
  worker();
}

/// Exclusive list scan into `out` (sized n) per the plan, reusing `ws`.
/// Preconditions: `list` is a valid LinkedList, out.size() == list.size().
/// `kOnes` treats every value as 1 regardless of list.value (ranking);
/// only rank_into sets it.
template <ListOp Op, bool kOnes = false>
ExecInfo scan_into(const LinkedList& list, Op op, const HostPlan& plan,
                   Workspace& ws, std::span<value_t> out) {
  ExecInfo info;
  const std::size_t n = list.size();
  if (n == 0) return info;
  info.interleave = 1;
  if (n == 1) {
    out[list.head] = Op::identity();
    return info;
  }

  auto serial_fallback = [&] {
    if constexpr (kOnes) {
      for_each_in_order(list, [&](index_t v, std::size_t pos) {
        out[v] = static_cast<value_t>(pos);
      });
    } else {
      serial_scan_into(list, out, op);
    }
    return info;
  };

  const std::size_t want = std::min(plan.sublists, n / 2);
  // The packed path pays off even on one thread (W independent load
  // chains hide latency where the serial walk stalls on every hop); the
  // legacy kernels need real threads to beat the serial walk.
  bool packed = plan.interleave >= 1 && (kOnes || kOpLane32<Op>) &&
                n <= kHotMaxVertices;
  if (want < 2 || (!packed && plan.threads <= 1)) return serial_fallback();

  const unsigned W = std::clamp(plan.interleave, 1u, kMaxInterleave);
  Workspace::PackedKey key;
  bool cache_hit = false;
  if (packed) {
    key.next_data = list.next.data();
    key.value_data = kOnes ? nullptr : list.value.data();
    key.n = n;
    key.head = list.head;
    key.sublists = want;
    key.ones = kOnes;
    key.rng_at_entry = ws.rng;  // before any draws: picks would repeat
    cache_hit = ws.packed_cache_hit(key);
  }
  if (!cache_hit) {
    choose_boundaries(list, want - 1, ws, list.find_tail());
    // Sublist heads: the whole-list head plus each pick's successor. A
    // pick whose successor is itself a tail yields a single-vertex
    // sublist.
    ws.fit_uninit(ws.heads, want);
    ws.heads.clear();
    ws.heads.push_back(list.head);
    for (const index_t r : ws.picks) ws.heads.push_back(list.next[r]);
    bool built = false;
    if constexpr (kOnes || kOpLane32<Op>) {
      if (packed) built = build_packed<kOnes>(list, op, plan.threads, ws);
    }
    if (built) {
      ws.packed_cache_store(key);
    } else {
      // Either the legacy kernels were planned, or some value misses the
      // 32-bit lane: the slab (if any) no longer matches ws.heads.
      if (packed && plan.threads <= 1) {
        ws.invalidate_packed();
        return serial_fallback();
      }
      packed = false;
      ws.invalidate_packed();
    }
  }
  const std::size_t k = ws.heads.size();

  // Phase 1: per-sublist inclusive sums; record each sublist's tail.
  ws.fit(ws.sums, k, Op::identity());
  ws.fit(ws.tails, k, kNoVertex);
  if (packed) {
    interleave_sublists(
        ws.packed.data(), ws.heads.data(), k, plan.threads, W,
        [&](std::size_t) { return Op::identity(); },
        [&](index_t, packed_t w, value_t& acc) {
          acc = op(acc, hot_value(w));
        },
        [&](index_t j, index_t v, value_t acc) {
          ws.sums[j] = acc;
          ws.tails[j] = v;
        });
  } else {
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(plan.threads)
#endif
    for (std::size_t j = 0; j < k; ++j) {
      index_t v = ws.heads[j];
      value_t acc = Op::identity();
      while (true) {
        acc = op(acc, kOnes ? value_t{1} : list.value[v]);
        if (ws.is_tail[v]) break;
        v = list.next[v];
      }
      ws.sums[j] = acc;
      ws.tails[j] = v;
    }
  }

  // Phase 2 (serial; k is tiny): order the sublists by chaining
  // tail -> successor head, then exclusive-scan their sums. The
  // head-ownership table is epoch-stamped, so this is O(k) per run, not
  // O(n). On the packed path successor links come from the SLAB, never
  // the live list: a cache-hit run then reads only the self-consistent
  // snapshot taken at build time, so a caller mutating the list between
  // the runs of a batch (e.g. after an earlier future resolved) gets the
  // coherent as-of-build answer instead of a stale/live mix.
  ws.owner_begin(n);
  for (std::size_t j = 0; j < k; ++j)
    ws.owner_set(ws.heads[j], static_cast<index_t>(j));
  ws.fit(ws.headscan, k, Op::identity());
  {
    value_t acc = Op::identity();
    std::size_t j = 0;  // the first sublist starts at the list head
    for (std::size_t seen = 0; seen < k; ++seen) {
      ws.headscan[j] = acc;
      acc = op(acc, ws.sums[j]);
      const index_t t = ws.tails[j];
      const index_t nt = packed ? hot_link(ws.packed[t]) : list.next[t];
      if (nt == t) break;  // the global tail ends the chain
      const index_t owner = ws.owner_get(nt);
      if (owner == kNoVertex) break;  // defensive: malformed snapshot
      j = owner;
    }
  }

  // Phase 3: expand each sublist from its head's scan value.
  if (packed) {
    value_t* o = out.data();
    interleave_sublists(
        ws.packed.data(), ws.heads.data(), k, plan.threads, W,
        [&](std::size_t j) { return ws.headscan[j]; },
        [&](index_t v, packed_t w, value_t& acc) {
          o[v] = acc;
          acc = op(acc, hot_value(w));
        },
        [](index_t, index_t, value_t) {});
  } else {
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(plan.threads)
#endif
    for (std::size_t j = 0; j < k; ++j) {
      index_t v = ws.heads[j];
      value_t acc = ws.headscan[j];
      while (true) {
        out[v] = acc;
        acc = op(acc, kOnes ? value_t{1} : list.value[v]);
        if (ws.is_tail[v]) break;
        v = list.next[v];
      }
    }
  }

  info.interleave = packed ? W : 1;
  info.packed = packed;
  info.packed_cached = cache_hit;
  info.sublists = k;
  return info;
}

/// Exclusive list rank into `out`: the all-ones scan without ever
/// materializing a ones copy -- the packed slab's value lane is the
/// constant 1, the legacy kernels substitute it inline, and the serial
/// fallback writes positions directly. Correct for any plan.
inline ExecInfo rank_into(const LinkedList& list, const HostPlan& plan,
                          Workspace& ws, std::span<value_t> out) {
  return scan_into<OpPlus, /*kOnes=*/true>(list, OpPlus{}, plan, ws, out);
}

}  // namespace lr90::host_exec
