// The host execution kernel: Reid-Miller's three-phase sublist scan on real
// hardware (OpenMP threads when available), generic over the operator and
// allocation-free given a warmed-up Workspace.
//
// This is the single implementation behind both entry points:
//   * lr90::Engine with BackendKind::kHost (workspace reused across calls);
//   * the legacy host_list_scan/host_list_rank shims (one local workspace
//     per call, core/parallel_host.hpp).
//
// Same structure as the paper's algorithm, non-destructively: sublist
// boundaries live in a bitmap instead of planted self-loops, so the input
// list stays shared read-only across threads. Threads own contiguous blocks
// of sublists ("assign virtual processors to physical processors once, load
// balance only locally"); OpenMP dynamic scheduling within the block plays
// the role of the vector load balancing.
#pragma once

#include <algorithm>
#include <span>

#include "core/workspace.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "support/rng.hpp"

#if defined(LISTRANK90_HAVE_OPENMP)
#include <omp.h>
#endif

namespace lr90::host_exec {

/// Execution shape chosen by the Planner (or the legacy shims).
struct HostPlan {
  /// Worker threads to use (already resolved; >= 1).
  unsigned threads = 1;
  /// Total sublist count target; < 2 selects the serial fallback.
  std::size_t sublists = 0;
};

/// Worker threads actually available for `requested` (0 = library default:
/// the OpenMP thread count, or 1 without OpenMP).
inline unsigned effective_threads(unsigned requested) {
  if (requested > 0) return requested;
#if defined(LISTRANK90_HAVE_OPENMP)
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

/// Serial walk fallback, used when parallelism cannot pay off.
template <ListOp Op>
void serial_scan_into(const LinkedList& list, std::span<value_t> out,
                      Op op = {}) {
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
}

/// Chooses `count` distinct sublist boundary vertices (plus the global
/// tail) into ws.is_tail / ws.picks. Rejection sampling against the bitmap
/// needs no per-call set: the pick density is at most 1/2, so the expected
/// number of retries per pick is below one.
inline void choose_boundaries(const LinkedList& list, std::size_t count,
                              Workspace& ws, index_t global_tail) {
  const std::size_t n = list.size();
  ws.fit(ws.is_tail, n, std::uint8_t{0});
  ws.fit_uninit(ws.picks, count);
  ws.picks.clear();  // keep capacity, refill below
  ws.is_tail[global_tail] = 1;
  while (ws.picks.size() < count) {
    const auto r = static_cast<index_t>(ws.rng.uniform(n));
    if (ws.is_tail[r]) continue;  // duplicate or the global tail: redraw
    ws.is_tail[r] = 1;
    ws.picks.push_back(r);
  }
}

/// Exclusive list scan into `out` (sized n) per the plan, reusing `ws`.
/// Preconditions: `list` is a valid LinkedList, out.size() == list.size().
template <ListOp Op>
void scan_into(const LinkedList& list, Op op, const HostPlan& plan,
               Workspace& ws, std::span<value_t> out) {
  const std::size_t n = list.size();
  if (n == 0) return;
  if (n == 1) {
    out[list.head] = Op::identity();
    return;
  }

  const std::size_t want = std::min(plan.sublists, n / 2);
  if (plan.threads <= 1 || want < 2) {
    serial_scan_into(list, out, op);
    return;
  }

  choose_boundaries(list, want - 1, ws, list.find_tail());

  // Sublist heads: the whole-list head plus each pick's successor. A pick
  // whose successor is itself a tail yields a single-vertex sublist.
  ws.fit_uninit(ws.heads, want);
  ws.heads.clear();
  ws.heads.push_back(list.head);
  for (const index_t r : ws.picks) ws.heads.push_back(list.next[r]);
  const std::size_t k = ws.heads.size();

  // Phase 1: per-sublist inclusive sums; record each sublist's tail.
  ws.fit(ws.sums, k, Op::identity());
  ws.fit(ws.tails, k, kNoVertex);
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(plan.threads)
#endif
  for (std::size_t j = 0; j < k; ++j) {
    index_t v = ws.heads[j];
    value_t acc = Op::identity();
    while (true) {
      acc = op(acc, list.value[v]);
      if (ws.is_tail[v]) break;
      v = list.next[v];
    }
    ws.sums[j] = acc;
    ws.tails[j] = v;
  }

  // Phase 2 (serial; k is tiny): order the sublists by chaining
  // tail -> successor head, then exclusive-scan their sums.
  ws.fit(ws.owner_of_head, n, kNoVertex);
  for (std::size_t j = 0; j < k; ++j)
    ws.owner_of_head[ws.heads[j]] = static_cast<index_t>(j);
  ws.fit(ws.headscan, k, Op::identity());
  {
    value_t acc = Op::identity();
    std::size_t j = 0;  // the first sublist starts at the list head
    for (std::size_t seen = 0; seen < k; ++seen) {
      ws.headscan[j] = acc;
      acc = op(acc, ws.sums[j]);
      const index_t t = ws.tails[j];
      if (list.next[t] == t) break;  // the global tail ends the chain
      j = ws.owner_of_head[list.next[t]];
    }
  }

  // Phase 3: expand each sublist from its head's scan value.
#if defined(LISTRANK90_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8) num_threads(plan.threads)
#endif
  for (std::size_t j = 0; j < k; ++j) {
    index_t v = ws.heads[j];
    value_t acc = ws.headscan[j];
    while (true) {
      out[v] = acc;
      acc = op(acc, list.value[v]);
      if (ws.is_tail[v]) break;
      v = list.next[v];
    }
  }
}

}  // namespace lr90::host_exec
