// Virtual-processor setup for the Reid-Miller algorithm (paper Section 3,
// "Initialization").
//
// Every virtual processor except P0 picks a random vertex to become the
// *tail* of a sublist; the vertex's successor becomes the *head* of that
// processor's sublist. P0 takes the list head. Two processors may pick the
// same position; the paper resolves this with a competition -- each writes
// its index at its position and reads it back, and a processor that does
// not see its own index drops out. Picks that land on the global tail are
// degenerate (the "successor" would be the tail itself) and also drop out.
//
// The result is k+1 <= m+1 surviving virtual processors; vp 0 is always
// P0. The competition uses a caller-provided n-sized board -- the public
// algorithms lend their output array so no extra O(n) memory is needed
// (the paper's 5p + c space bound).
#pragma once

#include <span>
#include <vector>

#include "lists/linked_list.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace lr90 {

struct SublistSetup {
  /// Random pick of vp j (the tail of the *preceding* sublist); R[0] is
  /// kNoVertex (P0 starts at the list head and picked nothing).
  std::vector<index_t> R;
  /// Head of vp j's sublist: next[R[j]] in the original list (H[0] is the
  /// list head).
  std::vector<index_t> H;
  index_t global_tail = kNoVertex;

  /// Number of surviving virtual processors, k+1.
  std::size_t count() const { return R.size(); }
};

/// Performs the picks, the duplicate competition, and the head gathers,
/// charging proc 0 of `machine` (initialization is part of the paper's
/// T_Initialize kernel; the remaining per-variant work -- saving and
/// zeroing tail values, planting self-loops -- is charged by the caller).
/// `board` must have list.size() elements and is clobbered.
/// `tail_hint` may pass a precomputed global tail (kNoVertex = find it).
SublistSetup init_sublists(vm::Machine& machine, const LinkedList& list,
                           std::size_t m, Rng& rng,
                           std::span<value_t> board,
                           index_t tail_hint = kNoVertex);

}  // namespace lr90
