// Experiment drivers shared by the bench binaries.
//
// Each of the paper's tables and figures boils down to: build a random
// list, run algorithm X on a machine with p processors, report simulated
// ns-per-vertex. run_sim() packages that through an lr90::Engine with
// verify_output on, so every bench doubles as an integration test -- a
// wrong answer comes back as a typed Status (it used to abort the whole
// bench), and CheckedRunner gives benches a one-liner to record failures
// and exit non-zero.
#pragma once

#include <cstdint>

#include "core/engine.hpp"

namespace lr90 {

struct SimRun {
  Status status;  ///< kWrongAnswer when the verified output mismatched
  double cycles = 0.0;
  double ns = 0.0;
  double ns_per_vertex = 0.0;
  double cycles_per_vertex = 0.0;
  AlgoStats stats;

  bool ok() const { return status.ok(); }
};

/// Runs `method` on a fresh random list of n vertices with p simulated
/// processors and returns the simulated costs. The answer is checked
/// against the serial reference; mismatches are reported in `status`
/// (cost fields still describe the bad run). `rank` selects list ranking
/// (all-ones values) versus list scan (random values).
SimRun run_sim(Method method, std::size_t n, unsigned p, bool rank,
               std::uint64_t seed = 42,
               const ReidMillerOptions& rm = {});

/// run_sim for bench mains: forwards every call, prints failures to
/// stderr and remembers them so the bench can `return sim.exit_code();`.
class CheckedRunner {
 public:
  SimRun operator()(Method method, std::size_t n, unsigned p, bool rank,
                    std::uint64_t seed = 42,
                    const ReidMillerOptions& rm = {});

  bool failed() const { return failed_; }
  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace lr90
