// Experiment drivers shared by the bench binaries.
//
// Each of the paper's tables and figures boils down to: build a random
// list, run algorithm X on a machine with p processors, report simulated
// ns-per-vertex. run_sim() packages that (and verifies the answer against
// the serial reference each time, so every bench doubles as an integration
// test).
#pragma once

#include <cstdint>

#include "core/api.hpp"

namespace lr90 {

struct SimRun {
  double cycles = 0.0;
  double ns = 0.0;
  double ns_per_vertex = 0.0;
  double cycles_per_vertex = 0.0;
  AlgoStats stats;
};

/// Runs `method` on a fresh random list of n vertices with p simulated
/// processors and returns the simulated costs. Aborts (assert) if the
/// algorithm produced a wrong answer. `rank` selects list ranking
/// (all-ones values) versus list scan (random values).
SimRun run_sim(Method method, std::size_t n, unsigned p, bool rank,
               std::uint64_t seed = 42,
               const ReidMillerOptions& rm = {});

}  // namespace lr90
