#include "core/engine.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "analysis/cost_eqs.hpp"
#include "analysis/tuner.hpp"
#include "baselines/miller_reif.hpp"
#include "baselines/serial.hpp"
#include "baselines/wyllie.hpp"
#include "core/host_exec.hpp"
#include "lists/encode.hpp"
#include "lists/validate.hpp"
#include "shard/sharded.hpp"
#include "support/cpu_features.hpp"

namespace lr90 {

// -- names ------------------------------------------------------------------

const char* method_name(Method m) {
  switch (m) {
    case Method::kAuto: return "auto";
    case Method::kSerial: return "serial";
    case Method::kWyllie: return "wyllie";
    case Method::kMillerReif: return "miller-reif";
    case Method::kAndersonMiller: return "anderson-miller";
    case Method::kReidMiller: return "reid-miller";
    case Method::kReidMillerEncoded: return "reid-miller-encoded";
  }
  return "?";
}

Method resolve_auto(std::size_t n, Method requested) {
  if (requested != Method::kAuto) return requested;
  if (n <= kAutoSerialMax) return Method::kSerial;
  if (n <= kAutoWyllieMax) return Method::kWyllie;
  return Method::kReidMiller;
}

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kSerial: return "serial";
    case BackendKind::kSim: return "sim";
    case BackendKind::kHost: return "host";
  }
  return "?";
}

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kWrongAnswer: return "wrong-answer";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kStaleGeneration: return "stale-generation";
    case StatusCode::kCorruptSlab: return "corrupt-slab";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

Status Status::invalid(std::string msg) {
  return Status{StatusCode::kInvalidInput, std::move(msg)};
}
Status Status::unsupported(std::string msg) {
  return Status{StatusCode::kUnsupported, std::move(msg)};
}
Status Status::wrong_answer(std::string msg) {
  return Status{StatusCode::kWrongAnswer, std::move(msg)};
}
Status Status::unavailable(std::string msg) {
  return Status{StatusCode::kUnavailable, std::move(msg)};
}
Status Status::stale_generation(std::string msg) {
  return Status{StatusCode::kStaleGeneration, std::move(msg)};
}
Status Status::corrupt_slab(std::string msg) {
  return Status{StatusCode::kCorruptSlab, std::move(msg)};
}
Status Status::resource_exhausted(std::string msg) {
  return Status{StatusCode::kResourceExhausted, std::move(msg)};
}
Status Status::deadline_exceeded(std::string msg) {
  return Status{StatusCode::kDeadlineExceeded, std::move(msg)};
}

namespace {

/// Serial rank into `out`: position of each vertex in traversal order.
void serial_rank_into(const LinkedList& list, std::span<value_t> out) {
  for_each_in_order(list, [&](index_t v, std::size_t pos) {
    out[v] = static_cast<value_t>(pos);
  });
}

}  // namespace

// -- planner ----------------------------------------------------------------

Planner::Planner(const EngineOptions& opt)
    : backend_(opt.backend),
      processors_(std::max(1u, opt.processors)),
      threads_(opt.threads),
      sublists_per_thread_(std::max(1u, opt.sublists_per_thread)),
      pinned_interleave_(opt.interleave),
      tier_(opt.tier),
      shard_(opt.shard),
      pinned_m_(opt.reid_miller.m),
      pinned_s1_(opt.reid_miller.s1),
      sync_cycles_(opt.machine.sync_cycles),
      table_(vm::CostTable::cray_c90()),
      memo_(std::make_unique<TuneMemo>()) {
  vm::MachineConfig cfg = opt.machine;
  cfg.processors = processors_;
  contention_ = cfg.contention_factor();
}

TuneResult Planner::tuned(double n, bool rank_kernels,
                          double op_factor) const {
  const TuneMemo::Key key{n, rank_kernels, op_factor};
  {
    std::lock_guard<std::mutex> lock(memo_->mu);
    auto it = memo_->cache.find(key);
    if (it != memo_->cache.end()) return it->second;
  }
  // Tune outside the lock: tune() is pure and can take milliseconds, so
  // concurrent first-misses may duplicate work but never serialize on it.
  const CostConstants k =
      CostConstants::from(table_, rank_kernels).with_combine_factor(op_factor);
  const TuneResult r = tune(n, k, processors_, contention_);
  std::lock_guard<std::mutex> lock(memo_->mu);
  memo_->cache.emplace(key, r);
  return r;
}

HostTuneResult Planner::host_tuned(double n, double op_factor,
                                   unsigned max_threads,
                                   TuneTier tier) const {
  const std::tuple<double, double, unsigned, int> key{
      n, op_factor, max_threads, static_cast<int>(tier)};
  {
    std::lock_guard<std::mutex> lock(memo_->mu);
    auto it = memo_->host_cache.find(key);
    if (it != memo_->host_cache.end()) return it->second;
  }
  const HostTuneResult r =
      host_tune(n, op_factor, max_threads, 0, 0, {}, tier);
  std::lock_guard<std::mutex> lock(memo_->mu);
  memo_->host_cache.emplace(key, r);
  return r;
}

double Planner::serial_cycles(std::size_t n, bool rank, ScanOp op) const {
  const double per_vertex =
      (rank ? table_.serial_rank_per_vertex : table_.serial_scan_per_vertex) *
      op_cost_factor(op);
  return per_vertex * static_cast<double>(n) + table_.serial_startup;
}

double Planner::wyllie_cycles(std::size_t n, bool /*rank*/, ScanOp op) const {
  // Mirrors the charges of wyllie_scan: per round, every processor issues
  // two gathers and one combine over its n/p chunk, then a barrier; setup
  // is one scatter + one gather chunked over processors plus one full-array
  // copy on processor 0. The operator's cost scales the combine only.
  const double nd = static_cast<double>(n);
  const double p = static_cast<double>(processors_);
  const double rounds = detail::wyllie_rounds(n);
  const double per_round =
      (2.0 * table_.gather.per_elem * contention_ +
       table_.map2.per_elem * op_cost_factor(op)) *
          nd / p +
      2.0 * table_.gather.startup + table_.map2.startup + sync_cycles_;
  const double setup =
      (table_.scatter.per_elem + table_.gather.per_elem) * contention_ * nd /
          p +
      table_.copy.per_elem * contention_ * nd + table_.scatter.startup +
      table_.gather.startup + table_.copy.startup + 2.0 * sync_cycles_;
  return rounds * per_round + setup;
}

double Planner::reid_miller_cycles(std::size_t n, bool /*rank*/,
                                   ScanOp op) const {
  // The unencoded rank path runs the scan kernels over all-ones values, so
  // both rank and scan plan with the scan-kernel constants. Roughly six
  // barriers frame the phases.
  if (n < 2) return serial_cycles(n, false, op);
  return tuned(static_cast<double>(n), /*rank_kernels=*/false,
               op_cost_factor(op))
             .cycles +
         6.0 * sync_cycles_;
}

Planner::Decision Planner::decide(std::size_t n, Method requested, bool rank,
                                  ScanOp op) const {
  Decision d;
  d.method = requested;
  if (rank) op = ScanOp::kPlus;  // ranking always combines by addition

  if (backend_ == BackendKind::kHost) {
    if (pinned_interleave_ > 0 && tier_ == KernelTier::kAuto) {
      // The deprecated alias in use: a pinned width with no tier request.
      // Honoured for one more release as "prefer the packed family at
      // this W" (exactly the old semantics); warn once per process.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed))
        std::fprintf(stderr,
                     "lr90: EngineOptions::interleave is deprecated; set "
                     "EngineOptions::tier (interleave stays a width pin "
                     "for one release)\n");
    }
    // Sharding decision first: a pinned ShardOptions::shards, or
    // auto-shard when n exceeds the packed path's 2^31 link-lane bound
    // (lists/encode.hpp kHotMaxVertices) or the resident byte budget.
    // This is the TYPED fallback for "too big": the request routes to the
    // two-level sharded path -- where each shard takes the packed kernels
    // only when IT fits the lane (the per-shard bound check in
    // shard/sharded.cpp) -- instead of ever packing 31-bit links that
    // cannot hold them. Explicit kSerial/kWyllie requests are honoured
    // unsharded as before.
    if (requested == Method::kAuto || requested == Method::kReidMiller) {
      std::size_t shards = shard_.shards;
      if (shards == 0 && shard_.auto_shard) {
        const std::size_t bytes = n * (sizeof(index_t) + sizeof(value_t));
        if (n > kHotMaxVertices)
          shards = (n + kHotMaxVertices / 2 - 1) / (kHotMaxVertices / 2);
        if (shard_.byte_budget > 0 && bytes > shard_.byte_budget)
          shards = std::max<std::size_t>(
              shards,
              (2 * bytes + shard_.byte_budget - 1) / shard_.byte_budget);
      }
      if (shards > 0 && n > 0) {
        d.shard_count = static_cast<unsigned>(std::min<std::size_t>(
            std::min<std::size_t>(shards, n), shard::kMaxShards));
        d.method = Method::kReidMiller;
        // Tune the per-shard execution shape on the shard width, not n:
        // each shard runs the ordinary (threads x W) hot path over its
        // own slice.
        const std::size_t width =
            (n + d.shard_count - 1) / d.shard_count;
        const unsigned eff = host_exec::effective_threads(threads_);
        const double factor = op_cost_factor(op);
        const auto breakeven =
            static_cast<std::size_t>(std::max(1.0, 2048.0 / factor));
        const auto useful = static_cast<unsigned>(std::min<std::size_t>(
            eff, std::max<std::size_t>(1, width / breakeven)));
        d.threads = useful;
        d.legacy_threads = useful;
        const bool lane =
            (rank || scan_op_lane32(op)) && width <= kHotMaxVertices;
        // Sharding IS the typed n > 2^31 fallback; inside a shard the
        // scalar cursors run (no SIMD across the spill/restore path yet),
        // so the shard plan tunes the cursor family only.
        d.tier = lane && tier_ != KernelTier::kLegacy
                     ? KernelTier::kPackedCursors
                     : KernelTier::kLegacy;
        if (d.tier == KernelTier::kLegacy) {
          d.sublists = static_cast<double>(d.threads) *
                       static_cast<double>(sublists_per_thread_);
          return d;
        }
        if (lane) {
          const unsigned wpin =
              pinned_interleave_ > 0
                  ? std::min(pinned_interleave_, host_exec::kMaxInterleave)
                  : 0;
          const double wd = static_cast<double>(width);
          const HostTuneResult ht =
              threads_ > 0 || wpin > 0
                  ? host_tune(wd, factor, eff, threads_ > 0 ? useful : 0,
                              wpin)
                  : host_tuned(wd, factor, eff, TuneTier::kCursorsOnly);
          if (threads_ == 0)
            d.threads = std::max(1u, std::min(ht.threads, eff));
          d.interleave =
              d.threads == ht.threads
                  ? ht.interleave
                  : host_tune(wd, factor, eff, d.threads, wpin).interleave;
        }
        d.sublists = static_cast<double>(d.threads) *
                     static_cast<double>(sublists_per_thread_);
        return d;
      }
    }
    const unsigned eff = host_exec::effective_threads(threads_);
    const double factor = op_cost_factor(op);
    // Parallelism must amortize thread fork/join (~tens of microseconds):
    // give every thread at least ~2k vertices of combine-equivalent work
    // (costlier operators amortize sooner), shedding threads before
    // falling back to the serial walk.
    const auto breakeven =
        static_cast<std::size_t>(std::max(1.0, 2048.0 / factor));
    const auto useful = static_cast<unsigned>(
        std::min<std::size_t>(eff, std::max<std::size_t>(1, n / breakeven)));
    d.threads = useful;
    d.sublists = static_cast<double>(useful) *
                 static_cast<double>(sublists_per_thread_);
    // Can the packed single-gather path serve this request? Ranking packs
    // the constant 1; lane-capable scans pack their values (subject to
    // the per-run 32-bit fit check, which falls back in the kernel).
    const bool lane =
        (rank || scan_op_lane32(op)) && n <= kHotMaxVertices;
    // Resolve the requested tier against the lane capability and CPUID:
    // which kernel families may the tuner search? kLegacy pins the
    // unpacked kernels; kSimdGather on a gather-incapable CPU (or under
    // LR90_FORCE_SCALAR) downgrades here, at plan time, to the cursor
    // family -- the same binary, a different branch.
    const bool packed_ok = lane && tier_ != KernelTier::kLegacy;
    // The deprecated width pin under kAuto keeps the OLD family contract
    // (scalar cursors at exactly that W -- the interleave sweep and the
    // pin tests depend on the literal width); only an explicit
    // kSimdGather request combines a pin with the vector family.
    const bool simd_ok =
        packed_ok && simd_gather_available() &&
        (tier_ == KernelTier::kSimdGather ||
         (tier_ == KernelTier::kAuto && pinned_interleave_ == 0));
    const TuneTier tt = !simd_ok ? TuneTier::kCursorsOnly
                        : tier_ == KernelTier::kSimdGather
                            ? TuneTier::kSimdOnly
                            : TuneTier::kBoth;
    const unsigned wpin =
        pinned_interleave_ > 0
            ? std::min(pinned_interleave_, host_exec::kMaxInterleave)
            : 0;
    const double nd = static_cast<double>(n);
    // The packed-vs-serial choice model. A caller-pinned knob (threads
    // or W) restricts its grid axis to what will actually run; with both
    // on auto, the memoized joint (tier x threads x W) grid picks the
    // full execution shape.
    HostTuneResult ht;
    if (packed_ok) {
      ht = threads_ > 0 || wpin > 0
               ? host_tune(nd, factor, eff, threads_ > 0 ? useful : 0, wpin,
                           {}, tt)
               : host_tuned(nd, factor, eff, tt);
    }
    if (requested == Method::kAuto) {
      // Threads alone justify the sublist kernel; so does the packed
      // multi-cursor path whenever the model beats the serial walk --
      // including on ONE thread, where W independent load chains hide
      // the memory latency the serial walk stalls on (the paper's
      // vectorization argument, on a CPU).
      if ((useful > 1 || (packed_ok && ht.packed_ns < ht.serial_ns)) &&
          n / 2 >= 2) {
        d.method = Method::kReidMiller;
      } else {
        d.method = Method::kSerial;
      }
    }
    d.tier = KernelTier::kLegacy;  // serial / non-lane / pinned-legacy runs
    if (d.method == Method::kReidMiller) {
      if (requested != Method::kAuto) {
        // An explicit reid-miller request keeps every available thread.
        d.threads = eff;
        d.legacy_threads = eff;
      } else {
        // The legacy kernels (planned, or reached by a runtime
        // lane-overflow fallback) have no W-way latency hiding: they
        // always want the full breakeven-shed count, even when the
        // packed model saturates at fewer workers below.
        d.legacy_threads = useful;
        if (threads_ == 0 && packed_ok) {
          // Auto threads: the joint grid picked the worker count.
          d.threads = std::max(1u, std::min(ht.threads, eff));
        }
      }
      d.sublists = static_cast<double>(d.threads) *
                   static_cast<double>(sublists_per_thread_);
      // W (and, under TuneTier::kBoth, the family) at the worker count
      // that will actually run: the choice model already evaluated that
      // count everywhere except the explicit request above, which
      // overrode the thread count to eff.
      if (packed_ok) {
        const HostTuneResult hw =
            d.threads == ht.threads
                ? ht
                : host_tune(nd, factor, eff, d.threads, wpin, {}, tt);
        d.interleave = hw.interleave;
        d.tier = hw.simd ? KernelTier::kSimdGather
                         : KernelTier::kPackedCursors;
      }
    }
    return d;
  }

  if (backend_ == BackendKind::kSerial) {
    if (requested == Method::kAuto) d.method = Method::kSerial;
    return d;
  }

  // Sim backend: pick the model's cheapest of serial / Wyllie / Reid-Miller
  // (the same three the legacy thresholds chose between), and carry the
  // tuned m and S_1 so the algorithm does not re-tune.
  if (requested == Method::kAuto) {
    if (n <= 8) {
      d.method = Method::kSerial;
      d.predicted_cycles = serial_cycles(n, rank, op);
      return d;
    }
    const double serial = serial_cycles(n, rank, op);
    const double wyllie = wyllie_cycles(n, rank, op);
    const double rm = reid_miller_cycles(n, rank, op);
    if (serial <= wyllie && serial <= rm) {
      d.method = Method::kSerial;
      d.predicted_cycles = serial;
    } else if (wyllie <= rm) {
      d.method = Method::kWyllie;
      d.predicted_cycles = wyllie;
    } else {
      d.method = Method::kReidMiller;
      d.predicted_cycles = rm;
    }
  }

  if ((d.method == Method::kReidMiller ||
       d.method == Method::kReidMillerEncoded) &&
      n >= 2) {
    if (pinned_m_ > 0 && pinned_s1_ > 0) {
      // Both knobs pinned by the caller: nothing left to tune.
      d.sublists = pinned_m_;
      d.s1 = pinned_s1_;
    } else {
      const TuneResult t = tuned(static_cast<double>(n),
                                 d.method == Method::kReidMillerEncoded,
                                 op_cost_factor(op));
      d.sublists = pinned_m_ > 0 ? pinned_m_ : t.m;
      d.s1 = pinned_s1_ > 0 ? pinned_s1_ : t.s1;
      if (d.predicted_cycles == 0.0)
        d.predicted_cycles = t.cycles + 6.0 * sync_cycles_;
    }
  }
  return d;
}

// -- backends ---------------------------------------------------------------

namespace {

class SerialBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::kSerial; }

  Status execute(const Request& req, const Planner::Decision& plan,
                 Workspace& /*ws*/, RunResult& out) override {
    if (plan.method != Method::kSerial) {
      return Status::unsupported(
          std::string("the serial backend only runs method 'serial', not '") +
          method_name(plan.method) + "'");
    }
    const LinkedList& list = *req.list;
    if (req.rank) {
      serial_rank_into(list, out.scan);
    } else {
      with_scan_op(req.op, [&](auto op) {
        host_exec::serial_scan_into(list, std::span<value_t>(out.scan), op);
      });
    }
    out.stats.algo.rounds = list.empty() ? 0 : 1;
    out.stats.algo.link_steps = list.size();
    return Status::success();
  }
};

class HostBackend final : public ExecutionBackend {
 public:
  /// Keeps a copy of the sharding knobs: backends must not point into the
  /// (movable) Engine.
  explicit HostBackend(const EngineOptions& opt) : shard_opts_(opt.shard) {}

  BackendKind kind() const override { return BackendKind::kHost; }

  Status execute(const Request& req, const Planner::Decision& plan,
                 Workspace& ws, RunResult& out) override {
    const LinkedList* list = req.list;
    if (plan.method != Method::kSerial &&
        plan.method != Method::kReidMiller) {
      return Status::unsupported(
          std::string("the host backend runs 'serial' or 'reid-miller', "
                      "not '") +
          method_name(plan.method) + "'");
    }
    if (plan.shard_count > 0) return execute_sharded(req, plan, ws, out);

    host_exec::HostPlan hp;
    hp.threads = plan.method == Method::kSerial ? 1 : plan.threads;
    hp.sublists = static_cast<std::size_t>(plan.sublists);
    hp.interleave = plan.interleave;
    hp.legacy_threads =
        plan.method == Method::kSerial ? 1 : plan.legacy_threads;
    hp.tier = plan.method == Method::kSerial ? KernelTier::kLegacy
                                             : plan.tier;
    host_exec::ExecInfo info;
    if (req.rank) {
      if (plan.method == Method::kSerial) {
        serial_rank_into(*list, out.scan);
        info.interleave = list->empty() ? 0 : 1;
        info.threads = info.interleave;
        if (!list->empty()) info.tier = KernelTier::kLegacy;
      } else {
        // Ranks as the all-ones scan without a ones copy: the packed
        // slab's value lane is the constant 1 and the legacy kernels
        // substitute it inline.
        info = host_exec::rank_into(*list, hp, ws,
                                    std::span<value_t>(out.scan));
      }
    } else {
      with_scan_op(req.op, [&](auto op) {
        if (plan.method == Method::kSerial) {
          host_exec::serial_scan_into(*list, std::span<value_t>(out.scan),
                                      op);
          info.interleave = list->empty() ? 0 : 1;
          info.threads = info.interleave;
          if (!list->empty()) info.tier = KernelTier::kLegacy;
        } else {
          info = host_exec::scan_into(*list, op, hp, ws,
                                      std::span<value_t>(out.scan));
        }
      });
    }

    const std::size_t n = req.list->size();
    const bool sublists_ran = info.sublists > 0;
    out.stats.algo.rounds = n == 0 ? 0 : (sublists_ran ? 3 : 1);
    out.stats.algo.link_steps = sublists_ran ? 2 * n : n;
    // Owner table + stamps (1.5n words) + bitmap (n bytes) + the packed
    // slab (n words when it ran) + O(sublists) arrays.
    out.stats.algo.extra_words =
        sublists_ran
            ? n + n / 2 + n / 8 + (info.packed ? n : 0) +
                  4 * static_cast<std::uint64_t>(plan.sublists)
            : 0;
    out.stats.host_interleave = info.interleave;
    out.stats.host_threads = info.threads;
    out.stats.host_packed = info.packed;
    out.stats.host_packed_cached = info.packed_cached;
    out.stats.kernel_tier = info.tier;
    out.stats.host_build_ns = info.build_ns;
    out.stats.host_phase1_ns = info.phase1_ns;
    out.stats.host_phase2_ns = info.phase2_ns;
    out.stats.host_phase3_ns = info.phase3_ns;
    out.stats.host_parallel_frac = info.parallel_frac();
    return Status::success();
  }

 private:
  /// Routes a shard-planned run through the two-level sharded executor
  /// (shard/sharded.cpp) and folds its counters into RunStats.
  Status execute_sharded(const Request& req, const Planner::Decision& plan,
                         Workspace& ws, RunResult& out) {
    shard::ShardExec exec;
    exec.shards = plan.shard_count;
    exec.threads = std::max(1u, plan.threads);
    exec.interleave = plan.interleave;
    exec.byte_budget = shard_opts_.byte_budget;
    exec.prefetch = shard_opts_.prefetch;
    exec.degrade = shard_opts_.degrade;
    if (!req.shard_spill_dir.empty()) {
      // A request-pinned directory (the serving layer's per-snapshot-
      // generation dir): reuse matching files and leave them on disk.
      exec.spill_dir = req.shard_spill_dir;
      exec.keep_files = true;
    } else if (!shard_opts_.spill_dir.empty()) {
      exec.spill_dir = shard_opts_.spill_dir;
      exec.keep_files = true;
    }
    shard::ShardRunStats ss;
    const Status st =
        shard::sharded_scan(*req.list, req.rank, req.op, exec, ws,
                            std::span<value_t>(out.scan), ss);
    // Fold the store's failure/recovery counters even when the run failed
    // -- a typed kCorruptSlab answer should still report what was seen.
    out.stats.shard_corrupt_slabs = ss.store.corrupt_slabs;
    out.stats.shard_repacks = ss.store.repacks;
    out.stats.shard_degraded = ss.store.degraded;
    if (!st.ok()) return st;
    const std::size_t n = req.list->size();
    out.stats.algo.rounds = n == 0 ? 0 : 3;
    out.stats.algo.link_steps = 2 * n;
    // Per-run reduced-list arrays (~4 words per segment) plus one shard's
    // slab resident at a time.
    out.stats.algo.extra_words =
        4 * ss.segments +
        (exec.interleave > 0 && ss.shards > 0 ? (n + ss.shards - 1) /
                                                    ss.shards
                                              : 0);
    out.stats.host_threads = exec.threads;
    out.stats.host_interleave = exec.interleave;
    out.stats.host_packed =
        exec.interleave >= 1 && (req.rank || scan_op_lane32(req.op));
    // Shards run the scalar cursor family (the Planner never plans SIMD
    // across the spill/restore path); n == 0 never reaches the kernels.
    out.stats.kernel_tier = n == 0 ? KernelTier::kAuto
                            : out.stats.host_packed
                                ? KernelTier::kPackedCursors
                                : KernelTier::kLegacy;
    out.stats.shard_count = ss.shards;
    out.stats.shard_segments = ss.segments;
    out.stats.shard_loads = ss.store.loads;
    out.stats.shard_spills = ss.store.spills;
    out.stats.shard_prefetch_hits = ss.store.prefetch_hits;
    out.stats.shard_spilled = ss.store.spilled;
    return st;
  }

  ShardOptions shard_opts_;  ///< copied from EngineOptions at construction
};

class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(const EngineOptions& opt)
      : opt_(opt), machine_(make_config(opt)) {}

  BackendKind kind() const override { return BackendKind::kSim; }
  const vm::Machine* machine() const override { return &machine_; }

  Status execute(const Request& req, const Planner::Decision& plan,
                 Workspace& ws, RunResult& out) override {
    machine_.reset();
    const LinkedList& input = *req.list;
    const std::size_t n = input.size();
    std::span<value_t> scan(out.scan);
    Rng& rng = ws.rng;
    AlgoStats& stats = out.stats.algo;

    // Carry the planner's tuned parameters, each only where the caller
    // left the knob on auto.
    ReidMillerOptions rm = opt_.reid_miller;
    if (rm.m <= 0 && plan.sublists > 0) rm.m = plan.sublists;
    if (rm.s1 <= 0 && plan.s1 > 0) rm.s1 = plan.s1;

    switch (plan.method) {
      case Method::kSerial:
        if (req.rank) {
          stats = serial_rank(machine_, 0, input, scan);
        } else {
          with_scan_op(req.op, [&](auto op) {
            stats = serial_scan(machine_, 0, input, scan, op);
          });
        }
        break;
      case Method::kWyllie:
        if (req.rank) {
          stats = wyllie_rank(machine_, input, scan);
        } else {
          with_scan_op(req.op, [&](auto op) {
            stats = wyllie_scan(machine_, input, scan, op);
          });
        }
        break;
      case Method::kMillerReif:
        if (req.rank) {
          stats = miller_reif_rank(machine_, input, scan, rng);
        } else {
          with_scan_op(req.op, [&](auto op) {
            stats = miller_reif_scan(machine_, input, scan, rng, op);
          });
        }
        break;
      case Method::kAndersonMiller:
        if (req.rank) {
          stats = anderson_miller_rank(machine_, input, scan, rng,
                                       opt_.anderson_miller);
        } else {
          with_scan_op(req.op, [&](auto op) {
            stats = anderson_miller_scan(machine_, input, scan, rng, op,
                                         opt_.anderson_miller);
          });
        }
        break;
      case Method::kReidMiller: {
        // The algorithm mutates (and restores) the list; run on the
        // workspace copy so the input stays const for the caller.
        LinkedList& copy = ws.fit_list(input);
        if (req.rank) {
          stats = reid_miller_rank(machine_, copy, scan, rng, rm);
        } else {
          with_scan_op(req.op, [&](auto op) {
            stats = reid_miller_scan(machine_, copy, scan, rng, op, rm);
          });
        }
        break;
      }
      case Method::kReidMillerEncoded: {
        if (!req.rank) {
          return Status::unsupported(
              "the encoded single-gather path supports ranking only");
        }
        LinkedList& ones = ws.fit_ones(input);
        if (!can_encode(ones)) {
          return Status::invalid(
              "list too long for the (link,value) 64-bit encoding");
        }
        std::vector<packed_t> packed = encode_list(ones);
        stats = reid_miller_rank_encoded(machine_, packed, input.head, scan,
                                         rng, rm);
        break;
      }
      case Method::kAuto:
        return Status::invalid("the planner never returns kAuto");
    }

    out.stats.has_sim = true;
    out.stats.sim_cycles = machine_.max_cycles();
    out.stats.sim_ns = machine_.elapsed_ns();
    out.stats.sim_ns_per_vertex =
        n > 0 ? out.stats.sim_ns / static_cast<double>(n) : 0.0;
    out.stats.ops = machine_.ops();
    return Status::success();
  }

 private:
  static vm::MachineConfig make_config(const EngineOptions& opt) {
    vm::MachineConfig cfg = opt.machine;
    cfg.processors = std::max(1u, opt.processors);
    return cfg;
  }

  EngineOptions opt_;
  vm::Machine machine_;
};

std::unique_ptr<ExecutionBackend> make_backend(const EngineOptions& opt) {
  switch (opt.backend) {
    case BackendKind::kSerial: return std::make_unique<SerialBackend>();
    case BackendKind::kSim: return std::make_unique<SimBackend>(opt);
    case BackendKind::kHost: return std::make_unique<HostBackend>(opt);
  }
  return std::make_unique<SerialBackend>();
}

/// Checks `got` against a serial reference computed into ws.verify.
Status verify_result(const Request& req, Workspace& ws,
                     std::span<const value_t> got) {
  const LinkedList& list = *req.list;
  ws.fit(ws.verify, list.size(), value_t{0});
  std::span<value_t> want(ws.verify);
  if (req.rank) {
    serial_rank_into(list, want);
  } else {
    with_scan_op(req.op, [&](auto op) {
      host_exec::serial_scan_into(list, want, op);
    });
  }
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (got[v] != want[v]) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "wrong answer at vertex %zu: got %lld, want %lld", v,
                    static_cast<long long>(got[v]),
                    static_cast<long long>(want[v]));
      return Status::wrong_answer(buf);
    }
  }
  return Status::success();
}

}  // namespace

// -- engine -----------------------------------------------------------------

Engine::Engine(EngineOptions opt)
    : opt_(std::move(opt)), planner_(opt_), backend_(make_backend(opt_)) {}

Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

RunResult Engine::rank(const LinkedList& list, Method method) {
  RankRequest req;
  req.list = &list;
  req.method = method;
  return run(req);
}

RunResult Engine::scan(const LinkedList& list, ScanOp op, Method method) {
  ScanRequest req;
  req.list = &list;
  req.op = op;
  req.method = method;
  return run(req);
}

RunResult Engine::run(const Request& req) {
  RunResult result;
  result.backend = opt_.backend;
  if (req.list == nullptr) {
    result.status = Status::invalid("request carries no list");
    return result;
  }
  if (opt_.validate_input) {
    if (const auto err = validate_list(*req.list)) {
      result.status = Status::invalid("invalid linked list: " + *err);
      return result;
    }
  }

  const Planner::Decision plan =
      planner_.decide(req.list->size(), req.method, req.rank, req.op);
  result.method_used = plan.method;
  result.scan.assign(req.list->size(), 0);
  // Per-run determinism: results depend on the options' seed, never on
  // what ran on this engine before.
  ws_.rng = Rng(opt_.seed);
  // The packed-slab cache is only trusted between the runs of one batch,
  // where the caller cannot mutate the list behind the key's pointers.
  if (!in_batch_) ws_.invalidate_packed();
  // A snapshot-keyed shared slab (if the request carries one) serves this
  // run only; a null request slab clears any previous installation.
  ws_.install_shared_slab(req.slab);

  const auto t0 = std::chrono::steady_clock::now();
  result.status = backend_->execute(req, plan, ws_, result);
  const auto t1 = std::chrono::steady_clock::now();
  result.stats.wall_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();

  if (result.ok() && opt_.verify_output) {
    result.status = verify_result(req, ws_, result.scan);
  }
  return result;
}

std::vector<RunResult> Engine::run_batch(std::span<const Request> requests) {
  std::vector<RunResult> results;
  results.resize(requests.size());
  run_batch_each(requests,
                 [&](std::size_t i, RunResult&& r) { results[i] = std::move(r); });
  return results;
}

}  // namespace lr90
