// The out-of-core shard slab format (`ShardFile`) and its mmap loader.
//
// A shard is a contiguous vertex-id range [begin, end) of one list, stored
// as the raw subranges of the next[] and value[] arrays behind a small
// versioned header. The format is deliberately dumb -- a straight memcpy of
// the structure-of-arrays representation -- so spilling a shard writes at
// streaming bandwidth and loading one is a single mmap plus sequential page
// faults (the Gigablast BigFile idiom: big flat files, position-addressed,
// no record framing).
//
// Versioning: the header carries a magic, a format version, and the shard's
// identity (index, range, total list length). A loader rejects anything
// that does not match what the run expects, so a stale spill directory --
// files from an older generation of a snapshot, or from a different shard
// plan -- degrades to a rewrite, never to a wrong answer.
#pragma once

#include <cstdint>
#include <string>

#include "lists/linked_list.hpp"

namespace lr90::shard {

/// Shard-file magic: "LR90SHRD" read as a little-endian 64-bit word.
inline constexpr std::uint64_t kShardMagic =
    (std::uint64_t{'L'}) | (std::uint64_t{'R'} << 8) |
    (std::uint64_t{'9'} << 16) | (std::uint64_t{'0'} << 24) |
    (std::uint64_t{'S'} << 32) | (std::uint64_t{'H'} << 40) |
    (std::uint64_t{'R'} << 48) | (std::uint64_t{'D'} << 56);

/// Current shard-file format version. Bump on any layout change; loaders
/// reject other versions (a mismatched spill dir is rewritten, not read).
/// v2 added the payload checksum (v1 files are rewritten on sight).
inline constexpr std::uint32_t kShardFormatVersion = 2;

/// Fixed 64-byte header at offset 0 of every shard file. The payload
/// follows at offset 64: next[] (index_t each), padded to an 8-byte
/// boundary, then value[] (value_t each). Links are GLOBAL vertex ids --
/// exactly the source subrange -- so a loaded shard is usable without any
/// translation pass.
struct ShardHeader {
  std::uint64_t magic = kShardMagic;      ///< kShardMagic
  std::uint32_t version = kShardFormatVersion;  ///< kShardFormatVersion
  std::uint32_t shard_index = 0;          ///< which shard of the plan
  std::uint64_t begin = 0;                ///< first global vertex id
  std::uint64_t end = 0;                  ///< one past the last vertex id
  std::uint64_t total_n = 0;              ///< full list length (plan identity)
  std::uint64_t payload_bytes = 0;        ///< bytes after the header
  /// checksum64 of the payload bytes (next + pad + value), filled by the
  /// writer; loaders verify it so a torn or bit-flipped slab is detected
  /// before any of its links are walked.
  std::uint64_t payload_checksum = 0;
  std::uint64_t reserved = 0;             ///< zero; future use
};
static_assert(sizeof(ShardHeader) == 64, "shard header is 64 bytes on disk");

/// Vertices covered by `h`.
inline std::size_t shard_header_len(const ShardHeader& h) {
  return static_cast<std::size_t>(h.end - h.begin);
}

/// Payload bytes for a shard of `len` vertices: next[], pad to 8, value[].
std::size_t shard_payload_bytes(std::size_t len);

/// Streaming 64-bit integrity checksum (not cryptographic): 8-byte-chunk
/// multiply-rotate mixer with the total length folded into the digest.
/// update() accepts arbitrary spans in any split -- a carry buffer keeps
/// the chunking split-invariant, so writer (three spans) and loader (one
/// contiguous payload) agree.
class Checksum64 {
 public:
  /// Folds `len` bytes at `data` into the running state.
  void update(const void* data, std::size_t len);
  /// The digest of everything updated so far (state is not consumed).
  std::uint64_t digest() const;

 private:
  std::uint64_t state_ = 0x243f6a8885a308d3ull;  ///< running hash state
  std::uint64_t total_ = 0;                      ///< bytes folded in
  unsigned char carry_[8] = {};                  ///< sub-chunk tail bytes
  std::size_t carry_len_ = 0;                    ///< valid bytes in carry_
};

/// One-shot Checksum64 over a single span.
std::uint64_t checksum64(const void* data, std::size_t len);

/// The canonical file name of shard `index` inside a spill directory.
std::string shard_file_name(unsigned index);

/// Writes one shard file (header + next/value subranges) atomically: the
/// bytes land in "<path>.tmp" first and only a fully flushed temp file is
/// renamed over `path`, so a crash or mid-write failure can never leave a
/// valid-header half slab under the final name. The payload checksum is
/// computed here and stamped into the written header (the caller's
/// `header.payload_checksum` is ignored). `next`/`value` point at `len`
/// elements (the global subrange). Returns false on any I/O failure, with
/// the temp file removed (caller treats the shard as unspillable).
bool write_shard_file(const std::string& path, const ShardHeader& header,
                      const index_t* next, const value_t* value);

/// Reads just the header of `path` into `out`. Returns false when the file
/// is missing, short, or fails the magic check.
bool read_shard_header(const std::string& path, ShardHeader& out);

/// True iff `h` identifies exactly the expected shard of the expected plan
/// (version, index, range, total length, payload size all match).
bool shard_header_matches(const ShardHeader& h, unsigned index,
                          std::size_t begin, std::size_t end,
                          std::size_t total_n);

/// Why a ShardMap::open failed (kOk on success). kCorrupt is the typed
/// "this slab is torn or bit-flipped" signal: header and identity match
/// but the payload fails its checksum (or the file is shorter than the
/// header promises) -- the store re-packs the shard from the source list
/// instead of serving garbage.
enum class ShardLoadError {
  kOk,              ///< the map is live
  kNotFound,        ///< the file is missing / unreadable
  kHeaderMismatch,  ///< wrong magic/version/identity (stale spill dir)
  kCorrupt,         ///< identity matches but the payload is torn/corrupt
  kIoError,         ///< open/fstat/mmap/read failed
};

/// Short stable name of `e` ("ok", "not-found", ...).
const char* shard_load_error_name(ShardLoadError e);

/// One mapped (or, where mmap is unavailable, heap-loaded) shard file:
/// RAII over the mapping, exposing the next/value subranges zero-copy.
/// Move-only; unmaps on destruction.
class ShardMap {
 public:
  ShardMap() = default;
  ShardMap(const ShardMap&) = delete;             ///< not copyable
  ShardMap& operator=(const ShardMap&) = delete;  ///< not copyable
  /// Moves transfer the mapping (the source becomes empty).
  ShardMap(ShardMap&& other) noexcept { swap(other); }
  /// Move-assignment counterpart (the source becomes empty).
  ShardMap& operator=(ShardMap&& other) noexcept {
    if (this != &other) {
      close();
      swap(other);
    }
    return *this;
  }
  ~ShardMap() { close(); }  ///< unmaps

  /// Maps `path` read-only, validates its header against the expected
  /// shard identity, and verifies the payload checksum (which also faults
  /// every payload page in). On success the next()/value() spans are
  /// live. Returns false (and stays empty) on any mismatch, corruption,
  /// or I/O failure; error() says which.
  bool open(const std::string& path, unsigned index, std::size_t begin,
            std::size_t end, std::size_t total_n);

  /// Why the last open() failed (kOk after a successful open).
  ShardLoadError error() const { return error_; }

  /// Unmaps/frees; the object returns to the empty state.
  void close();

  /// True iff a file is mapped.
  explicit operator bool() const { return next_ != nullptr; }

  /// The shard's link subrange: next()[i] is the GLOBAL successor of
  /// global vertex begin + i.
  const index_t* next() const { return next_; }
  /// The shard's value subrange.
  const value_t* value() const { return value_; }
  /// Vertices in the shard.
  std::size_t size() const { return len_; }
  /// Resident footprint charged against the store's byte budget.
  std::size_t bytes() const { return map_bytes_; }

  /// Sequentially faults every payload page in (the prefetcher's whole
  /// job: by the time the ranking pass arrives, the pages are resident).
  void touch_pages() const;

 private:
  void swap(ShardMap& other) noexcept;

  void* base_ = nullptr;         ///< mmap base (null on the heap fallback)
  std::size_t map_bytes_ = 0;    ///< mapped / allocated length
  std::size_t len_ = 0;          ///< vertices
  const index_t* next_ = nullptr;
  const value_t* value_ = nullptr;
  char* heap_ = nullptr;         ///< non-mmap fallback buffer
  ShardLoadError error_ = ShardLoadError::kOk;  ///< last open() outcome
};

/// Outcome counters of a spill-dir reclamation pass. A missing directory
/// or file is NOT a failure (ENOENT is the normal "already reclaimed"
/// answer); `failed` counts files/directories that still exist after a
/// remove was attempted and refused -- the serving layer surfaces these
/// in ServerStats instead of leaking spill space silently.
struct ReclaimStats {
  std::size_t removed = 0;  ///< shard files (or directories) removed
  std::size_t failed = 0;   ///< unlink/rmdir failures other than ENOENT
};

/// Removes every shard file in `dir` and then the directory itself (only
/// files matching the shard naming scheme are touched). Returns the number
/// of shard files removed; 0 when the directory does not exist. When
/// `out` is non-null its counters accumulate (not reset) across calls.
std::size_t drop_spill_dir(const std::string& dir,
                           ReclaimStats* out = nullptr);

/// The spill directory a server pins for snapshot `id` at generation
/// `gen`: "<root>/snap<id>_g<gen>". Generation-stamped so an update can
/// never reuse stale files -- the old generation's directory is dropped.
std::string snapshot_spill_dir(const std::string& root, std::uint64_t id,
                               std::uint64_t gen);

/// Drops every generation's spill directory of snapshot `id` under `root`
/// (the server calls this from update/drop invalidation). Returns the
/// number of directories removed. ENOENT is ignored; other unlink/rmdir
/// failures accumulate into `out` when non-null.
std::size_t drop_snapshot_spill_dirs(const std::string& root,
                                     std::uint64_t id,
                                     ReclaimStats* out = nullptr);

}  // namespace lr90::shard
