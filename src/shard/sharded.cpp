#include "shard/sharded.hpp"

#include <atomic>
#include <filesystem>
#include <vector>

#include <new>

#include "core/host_exec.hpp"
#include "lists/encode.hpp"
#include "support/faultpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace lr90::shard {

namespace {

// The allocation edge of a sharded run: the O(m) reduced-list scratch
// (totals, exits, prefixes) plus the per-shard packed slab. Firing here
// simulates std::bad_alloc without depending on the allocator.
fault::FaultSite f_scratch_alloc{"shard.scratch.alloc",
                                 "reduced-list scratch allocation fails"};

/// Reduced lists below this length take the serial second-level scan; the
/// parallel sublist kernel's fork/join cannot pay off on fewer nodes.
constexpr std::size_t kSecondLevelParallelMin = 8192;

/// A fresh per-run spill directory under the system temp dir, unique per
/// process + run (ephemeral: removed by the ShardStore when the run ends).
std::string ephemeral_spill_dir() {
  static std::atomic<std::uint64_t> seq{0};
  unsigned long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
  pid = static_cast<unsigned long>(::getpid());
#endif
  std::error_code ec;
  const std::string base = std::filesystem::temp_directory_path(ec).string();
  return (base.empty() ? std::string{"."} : base) + "/lr90-shards-" +
         std::to_string(pid) + "-" +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

/// Builds the shard-LOCAL hot slab for `view`: word i carries the
/// sublist-tail flag (the successor leaves the shard, or is the global
/// tail), the LOCAL link (tails self-link), and the 32-bit value lane.
/// Parallel over `threads` index blocks. Returns false -- slab contents
/// unspecified -- when any value misses the signed 32-bit lane (the shard
/// then takes the legacy scalar walks; per-shard fallback, never wrong).
template <bool kOnes>
bool build_shard_slab(const ShardView& view, unsigned threads,
                      std::vector<packed_t>& words) {
  const std::size_t len = view.size();
  words.resize(len);
  const std::size_t blocks = std::max<std::size_t>(1, threads);
  std::atomic<bool> ok{true};
  host_exec::claim_blocks(threads, blocks, [&](std::size_t blk) {
    const auto [lo, hi] = host_exec::block_range(len, blocks, blk);
    bool fits = true;
    for (std::size_t i = lo; i < hi; ++i) {
      const index_t gn = view.next[i];
      const auto gv = static_cast<index_t>(view.begin + i);
      const bool tail = gn == gv || gn < view.begin || gn >= view.end;
      const index_t link = tail ? static_cast<index_t>(i) : gn - static_cast<index_t>(view.begin);
      const value_t val = kOnes ? value_t{1} : view.value[i];
      fits = fits && (kOnes || hot_value_fits(val));
      words[i] = hot_pack(tail, link,
                          static_cast<std::uint32_t>(
                              static_cast<std::uint64_t>(val)));
    }
    if (!fits) ok.store(false, std::memory_order_relaxed);
  });
  return ok.load(std::memory_order_relaxed);
}

/// Per-run scratch shared by passes A and C (sized to the widest shard
/// once, reused across shards).
struct ShardScratch {
  std::vector<packed_t> words;   ///< shard-local hot slab
  std::vector<index_t> lheads;   ///< shard-local segment head indices
};

/// Pass A over one shard: every segment's operator total and exit vertex.
template <ListOp Op, bool kOnes>
void pass_totals(const ShardView& view, const std::vector<index_t>& heads,
                 std::size_t seg_base, const ShardExec& exec,
                 ShardScratch& scratch, Op op, std::vector<value_t>& totals,
                 std::vector<index_t>& exits) {
  const std::size_t k = heads.size();
  const bool packed =
      exec.interleave >= 1 && (kOnes || kOpLane32<Op>) &&
      view.size() <= kHotMaxVertices &&
      build_shard_slab<kOnes>(view, exec.threads, scratch.words);
  if (packed) {
    scratch.lheads.resize(k);
    for (std::size_t j = 0; j < k; ++j)
      scratch.lheads[j] =
          heads[j] - static_cast<index_t>(view.begin);
    host_exec::interleave_sublists(
        scratch.words.data(), scratch.lheads.data(), k, exec.threads,
        exec.interleave, [](std::size_t) { return Op::identity(); },
        [op](index_t, packed_t w, value_t& acc) {
          acc = op(acc, hot_value(w));
        },
        [&](index_t j, index_t tv, value_t acc) {
          const std::size_t g = seg_base + j;
          totals[g] = acc;
          const index_t gn = view.next[tv];
          exits[g] =
              gn == static_cast<index_t>(view.begin + tv) ? kNoVertex : gn;
        });
    return;
  }
  host_exec::claim_blocks(exec.threads, k, [&](std::size_t j) {
    value_t acc = Op::identity();
    index_t v = heads[j];
    for (;;) {
      const std::size_t i = v - view.begin;
      acc = op(acc, kOnes ? value_t{1} : view.value[i]);
      const index_t gn = view.next[i];
      if (gn == v || gn < view.begin || gn >= view.end) {
        totals[seg_base + j] = acc;
        exits[seg_base + j] = gn == v ? kNoVertex : gn;
        return;
      }
      v = gn;
    }
  });
}

/// Pass C over one shard: re-walk each segment with the accumulator seeded
/// at its global prefix, writing the final exclusive scan.
template <ListOp Op, bool kOnes>
void pass_expand(const ShardView& view, const std::vector<index_t>& heads,
                 std::size_t seg_base, const ShardExec& exec,
                 ShardScratch& scratch, Op op,
                 const std::vector<value_t>& seg_pref,
                 std::span<value_t> out) {
  const std::size_t k = heads.size();
  const bool packed =
      exec.interleave >= 1 && (kOnes || kOpLane32<Op>) &&
      view.size() <= kHotMaxVertices &&
      build_shard_slab<kOnes>(view, exec.threads, scratch.words);
  if (packed) {
    scratch.lheads.resize(k);
    for (std::size_t j = 0; j < k; ++j)
      scratch.lheads[j] =
          heads[j] - static_cast<index_t>(view.begin);
    value_t* o = out.data() + view.begin;
    host_exec::interleave_sublists(
        scratch.words.data(), scratch.lheads.data(), k, exec.threads,
        exec.interleave,
        [&](std::size_t j) { return seg_pref[seg_base + j]; },
        [op, o](index_t v, packed_t w, value_t& acc) {
          o[v] = acc;
          acc = op(acc, hot_value(w));
        },
        [](index_t, index_t, value_t) {});
    return;
  }
  host_exec::claim_blocks(exec.threads, k, [&](std::size_t j) {
    value_t acc = seg_pref[seg_base + j];
    index_t v = heads[j];
    for (;;) {
      const std::size_t i = v - view.begin;
      out[v] = acc;
      acc = op(acc, kOnes ? value_t{1} : view.value[i]);
      const index_t gn = view.next[i];
      if (gn == v || gn < view.begin || gn >= view.end) return;
      v = gn;
    }
  });
}

template <ListOp Op, bool kOnes>
Status run_sharded(const LinkedList& list, const ShardedList& sharded,
                   const ShardExec& exec, Op op, Workspace& ws,
                   std::span<value_t> out, ShardStore& store,
                   ShardRunStats& stats) {
  const std::size_t m = sharded.segments;
  std::vector<value_t> totals(m);
  std::vector<index_t> exits(m);
  ShardScratch scratch;

  // Pass A: per-shard segment totals + exits, one resident shard at a time.
  for (unsigned p = 0; p < sharded.shards; ++p) {
    if (sharded.heads_of[p].empty()) continue;
    const ShardView view = store.acquire(p);
    if (view.next == nullptr)
      return store.last_error() == StoreError::kCorrupt
                 ? Status::corrupt_slab(
                       "sharded scan: unrecoverable slab (pass A)")
                 : Status::resource_exhausted(
                       "sharded scan: shard load failed (pass A)");
    pass_totals<Op, kOnes>(view, sharded.heads_of[p], sharded.seg_base[p],
                           exec, scratch, op, totals, exits);
    store.release(p);
  }

  // Pass B: the second-level Reid-Miller pass over the reduced list (one
  // node per segment). O(m), all in RAM.
  LinkedList reduced;
  reduced.next.resize(m);
  reduced.value = std::move(totals);
  for (std::size_t s = 0; s < m; ++s) {
    if (exits[s] == kNoVertex) {
      reduced.next[s] = static_cast<index_t>(s);  // global tail's segment
      reduced.tail = static_cast<index_t>(s);
      continue;
    }
    const auto it = sharded.seg_of_head.find(exits[s]);
    if (it == sharded.seg_of_head.end())
      return Status::invalid(
          "sharded scan: dangling cross-shard link (malformed list)");
    reduced.next[s] = it->second;
  }
  const auto head_it = sharded.seg_of_head.find(list.head);
  if (head_it == sharded.seg_of_head.end())
    return Status::invalid("sharded scan: list head owns no segment");
  reduced.head = head_it->second;
  std::vector<value_t> seg_pref(m);
  if (m >= kSecondLevelParallelMin && exec.threads > 1) {
    const host_exec::HostPlan plan2{
        exec.threads,
        std::min<std::size_t>(m / 2,
                              static_cast<std::size_t>(exec.threads) * 64),
        exec.interleave, 0};
    host_exec::scan_into<Op, false>(reduced, op, plan2, ws, seg_pref);
    // The second-level scan may have rebuilt ws.packed for the (local,
    // about-to-die) reduced list; its batch-cache identity must not
    // survive this call.
    ws.invalidate_packed();
  } else {
    host_exec::serial_scan_into(reduced, std::span<value_t>(seg_pref), op);
  }

  // Pass C: per-shard expansion from the segment prefixes.
  for (unsigned p = 0; p < sharded.shards; ++p) {
    if (sharded.heads_of[p].empty()) continue;
    const ShardView view = store.acquire(p);
    if (view.next == nullptr)
      return store.last_error() == StoreError::kCorrupt
                 ? Status::corrupt_slab(
                       "sharded scan: unrecoverable slab (pass C)")
                 : Status::resource_exhausted(
                       "sharded scan: shard load failed (pass C)");
    pass_expand<Op, kOnes>(view, sharded.heads_of[p], sharded.seg_base[p],
                           exec, scratch, op, seg_pref, out);
    store.release(p);
  }
  stats.shards = sharded.shards;
  stats.segments = m;
  return Status::success();
}

}  // namespace

Status sharded_scan(const LinkedList& list, bool rank, ScanOp op,
                    const ShardExec& exec, Workspace& ws,
                    std::span<value_t> out, ShardRunStats& stats) {
  stats = ShardRunStats{};
  const std::size_t n = list.size();
  if (n == 0) return Status::success();
  const ShardedList sharded = ShardedList::build(list, exec.shards);
  ShardStore store;
  const bool spill = exec.byte_budget > 0;
  const std::string dir =
      spill ? (exec.spill_dir.empty() ? ephemeral_spill_dir() : exec.spill_dir)
            : std::string{};
  if (!store.prepare(list, sharded, exec.byte_budget, dir, exec.prefetch,
                     exec.keep_files, exec.degrade)) {
    stats.store = store.stats();
    return store.last_error() == StoreError::kIo
               ? Status::resource_exhausted(
                     "sharded scan: spill write failed under " + dir)
               : Status::unavailable(
                     "sharded scan: spill directory unusable: " + dir);
  }
  Status st;
  try {
    if (f_scratch_alloc.fire()) throw std::bad_alloc{};
    if (rank) {
      st = run_sharded<OpPlus, true>(list, sharded, exec, OpPlus{}, ws, out,
                                     store, stats);
    } else {
      st = with_scan_op(op, [&](auto typed) {
        return run_sharded<decltype(typed), false>(list, sharded, exec, typed,
                                                   ws, out, store, stats);
      });
    }
  } catch (const std::bad_alloc&) {
    // The O(m) scratch (or a per-shard slab) did not fit: a typed answer,
    // not a crash -- the caller can retry smaller or shed load.
    st = Status::resource_exhausted(
        "sharded scan: scratch allocation failed");
  }
  stats.store = store.stats();
  return st;
}

}  // namespace lr90::shard
