#include "shard/shard_file.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define LR90_SHARD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lr90::shard {

namespace {

/// Pad to the value_t alignment boundary between the next[] and value[]
/// payload sections.
std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

}  // namespace

std::size_t shard_payload_bytes(std::size_t len) {
  return align8(len * sizeof(index_t)) + len * sizeof(value_t);
}

std::string shard_file_name(unsigned index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%06u.lr90", index);
  return buf;
}

bool write_shard_file(const std::string& path, const ShardHeader& header,
                      const index_t* next, const value_t* value) {
  const std::size_t len = shard_header_len(header);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  ok = ok && (len == 0 || std::fwrite(next, sizeof(index_t), len, f) == len);
  const std::size_t pad = align8(len * sizeof(index_t)) - len * sizeof(index_t);
  if (ok && pad > 0) {
    const char zeros[8] = {};
    ok = std::fwrite(zeros, 1, pad, f) == pad;
  }
  ok = ok && (len == 0 || std::fwrite(value, sizeof(value_t), len, f) == len);
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) std::remove(path.c_str());
  return ok;
}

bool read_shard_header(const std::string& path, ShardHeader& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const bool ok = std::fread(&out, sizeof(out), 1, f) == 1;
  std::fclose(f);
  return ok && out.magic == kShardMagic;
}

bool shard_header_matches(const ShardHeader& h, unsigned index,
                          std::size_t begin, std::size_t end,
                          std::size_t total_n) {
  return h.magic == kShardMagic && h.version == kShardFormatVersion &&
         h.shard_index == index && h.begin == begin && h.end == end &&
         h.total_n == total_n &&
         h.payload_bytes == shard_payload_bytes(end - begin);
}

bool ShardMap::open(const std::string& path, unsigned index,
                    std::size_t begin, std::size_t end, std::size_t total_n) {
  close();
  ShardHeader h;
  if (!read_shard_header(path, h) ||
      !shard_header_matches(h, index, begin, end, total_n))
    return false;
  const std::size_t len = shard_header_len(h);
  const std::size_t total =
      sizeof(ShardHeader) + static_cast<std::size_t>(h.payload_bytes);
#if defined(LR90_SHARD_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < total) {
    ::close(fd);
    return false;
  }
  void* base = ::mmap(nullptr, total, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return false;
  base_ = base;
  map_bytes_ = total;
  const char* payload = static_cast<const char*>(base) + sizeof(ShardHeader);
  next_ = reinterpret_cast<const index_t*>(payload);
  value_ = reinterpret_cast<const value_t*>(
      payload + align8(len * sizeof(index_t)));
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  heap_ = new (std::nothrow) char[total];
  if (heap_ == nullptr || std::fread(heap_, 1, total, f) != total) {
    std::fclose(f);
    delete[] heap_;
    heap_ = nullptr;
    return false;
  }
  std::fclose(f);
  map_bytes_ = total;
  const char* payload = heap_ + sizeof(ShardHeader);
  next_ = reinterpret_cast<const index_t*>(payload);
  value_ = reinterpret_cast<const value_t*>(
      payload + align8(len * sizeof(index_t)));
#endif
  len_ = len;
  return true;
}

void ShardMap::close() {
#if defined(LR90_SHARD_HAVE_MMAP)
  if (base_ != nullptr) ::munmap(base_, map_bytes_);
#endif
  delete[] heap_;
  base_ = nullptr;
  heap_ = nullptr;
  map_bytes_ = 0;
  len_ = 0;
  next_ = nullptr;
  value_ = nullptr;
}

void ShardMap::touch_pages() const {
  if (next_ == nullptr || map_bytes_ == 0) return;
  const char* base =
      base_ != nullptr ? static_cast<const char*>(base_) : heap_;
  if (base == nullptr) return;
#if defined(LR90_SHARD_HAVE_MMAP)
  // Advise first so the kernel streams ahead of the touch loop.
  ::posix_madvise(const_cast<char*>(base), map_bytes_, POSIX_MADV_WILLNEED);
#endif
  // One read per page is enough to fault it in; the sum keeps the loop
  // from being optimized away.
  volatile std::size_t sink = 0;
  for (std::size_t off = 0; off < map_bytes_; off += 4096)
    sink = sink + static_cast<unsigned char>(base[off]);
  (void)sink;
}

void ShardMap::swap(ShardMap& other) noexcept {
  std::swap(base_, other.base_);
  std::swap(map_bytes_, other.map_bytes_);
  std::swap(len_, other.len_);
  std::swap(next_, other.next_);
  std::swap(value_, other.value_);
  std::swap(heap_, other.heap_);
}

std::size_t drop_spill_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) return 0;
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard_", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".lr90") == 0) {
      if (fs::remove(entry.path(), ec)) ++removed;
    }
  }
  fs::remove(dir, ec);  // succeeds only if now empty; foreign files keep it
  return removed;
}

std::string snapshot_spill_dir(const std::string& root, std::uint64_t id,
                               std::uint64_t gen) {
  return root + "/snap" + std::to_string(id) + "_g" + std::to_string(gen);
}

std::size_t drop_snapshot_spill_dirs(const std::string& root,
                                     std::uint64_t id) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (root.empty() || !fs::is_directory(root, ec)) return 0;
  const std::string prefix = "snap" + std::to_string(id) + "_g";
  std::size_t dropped = 0;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    // All generation digits after the prefix: don't match snap12_g1 when
    // dropping snapshot 1.
    if (name.find_first_not_of("0123456789", prefix.size()) !=
        std::string::npos)
      continue;
    drop_spill_dir(entry.path().string());
    if (!fs::exists(entry.path(), ec)) ++dropped;
  }
  return dropped;
}

}  // namespace lr90::shard
