#include "shard/shard_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "support/faultpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LR90_SHARD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lr90::shard {

namespace {

// The I/O edges of the slab format, one fault site each (chaos coverage:
// tests/fault_test.cpp arms every site and asserts a typed outcome).
fault::FaultSite f_write_open{"shard.write.open",
                              "temp-file fopen fails (EACCES)"};
fault::FaultSite f_write_io{"shard.write.io", "fwrite fails mid-slab (EIO)"};
fault::FaultSite f_write_nospc{"shard.write.nospc",
                               "fwrite fails mid-slab (ENOSPC)"};
fault::FaultSite f_write_short{"shard.write.short",
                               "fwrite writes a short count (torn slab)"};
fault::FaultSite f_write_rename{"shard.write.rename",
                                "rename of the flushed temp file fails"};
fault::FaultSite f_map_open{"shard.map.open",
                            "slab open/fstat fails on reload (EIO)"};
fault::FaultSite f_map_mmap{"shard.map.mmap",
                            "mmap fails (address-space pressure)"};
fault::FaultSite f_map_read{"shard.map.read",
                            "heap-fallback fread fails (EIO)"};
fault::FaultSite f_map_checksum{"shard.map.checksum",
                                "payload checksum mismatch (bit rot)"};
fault::FaultSite f_reclaim_unlink{"shard.reclaim.unlink",
                                  "spill-file unlink fails (EBUSY)"};

/// Pad to the value_t alignment boundary between the next[] and value[]
/// payload sections.
std::size_t align8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

}  // namespace

std::size_t shard_payload_bytes(std::size_t len) {
  return align8(len * sizeof(index_t)) + len * sizeof(value_t);
}

void Checksum64::update(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_ += len;
  auto mix = [this](std::uint64_t word) {
    state_ ^= word * 0x9ddfea08eb382d69ull;
    state_ = (state_ << 31) | (state_ >> 33);
    state_ *= 0x9e3779b97f4a7c15ull;
  };
  // Top up the carry buffer first so chunk boundaries are split-invariant.
  if (carry_len_ > 0) {
    const std::size_t take = std::min(len, 8 - carry_len_);
    std::memcpy(carry_ + carry_len_, p, take);
    carry_len_ += take;
    p += take;
    len -= take;
    if (carry_len_ < 8) return;
    std::uint64_t word;
    std::memcpy(&word, carry_, 8);
    mix(word);
    carry_len_ = 0;
  }
  for (; len >= 8; p += 8, len -= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    mix(word);
  }
  if (len > 0) {
    std::memcpy(carry_, p, len);
    carry_len_ = len;
  }
}

std::uint64_t Checksum64::digest() const {
  // Fold the tail (zero-padded) and the total length without consuming
  // the running state, so digest() can be called mid-stream.
  std::uint64_t s = state_;
  if (carry_len_ > 0) {
    unsigned char tail[8] = {};
    std::memcpy(tail, carry_, carry_len_);
    std::uint64_t word;
    std::memcpy(&word, tail, 8);
    s ^= word * 0x9ddfea08eb382d69ull;
    s = (s << 31) | (s >> 33);
    s *= 0x9e3779b97f4a7c15ull;
  }
  s ^= total_;
  s ^= s >> 33;
  s *= 0xff51afd7ed558ccdull;
  s ^= s >> 29;
  return s;
}

std::uint64_t checksum64(const void* data, std::size_t len) {
  Checksum64 c;
  c.update(data, len);
  return c.digest();
}

std::string shard_file_name(unsigned index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%06u.lr90", index);
  return buf;
}

bool write_shard_file(const std::string& path, const ShardHeader& header,
                      const index_t* next, const value_t* value) {
  const std::size_t len = shard_header_len(header);
  const std::size_t pad =
      align8(len * sizeof(index_t)) - len * sizeof(index_t);
  const char zeros[8] = {};

  // The writer owns the checksum: whatever the caller put in the header's
  // checksum slot is recomputed from the actual payload bytes.
  ShardHeader h = header;
  {
    Checksum64 sum;
    if (len > 0) sum.update(next, len * sizeof(index_t));
    if (pad > 0) sum.update(zeros, pad);
    if (len > 0) sum.update(value, len * sizeof(value_t));
    h.payload_checksum = sum.digest();
  }

  // Write-to-temp + rename: the final path only ever holds a complete,
  // flushed slab, so a crash mid-write can never leave a valid-header
  // torn file under the name a reload would trust.
  const std::string tmp = path + ".tmp";
  if (f_write_open.fire()) {
    errno = EACCES;
    return false;
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  if (ok && (f_write_io.fire() || f_write_nospc.fire())) {
    errno = f_write_nospc.armed() ? ENOSPC : EIO;
    ok = false;
  }
  if (ok && f_write_short.fire() && len > 0) {
    // A torn write: half the links land, then the device gives up. The
    // temp+rename discipline keeps this out of the final path; the site
    // exists so the recovery path is testable end to end.
    (void)std::fwrite(next, sizeof(index_t), len / 2, f);
    ok = false;
  }
  ok = ok && (len == 0 || std::fwrite(next, sizeof(index_t), len, f) == len);
  if (ok && pad > 0) ok = std::fwrite(zeros, 1, pad, f) == pad;
  ok = ok && (len == 0 || std::fwrite(value, sizeof(value_t), len, f) == len);
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (ok && f_write_rename.fire()) {
    errno = EIO;
    ok = false;
  }
  ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

bool read_shard_header(const std::string& path, ShardHeader& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const bool ok = std::fread(&out, sizeof(out), 1, f) == 1;
  std::fclose(f);
  return ok && out.magic == kShardMagic;
}

bool shard_header_matches(const ShardHeader& h, unsigned index,
                          std::size_t begin, std::size_t end,
                          std::size_t total_n) {
  return h.magic == kShardMagic && h.version == kShardFormatVersion &&
         h.shard_index == index && h.begin == begin && h.end == end &&
         h.total_n == total_n &&
         h.payload_bytes == shard_payload_bytes(end - begin);
}

const char* shard_load_error_name(ShardLoadError e) {
  switch (e) {
    case ShardLoadError::kOk: return "ok";
    case ShardLoadError::kNotFound: return "not-found";
    case ShardLoadError::kHeaderMismatch: return "header-mismatch";
    case ShardLoadError::kCorrupt: return "corrupt";
    case ShardLoadError::kIoError: return "io-error";
  }
  return "?";
}

bool ShardMap::open(const std::string& path, unsigned index,
                    std::size_t begin, std::size_t end, std::size_t total_n) {
  close();
  ShardHeader h;
  if (!read_shard_header(path, h)) {
    error_ = ShardLoadError::kNotFound;
    return false;
  }
  if (!shard_header_matches(h, index, begin, end, total_n)) {
    error_ = ShardLoadError::kHeaderMismatch;
    return false;
  }
  const std::size_t len = shard_header_len(h);
  const std::size_t total =
      sizeof(ShardHeader) + static_cast<std::size_t>(h.payload_bytes);
#if defined(LR90_SHARD_HAVE_MMAP)
  if (base_ == nullptr && heap_ == nullptr) {
    if (f_map_open.fire()) {
      error_ = ShardLoadError::kIoError;
      return false;
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      error_ = ShardLoadError::kIoError;
      return false;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      error_ = ShardLoadError::kIoError;
      return false;
    }
    if (static_cast<std::size_t>(st.st_size) < total) {
      // Shorter than the header promises: a torn slab (the header made it
      // to disk but the payload did not).
      ::close(fd);
      error_ = ShardLoadError::kCorrupt;
      return false;
    }
    void* base = f_map_mmap.fire()
                     ? MAP_FAILED
                     : ::mmap(nullptr, total, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // on success the mapping keeps its own reference
    if (base != MAP_FAILED) {
      base_ = base;
      map_bytes_ = total;
    }
    // mmap failure (address-space pressure, filesystem without mmap)
    // falls through to the heap read below rather than failing the load.
  }
#endif
  if (base_ == nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      error_ = ShardLoadError::kIoError;
      return false;
    }
    heap_ = new (std::nothrow) char[total];
    const bool read_ok = heap_ != nullptr && !f_map_read.fire() &&
                         std::fread(heap_, 1, total, f) == total;
    std::fclose(f);
    if (!read_ok) {
      delete[] heap_;
      heap_ = nullptr;
      // A short fread here could also be a torn slab, but it is not
      // distinguishable from a device error; report the I/O class and
      // let the store's repack path decide.
      error_ = ShardLoadError::kIoError;
      return false;
    }
    map_bytes_ = total;
  }
  const char* payload =
      (base_ != nullptr ? static_cast<const char*>(base_) : heap_) +
      sizeof(ShardHeader);
  // Verify the payload against the header's checksum. This reads every
  // payload byte, which doubles as the page fault-in touch_pages() would
  // otherwise do on first access.
  const std::uint64_t sum =
      checksum64(payload, static_cast<std::size_t>(h.payload_bytes));
  if (sum != h.payload_checksum || f_map_checksum.fire()) {
    close();
    error_ = ShardLoadError::kCorrupt;
    return false;
  }
  next_ = reinterpret_cast<const index_t*>(payload);
  value_ = reinterpret_cast<const value_t*>(
      payload + align8(len * sizeof(index_t)));
  len_ = len;
  error_ = ShardLoadError::kOk;
  return true;
}

void ShardMap::close() {
#if defined(LR90_SHARD_HAVE_MMAP)
  if (base_ != nullptr) ::munmap(base_, map_bytes_);
#endif
  delete[] heap_;
  base_ = nullptr;
  heap_ = nullptr;
  map_bytes_ = 0;
  len_ = 0;
  next_ = nullptr;
  value_ = nullptr;
}

void ShardMap::touch_pages() const {
  if (next_ == nullptr || map_bytes_ == 0) return;
  const char* base =
      base_ != nullptr ? static_cast<const char*>(base_) : heap_;
  if (base == nullptr) return;
#if defined(LR90_SHARD_HAVE_MMAP)
  // Advise first so the kernel streams ahead of the touch loop.
  ::posix_madvise(const_cast<char*>(base), map_bytes_, POSIX_MADV_WILLNEED);
#endif
  // One read per page is enough to fault it in; the sum keeps the loop
  // from being optimized away.
  volatile std::size_t sink = 0;
  for (std::size_t off = 0; off < map_bytes_; off += 4096)
    sink = sink + static_cast<unsigned char>(base[off]);
  (void)sink;
}

void ShardMap::swap(ShardMap& other) noexcept {
  std::swap(base_, other.base_);
  std::swap(map_bytes_, other.map_bytes_);
  std::swap(len_, other.len_);
  std::swap(next_, other.next_);
  std::swap(value_, other.value_);
  std::swap(heap_, other.heap_);
  std::swap(error_, other.error_);
}

std::size_t drop_spill_dir(const std::string& dir, ReclaimStats* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) return 0;
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool is_shard =
        (name.rfind("shard_", 0) == 0 &&
         name.size() > 5 && name.compare(name.size() - 5, 5, ".lr90") == 0);
    // Reclaim leftover temp files of interrupted writes too.
    const bool is_tmp =
        (name.rfind("shard_", 0) == 0 && name.size() > 4 &&
         name.compare(name.size() - 4, 4, ".tmp") == 0);
    if (!is_shard && !is_tmp) continue;
    if (f_reclaim_unlink.fire()) {
      if (out != nullptr) ++out->failed;
      continue;
    }
    if (fs::remove(entry.path(), ec)) {
      if (is_shard) ++removed;
    } else if (ec && fs::exists(entry.path())) {
      // remove() returning false without the file going away is a real
      // unlink failure (EBUSY, EACCES, EROFS); ENOENT lands in the
      // "already gone" branch and is not counted.
      if (out != nullptr) ++out->failed;
    }
  }
  ec.clear();
  fs::remove(dir, ec);  // succeeds only if now empty; foreign files keep it
  if (out != nullptr) {
    // An empty directory that refused to die is a real rmdir failure; a
    // directory kept alive by foreign (or unlink-failed, counted above)
    // files is not double-counted here.
    std::error_code probe;
    if (fs::is_directory(dir, probe) && fs::is_empty(dir, probe) && !probe)
      ++out->failed;
    out->removed += removed;
  }
  return removed;
}

std::string snapshot_spill_dir(const std::string& root, std::uint64_t id,
                               std::uint64_t gen) {
  return root + "/snap" + std::to_string(id) + "_g" + std::to_string(gen);
}

std::size_t drop_snapshot_spill_dirs(const std::string& root,
                                     std::uint64_t id, ReclaimStats* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (root.empty() || !fs::is_directory(root, ec)) return 0;
  const std::string prefix = "snap" + std::to_string(id) + "_g";
  std::size_t dropped = 0;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    // All generation digits after the prefix: don't match snap12_g1 when
    // dropping snapshot 1.
    if (name.find_first_not_of("0123456789", prefix.size()) !=
        std::string::npos)
      continue;
    drop_spill_dir(entry.path().string(), out);
    if (!fs::exists(entry.path(), ec)) {
      ++dropped;
    } else if (out != nullptr) {
      // The directory survived the drop: some file inside refused to die
      // (counted above) or the rmdir itself failed.
      ++out->failed;
    }
  }
  return dropped;
}

}  // namespace lr90::shard
