#include "shard/shard_store.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

namespace lr90::shard {

ShardedList ShardedList::build(const LinkedList& list, unsigned shards) {
  ShardedList s;
  s.n = list.size();
  if (s.n == 0) {
    s.heads_of.resize(1);
    s.seg_base.assign(1, 0);
    return s;
  }
  const std::size_t cap = std::min<std::size_t>(s.n, kMaxShards);
  s.shards = static_cast<unsigned>(
      std::clamp<std::size_t>(shards == 0 ? 1 : shards, 1, cap));
  s.width = (s.n + s.shards - 1) / s.shards;
  s.heads_of.resize(s.shards);
  // The global head always heads a segment; every other head is the target
  // of a link that crosses shards. A valid list has in-degree <= 1 and no
  // predecessor of head, so no vertex is pushed twice.
  s.heads_of[s.shard_of(list.head)].push_back(list.head);
  const index_t* nx = list.next.data();
  for (std::size_t v = 0; v < s.n; ++v) {
    const index_t t = nx[v];
    if (t != static_cast<index_t>(v) &&
        s.shard_of(t) != s.shard_of(static_cast<index_t>(v)))
      s.heads_of[s.shard_of(t)].push_back(t);
  }
  s.seg_base.resize(s.shards);
  std::size_t m = 0;
  for (unsigned p = 0; p < s.shards; ++p) {
    s.seg_base[p] = m;
    m += s.heads_of[p].size();
  }
  s.segments = m;
  s.seg_of_head.reserve(m);
  for (unsigned p = 0; p < s.shards; ++p)
    for (std::size_t i = 0; i < s.heads_of[p].size(); ++i)
      s.seg_of_head.emplace(s.heads_of[p][i],
                            static_cast<index_t>(s.seg_base[p] + i));
  return s;
}

ShardStore::~ShardStore() {
  if (prefetcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    prefetcher_.join();
  }
  resident_.clear();
  if (spill_ && !keep_files_) drop_spill_dir(dir_);
}

bool ShardStore::prepare(const LinkedList& list, const ShardedList& sharded,
                         std::size_t byte_budget, const std::string& dir,
                         unsigned prefetch_depth, bool keep_files,
                         bool allow_degraded) {
  list_ = &list;
  sharded_ = &sharded;
  budget_ = byte_budget;
  spill_ = byte_budget > 0 && sharded.n > 0;
  dir_ = dir;
  keep_files_ = keep_files;
  allow_degraded_ = allow_degraded;
  if (!spill_) return true;
  if (dir_.empty()) return false;
  degraded_.assign(sharded.shards, 0);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  for (unsigned p = 0; p < sharded.shards; ++p) {
    const auto [b, e] = sharded.range(p);
    const std::string path = dir_ + "/" + shard_file_name(p);
    ShardHeader h;
    if (read_shard_header(path, h) &&
        shard_header_matches(h, p, b, e, sharded.n)) {
      ++stats_.reused_files;  // a pinned dir amortizes the write across runs
      continue;
    }
    h = ShardHeader{};
    h.shard_index = p;
    h.begin = b;
    h.end = e;
    h.total_n = sharded.n;
    h.payload_bytes = shard_payload_bytes(e - b);
    if (!write_shard_file(path, h, list.next.data() + b,
                          list.value.data() + b)) {
      // ENOSPC/EIO mid-spill. The source list is resident by contract,
      // so the shard can always be served from RAM: degrade it (counted)
      // instead of failing the whole run -- unless the caller asked for
      // a hard failure, which surfaces as kResourceExhausted upstream.
      ++stats_.write_errors;
      if (!allow_degraded_) {
        last_error_ = StoreError::kIo;
        return false;
      }
      degraded_[p] = 1;
      ++stats_.degraded;
      continue;
    }
    stats_.spill_bytes +=
        sizeof(ShardHeader) + static_cast<std::size_t>(h.payload_bytes);
  }
  stats_.spilled = true;
  if (prefetch_depth > 0 && sharded.shards > 1) {
    prefetcher_ = std::thread([this] { prefetch_loop(); });
    hint_next(0);  // prime: fault shard 0 in while the caller finishes setup
  }
  return true;
}

ShardStore::LoadOutcome ShardStore::load_shard(unsigned p) {
  const auto [b, e] = sharded_->range(p);
  const std::string path = dir_ + "/" + shard_file_name(p);
  LoadOutcome out;
  if (out.map.open(path, p, b, e, sharded_->n)) return out;
  if (out.map.error() == ShardLoadError::kCorrupt) out.corrupt = true;
  // Recovery: whatever broke the slab (torn write, bit rot, a stale or
  // vanished file), the source arrays are resident -- re-pack and retry
  // once. A second failure falls through empty; the caller degrades or
  // surfaces the typed error.
  ShardHeader h;
  h.shard_index = p;
  h.begin = b;
  h.end = e;
  h.total_n = sharded_->n;
  h.payload_bytes = shard_payload_bytes(e - b);
  if (write_shard_file(path, h, list_->next.data() + b,
                       list_->value.data() + b)) {
    out.repacked = true;
    out.map.open(path, p, b, e, sharded_->n);
  }
  return out;
}

ShardView ShardStore::resident_view(unsigned p) const {
  const auto [b, e] = sharded_->range(p);
  return ShardView{list_->next.data() + b, list_->value.data() + b, b, e};
}

void ShardStore::evict_over_budget_locked() {
  while (resident_bytes_ > budget_) {
    auto victim = resident_.end();
    for (auto it = resident_.begin(); it != resident_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == resident_.end() || it->second.stamp < victim->second.stamp)
        victim = it;
    }
    if (victim == resident_.end()) return;  // everything left is pinned
    resident_bytes_ -= victim->second.map.bytes();
    ++stats_.spills;
    resident_.erase(victim);
  }
}

ShardView ShardStore::acquire(unsigned p) {
  const auto [b, e] = sharded_->range(p);
  if (!spill_) return resident_view(p);
  std::unique_lock<std::mutex> lk(mu_);
  // Depth-1 lookahead: both ranking passes visit shards in ascending
  // order, so the next shard is always p + 1.
  const auto hint_next_locked = [&] {
    if (prefetcher_.joinable() && p + 1 < sharded_->shards &&
        !degraded_[p + 1] &&
        resident_.find(p + 1) == resident_.end() && in_flight_ != p + 1) {
      target_ = p + 1;
      cv_.notify_all();
    }
  };
  for (;;) {
    if (degraded_[p]) {
      // The spill tier is broken for this shard; serve it straight from
      // the resident source arrays (over budget, by design).
      hint_next_locked();
      return resident_view(p);
    }
    auto it = resident_.find(p);
    if (it == resident_.end()) {
      if (in_flight_ == p || target_ == p) {
        cv_.wait(lk);  // the prefetcher is on it; re-check on wake
        continue;
      }
      // Synchronous load. Drop the lock for the I/O: the prefetcher may be
      // mapping a different shard concurrently. Only this (orchestrator)
      // thread sets target_, so nobody else can start loading p meanwhile.
      lk.unlock();
      LoadOutcome lo = load_shard(p);
      lk.lock();
      if (lo.corrupt) ++stats_.corrupt_slabs;
      if (lo.repacked) ++stats_.repacks;
      if (!lo.map) {
        if (!allow_degraded_) {
          last_error_ = lo.corrupt ? StoreError::kCorrupt : StoreError::kIo;
          return ShardView{};
        }
        degraded_[p] = 1;
        ++stats_.degraded;
        continue;  // served by the degraded branch above
      }
      ++stats_.loads;
      resident_bytes_ += lo.map.bytes();
      Resident r;
      r.map = std::move(lo.map);
      it = resident_.emplace(p, std::move(r)).first;
    }
    Resident& res = it->second;
    res.pinned = true;
    res.stamp = ++clock_;
    if (res.from_prefetch) {
      res.from_prefetch = false;
      ++stats_.prefetch_hits;
    }
    const ShardView view{res.map.next(), res.map.value(), b, e};
    evict_over_budget_locked();
    hint_next_locked();
    return view;
  }
}

void ShardStore::release(unsigned p) {
  if (!spill_) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = resident_.find(p);
  if (it != resident_.end()) it->second.pinned = false;
}

void ShardStore::hint_next(unsigned p) {
  if (!spill_ || !prefetcher_.joinable() || p >= sharded_->shards) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (resident_.find(p) != resident_.end() || in_flight_ == p) return;
  target_ = p;
  cv_.notify_all();
}

StoreStats ShardStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

StoreError ShardStore::last_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_error_;
}

void ShardStore::prefetch_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return shutdown_ || target_.has_value(); });
    if (shutdown_) return;
    const unsigned p = *target_;
    target_.reset();
    if (resident_.find(p) != resident_.end() || degraded_[p]) continue;
    in_flight_ = p;
    lk.unlock();
    LoadOutcome lo = load_shard(p);
    // The actual prefetch: pages resident on arrival (the checksum pass
    // in open() already faulted them; this keeps them warm).
    if (lo.map) lo.map.touch_pages();
    lk.lock();
    in_flight_.reset();
    if (lo.corrupt) ++stats_.corrupt_slabs;
    if (lo.repacked) ++stats_.repacks;
    // A failed prefetch is NOT degraded here: the acquire path retries
    // synchronously and owns the degrade/refuse decision.
    if (!shutdown_ && lo.map && resident_.find(p) == resident_.end()) {
      ++stats_.loads;
      resident_bytes_ += lo.map.bytes();
      Resident r;
      r.map = std::move(lo.map);
      r.from_prefetch = true;
      r.stamp = ++clock_;
      resident_.emplace(p, std::move(r));
    }
    cv_.notify_all();  // an acquire may be blocked on this shard
  }
}

}  // namespace lr90::shard
