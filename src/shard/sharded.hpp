// The sharded list-rank/scan executor: the paper's sublist reduction
// applied one level up (ROADMAP "Sharded + out-of-core list ranking").
//
// A run splits the list into P contiguous id-range shards (ShardedList),
// then makes three passes:
//
//   pass A  per shard, ascending: walk every segment headed in the shard
//           (packed (threads x W) hot path when the shard fits the 32-bit
//           lane, legacy scalar walks otherwise) producing the segment's
//           operator total and its exit vertex. Only ONE shard need be
//           resident at a time.
//   pass B  the second-level Reid-Miller pass: the segments form a reduced
//           list (node s = segment s, value = its total, link = the
//           segment its exit vertex heads); an exclusive scan of it yields
//           every segment's global prefix. Runs in RAM -- the reduced list
//           is O(segments), not O(n).
//   pass C  per shard, ascending again: re-walk each segment with the
//           accumulator seeded at its global prefix, writing the final
//           exclusive scan. Associativity makes this bit-exact vs the
//           serial oracle (the same algebra the in-core phases rely on).
//
// Residency between passes is the ShardStore's job: all-in-RAM views when
// no byte budget is set, spilled ShardFiles + LRU + async prefetch when
// one is (the out-of-core tier).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/engine.hpp"
#include "core/workspace.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"
#include "shard/shard_store.hpp"

namespace lr90::shard {

/// The fully resolved execution shape of one sharded run (the Engine's
/// Planner fills it from its Decision + EngineOptions::shard; tests and
/// benches construct it directly).
struct ShardExec {
  unsigned shards = 1;      ///< P (clamped to [1, min(n, kMaxShards)])
  unsigned threads = 1;     ///< worker threads inside each per-shard pass
  /// Cursors in flight per worker on each shard's packed hot path; 0
  /// forces the legacy scalar walks for every shard.
  unsigned interleave = 8;
  /// Resident shard-byte budget; 0 = all-in-RAM (no spill tier).
  std::size_t byte_budget = 0;
  /// Spill directory; "" = a fresh per-run directory under the system
  /// temp dir. Ignored when byte_budget == 0.
  std::string spill_dir;
  /// Keep (and reuse) the spill files across runs: set when the caller
  /// pins the directory (a server's per-snapshot-generation spill dir);
  /// unset directories are removed when the run finishes.
  bool keep_files = false;
  /// Async prefetch depth (0 disables the prefetch thread).
  unsigned prefetch = 1;
  /// Allow the store's counted degraded mode: shards whose spill tier
  /// fails (ENOSPC, EIO, unrecoverable corruption) are served resident
  /// from the source arrays instead of failing the run. false turns
  /// every such failure into a typed error (kCorruptSlab /
  /// kResourceExhausted) -- the chaos harness's strict knob.
  bool degrade = true;
};

/// What one sharded run did, for RunStats and the bench.
struct ShardRunStats {
  unsigned shards = 0;         ///< P the run actually used
  std::uint64_t segments = 0;  ///< reduced-list length (cross-shard cursors)
  StoreStats store;            ///< residency / spill / prefetch counters
};

/// Exclusive rank (rank == true) or `op`-scan of `list` into `out`
/// (sized n), sharded per `exec`. Deterministic and bit-exact vs the
/// serial oracle for every registered operator. `ws` supplies the
/// second-level pass's scratch. Returns kInvalidInput on structurally
/// broken cross-shard links; with `exec.degrade` off, kCorruptSlab for
/// an unrecoverable slab and kResourceExhausted when the spill tier
/// cannot write (with it on, those are counted degradations instead).
Status sharded_scan(const LinkedList& list, bool rank, ScanOp op,
                    const ShardExec& exec, Workspace& ws,
                    std::span<value_t> out, ShardRunStats& stats);

}  // namespace lr90::shard
