// ShardedList -- the list split into P contiguous index-range shards --
// and ShardStore, the residency manager that serves per-shard views either
// straight out of RAM or from spilled ShardFiles under a byte budget.
//
// The decomposition is the paper's sublist reduction applied one level up:
// a *segment* is a maximal run of list-order-consecutive vertices whose
// ids fall in the same shard, so every segment lives wholly inside one
// shard and the segments form a reduced list (one node per segment) whose
// scan resolves all cross-shard cursors. Segment discovery is a single
// streaming pass over next[]: vertex t = next[v] heads a segment exactly
// when v and t land in different shards (plus the global head).
//
// The store's out-of-core tier follows the Gigablast RdbCache/RdbMerge
// shape: shard files written once at streaming bandwidth, an LRU of
// mmapped shards capped by a resident byte budget, and a single async
// prefetch thread that faults the next shard's pages in while the current
// one is being ranked -- the ranking passes visit shards in ascending
// order twice, so depth-1 lookahead is the whole win.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lists/linked_list.hpp"
#include "shard/shard_file.hpp"

namespace lr90::shard {

/// Hard cap on shards per run (per-shard bookkeeping is O(P); 4096 shards
/// of 2^30 vertices outruns the 32-bit index space many times over).
inline constexpr unsigned kMaxShards = 4096;

/// The sharded representation of one list: P contiguous id-range shards
/// plus the discovered segment structure (see file comment). Built by one
/// streaming pass; holds O(segments) memory, never O(n).
struct ShardedList {
  std::size_t n = 0;        ///< full list length
  unsigned shards = 1;      ///< P
  std::size_t width = 1;    ///< ceil(n / P); shard p covers [p*width, ...)
  /// Per shard: the segment head vertices (global ids) in discovery order.
  std::vector<std::vector<index_t>> heads_of;
  /// Per shard: the id of its first segment (prefix sums of heads_of
  /// sizes); segment ids are dense in [0, segments).
  std::vector<std::size_t> seg_base;
  /// Head vertex -> its segment id, for resolving segment exits.
  std::unordered_map<index_t, index_t> seg_of_head;
  std::size_t segments = 0;  ///< total segment count (reduced-list length)

  /// The shard owning global vertex `v`.
  unsigned shard_of(index_t v) const {
    return static_cast<unsigned>(v / width);
  }
  /// The global id range [begin, end) of shard `p` (possibly empty for
  /// trailing shards when width * P overshoots n).
  std::pair<std::size_t, std::size_t> range(unsigned p) const {
    const std::size_t b = std::min(n, static_cast<std::size_t>(p) * width);
    return {b, std::min(n, b + width)};
  }

  /// Splits `list` into `shards` (clamped to [1, min(n, kMaxShards)]) and
  /// discovers the segment structure. `list` must be valid (the Engine
  /// validates upstream); n == 0 yields an empty structure.
  static ShardedList build(const LinkedList& list, unsigned shards);
};

/// A resident shard: the next/value subranges of global vertices
/// [begin, end). next[i] is the GLOBAL successor of vertex begin + i (the
/// raw source subrange; no id translation).
struct ShardView {
  const index_t* next = nullptr;
  const value_t* value = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Vertices in the view.
  std::size_t size() const { return end - begin; }
};

/// Residency and I/O counters for one store lifetime.
struct StoreStats {
  std::uint64_t loads = 0;          ///< shard file loads (mmap/open)
  std::uint64_t spills = 0;         ///< residencies evicted under the budget
  std::uint64_t prefetch_hits = 0;  ///< loads the async prefetcher served
  std::uint64_t reused_files = 0;   ///< valid pre-existing files kept as-is
  std::uint64_t spill_bytes = 0;    ///< bytes written to shard files
  bool spilled = false;             ///< the out-of-core tier was active
  std::uint64_t corrupt_slabs = 0;  ///< loads failing the integrity check
  std::uint64_t repacks = 0;        ///< slabs rewritten from the source list
  std::uint64_t degraded = 0;       ///< shards downgraded to resident serving
  std::uint64_t write_errors = 0;   ///< shard-file writes that failed
};

/// Why the store refused a shard (acquire returned an all-null view) or
/// prepare() failed. kNone while everything has been served.
enum class StoreError {
  kNone,     ///< no failure so far
  kCorrupt,  ///< a slab failed integrity and could not be re-packed
  kIo,       ///< spill I/O failed (write or load) with degradation off
};

/// Serves per-shard views of one list for the duration of one sharded run.
///
/// RAM mode (byte_budget == 0): views alias the source arrays; zero copy,
/// zero I/O. Spill mode (byte_budget > 0): prepare() writes every shard to
/// a ShardFile in `dir` (reusing any file whose header already matches),
/// then acquire() serves mmapped views under an LRU capped at the budget,
/// with one async prefetch thread faulting the next shard in.
///
/// Thread model: one orchestrator thread calls prepare/acquire/release/
/// hint_next; the internal prefetch thread is the only concurrency, and
/// every shared field is guarded by one mutex. The view returned by
/// acquire(p) stays valid until release(p).
class ShardStore {
 public:
  ShardStore() = default;
  ShardStore(const ShardStore&) = delete;             ///< not copyable
  ShardStore& operator=(const ShardStore&) = delete;  ///< not copyable
  /// Joins the prefetcher, unmaps everything, and removes the spill files
  /// (and their directory) unless keep_files was set.
  ~ShardStore();

  /// Binds the store to `list` split per `sharded`. byte_budget == 0
  /// selects RAM mode; otherwise shard files are written under `dir`
  /// (created if needed; must be non-empty), existing matching files are
  /// reused, and `prefetch_depth` > 0 starts the async prefetcher.
  /// `keep_files` leaves the files on disk at destruction (a server
  /// pinning a snapshot's spill dir); otherwise they are ephemeral.
  ///
  /// Failure model: with `allow_degraded` (the default) a shard whose
  /// spill write fails (ENOSPC, EIO) is put in DEGRADED mode -- served
  /// straight from the always-resident source arrays, over budget,
  /// counted in StoreStats::degraded -- and prepare() still succeeds.
  /// With `allow_degraded == false` any write failure fails prepare()
  /// (last_error() == kIo; the caller surfaces kResourceExhausted).
  bool prepare(const LinkedList& list, const ShardedList& sharded,
               std::size_t byte_budget, const std::string& dir,
               unsigned prefetch_depth, bool keep_files,
               bool allow_degraded = true);

  /// Blocks until shard `p` is resident and returns its view, pinned until
  /// release(p). On the spill tier this may wait for the prefetcher or
  /// perform a synchronous load, then evicts LRU unpinned shards until the
  /// budget holds.
  ///
  /// Failure ladder: a slab failing its integrity check is counted
  /// (corrupt_slabs), re-packed from the source list (repacks) and
  /// re-loaded; if the slab still cannot be served and degradation is
  /// allowed, the shard is served resident from the source arrays
  /// (degraded). Only with `allow_degraded == false` can acquire return
  /// an all-null view -- last_error() then carries the typed cause.
  ShardView acquire(unsigned p);

  /// The typed cause of the last refused shard / failed prepare (kNone
  /// when everything was served, possibly degraded).
  StoreError last_error() const;

  /// Unpins shard `p` (it stays resident until evicted by the budget).
  void release(unsigned p);

  /// Asks the prefetcher to start faulting shard `p` in (no-op in RAM
  /// mode, when disabled, or when `p` is already resident or in flight).
  /// acquire() hints p + 1 automatically; this is for callers that know a
  /// different access order.
  void hint_next(unsigned p);

  /// Counters so far (orchestrator-thread view; the prefetcher's
  /// contributions are folded in under the same mutex).
  StoreStats stats() const;

 private:
  struct Resident {
    ShardMap map;
    bool pinned = false;
    bool from_prefetch = false;  ///< not yet consumed by an acquire
    std::uint64_t stamp = 0;     ///< LRU clock at last acquire
  };

  /// One load attempt plus its recovery bookkeeping (no lock held; pure
  /// file I/O). The caller folds the flags into stats_ under mu_.
  struct LoadOutcome {
    ShardMap map;           ///< empty on unrecoverable failure
    bool corrupt = false;   ///< the first load failed integrity
    bool repacked = false;  ///< the slab was rewritten from the source
  };

  LoadOutcome load_shard(unsigned p);
  void evict_over_budget_locked();
  void prefetch_loop();
  ShardView resident_view(unsigned p) const;  ///< degraded/RAM-mode view

  const LinkedList* list_ = nullptr;
  const ShardedList* sharded_ = nullptr;
  std::size_t budget_ = 0;
  std::string dir_;
  bool keep_files_ = false;
  bool spill_ = false;
  bool allow_degraded_ = true;
  /// Per-shard degraded flag: spill for this shard is broken; serve it
  /// from the source arrays (guarded by mu_ once the prefetcher runs).
  std::vector<char> degraded_;
  StoreError last_error_ = StoreError::kNone;  ///< guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<unsigned, Resident> resident_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t clock_ = 0;
  StoreStats stats_;

  // Prefetcher handshake (all under mu_): target_ is the shard the
  // prefetcher should fetch next (nullopt = idle), in_flight_ the one it
  // is currently mapping outside the lock.
  std::thread prefetcher_;
  bool shutdown_ = false;
  std::optional<unsigned> target_;
  std::optional<unsigned> in_flight_;
};

}  // namespace lr90::shard
