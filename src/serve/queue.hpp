// A bounded multi-producer multi-consumer queue with an adaptive batch pop.
//
// This is the hand-off point of the EngineServer: client threads push jobs,
// worker threads pop them. Two properties are load-bearing for serving:
//
//   * Bounded capacity -- a full queue blocks producers (back-pressure)
//     instead of growing without bound under overload.
//   * Adaptive batch pop -- a consumer takes ONE item while the queue is
//     shallow (lowest latency) but takes up to `max_batch` items in a
//     single critical section once the depth exceeds `batch_threshold`
//     (micro-batching: the depth is the congestion signal, and coalescing
//     amortizes the per-item synchronization exactly when it matters).
//
// close() starts a graceful drain: producers are rejected from then on,
// consumers keep popping until the queue is empty and only then observe
// shutdown. A plain mutex + two condition variables implementation is
// deliberately chosen over a lock-free ring: jobs are popped in batches
// (the lock is taken once per batch, not per item) and the hand-off cost
// is measured by bench/serve_throughput.cpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <deque>
#include <utility>
#include <vector>

/// The concurrent serving layer over lr90::Engine: bounded queueing,
/// pooled workspaces, and the EngineServer worker pool.
namespace lr90::serve {

/// Bounded MPMC queue of move-only items with close/drain semantics.
template <class T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (>= 1 enforced).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;             ///< not copyable
  BoundedQueue& operator=(const BoundedQueue&) = delete;  ///< not copyable

  /// Blocks while the queue is full; returns false iff the queue was
  /// closed. The item is moved from only on success -- on rejection it
  /// stays with the caller (so a serving layer can still answer its
  /// promise with a typed Status).
  bool push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > size_hwm_) size_hwm_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when the queue is full or closed.
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > size_hwm_) size_hwm_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and drained, in which case 0 is returned). Appends to `out` either a
  /// single item (depth <= `batch_threshold`) or up to `max_batch` items
  /// (depth above the threshold) in one critical section.
  std::size_t pop_batch(std::vector<T>& out, std::size_t batch_threshold,
                        std::size_t max_batch) {
    std::size_t taken = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return 0;  // closed and fully drained
      const std::size_t depth = items_.size();
      taken = depth > batch_threshold
                  ? std::min(depth, max_batch == 0 ? std::size_t{1} : max_batch)
                  : 1;
      for (std::size_t i = 0; i < taken; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    // A batch frees several slots at once; wake every blocked producer.
    not_full_.notify_all();
    return taken;
  }

  /// Rejects producers from now on; consumers drain the remaining items.
  /// Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Removes and returns every queued item without waiting (used by a
  /// non-graceful shutdown to fail pending jobs with a typed Status).
  std::vector<T> drain_now() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.reserve(items_.size());
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    return out;
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous number of queued items (racy by nature; for telemetry).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// High-water mark of size() since construction (or the last
  /// reset_size_hwm()). Updated under the queue lock at push time, so a
  /// successful push is always reflected -- the depth signal behind the
  /// serving layer's queue_depth_hwm stat and the wire RETRY_AFTER hint.
  std::size_t size_hwm() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_hwm_;
  }

  /// Restarts the high-water tracking (ServerStats::reset_stats coverage).
  void reset_size_hwm() {
    std::lock_guard<std::mutex> lock(mu_);
    size_hwm_ = items_.size();
  }

  /// The fixed capacity bound.
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;          ///< maximum queued items
  mutable std::mutex mu_;               ///< guards items_ and closed_
  std::condition_variable not_empty_;   ///< consumers wait here
  std::condition_variable not_full_;    ///< producers wait here
  std::deque<T> items_;                 ///< FIFO payload
  std::size_t size_hwm_ = 0;            ///< deepest items_ seen at a push
  bool closed_ = false;                 ///< set once by close()
};

}  // namespace lr90::serve
