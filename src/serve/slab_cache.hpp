// A bounded, sharded LRU cache keyed on snapshot generations -- the
// cross-request caching layer of the serving stack.
//
// The packed hot word (lists/encode.hpp) makes the O(n) slab build the
// dominant fixed cost per request once traversal is latency-hidden; the
// Workspace slab cache amortizes it only within one engine batch because
// arbitrary callers can mutate arrays between runs. The SnapshotRegistry
// (serve/snapshot.hpp) removes that caveat -- server-registered lists are
// immutable and generation-stamped -- so cached artifacts keyed on
// (snapshot_id, generation) can outlive a batch, a worker, and a client.
//
// One template, two instantiations in EngineServer:
//
//   * the SLAB cache: shared_ptr<const PackedSlab> per (snapshot,
//     generation, ones-flag) -- any pooled worker reuses any other
//     worker's build; steady-state hot keys do ZERO packs.
//   * the RESULT cache: shared_ptr<const RunResult> per (snapshot,
//     generation, request shape) -- repeated hot-key requests are
//     answered without touching an engine at all; steady state does ZERO
//     ranks.
//
// Eviction is LRU under a byte budget, split evenly across lock shards
// (all generations of one snapshot land in one shard, so invalidation is
// one shard walk). Generation bumps alone already make stale entries
// unreachable -- the generation is in the key -- so invalidate() is a
// space reclaim, not a correctness requirement.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "lists/ops.hpp"

namespace lr90::serve {

// -- keying helpers (the cache-keying contract; see ARCHITECTURE.md) -------

/// Slab-cache flavor for a slab whose value lane carries list values
/// (lane-capable scans).
inline constexpr std::uint64_t kSlabFlavorValues = 0;
/// Slab-cache flavor for a slab whose value lane is the constant 1
/// (ranking).
inline constexpr std::uint64_t kSlabFlavorOnes = 1;

/// Result-cache flavor: the request shape (rank-or-scan, operator,
/// method) packed into one word, so distinct shapes never collide.
std::uint64_t request_flavor(bool rank, ScanOp op, Method method);

/// Admission charge of a memoized RunResult (the scan vector plus the
/// struct itself), for byte-budget accounting.
std::size_t result_bytes(const RunResult& r);

/// Identity of a cached artifact: which immutable snapshot generation it
/// was derived from, plus a flavor word distinguishing artifact shapes
/// (the ones-flag for slabs; the packed request shape for results).
struct CacheKey {
  std::uint64_t snapshot_id = 0;  ///< registry-issued snapshot id
  std::uint64_t generation = 0;   ///< generation the artifact was built at
  std::uint64_t flavor = 0;       ///< artifact shape discriminator
  /// Field-wise equality.
  bool operator==(const CacheKey&) const = default;
};

/// Hash for CacheKey (splitmix64 over the three words).
struct CacheKeyHash {
  /// The hash value.
  std::size_t operator()(const CacheKey& k) const {
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    return static_cast<std::size_t>(
        mix(k.snapshot_id ^ mix(k.generation ^ mix(k.flavor))));
  }
};

/// Counter snapshot of one LruCache. The first four are cumulative since
/// the last reset_counters(); the last two are gauges of current
/// occupancy (never reset -- they follow the cache's actual content).
/// Conservation: hits + misses == lookups, always.
struct CacheStats {
  std::uint64_t hits = 0;        ///< lookups served from the cache
  std::uint64_t misses = 0;      ///< lookups that found nothing
  std::uint64_t evictions = 0;   ///< entries dropped (budget or invalidate)
  std::uint64_t inserts = 0;     ///< entries admitted
  std::uint64_t resident_bytes = 0;    ///< bytes currently held (gauge)
  std::uint64_t resident_entries = 0;  ///< entries currently held (gauge)
};

/// A bounded LRU map from CacheKey to a value, sharded by snapshot id so
/// concurrent workers rarely contend and invalidation of one snapshot
/// walks one shard. The byte budget is split evenly across shards; an
/// insert evicts least-recently-used entries of its shard until the shard
/// is back under its slice (an entry larger than the slice is refused
/// outright, leaving the resident set untouched -- resident bytes never
/// exceed the budget).
///
/// `Value` must be cheap to copy out under the shard lock; the serving
/// layer instantiates it with shared_ptr-to-const artifacts.
template <class Value>
class LruCache {
 public:
  /// A cache holding at most `byte_budget` bytes across `shards` lock
  /// shards (clamped to >= 1).
  explicit LruCache(std::size_t byte_budget, unsigned shards = 8)
      : budget_per_shard_(byte_budget / (shards < 1 ? 1 : shards)),
        shards_(shards < 1 ? 1 : shards) {}

  /// Looks `key` up; on a hit copies the value into `out`, marks the
  /// entry most-recently-used, and returns true.
  bool lookup(const CacheKey& key, Value& out) {
    Shard& s = shard_of(key.snapshot_id);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return false;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch: most recent
    out = it->second->value;
    return true;
  }

  /// Admits (key -> value) charged at `bytes`, replacing any previous
  /// entry under the same key, then evicts least-recently-used entries
  /// until the shard is back under its budget slice. An entry that alone
  /// exceeds the slice is refused up front (counted as one insert plus
  /// one eviction) without touching the entries already resident.
  void insert(const CacheKey& key, Value value, std::size_t bytes) {
    Shard& s = shard_of(key.snapshot_id);
    std::lock_guard<std::mutex> lock(s.mu);
    if (bytes > budget_per_shard_) {
      // Admitting this entry and letting the LRU walk reclaim space would
      // evict every innocent resident before reaching the oversized entry
      // itself -- a cache wipe with nothing to show for it. Refuse it
      // outright: the books record an admission and an immediate drop,
      // and the shard's resident set and byte accounting are untouched.
      // (Any prior entry under the same key stays: artifacts are
      // deterministic per key, so it is the same value at a size that
      // already fit.)
      ++s.inserts;
      ++s.evictions;
      return;
    }
    auto it = s.index.find(key);
    if (it != s.index.end()) {  // replace in place (refresh, not eviction)
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.index.emplace(key, s.lru.begin());
    s.bytes += bytes;
    ++s.inserts;
    while (s.bytes > budget_per_shard_ && !s.lru.empty()) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.index.erase(victim.key);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  /// Drops every entry of `snapshot_id` -- all generations, all flavors
  /// (one shard walk; counted as evictions). Returns how many were
  /// dropped. A space reclaim after update()/drop(): the generation key
  /// already makes stale entries unreachable.
  std::size_t invalidate(std::uint64_t snapshot_id) {
    Shard& s = shard_of(snapshot_id);
    std::lock_guard<std::mutex> lock(s.mu);
    std::size_t dropped = 0;
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->key.snapshot_id == snapshot_id) {
        s.bytes -= it->bytes;
        s.index.erase(it->key);
        it = s.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    s.evictions += dropped;
    return dropped;
  }

  /// Sums the per-shard counters into one CacheStats snapshot.
  CacheStats stats() const {
    CacheStats out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.inserts += s.inserts;
      out.resident_bytes += s.bytes;
      out.resident_entries += s.lru.size();
    }
    return out;
  }

  /// Zeroes the cumulative counters (hits/misses/evictions/inserts).
  /// Resident entries -- and therefore the occupancy gauges -- are
  /// untouched: a stats reset must not cool a warmed cache.
  void reset_counters() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.hits = s.misses = s.evictions = s.inserts = 0;
    }
  }

 private:
  struct Entry {
    CacheKey key;       ///< the entry's identity (for reverse erase)
    Value value;        ///< the cached artifact
    std::size_t bytes;  ///< admission charge
  };
  struct Shard {
    mutable std::mutex mu;  ///< guards everything below
    std::list<Entry> lru;   ///< front = most recently used
    std::unordered_map<CacheKey, typename std::list<Entry>::iterator,
                       CacheKeyHash>
        index;                  ///< key -> LRU position
    std::size_t bytes = 0;      ///< resident charge of this shard
    std::uint64_t hits = 0;       ///< cumulative lookup hits
    std::uint64_t misses = 0;     ///< cumulative lookup misses
    std::uint64_t evictions = 0;  ///< cumulative drops (budget/invalidate)
    std::uint64_t inserts = 0;    ///< cumulative admissions
  };

  Shard& shard_of(std::uint64_t snapshot_id) {
    // All generations/flavors of one snapshot share a shard (one-walk
    // invalidation); mix so consecutive ids spread across shards.
    return shards_[CacheKeyHash{}(CacheKey{snapshot_id, 0, 0}) %
                   shards_.size()];
  }

  std::size_t budget_per_shard_;  ///< byte budget / shard count
  std::vector<Shard> shards_;    ///< fixed after construction
};

}  // namespace lr90::serve
