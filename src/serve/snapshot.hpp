// Server-owned immutable list snapshots, generation-stamped -- the
// ownership story that makes cross-request caching sound.
//
// Everywhere else in the library the caller owns the list and may mutate
// it between runs, which is why the Workspace slab cache trusts its keys
// only inside one engine batch. The SnapshotRegistry inverts ownership:
// a client registers a list ONCE, the server takes an immutable copy and
// hands back a {snapshot_id, generation} handle, and every later request
// addresses the handle instead of shipping (or aliasing) the arrays.
// Mutation is explicit -- update() installs a new list under the same id
// and bumps the generation, drop() retires the id -- so every derived
// artifact (packed slabs, memoized results; serve/slab_cache.hpp) is
// keyed on a generation that provably identifies immutable bytes.
//
// Coherence contract: resolve() reads the current generation under the
// same mutex update() writes it, so any request submitted after update()
// returns either targets the new generation or -- if it pinned the old
// one -- is rejected as stale. No stale-generation answer is ever served
// as current.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "lists/linked_list.hpp"

namespace lr90::serve {

/// A client's name for one registered snapshot: the registry-issued id
/// plus the generation the client last saw. Both are never 0 for a live
/// snapshot (generation 0 in a request means "whatever is current").
struct SnapshotHandle {
  std::uint64_t snapshot_id = 0;  ///< registry-issued, unique per register
  std::uint64_t generation = 0;   ///< bumped by every update()
};

/// The server-side table of immutable, generation-stamped list snapshots.
/// All operations are O(1) under one mutex (the lists themselves are
/// shared out by shared_ptr-to-const, so resolution never copies);
/// thread-safe.
class SnapshotRegistry {
 public:
  /// Outcome of resolve(): found-and-current, found-but-superseded, or
  /// not found at all.
  enum class Resolve {
    kOk,       ///< the handle addresses the current generation
    kStale,    ///< the snapshot exists, but at a newer generation
    kUnknown,  ///< no such snapshot id (never registered, or dropped)
  };

  /// Registers `list` as a new immutable snapshot at generation 1 and
  /// returns its handle.
  SnapshotHandle register_snapshot(LinkedList list);

  /// Replaces snapshot `id`'s list and bumps its generation. Returns the
  /// new handle, or false if `id` is unknown. The caller (EngineServer)
  /// invalidates the caches; in-flight runs against the old generation
  /// keep their shared_ptr and finish coherently on the old bytes.
  bool update(std::uint64_t id, LinkedList list, SnapshotHandle& out);

  /// Retires snapshot `id` (in-flight runs keep their shared_ptr).
  /// Returns false if `id` is unknown.
  bool drop(std::uint64_t id);

  /// Looks up snapshot `id` at `generation` (0 = current). On kOk fills
  /// `list` with the pinned immutable list and `handle` with the current
  /// handle; on kStale fills only `handle` (so the caller can tell the
  /// client what generation to retarget); kUnknown fills neither.
  Resolve resolve(std::uint64_t id, std::uint64_t generation,
                  std::shared_ptr<const LinkedList>& list,
                  SnapshotHandle& handle) const;

  /// Number of live snapshots.
  std::size_t size() const;

 private:
  struct Slot {
    std::uint64_t generation = 0;            ///< current generation
    std::shared_ptr<const LinkedList> list;  ///< the immutable bytes
  };

  mutable std::mutex mu_;                         ///< guards the table
  std::unordered_map<std::uint64_t, Slot> slots_; ///< id -> current slot
  std::uint64_t next_id_ = 1;                     ///< ids are never reused
};

}  // namespace lr90::serve
