// lr90::EngineServer -- a thread-safe, multi-client serving layer over the
// Engine, turning the library's single-threaded facade into something that
// takes concurrent traffic.
//
//   EngineServer server({.engine = {.backend = BackendKind::kHost}});
//   std::future<RunResult> f = server.submit(RankRequest{&list});
//   RunResult r = f.get();              // typed Status, never throws on
//                                       // rejection -- kUnavailable instead
//   server.shutdown();                  // graceful: drains, then joins
//
// Architecture (see docs/ARCHITECTURE.md):
//
//   clients --submit--> BoundedQueue --pop_batch--> workers --> WorkspacePool
//      futures <-------- promises fulfilled per result <-- Engine::run_batch_each
//
//   * Each submit() enqueues a job (request + promise) onto a bounded MPMC
//     queue; back-pressure blocks producers when full (or rejects with
//     StatusCode::kUnavailable when reject_when_full is set).
//   * A fixed pool of worker threads pops jobs. While the queue is shallow
//     each worker takes one job (lowest latency); once the depth exceeds
//     batch_threshold it coalesces up to max_batch jobs and runs them as
//     one Engine::run_batch_each call -- adaptive micro-batching, paying
//     one queue critical section and one engine lease per batch. Identical
//     requests inside a batch collapse into a single engine run (hot-key
//     traffic runs the work once per batch, not once per client).
//   * Engines (and their warmed-up Workspaces) come from a WorkspacePool:
//     zero scratch allocations in steady state, observable via stats().
//   * shutdown() closes the queue, lets workers drain every queued job,
//     and joins; shutdown_now() fails queued-but-unstarted jobs with
//     kUnavailable instead. Submissions racing with either resolve to a
//     kUnavailable future -- typed propagation, no exceptions, no deadlock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "serve/queue.hpp"
#include "serve/slab_cache.hpp"
#include "serve/snapshot.hpp"
#include "serve/workspace_pool.hpp"

namespace lr90::serve {

/// Configuration of an EngineServer.
struct ServerOptions {
  /// Per-worker engine configuration (backend, threads, verification...).
  /// A host-backend engine left at threads = 0 is resolved to threads = 1:
  /// a server gets its parallelism from the worker pool (one engine per
  /// worker), and the OpenMP default of all-cores-per-engine would
  /// oversubscribe the machine workers^2-fold under load. Set threads
  /// explicitly for intra-request parallelism on top.
  EngineOptions engine;
  /// Worker threads (each with its own pooled engine); 0 = one per
  /// hardware thread.
  unsigned workers = 0;
  /// Bounded request-queue capacity; a full queue back-pressures clients.
  std::size_t queue_capacity = 1024;
  /// Micro-batching trigger: coalesce once the queue depth exceeds this.
  std::size_t batch_threshold = 1;
  /// Largest number of requests coalesced into one run_batch call.
  std::size_t max_batch = 64;
  /// When true, submit() on a full queue resolves immediately to
  /// StatusCode::kUnavailable instead of blocking for a slot.
  bool reject_when_full = false;
  /// Request collapsing: identical requests inside one micro-batch (same
  /// LinkedList object, same rank/op/method) share a single engine run and
  /// each receive a copy of its result. Semantically invisible -- Engine
  /// runs are deterministic (the workspace RNG is reseeded from the
  /// options' seed every run), so N identical requests produce bit-
  /// identical answers either way -- but under hot-key traffic (many
  /// clients asking about the same list) it multiplies aggregate
  /// throughput: the work runs once per batch instead of once per client.
  bool collapse_duplicates = true;
  /// Byte budget of the shared packed-slab cache (snapshot-addressed
  /// requests only; serve/slab_cache.hpp). 0 disables slab caching.
  std::size_t slab_cache_bytes = std::size_t{64} << 20;
  /// Byte budget of the memoized-result cache (snapshot-addressed
  /// requests only). 0 disables result memoization.
  std::size_t result_cache_bytes = std::size_t{64} << 20;
  /// Root directory for out-of-core shard spill files of
  /// snapshot-addressed requests. When non-empty, every snapshot job
  /// carries the generation-stamped spill directory
  /// shard::snapshot_spill_dir(root, id, gen), so sharded runs KEEP their
  /// shard files across requests (repeat runs reuse matching headers
  /// instead of rewriting); update_snapshot()/drop_snapshot() remove
  /// every generation's directory of the id alongside the cache
  /// invalidation. Empty (the default) leaves sharded runs on ephemeral
  /// per-run temp directories.
  std::string shard_spill_root;
};

/// A request addressed to a server-registered immutable snapshot
/// (EngineServer::register_snapshot) instead of a caller-owned list.
/// Pinning `generation` requests exactly that generation -- superseded
/// pins are rejected with StatusCode::kStaleGeneration carrying the
/// current generation in RunStats::snapshot_generation; generation 0
/// means "whatever is current". Snapshot requests are what the
/// cross-request caches serve: hot keys in steady state do zero packs
/// (slab cache) and zero engine runs (result memoization).
struct SnapshotRequest {
  std::uint64_t snapshot_id = 0;  ///< handle from register_snapshot()
  std::uint64_t generation = 0;   ///< pinned generation; 0 = current
  bool rank = true;               ///< rank (true) or scan (false)
  ScanOp op = ScanOp::kPlus;      ///< the scan's operator; ignored for rank
  Method method = Method::kAuto;  ///< algorithm; kAuto = Planner's pick
  std::uint32_t deadline_ms = 0;  ///< relative deadline; 0 = none
};

/// Serving counters, monotonic since construction (or since the last
/// EngineServer::reset_stats()).
struct ServerStats {
  std::uint64_t submitted = 0;   ///< jobs accepted into the queue
  std::uint64_t rejected = 0;    ///< submits resolved kUnavailable
  std::uint64_t completed = 0;   ///< jobs whose promise was fulfilled
  std::uint64_t batches = 0;     ///< run_batch_each calls issued
  std::uint64_t coalesced = 0;   ///< jobs that shared a batch (size > 1)
  std::uint64_t collapsed = 0;   ///< jobs served by another job's run
  std::uint64_t peak_batch = 0;  ///< largest batch observed
  /// Deepest request-queue backlog seen at any submit (BoundedQueue
  /// size_hwm): the congestion high-water behind capacity planning and
  /// the net layer's RETRY_AFTER hint.
  std::uint64_t queue_depth_hwm = 0;
  std::uint64_t rank_requests = 0;  ///< accepted jobs that were ranks
  std::uint64_t scan_requests = 0;  ///< accepted jobs that were scans
  /// Largest per-request host worker-thread count observed in any result
  /// (RunStats::host_threads): together with `workers()` this is the
  /// intra-request x inter-request parallelism the server actually ran
  /// (bench/serve_throughput reports the product).
  std::uint64_t intra_threads_peak = 0;
  // Which host kernel family actually served each completed run
  // (RunStats::kernel_tier; runs that never reached the host kernels --
  // empty lists, result-cache hits -- count nowhere): the serving-layer
  // proof that the SIMD dispatcher engaged (or correctly fell back) in
  // production, surfaced as tier_* rows in the wire STATS text.
  std::uint64_t tier_legacy_runs = 0;  ///< unpacked kernels / serial walk
  std::uint64_t tier_packed_runs = 0;  ///< scalar multi-cursor kernels
  std::uint64_t tier_simd_runs = 0;    ///< AVX2 gather kernels
  PoolStats pool;                ///< aggregated workspace counters

  // Snapshot / cross-request-cache counters (snapshot-addressed requests
  // only). The hit/miss/eviction tallies are cumulative since the last
  // reset_stats(); the resident figures are occupancy gauges that follow
  // the caches' actual content (reset_stats does NOT flush a warmed
  // cache). Result-cache hits are answered inline at submit() and never
  // enter the queue, so they appear in result_hits but not in
  // submitted/completed.
  std::uint64_t slab_hits = 0;         ///< slab-cache lookup hits
  std::uint64_t slab_misses = 0;       ///< slab-cache lookup misses
  std::uint64_t slab_evictions = 0;    ///< slab entries dropped
  std::uint64_t result_hits = 0;       ///< memoized results served
  std::uint64_t result_misses = 0;     ///< memoization lookup misses
  std::uint64_t result_evictions = 0;  ///< memoized entries dropped
  std::uint64_t cache_resident_bytes = 0;    ///< both caches' bytes (gauge)
  std::uint64_t cache_resident_entries = 0;  ///< both caches' count (gauge)
  std::uint64_t snapshots_live = 0;     ///< registered snapshots (gauge)
  std::uint64_t snapshot_updates = 0;   ///< update_snapshot() generations
  std::uint64_t stale_rejections = 0;   ///< kStaleGeneration rejections

  // Out-of-core sharding aggregates across every completed run
  // (RunStats::shard_*): how often the sharded tier engaged and how hard
  // the byte budget squeezed it.
  std::uint64_t sharded_runs = 0;        ///< runs that took the shard path
  std::uint64_t shard_spills = 0;        ///< shard evictions under budget
  std::uint64_t shard_prefetch_hits = 0; ///< shards consumed pre-faulted

  // Failure-model counters (the hardened paths; see ARCHITECTURE.md
  // "Failure model"). All are degradations or typed rejections the server
  // survived, never aborts.
  std::uint64_t shard_corrupt_slabs = 0;  ///< slabs failing integrity
  std::uint64_t shard_repacks = 0;        ///< slabs rewritten from source
  std::uint64_t shard_degraded = 0;       ///< shards served resident (spill down)
  /// Spill-dir unlink/rmdir failures other than ENOENT during snapshot
  /// update/drop reclamation (leaked spill space an operator should see).
  std::uint64_t spill_reclaim_failures = 0;
  /// Jobs answered kDeadlineExceeded because their deadline passed while
  /// they were still queued (the work never ran).
  std::uint64_t deadline_expired = 0;
};

/// Thread-safe multi-client server over pooled Engines. All public methods
/// may be called concurrently from any thread.
class EngineServer {
 public:
  /// Starts the worker pool immediately.
  explicit EngineServer(ServerOptions opt = {});
  /// Graceful: equivalent to shutdown().
  ~EngineServer();

  EngineServer(const EngineServer&) = delete;             ///< not copyable
  EngineServer& operator=(const EngineServer&) = delete;  ///< not copyable

  /// Submits a rank request; the future resolves when a worker ran it (or
  /// immediately, with StatusCode::kUnavailable, if rejected).
  std::future<RunResult> submit(const RankRequest& req);
  /// Submits a scan under any registered operator -- ScanRequest and
  /// OpRequest are one type (same contract as the rank overload).
  /// Collapsing keys on the operator identity: only jobs with the same
  /// list, method, AND ScanOp share one engine run.
  std::future<RunResult> submit(const ScanRequest& req);
  /// Submits a unified request (same contract as the rank overload).
  std::future<RunResult> submit(Request req);
  /// Callback flavour of submit() for callers that must never block on a
  /// future -- the network event loop. `done` is invoked exactly once
  /// with the result: from a worker thread on completion, or inline from
  /// this call on rejection (full queue / shutdown, a kUnavailable
  /// result). The callback must be cheap and non-blocking (it runs on a
  /// worker's batch path); hand heavy work to another thread.
  void submit(Request req, std::function<void(RunResult&&)> done);

  // -- snapshot-addressed serving (the cross-request cache path) ---------

  /// Registers `list` as an immutable server-owned snapshot (generation
  /// 1) and fills `out` with its handle. Validates the list first when
  /// the engine options request input validation; malformed lists are
  /// rejected with kInvalidInput and nothing is registered.
  Status register_snapshot(LinkedList list, SnapshotHandle& out);
  /// Replaces snapshot `id`'s list, bumps its generation, invalidates
  /// every cached artifact of the id, and fills `out` with the new
  /// handle. After this returns, no request observes the old bytes as
  /// current: in-flight runs against the old generation finish coherently
  /// on them, new requests resolve to the new generation, and pinned
  /// old-generation requests are rejected as stale.
  Status update_snapshot(std::uint64_t id, LinkedList list,
                         SnapshotHandle& out);
  /// Retires snapshot `id` and drops its cached artifacts. Returns false
  /// if `id` is unknown. In-flight runs keep the old bytes alive.
  bool drop_snapshot(std::uint64_t id);
  /// Submits a snapshot-addressed request. A memoized result is answered
  /// inline (the future is already resolved on return); otherwise the
  /// job is queued like any other, carrying the pinned snapshot list and
  /// any cached slab. Stale pins and unknown ids resolve immediately to
  /// kStaleGeneration / kInvalidInput.
  std::future<RunResult> submit(const SnapshotRequest& req);
  /// Callback flavour of the snapshot submit (same contract as the
  /// Request callback overload; inline resolutions invoke `done` from
  /// this call).
  void submit(const SnapshotRequest& req,
              std::function<void(RunResult&&)> done);

  /// Stops accepting work, drains every queued job, joins the workers.
  /// Idempotent; concurrent callers all block until the drain finishes.
  void shutdown();
  /// Stops accepting work, fails queued-but-unstarted jobs with
  /// StatusCode::kUnavailable, joins the workers. Idempotent.
  void shutdown_now();

  /// True while the server accepts work; false once shutdown has begun
  /// (new submissions resolve to StatusCode::kUnavailable from then on).
  bool accepting() const { return !queue_.closed(); }
  /// Instantaneous queued-job count (telemetry; racy by nature).
  std::size_t queue_depth() const { return queue_.size(); }
  /// Number of worker threads serving this instance.
  std::size_t workers() const { return threads_.size(); }
  /// Snapshot of the serving counters.
  ServerStats stats() const;
  /// Zeroes every serving counter, including the pooled workspace
  /// allocation/reuse counters (which were monotonic-only before this
  /// existed) -- warmed buffers keep their capacity, so a reset never
  /// reintroduces allocations. Call at a quiescent point (no in-flight
  /// jobs); counts racing the reset may be lost, never corrupted.
  void reset_stats();
  /// The options the server was built with (workers resolved to >= 1).
  const ServerOptions& options() const { return opt_; }

 private:
  /// One queued unit of work: the request plus how to answer it -- a
  /// promise feeding the client's future, or (callback submissions) a
  /// completion function invoked in its place.
  struct Job {
    Request req;                     ///< what to run
    std::promise<RunResult> result;  ///< how to answer (future flavour)
    std::function<void(RunResult&&)> done;  ///< how to answer (callback)
    /// Snapshot jobs pin their immutable list here (req.list aliases it),
    /// so the bytes outlive update()/drop() races.
    std::shared_ptr<const LinkedList> pinned;
    std::uint64_t snapshot_id = 0;  ///< 0 = not a snapshot job
    std::uint64_t snapshot_generation = 0;  ///< generation req.list is
    /// Absolute expiry stamped at submit from req.deadline_ms (time_point
    /// max = no deadline). Workers answer kDeadlineExceeded without
    /// running when a popped job is already past it.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();

    /// Answers with `r` (consumed). Exactly one fulfil per job.
    void fulfill(RunResult&& r) {
      if (done) {
        done(std::move(r));
      } else {
        result.set_value(std::move(r));
      }
    }
    /// Answers with a copy of `r` (collapsed-duplicate fan-out).
    void fulfill_copy(const RunResult& r) {
      if (done) {
        done(RunResult(r));
      } else {
        result.set_value(r);
      }
    }
  };

  std::future<RunResult> submit_job(Job job, bool has_future);
  std::future<RunResult> submit_snapshot(const SnapshotRequest& req,
                                         std::function<void(RunResult&&)> done,
                                         bool has_future);
  void finish_snapshot_run(const Job& job, const Request& req, RunResult& r,
                           Engine& engine);
  void worker_loop();
  void join_workers(bool drain);

  ServerOptions opt_;            ///< resolved configuration
  BoundedQueue<Job> queue_;      ///< clients push, workers pop
  WorkspacePool pool_;           ///< one warmed engine per running batch
  SnapshotRegistry registry_;    ///< immutable generation-stamped lists
  /// Cross-request packed slabs per (snapshot, generation, ones-flag).
  LruCache<std::shared_ptr<const PackedSlab>> slab_cache_;
  /// Memoized results per (snapshot, generation, request shape).
  LruCache<std::shared_ptr<const RunResult>> result_cache_;
  std::vector<std::thread> threads_;  ///< the worker pool

  std::atomic<std::uint64_t> submitted_{0};   ///< accepted jobs
  std::atomic<std::uint64_t> rejected_{0};    ///< kUnavailable resolutions
  std::atomic<std::uint64_t> completed_{0};   ///< fulfilled promises
  std::atomic<std::uint64_t> batches_{0};     ///< engine batch calls
  std::atomic<std::uint64_t> coalesced_{0};   ///< jobs in shared batches
  std::atomic<std::uint64_t> collapsed_{0};   ///< duplicate jobs collapsed
  std::atomic<std::uint64_t> peak_batch_{0};  ///< largest batch seen
  std::atomic<std::uint64_t> intra_threads_peak_{0};  ///< max host_threads
  std::atomic<std::uint64_t> tier_legacy_runs_{0};  ///< kLegacy results
  std::atomic<std::uint64_t> tier_packed_runs_{0};  ///< kPackedCursors results
  std::atomic<std::uint64_t> tier_simd_runs_{0};    ///< kSimdGather results
  std::atomic<std::uint64_t> rank_requests_{0};  ///< accepted rank jobs
  std::atomic<std::uint64_t> scan_requests_{0};  ///< accepted scan jobs
  std::atomic<std::uint64_t> snapshot_updates_{0};  ///< update_snapshot()s
  std::atomic<std::uint64_t> stale_rejections_{0};  ///< stale-pin rejects
  std::atomic<std::uint64_t> sharded_runs_{0};      ///< shard-path runs
  std::atomic<std::uint64_t> shard_spills_{0};      ///< budget evictions
  std::atomic<std::uint64_t> shard_prefetch_hits_{0};  ///< warm shard loads
  std::atomic<std::uint64_t> shard_corrupt_slabs_{0};  ///< integrity misses
  std::atomic<std::uint64_t> shard_repacks_{0};        ///< slab rewrites
  std::atomic<std::uint64_t> shard_degraded_{0};       ///< resident fallbacks
  std::atomic<std::uint64_t> spill_reclaim_failures_{0};  ///< leaked spills
  std::atomic<std::uint64_t> deadline_expired_{0};  ///< expired in queue

  std::mutex shutdown_mu_;        ///< serializes shutdown paths
  bool joined_ = false;           ///< workers already joined
};

}  // namespace lr90::serve

namespace lr90 {
/// The serving layer's primary types, re-exported at the library root.
using serve::EngineServer;
using serve::ServerOptions;
using serve::ServerStats;
using serve::SnapshotHandle;
using serve::SnapshotRequest;
}  // namespace lr90
