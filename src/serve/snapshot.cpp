#include "serve/snapshot.hpp"

#include <utility>

namespace lr90::serve {

SnapshotHandle SnapshotRegistry::register_snapshot(LinkedList list) {
  auto pinned = std::make_shared<const LinkedList>(std::move(list));
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  slots_.emplace(id, Slot{1, std::move(pinned)});
  return SnapshotHandle{id, 1};
}

bool SnapshotRegistry::update(std::uint64_t id, LinkedList list,
                              SnapshotHandle& out) {
  auto pinned = std::make_shared<const LinkedList>(std::move(list));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return false;
  ++it->second.generation;
  it->second.list = std::move(pinned);  // old bytes live on in-flight runs
  out = SnapshotHandle{id, it->second.generation};
  return true;
}

bool SnapshotRegistry::drop(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(id) != 0;
}

SnapshotRegistry::Resolve SnapshotRegistry::resolve(
    std::uint64_t id, std::uint64_t generation,
    std::shared_ptr<const LinkedList>& list, SnapshotHandle& handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return Resolve::kUnknown;
  handle = SnapshotHandle{id, it->second.generation};
  if (generation != 0 && generation != it->second.generation)
    return Resolve::kStale;
  list = it->second.list;
  return Resolve::kOk;
}

std::size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace lr90::serve
