#include "serve/server.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "lists/validate.hpp"
#include "shard/shard_file.hpp"
#include "support/faultpoint.hpp"

namespace lr90::serve {

namespace {

// Stalls a worker between popping a batch and running it: the chaos
// harness's deterministic way to make queued jobs outlive their deadline
// (a slow engine run is timing-dependent; a fault-site sleep is not).
fault::FaultSite f_batch_stall{"serve.batch.stall",
                               "worker stalls 50ms before running a batch"};

/// Number of workers actually started for a requested count.
unsigned resolve_workers(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// A result that never ran: the typed rejection the serving layer returns.
RunResult rejected_result(const ServerOptions& opt, const char* why) {
  RunResult r;
  r.backend = opt.engine.backend;
  r.status = Status::unavailable(why);
  return r;
}

}  // namespace

EngineServer::EngineServer(ServerOptions opt)
    : opt_([&] {
        opt.workers = resolve_workers(opt.workers);
        if (opt.max_batch == 0) opt.max_batch = 1;
        // Inter-request parallelism comes from the worker pool; an OpenMP
        // all-cores default per pooled engine would oversubscribe the
        // machine workers^2-fold (see ServerOptions::engine).
        if (opt.engine.backend == BackendKind::kHost &&
            opt.engine.threads == 0) {
          opt.engine.threads = 1;
        }
        return opt;
      }()),
      queue_(opt_.queue_capacity),
      pool_(opt_.engine, opt_.workers),
      slab_cache_(opt_.slab_cache_bytes),
      result_cache_(opt_.result_cache_bytes) {
  threads_.reserve(opt_.workers);
  for (unsigned i = 0; i < opt_.workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

EngineServer::~EngineServer() { shutdown(); }

std::future<RunResult> EngineServer::submit(const RankRequest& req) {
  return submit(Request(req));
}

std::future<RunResult> EngineServer::submit(const ScanRequest& req) {
  return submit(Request(req));
}

std::future<RunResult> EngineServer::submit(Request req) {
  Job job;
  job.req = req;
  return submit_job(std::move(job), /*has_future=*/true);
}

void EngineServer::submit(Request req,
                          std::function<void(RunResult&&)> done) {
  Job job;
  job.req = req;
  job.done = std::move(done);
  submit_job(std::move(job), /*has_future=*/false);
}

// -- snapshot-addressed serving ---------------------------------------------

Status EngineServer::register_snapshot(LinkedList list, SnapshotHandle& out) {
  if (opt_.engine.validate_input) {
    if (const auto err = validate_list(list))
      return Status::invalid("invalid linked list: " + *err);
  }
  out = registry_.register_snapshot(std::move(list));
  return Status::success();
}

Status EngineServer::update_snapshot(std::uint64_t id, LinkedList list,
                                     SnapshotHandle& out) {
  if (opt_.engine.validate_input) {
    if (const auto err = validate_list(list))
      return Status::invalid("invalid linked list: " + *err);
  }
  if (!registry_.update(id, std::move(list), out))
    return Status::invalid("unknown snapshot id");
  snapshot_updates_.fetch_add(1, std::memory_order_relaxed);
  // Reclaim space AFTER the generation bump: the bump alone already made
  // every old-generation key unreachable, so a racing worker re-inserting
  // an old-generation artifact merely wastes bytes until LRU'd.
  slab_cache_.invalidate(id);
  result_cache_.invalidate(id);
  // Same lifecycle for pinned shard spill files: the generation-stamped
  // directory name already keeps new runs off the stale bytes, so this is
  // a disk reclaim. An in-flight old-generation run that loses the race
  // keeps its already-mapped shards (POSIX unlink semantics) and at worst
  // resolves a not-yet-mapped shard to a typed kUnavailable.
  if (!opt_.shard_spill_root.empty()) {
    // ENOENT is the normal "already reclaimed" answer; anything else is
    // leaked spill space, surfaced as a counter an operator can alarm on.
    shard::ReclaimStats rs;
    shard::drop_snapshot_spill_dirs(opt_.shard_spill_root, id, &rs);
    if (rs.failed > 0)
      spill_reclaim_failures_.fetch_add(rs.failed,
                                        std::memory_order_relaxed);
  }
  return Status::success();
}

bool EngineServer::drop_snapshot(std::uint64_t id) {
  const bool known = registry_.drop(id);
  if (known) {
    slab_cache_.invalidate(id);
    result_cache_.invalidate(id);
    if (!opt_.shard_spill_root.empty()) {
      shard::ReclaimStats rs;
      shard::drop_snapshot_spill_dirs(opt_.shard_spill_root, id, &rs);
      if (rs.failed > 0)
        spill_reclaim_failures_.fetch_add(rs.failed,
                                          std::memory_order_relaxed);
    }
  }
  return known;
}

std::future<RunResult> EngineServer::submit(const SnapshotRequest& req) {
  return submit_snapshot(req, nullptr, /*has_future=*/true);
}

void EngineServer::submit(const SnapshotRequest& req,
                          std::function<void(RunResult&&)> done) {
  submit_snapshot(req, std::move(done), /*has_future=*/false);
}

std::future<RunResult> EngineServer::submit_snapshot(
    const SnapshotRequest& req, std::function<void(RunResult&&)> done,
    bool has_future) {
  Job job;
  job.done = std::move(done);
  std::future<RunResult> future;
  if (has_future) future = job.result.get_future();

  SnapshotHandle current;
  const SnapshotRegistry::Resolve found =
      registry_.resolve(req.snapshot_id, req.generation, job.pinned, current);
  if (found == SnapshotRegistry::Resolve::kUnknown) {
    RunResult r;
    r.backend = opt_.engine.backend;
    r.status = Status::invalid("unknown snapshot id");
    job.fulfill(std::move(r));
    return future;
  }
  if (found == SnapshotRegistry::Resolve::kStale) {
    stale_rejections_.fetch_add(1, std::memory_order_relaxed);
    RunResult r;
    r.backend = opt_.engine.backend;
    r.status = Status::stale_generation("snapshot generation superseded");
    r.stats.snapshot_generation = current.generation;  // retarget hint
    job.fulfill(std::move(r));
    return future;
  }

  // Memoized hot keys are answered inline, without ever touching the
  // queue or an engine: the steady state's "zero ranks".
  const CacheKey result_key{req.snapshot_id, current.generation,
                            request_flavor(req.rank, req.op, req.method)};
  std::shared_ptr<const RunResult> memo;
  if (result_cache_.lookup(result_key, memo)) {
    job.fulfill(RunResult(*memo));
    return future;
  }

  job.snapshot_id = req.snapshot_id;
  job.snapshot_generation = current.generation;
  job.req.list = job.pinned.get();
  job.req.rank = req.rank;
  job.req.op = req.op;
  job.req.method = req.method;
  job.req.deadline_ms = req.deadline_ms;
  // Pin the generation-stamped spill directory: a sharded run keeps its
  // shard files there, so repeat runs against the same generation reuse
  // them (header-validated) instead of rewriting the whole list.
  if (!opt_.shard_spill_root.empty()) {
    job.req.shard_spill_dir = shard::snapshot_spill_dir(
        opt_.shard_spill_root, req.snapshot_id, current.generation);
  }
  // Ride a cached slab when one exists for this generation; ranking packs
  // the constant 1 and lane-capable scans pack their values, so the two
  // slab flavors cover every packed-capable shape.
  if (req.rank || scan_op_lane32(req.op)) {
    const CacheKey slab_key{
        req.snapshot_id, current.generation,
        req.rank ? kSlabFlavorOnes : kSlabFlavorValues};
    std::shared_ptr<const PackedSlab> slab;
    if (slab_cache_.lookup(slab_key, slab)) job.req.slab = std::move(slab);
  }
  // The future (if any) is already retrieved above -- the promise travels
  // with the job and keeps feeding it, so submit_job must not re-retrieve.
  submit_job(std::move(job), /*has_future=*/false);
  return future;
}

void EngineServer::finish_snapshot_run(const Job& job, const Request& req,
                                       RunResult& r, Engine& engine) {
  r.stats.snapshot_generation = job.snapshot_generation;
  if (!r.ok()) return;
  // Freshly built slab: export a copy for every other worker. Only fresh
  // builds export (a cached-slab or batch-cache run has nothing new), so
  // a hot key exports once per generation.
  const bool lane = req.rank || scan_op_lane32(req.op);
  if (lane && r.stats.host_packed && !r.stats.host_packed_cached) {
    if (auto slab = engine.workspace().export_packed_slab(req.rank)) {
      const std::size_t bytes = slab->bytes();
      slab_cache_.insert(
          CacheKey{job.snapshot_id, job.snapshot_generation,
                   req.rank ? kSlabFlavorOnes : kSlabFlavorValues},
          std::move(slab), bytes);
    }
  }
  // Memoize the full result for the next identical request. Keyed on the
  // generation the run used, so a result inserted after a concurrent
  // update() is simply unreachable -- never stale-served.
  auto memo = std::make_shared<const RunResult>(r);
  const std::size_t bytes = result_bytes(*memo);
  result_cache_.insert(
      CacheKey{job.snapshot_id, job.snapshot_generation,
               request_flavor(req.rank, req.op, req.method)},
      std::move(memo), bytes);
}

std::future<RunResult> EngineServer::submit_job(Job job, bool has_future) {
  std::future<RunResult> future;
  if (has_future) future = job.result.get_future();
  const bool rank = job.req.rank;
  // Stamp the absolute expiry now: queueing time counts against the
  // client's budget (that is the point of a deadline under congestion).
  if (job.req.deadline_ms > 0) {
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(job.req.deadline_ms);
  }
  const bool accepted =
      opt_.reject_when_full ? queue_.try_push(job) : queue_.push(job);
  if (!accepted) {
    // The job was never enqueued, so the answer is still ours to give.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    job.fulfill(rejected_result(
        opt_, queue_.closed() ? "server is shut down" : "request queue full"));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  (rank ? rank_requests_ : scan_requests_)
      .fetch_add(1, std::memory_order_relaxed);
  return future;
}

namespace {

/// Two requests are collapsible when one engine run answers both. Pointer
/// identity on the list is deliberate: equal content behind different
/// objects is not worth a compare, the hot-key case shares the object.
bool same_work(const Request& a, const Request& b) {
  return a.list == b.list && a.rank == b.rank && a.method == b.method &&
         (a.rank || a.op == b.op);
}

}  // namespace

void EngineServer::worker_loop() {
  std::vector<Job> jobs;
  std::vector<Request> reqs;          // unique work items of the batch
  std::vector<std::size_t> run_of;    // job index -> index into reqs
  std::vector<bool> answered;
  jobs.reserve(opt_.max_batch);
  reqs.reserve(opt_.max_batch);
  while (true) {
    jobs.clear();
    reqs.clear();
    if (queue_.pop_batch(jobs, opt_.batch_threshold, opt_.max_batch) == 0)
      break;  // closed and drained

    if (f_batch_stall.fire())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Deadline filter: a job whose deadline passed while it queued is
    // answered kDeadlineExceeded without running -- under overload this
    // sheds exactly the work whose answer nobody is waiting for anymore.
    {
      const auto now = std::chrono::steady_clock::now();
      std::size_t kept = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].deadline < now) {
          deadline_expired_.fetch_add(1, std::memory_order_relaxed);
          completed_.fetch_add(1, std::memory_order_relaxed);
          RunResult r;
          r.backend = opt_.engine.backend;
          r.status =
              Status::deadline_exceeded("deadline expired in queue");
          jobs[i].fulfill(std::move(r));
          continue;
        }
        if (kept != i) jobs[kept] = std::move(jobs[i]);
        ++kept;
      }
      jobs.resize(kept);
      if (jobs.empty()) continue;
    }

    // Request collapsing: map every job onto a unique work item. The scan
    // is quadratic in the batch size, which is bounded by max_batch and
    // in the common case terminates on the first element (hot key).
    run_of.assign(jobs.size(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::size_t slot = reqs.size();
      if (opt_.collapse_duplicates) {
        for (std::size_t u = 0; u < reqs.size(); ++u) {
          if (same_work(reqs[u], jobs[i].req)) {
            slot = u;
            break;
          }
        }
      }
      if (slot == reqs.size()) reqs.push_back(jobs[i].req);
      run_of[i] = slot;
    }

    WorkspacePool::Lease lease = pool_.acquire();
    answered.assign(jobs.size(), false);
    try {
      lease->run_batch_each(
          std::span<const Request>(reqs), [&](std::size_t u, RunResult&& r) {
            // Track the intra-request thread peak before the result moves
            // out: workers x this is the machine parallelism actually used.
            std::uint64_t peak =
                intra_threads_peak_.load(std::memory_order_relaxed);
            while (r.stats.host_threads > peak &&
                   !intra_threads_peak_.compare_exchange_weak(
                       peak, r.stats.host_threads,
                       std::memory_order_relaxed)) {
            }
            // Which kernel family actually ran (kAuto = the host kernels
            // never ran: empty lists, non-host backends) -- the serving
            // proof the SIMD dispatcher engaged or correctly fell back.
            switch (r.stats.kernel_tier) {
              case KernelTier::kLegacy:
                tier_legacy_runs_.fetch_add(1, std::memory_order_relaxed);
                break;
              case KernelTier::kPackedCursors:
                tier_packed_runs_.fetch_add(1, std::memory_order_relaxed);
                break;
              case KernelTier::kSimdGather:
                tier_simd_runs_.fetch_add(1, std::memory_order_relaxed);
                break;
              case KernelTier::kAuto:
                break;
            }
            if (r.stats.shard_count > 0) {
              sharded_runs_.fetch_add(1, std::memory_order_relaxed);
              shard_spills_.fetch_add(r.stats.shard_spills,
                                      std::memory_order_relaxed);
              shard_prefetch_hits_.fetch_add(r.stats.shard_prefetch_hits,
                                             std::memory_order_relaxed);
              shard_corrupt_slabs_.fetch_add(r.stats.shard_corrupt_slabs,
                                             std::memory_order_relaxed);
              shard_repacks_.fetch_add(r.stats.shard_repacks,
                                       std::memory_order_relaxed);
              shard_degraded_.fetch_add(r.stats.shard_degraded,
                                        std::memory_order_relaxed);
            }
            // Snapshot jobs stamp the generation and feed the caches
            // before the result fans out (jobs collapsed onto one run
            // share a pinned list, hence one snapshot generation).
            for (std::size_t i = 0; i < jobs.size(); ++i) {
              if (run_of[i] == u && jobs[i].snapshot_id != 0) {
                finish_snapshot_run(jobs[i], reqs[u], r, *lease);
                break;
              }
            }
            // Fan the result out to every job this run answers: copies for
            // the duplicates, the original for the last one.
            std::size_t last = jobs.size();
            for (std::size_t i = 0; i < jobs.size(); ++i) {
              if (run_of[i] == u) last = i;
            }
            for (std::size_t i = 0; i < jobs.size(); ++i) {
              if (run_of[i] != u) continue;
              answered[i] = true;
              if (i == last) {
                jobs[i].fulfill(std::move(r));
              } else {
                jobs[i].fulfill_copy(r);
              }
            }
          });
    } catch (...) {
      // run() only throws on resource exhaustion (e.g. bad_alloc); every
      // job whose run never fulfilled it is still unanswered. Future jobs
      // propagate the exception; callback jobs (which have no promise to
      // carry it) get a typed kUnavailable result instead.
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (answered[i]) continue;
        if (jobs[i].done) {
          jobs[i].fulfill(rejected_result(opt_, "engine run threw"));
        } else {
          jobs[i].result.set_exception(std::current_exception());
        }
      }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(jobs.size(), std::memory_order_relaxed);
    if (jobs.size() > 1)
      coalesced_.fetch_add(jobs.size(), std::memory_order_relaxed);
    if (jobs.size() > reqs.size())
      collapsed_.fetch_add(jobs.size() - reqs.size(),
                           std::memory_order_relaxed);
    std::uint64_t peak = peak_batch_.load(std::memory_order_relaxed);
    while (jobs.size() > peak &&
           !peak_batch_.compare_exchange_weak(peak, jobs.size(),
                                              std::memory_order_relaxed)) {
    }
  }
}

void EngineServer::join_workers(bool drain) {
  queue_.close();
  if (!drain) {
    for (Job& job : queue_.drain_now()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      job.fulfill(rejected_result(opt_, "server is shutting down"));
    }
  }
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : threads_) t.join();
}

void EngineServer::shutdown() { join_workers(/*drain=*/true); }

void EngineServer::shutdown_now() { join_workers(/*drain=*/false); }

void EngineServer::reset_stats() {
  submitted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  coalesced_.store(0, std::memory_order_relaxed);
  collapsed_.store(0, std::memory_order_relaxed);
  peak_batch_.store(0, std::memory_order_relaxed);
  intra_threads_peak_.store(0, std::memory_order_relaxed);
  tier_legacy_runs_.store(0, std::memory_order_relaxed);
  tier_packed_runs_.store(0, std::memory_order_relaxed);
  tier_simd_runs_.store(0, std::memory_order_relaxed);
  rank_requests_.store(0, std::memory_order_relaxed);
  scan_requests_.store(0, std::memory_order_relaxed);
  snapshot_updates_.store(0, std::memory_order_relaxed);
  stale_rejections_.store(0, std::memory_order_relaxed);
  sharded_runs_.store(0, std::memory_order_relaxed);
  shard_spills_.store(0, std::memory_order_relaxed);
  shard_prefetch_hits_.store(0, std::memory_order_relaxed);
  shard_corrupt_slabs_.store(0, std::memory_order_relaxed);
  shard_repacks_.store(0, std::memory_order_relaxed);
  shard_degraded_.store(0, std::memory_order_relaxed);
  spill_reclaim_failures_.store(0, std::memory_order_relaxed);
  deadline_expired_.store(0, std::memory_order_relaxed);
  queue_.reset_size_hwm();
  pool_.reset_stats();
  // Cumulative cache counters restart; the caches themselves stay warm
  // (the resident gauges keep tracking the retained entries).
  slab_cache_.reset_counters();
  result_cache_.reset_counters();
}

ServerStats EngineServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.collapsed = collapsed_.load(std::memory_order_relaxed);
  s.peak_batch = peak_batch_.load(std::memory_order_relaxed);
  s.intra_threads_peak =
      intra_threads_peak_.load(std::memory_order_relaxed);
  s.tier_legacy_runs = tier_legacy_runs_.load(std::memory_order_relaxed);
  s.tier_packed_runs = tier_packed_runs_.load(std::memory_order_relaxed);
  s.tier_simd_runs = tier_simd_runs_.load(std::memory_order_relaxed);
  s.queue_depth_hwm = queue_.size_hwm();
  s.rank_requests = rank_requests_.load(std::memory_order_relaxed);
  s.scan_requests = scan_requests_.load(std::memory_order_relaxed);
  s.pool = pool_.stats();
  const CacheStats slab = slab_cache_.stats();
  const CacheStats result = result_cache_.stats();
  s.slab_hits = slab.hits;
  s.slab_misses = slab.misses;
  s.slab_evictions = slab.evictions;
  s.result_hits = result.hits;
  s.result_misses = result.misses;
  s.result_evictions = result.evictions;
  s.cache_resident_bytes = slab.resident_bytes + result.resident_bytes;
  s.cache_resident_entries =
      slab.resident_entries + result.resident_entries;
  s.snapshots_live = registry_.size();
  s.snapshot_updates = snapshot_updates_.load(std::memory_order_relaxed);
  s.stale_rejections = stale_rejections_.load(std::memory_order_relaxed);
  s.sharded_runs = sharded_runs_.load(std::memory_order_relaxed);
  s.shard_spills = shard_spills_.load(std::memory_order_relaxed);
  s.shard_prefetch_hits =
      shard_prefetch_hits_.load(std::memory_order_relaxed);
  s.shard_corrupt_slabs =
      shard_corrupt_slabs_.load(std::memory_order_relaxed);
  s.shard_repacks = shard_repacks_.load(std::memory_order_relaxed);
  s.shard_degraded = shard_degraded_.load(std::memory_order_relaxed);
  s.spill_reclaim_failures =
      spill_reclaim_failures_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lr90::serve
