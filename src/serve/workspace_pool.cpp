#include "serve/workspace_pool.hpp"

namespace lr90::serve {

WorkspacePool::WorkspacePool(const EngineOptions& opt, std::size_t size) {
  const std::size_t count = size == 0 ? 1 : size;
  engines_.reserve(count);
  free_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    engines_.push_back(std::make_unique<Engine>(opt));
    free_.push_back(engines_.back().get());
  }
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait(lock, [&] { return !free_.empty(); });
  Engine* engine = free_.back();
  free_.pop_back();
  ++leases_;
  return Lease(this, engine);
}

void WorkspacePool::release(Engine* engine) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(engine);
  }
  available_.notify_one();
}

void WorkspacePool::reset_stats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    leases_ = 0;
  }
  for (const auto& engine : engines_) engine->workspace().reset_counters();
}

PoolStats WorkspacePool::stats() const {
  PoolStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.leases = leases_;
  }
  for (const auto& engine : engines_) {
    s.allocations += engine->workspace().allocations();
    s.reuse_hits += engine->workspace().reuse_hits();
    s.packed_builds += engine->workspace().packed_builds();
  }
  return s;
}

}  // namespace lr90::serve
