// A pool of warmed-up Engines (each owning its reusable Workspace).
//
// An Engine is confined to one thread at a time, so a concurrent serving
// layer needs one engine per in-flight batch. Constructing engines per
// request would throw away exactly what the Workspace exists to amortize;
// the pool instead builds `size` identically-configured engines up front
// and leases them out. After the first few requests of a given shape have
// grown every pooled workspace, the steady state performs zero scratch
// allocations -- observable through stats(), which aggregates the
// Workspace counters across the pool, and asserted by the throughput
// bench and the stress test.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine.hpp"

namespace lr90::serve {

/// Aggregated Workspace counters across every pooled engine.
struct PoolStats {
  std::uint64_t allocations = 0;  ///< buffer-growth events (fit misses)
  std::uint64_t reuse_hits = 0;   ///< fits served from existing capacity
  std::uint64_t leases = 0;       ///< acquire() calls served so far
  /// Packed-slab (re)builds across every pooled workspace: the zero-pack
  /// steady-state gate of the snapshot cache (bench/serve_throughput).
  std::uint64_t packed_builds = 0;
};

/// Fixed-size pool of engines with blocking acquire / RAII release.
class WorkspacePool {
 public:
  /// Builds `size` engines (>= 1 enforced), each configured with `opt`.
  WorkspacePool(const EngineOptions& opt, std::size_t size);

  WorkspacePool(const WorkspacePool&) = delete;             ///< not copyable
  WorkspacePool& operator=(const WorkspacePool&) = delete;  ///< not copyable

  /// A leased engine; returns itself to the pool on destruction.
  class Lease {
   public:
    /// Transfers the lease; `other` no longer releases anything.
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), engine_(other.engine_) {
      other.pool_ = nullptr;
      other.engine_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;  ///< move-construct only
    ~Lease() {  ///< returns the engine to the pool
      if (pool_ != nullptr) pool_->release(engine_);
    }

    /// The leased engine (valid for the lease's lifetime).
    Engine& operator*() const { return *engine_; }
    /// The leased engine (valid for the lease's lifetime).
    Engine* operator->() const { return engine_; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, Engine* engine)
        : pool_(pool), engine_(engine) {}

    WorkspacePool* pool_;  ///< where to return the engine
    Engine* engine_;       ///< the leased engine
  };

  /// Blocks until an engine is free, then leases it.
  Lease acquire();

  /// Number of engines the pool owns.
  std::size_t size() const { return engines_.size(); }

  /// Aggregated workspace counters. Safe to call while engines are leased
  /// and running (the counters are atomic); in-flight batches may be
  /// partially counted, so read at a quiescent point for exact figures.
  PoolStats stats() const;

  /// Zeroes the aggregated counters: the lease tally and every pooled
  /// workspace's allocation/reuse counters (warmed buffers keep their
  /// capacity, so a reset does not reintroduce allocations). Call at a
  /// quiescent point -- counts from in-flight batches may be lost.
  void reset_stats();

 private:
  void release(Engine* engine);

  std::vector<std::unique_ptr<Engine>> engines_;  ///< the pooled engines
  mutable std::mutex mu_;                 ///< guards free_ and leases_
  std::condition_variable available_;     ///< acquirers wait here
  std::vector<Engine*> free_;             ///< engines not currently leased
  std::uint64_t leases_ = 0;              ///< acquire() calls served
};

}  // namespace lr90::serve
