#include "serve/slab_cache.hpp"

namespace lr90::serve {

std::uint64_t request_flavor(bool rank, ScanOp op, Method method) {
  // Rank ignores the operator (it always combines by addition), so every
  // rank request of one method shares a flavor -- maximizing hot-key
  // collapse -- while scans key on their operator.
  const std::uint64_t op_word =
      rank ? 0 : static_cast<std::uint64_t>(op) + 1;
  return (rank ? 1ULL : 0ULL) | (op_word << 1) |
         (static_cast<std::uint64_t>(method) << 32);
}

std::size_t result_bytes(const RunResult& r) {
  return r.scan.capacity() * sizeof(value_t) + r.status.message.capacity() +
         sizeof(RunResult);
}

}  // namespace lr90::serve
