#include "lists/encode.hpp"

namespace lr90 {

bool can_encode(const LinkedList& list) {
  if (list.size() > (1ULL << kPackShift)) return false;
  for (const value_t v : list.value) {
    if (v < 0 || static_cast<std::uint64_t>(v) > kPackValueMask) return false;
  }
  return true;
}

std::vector<packed_t> encode_list(const LinkedList& list) {
  std::vector<packed_t> packed(list.size());
  for (std::size_t v = 0; v < list.size(); ++v) {
    packed[v] = pack_link_value(list.next[v],
                                static_cast<std::uint32_t>(list.value[v]));
  }
  return packed;
}

LinkedList decode_list(const std::vector<packed_t>& packed, index_t head) {
  LinkedList list;
  list.next.resize(packed.size());
  list.value.resize(packed.size());
  list.head = packed.empty() ? kNoVertex : head;
  for (std::size_t v = 0; v < packed.size(); ++v) {
    list.next[v] = packed_link(packed[v]);
    list.value[v] = static_cast<value_t>(packed_value(packed[v]));
    if (list.next[v] == static_cast<index_t>(v))
      list.tail = static_cast<index_t>(v);
  }
  return list;
}

}  // namespace lr90
