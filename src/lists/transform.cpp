#include "lists/transform.hpp"

#include <cassert>
#include <utility>

#include "core/engine.hpp"
#include "lists/generators.hpp"

namespace lr90 {

namespace {

/// Host-backend rank via the Engine (the legacy host_list_rank shim is
/// deprecated); HostOptions carries the caller-facing knobs.
std::vector<value_t> engine_rank(const LinkedList& list,
                                 const HostOptions& opt) {
  EngineOptions eo;
  eo.backend = BackendKind::kHost;
  eo.threads = opt.threads;
  eo.sublists_per_thread = opt.sublists_per_thread;
  eo.seed = opt.seed;
  Engine engine(std::move(eo));
  RunResult r = engine.run(RankRequest{&list});
  assert(r.ok());
  return std::move(r.scan);
}

std::vector<value_t> rank_or(const LinkedList& list,
                             std::span<const value_t> rank) {
  if (!rank.empty()) {
    assert(rank.size() == list.size());
    return std::vector<value_t>(rank.begin(), rank.end());
  }
  return engine_rank(list, HostOptions{});
}

}  // namespace

std::vector<value_t> list_to_array(const LinkedList& list,
                                   std::span<const value_t> rank) {
  const std::vector<value_t> r = rank_or(list, rank);
  std::vector<value_t> out(list.size());
  for (std::size_t v = 0; v < list.size(); ++v)
    out[static_cast<std::size_t>(r[v])] = list.value[v];
  return out;
}

std::vector<index_t> order_permutation(const LinkedList& list,
                                       std::span<const value_t> rank) {
  const std::vector<value_t> r = rank_or(list, rank);
  std::vector<index_t> out(list.size());
  for (std::size_t v = 0; v < list.size(); ++v)
    out[static_cast<std::size_t>(r[v])] = static_cast<index_t>(v);
  return out;
}

LinkedList reverse_list(const LinkedList& list) {
  LinkedList rev;
  rev.value = list.value;
  rev.next.assign(list.size(), 0);
  if (list.empty()) {
    rev.head = kNoVertex;
    return rev;
  }
  // pred links: rev.next[next[v]] = v; old head becomes the new tail
  // (self-loop), old tail the new head.
  index_t tail = list.head;
  for (std::size_t v = 0; v < list.size(); ++v) {
    if (list.next[v] == static_cast<index_t>(v)) {
      rev.head = static_cast<index_t>(v);
    } else {
      rev.next[list.next[v]] = static_cast<index_t>(v);
    }
  }
  rev.next[tail] = tail;
  rev.tail = tail;
  return rev;
}

std::vector<LinkedList> split_list(const LinkedList& list,
                                   std::span<const index_t> cut_after) {
  std::vector<LinkedList> parts;
  if (list.empty()) return parts;
  std::vector<std::uint8_t> is_cut(list.size(), 0);
  for (const index_t c : cut_after) {
    assert(c < list.size());
    is_cut[c] = 1;
  }

  LinkedList cur;
  std::vector<index_t> order;  // original indices of the current part
  auto flush = [&]() {
    const std::size_t k = order.size();
    cur.next.resize(k);
    cur.value.resize(k);
    cur.head = 0;
    cur.tail = k > 0 ? static_cast<index_t>(k - 1) : kNoVertex;
    for (std::size_t i = 0; i < k; ++i) {
      cur.next[i] = static_cast<index_t>(i + 1 < k ? i + 1 : i);
      cur.value[i] = list.value[order[i]];
    }
    parts.push_back(std::move(cur));
    cur = LinkedList{};
    order.clear();
  };

  for_each_in_order(list, [&](index_t v, std::size_t) {
    order.push_back(v);
    if (is_cut[v] && list.next[v] != v) flush();
  });
  flush();  // the final part (always ends at the global tail)
  return parts;
}

LinkedList concat_lists(std::span<const LinkedList> lists) {
  LinkedList out;
  std::size_t total = 0;
  for (const auto& l : lists) total += l.size();
  out.next.reserve(total);
  out.value.reserve(total);

  std::size_t base = 0;
  index_t prev_tail = kNoVertex;
  for (const auto& l : lists) {
    if (l.empty()) continue;
    for (std::size_t v = 0; v < l.size(); ++v) {
      const bool self = l.next[v] == static_cast<index_t>(v);
      out.next.push_back(static_cast<index_t>(
          self ? base + v : base + l.next[v]));
      out.value.push_back(l.value[v]);
    }
    const index_t head_here = static_cast<index_t>(base + l.head);
    if (prev_tail == kNoVertex) {
      out.head = head_here;
    } else {
      out.next[prev_tail] = head_here;
    }
    prev_tail = static_cast<index_t>(base + l.find_tail());
    base += l.size();
  }
  if (out.next.empty()) out.head = kNoVertex;
  out.tail = prev_tail;  // kNoVertex when every input was empty
  return out;
}

std::vector<std::vector<value_t>> rank_many(std::span<const LinkedList> lists,
                                            const HostOptions& opt) {
  const LinkedList joined = concat_lists(lists);
  const std::vector<value_t> rank = engine_rank(joined, opt);
  std::vector<std::vector<value_t>> out;
  out.reserve(lists.size());
  std::size_t base_index = 0;   // vertex-id offset of this part in `joined`
  value_t base_rank = 0;        // traversal offset of this part
  for (const auto& l : lists) {
    std::vector<value_t> part(l.size());
    for (std::size_t v = 0; v < l.size(); ++v)
      part[v] = rank[base_index + v] - base_rank;
    out.push_back(std::move(part));
    base_index += l.size();
    base_rank += static_cast<value_t>(l.size());
  }
  return out;
}

LinkedList list_of_permutation(std::span<const index_t> perm) {
  std::vector<index_t> order(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    assert(perm[i] < perm.size());
    order[i] = perm[i];
  }
  return list_from_order(order, ValueInit::kOnes, nullptr);
}

}  // namespace lr90
