// Binary associative operators for list scan.
//
// List scan computes, for each vertex, the "sum" of the values of all prior
// vertices under any binary associative operator with an identity
// (Section 2 of the paper). List ranking is the special case of integer
// addition over all-ones values.
//
// Each operator is a stateless function object with a static identity();
// algorithms are templated on the operator so the compiler can inline it
// into the traversal kernels, mirroring how the paper's C code specializes
// the "sum" operator.
#pragma once

#include <algorithm>
#include <limits>

#include "lists/linked_list.hpp"

namespace lr90 {

struct OpPlus {
  static constexpr value_t identity() { return 0; }
  constexpr value_t operator()(value_t a, value_t b) const { return a + b; }
};

struct OpMin {
  static constexpr value_t identity() {
    return std::numeric_limits<value_t>::max();
  }
  constexpr value_t operator()(value_t a, value_t b) const {
    return std::min(a, b);
  }
};

struct OpMax {
  static constexpr value_t identity() {
    return std::numeric_limits<value_t>::min();
  }
  constexpr value_t operator()(value_t a, value_t b) const {
    return std::max(a, b);
  }
};

struct OpXor {
  static constexpr value_t identity() { return 0; }
  constexpr value_t operator()(value_t a, value_t b) const { return a ^ b; }
};

}  // namespace lr90
