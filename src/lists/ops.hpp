// Binary associative operators for list scan -- the pluggable operator
// layer of the library.
//
// List scan computes, for each vertex, the "sum" of the values of all prior
// vertices under any binary associative operator with an identity
// (Section 2 of the paper). List ranking is the special case of integer
// addition over all-ones values.
//
// Two faces of the same layer:
//
//  * Compile time: each operator is a stateless function object satisfying
//    the `ListOp` concept (a static identity() plus a binary combine);
//    every algorithm is templated on the operator so the compiler inlines
//    it into the traversal kernels, mirroring how the paper's C code
//    specializes the "sum" operator.
//  * Run time: the `ScanOp` enum names each registered operator for
//    request structs (core/engine.hpp OpRequest/ScanRequest) and the
//    serving layer; `with_scan_op` dispatches an enum value onto the
//    corresponding operator type exactly once per run, so the inner loops
//    stay monomorphic.
//
// Combine order contract: `op(a, b)` combines segment `a` *followed in
// list order by* segment `b`. Addition, min, max, and xor are commutative
// so the order is moot; the packed operators below (segmented sum, affine
// composition, max-plus) are NOT commutative, and every algorithm in the
// library preserves this order (see baselines/wyllie.hpp for the one
// formulation where that is subtle).
//
// Packed operators: value_t is 64 bits wide, which fits a pair of 32-bit
// lanes. Segmented sum packs (segment-start flag, sum); affine composition
// packs the map x -> mul*x + add as (mul, add) with wrapping 32-bit
// arithmetic (exact, hence associative, for any inputs); max-plus packs
// the map x -> max(x + shift, floor) as (shift, floor), the composition
// law of critical-path/dependency-chain scheduling (apps/chain_sched.hpp).
// Max-plus combines exactly -- and therefore associatively -- as long as
// no intermediate shift or floor leaves the 32-bit lane (max does not
// commute with wrap-around); callers keep durations and release times
// small enough, which chain scheduling does by construction.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

#include "lists/linked_list.hpp"

namespace lr90 {

/// What every scan operator must provide: a default-constructible,
/// stateless function object with a static identity and a binary combine
/// over value_t. `op(a, b)` combines segment `a` followed in list order by
/// segment `b`; the operator must be associative (commutativity is NOT
/// required -- see OpSegSum / OpAffine / OpMaxPlus).
template <class Op>
concept ListOp =
    std::default_initializable<Op> &&
    requires(const Op op, value_t a, value_t b) {
      { Op::identity() } -> std::convertible_to<value_t>;
      { op(a, b) } -> std::convertible_to<value_t>;
    };

// -- elementwise operators --------------------------------------------------

/// Integer addition (identity 0); list ranking is this over all-ones.
struct OpPlus {
  static constexpr value_t identity() { return 0; }
  constexpr value_t operator()(value_t a, value_t b) const { return a + b; }
};

/// Minimum (identity +inf): running minimum along the list.
struct OpMin {
  static constexpr value_t identity() {
    return std::numeric_limits<value_t>::max();
  }
  constexpr value_t operator()(value_t a, value_t b) const {
    return std::min(a, b);
  }
};

/// Maximum (identity -inf): running maximum along the list.
struct OpMax {
  static constexpr value_t identity() {
    return std::numeric_limits<value_t>::min();
  }
  constexpr value_t operator()(value_t a, value_t b) const {
    return std::max(a, b);
  }
};

/// Bitwise xor (identity 0); self-inverse, handy for consistency checks.
struct OpXor {
  static constexpr value_t identity() { return 0; }
  constexpr value_t operator()(value_t a, value_t b) const { return a ^ b; }
};

// -- segmented sum ----------------------------------------------------------
//
// A value is a (start-flag, sum) pair: bit 63 marks the beginning of a new
// segment, the low 32 bits carry the (wrapping, signed) sum lane. Bits
// 32..62 are ignored on input and zero on every combine result, so ANY
// 64-bit input pattern is legal and the operator is exactly associative.

/// Packs a segmented-sum element: `start` opens a new segment at this
/// vertex, `v` is its value.
inline constexpr value_t seg_pack(bool start, std::int32_t v) {
  return static_cast<value_t>(
      (start ? 0x8000000000000000ULL : 0ULL) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}
/// True iff the element opens a new segment.
inline constexpr bool seg_start(value_t w) {
  return (static_cast<std::uint64_t>(w) >> 63) != 0;
}
/// The element's sum lane (signed view of the low 32 bits).
inline constexpr std::int32_t seg_sum(value_t w) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(w) &
                                   0xffffffffULL);
}

/// Segmented sum (Blelloch): sums reset at every segment start, so one scan
/// computes an independent prefix sum per segment. Non-commutative.
struct OpSegSum {
  static constexpr value_t identity() { return seg_pack(false, 0); }
  constexpr value_t operator()(value_t a, value_t b) const {
    const bool start = seg_start(a) || seg_start(b);
    const std::uint32_t sum =
        seg_start(b) ? static_cast<std::uint32_t>(seg_sum(b))
                     : static_cast<std::uint32_t>(seg_sum(a)) +
                           static_cast<std::uint32_t>(seg_sum(b));
    return seg_pack(start, static_cast<std::int32_t>(sum));
  }
};

// -- affine composition -----------------------------------------------------
//
// A value is the affine map x -> mul*x + add, packed as (mul, add) 32-bit
// lanes. The scan's combine is function composition, earliest map applied
// first; all arithmetic wraps mod 2^32 (a ring), so the operator is
// exactly associative for ANY inputs. The exclusive scan at vertex v is
// the composition of every earlier vertex's map -- linear recurrences
// x_{i+1} = mul_i * x_i + add_i solved in one scan.

/// Packs the affine map x -> mul*x + add.
inline constexpr value_t affine_pack(std::int32_t mul, std::int32_t add) {
  return static_cast<value_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(mul)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(add)));
}
/// The map's multiplier lane.
inline constexpr std::int32_t affine_mul(value_t f) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(f) >> 32);
}
/// The map's additive lane.
inline constexpr std::int32_t affine_add(value_t f) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(f) &
                                   0xffffffffULL);
}
/// Applies the packed map to x (wrapping 32-bit arithmetic).
inline constexpr std::int32_t affine_apply(value_t f, std::int32_t x) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(affine_mul(f)) *
          static_cast<std::uint32_t>(x) +
      static_cast<std::uint32_t>(affine_add(f)));
}

/// Affine-map composition (identity x -> x): op(a, b) is "apply a, then
/// b". Non-commutative.
struct OpAffine {
  static constexpr value_t identity() { return affine_pack(1, 0); }
  constexpr value_t operator()(value_t a, value_t b) const {
    const auto mb = static_cast<std::uint32_t>(affine_mul(b));
    const std::uint32_t mul = mb * static_cast<std::uint32_t>(affine_mul(a));
    const std::uint32_t add =
        mb * static_cast<std::uint32_t>(affine_add(a)) +
        static_cast<std::uint32_t>(affine_add(b));
    return affine_pack(static_cast<std::int32_t>(mul),
                       static_cast<std::int32_t>(add));
  }
};

// -- max-plus ---------------------------------------------------------------
//
// A value is the map x -> max(x + shift, floor), packed as (shift, floor)
// 32-bit lanes: exactly the "finish time" update of a task in a dependency
// chain (shift = duration, floor = release time + duration), and closed
// under composition:
//
//   g(f(x)) = max(x + (sf + sg), max(ff + sg, fg)).
//
// The identity is the bit pattern (0, INT32_MIN), matched exactly in the
// combine so no arithmetic ever touches the -inf sentinel. Associative as
// long as combined shifts and floors stay within the 32-bit lanes.

/// The floor lane of the max-plus identity ("-inf": never the maximum).
inline constexpr std::int32_t kMaxPlusNegInf =
    std::numeric_limits<std::int32_t>::min();

/// Packs the max-plus map x -> max(x + shift, floor).
inline constexpr value_t maxplus_pack(std::int32_t shift, std::int32_t floor) {
  return static_cast<value_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(shift)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(floor)));
}
/// The map's shift lane (a task's duration).
inline constexpr std::int32_t maxplus_shift(value_t f) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(f) >> 32);
}
/// The map's floor lane (a task's release time + duration).
inline constexpr std::int32_t maxplus_floor(value_t f) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(f) &
                                   0xffffffffULL);
}
/// Applies the packed map to x.
inline constexpr std::int64_t maxplus_apply(value_t f, std::int64_t x) {
  return std::max(x + maxplus_shift(f),
                  static_cast<std::int64_t>(maxplus_floor(f)));
}

/// Max-plus ("tropical affine") composition: op(a, b) is "apply a, then
/// b". The critical-path operator of apps/chain_sched.hpp.
/// Non-commutative.
struct OpMaxPlus {
  static constexpr value_t identity() {
    return maxplus_pack(0, kMaxPlusNegInf);
  }
  constexpr value_t operator()(value_t a, value_t b) const {
    if (a == identity()) return b;
    if (b == identity()) return a;
    const std::uint32_t shift = static_cast<std::uint32_t>(maxplus_shift(a)) +
                                static_cast<std::uint32_t>(maxplus_shift(b));
    const std::int64_t floor =
        std::max(static_cast<std::int64_t>(maxplus_floor(a)) +
                     maxplus_shift(b),
                 static_cast<std::int64_t>(maxplus_floor(b)));
    return maxplus_pack(static_cast<std::int32_t>(shift),
                        static_cast<std::int32_t>(floor));
  }
};

// -- lane capability --------------------------------------------------------
//
// The host hot path (core/host_exec.hpp) packs each vertex's value into
// the 32-bit lane of a single-gather word (lists/encode.hpp hot_pack) and
// rereads it sign-extended. That is exact for the elementwise operators
// whenever every input fits a signed 32-bit lane: addition accumulates in
// 64 bits from exact inputs; min/max/xor of sign-extended inputs are
// themselves sign-extended. The packed two-lane operators (seg-sum,
// affine, max-plus) need all 64 value bits, so they are typed out of the
// lane path entirely and take the unpacked fallback kernels.

/// Compile-time capability: may `Op` read its inputs from a sign-extended
/// 32-bit value lane? Defaults to false; opt in per operator.
template <class Op>
inline constexpr bool kOpLane32 = false;

template <> inline constexpr bool kOpLane32<OpPlus> = true;
template <> inline constexpr bool kOpLane32<OpMin> = true;
template <> inline constexpr bool kOpLane32<OpMax> = true;
template <> inline constexpr bool kOpLane32<OpXor> = true;

// -- runtime dispatch -------------------------------------------------------

/// The registered operators, runtime-nameable for requests (OpRequest /
/// ScanRequest in core/engine.hpp) and the serving layer. The template
/// entry points remain the way to scan under a custom operator type.
enum class ScanOp {
  kPlus,     ///< addition (identity 0); OpPlus
  kMin,      ///< minimum (identity +inf); OpMin
  kMax,      ///< maximum (identity -inf); OpMax
  kXor,      ///< bitwise xor (identity 0); OpXor
  kSegSum,   ///< segmented sum over packed (flag, sum); OpSegSum
  kAffine,   ///< affine-map composition over packed (mul, add); OpAffine
  kMaxPlus,  ///< max-plus composition over packed (shift, floor); OpMaxPlus
};

/// Every registered operator, in ScanOp declaration order (for sweeps).
inline constexpr ScanOp kAllScanOps[] = {
    ScanOp::kPlus,   ScanOp::kMin,    ScanOp::kMax,    ScanOp::kXor,
    ScanOp::kSegSum, ScanOp::kAffine, ScanOp::kMaxPlus,
};

/// Short stable name of `op` ("plus", "min", ..., "seg-sum", "affine",
/// "max-plus") for tables/CLIs.
inline constexpr const char* scan_op_name(ScanOp op) {
  switch (op) {
    case ScanOp::kPlus: return "plus";
    case ScanOp::kMin: return "min";
    case ScanOp::kMax: return "max";
    case ScanOp::kXor: return "xor";
    case ScanOp::kSegSum: return "seg-sum";
    case ScanOp::kAffine: return "affine";
    case ScanOp::kMaxPlus: return "max-plus";
  }
  return "?";
}

/// Dispatches a runtime ScanOp onto its operator type: calls `f` with a
/// value of the matching ListOp. One switch per run -- the traversal
/// kernels underneath stay monomorphic and fully inlined.
template <class F>
constexpr decltype(auto) with_scan_op(ScanOp op, F&& f) {
  switch (op) {
    case ScanOp::kPlus: return f(OpPlus{});
    case ScanOp::kMin: return f(OpMin{});
    case ScanOp::kMax: return f(OpMax{});
    case ScanOp::kXor: return f(OpXor{});
    case ScanOp::kSegSum: return f(OpSegSum{});
    case ScanOp::kAffine: return f(OpAffine{});
    case ScanOp::kMaxPlus: return f(OpMaxPlus{});
  }
  return f(OpPlus{});
}

/// Runtime face of kOpLane32 -- derived from the trait through the
/// dispatcher so there is one source of truth: true iff `op`'s inputs may
/// live in the 32-bit value lane of the host hot-path word (subject to
/// the per-run value-fit check, host_exec::build_packed).
constexpr bool scan_op_lane32(ScanOp op) {
  return with_scan_op(op, [](auto o) { return kOpLane32<decltype(o)>; });
}

/// Combine cost of `op` relative to integer addition, for the Planner's
/// cost model: the packed operators decode two 32-bit lanes and issue
/// several ALU operations per combine where addition issues one. Scales
/// the per-element traversal terms of the cost equations, shifting the
/// serial/parallel crossovers accordingly (analysis/cost_eqs.hpp).
inline constexpr double op_cost_factor(ScanOp op) {
  switch (op) {
    case ScanOp::kPlus:
    case ScanOp::kMin:
    case ScanOp::kMax:
    case ScanOp::kXor:
      return 1.0;
    case ScanOp::kSegSum:
      return 1.25;
    case ScanOp::kAffine:
      return 1.5;
    case ScanOp::kMaxPlus:
      return 1.5;
  }
  return 1.0;
}

}  // namespace lr90
