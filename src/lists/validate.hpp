// Structural validation of linked lists and scan results.
//
// Used pervasively by tests and assertable in examples: a LinkedList is
// valid iff every index is in range, the tail is the unique self-loop, and
// the head reaches all n vertices.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "lists/linked_list.hpp"

namespace lr90 {

/// Returns std::nullopt when `list` satisfies every LinkedList invariant,
/// otherwise a human-readable description of the first violation found.
std::optional<std::string> validate_list(const LinkedList& list);

/// True iff `list` is structurally valid.
bool is_valid_list(const LinkedList& list);

/// True iff the two lists have identical head, links, and values.
bool lists_equal(const LinkedList& a, const LinkedList& b);

/// Reference exclusive list-rank: out[v] = number of vertices before v.
/// O(n) serial walk; the ground truth for every test.
std::vector<value_t> reference_rank(const LinkedList& list);

}  // namespace lr90
