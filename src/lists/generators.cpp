#include "lists/generators.hpp"

#include <cassert>
#include <numeric>

namespace lr90 {

void init_values(LinkedList& list, ValueInit init, Rng* rng) {
  switch (init) {
    case ValueInit::kOnes:
      for (auto& v : list.value) v = 1;
      break;
    case ValueInit::kIndex:
      std::iota(list.value.begin(), list.value.end(), value_t{0});
      break;
    case ValueInit::kUniformSmall:
      assert(rng && "kUniformSmall requires an Rng");
      for (auto& v : list.value)
        v = static_cast<value_t>(rng->uniform(1000));
      break;
    case ValueInit::kSigned:
      assert(rng && "kSigned requires an Rng");
      for (auto& v : list.value)
        v = static_cast<value_t>(rng->uniform(1000)) - 500;
      break;
  }
}

LinkedList list_from_order(std::span<const index_t> order, ValueInit init,
                           Rng* rng) {
  LinkedList list;
  const std::size_t n = order.size();
  list.next.assign(n, 0);
  list.value.assign(n, 0);
  if (n == 0) return list;
  list.head = order[0];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    assert(order[i] < n);
    list.next[order[i]] = order[i + 1];
  }
  list.next[order[n - 1]] = order[n - 1];  // tail self-loop
  list.tail = order[n - 1];
  init_values(list, init, rng);
  return list;
}

LinkedList random_list(std::size_t n, Rng& rng, ValueInit init) {
  std::vector<index_t> order(n);
  rng.permutation(order);
  return list_from_order(order, init, &rng);
}

LinkedList sequential_list(std::size_t n, ValueInit init, Rng* rng) {
  std::vector<index_t> order(n);
  std::iota(order.begin(), order.end(), index_t{0});
  return list_from_order(order, init, rng);
}

LinkedList reversed_list(std::size_t n, ValueInit init, Rng* rng) {
  std::vector<index_t> order(n);
  for (std::size_t i = 0; i < n; ++i)
    order[i] = static_cast<index_t>(n - 1 - i);
  return list_from_order(order, init, rng);
}

LinkedList blocked_list(std::size_t n, std::size_t block, Rng& rng,
                        ValueInit init) {
  assert(block > 0);
  const std::size_t nblocks = (n + block - 1) / block;
  std::vector<index_t> border(nblocks);
  rng.permutation(border);
  std::vector<index_t> order;
  order.reserve(n);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t start = static_cast<std::size_t>(border[b]) * block;
    const std::size_t end = std::min(start + block, n);
    for (std::size_t i = start; i < end; ++i)
      order.push_back(static_cast<index_t>(i));
  }
  assert(order.size() == n);
  return list_from_order(order, init, &rng);
}

}  // namespace lr90
