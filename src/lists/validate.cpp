#include "lists/validate.hpp"

#include <sstream>

namespace lr90 {

std::optional<std::string> validate_list(const LinkedList& list) {
  const std::size_t n = list.size();
  if (list.value.size() != n) {
    return "value array size differs from next array size";
  }
  if (n == 0) {
    if (list.head != kNoVertex) return "empty list must have head == kNoVertex";
    return std::nullopt;
  }
  if (list.head >= n) {
    std::ostringstream os;
    os << "head index " << list.head << " out of range for n=" << n;
    return os.str();
  }
  std::size_t self_loops = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (list.next[v] >= n) {
      std::ostringstream os;
      os << "next[" << v << "] = " << list.next[v] << " out of range";
      return os.str();
    }
    if (list.next[v] == v) ++self_loops;
  }
  if (self_loops != 1) {
    std::ostringstream os;
    os << "expected exactly one self-loop tail, found " << self_loops;
    return os.str();
  }
  // Walk from head; must visit exactly n distinct vertices and end at tail.
  std::vector<char> seen(n, 0);
  index_t v = list.head;
  std::size_t count = 0;
  while (true) {
    if (seen[v]) {
      std::ostringstream os;
      os << "cycle through vertex " << v << " before reaching the tail";
      return os.str();
    }
    seen[v] = 1;
    ++count;
    if (list.next[v] == v) break;
    v = list.next[v];
  }
  if (count != n) {
    std::ostringstream os;
    os << "head reaches only " << count << " of " << n << " vertices";
    return os.str();
  }
  return std::nullopt;
}

bool is_valid_list(const LinkedList& list) {
  return !validate_list(list).has_value();
}

bool lists_equal(const LinkedList& a, const LinkedList& b) {
  return a.head == b.head && a.next == b.next && a.value == b.value;
}

std::vector<value_t> reference_rank(const LinkedList& list) {
  std::vector<value_t> rank(list.size(), 0);
  for_each_in_order(list, [&](index_t v, std::size_t pos) {
    rank[v] = static_cast<value_t>(pos);
  });
  return rank;
}

}  // namespace lr90
