// The paper's single-gather encoding for list ranking (Section 3, Phase 1):
//
//   "we encode the link and value data for a vertex into a w-bit integer
//    value, which we can do as long as the list length (and therefore the
//    maximum rank) is no more than 2^(w/2)."
//
// The Cray C90 can issue only one gather or scatter at a time, so halving
// the gathers in the dominant traversal loops nearly halves their cost
// (T_InitialScan drops from 3.4x+35 to the rank kernel's 2.1x+30).
//
// Encoding: word = (link << 32) | (value & 0xffffffff). Values must fit in
// an unsigned 32-bit lane; for ranking they are 0 or 1 and partial sums stay
// below n <= 2^32.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "lists/linked_list.hpp"
#include "support/cpu_features.hpp"

#if LR90_SIMD_GATHER_COMPILED
#include <immintrin.h>
#endif

namespace lr90 {

using packed_t = std::uint64_t;

inline constexpr unsigned kPackShift = 32;
inline constexpr packed_t kPackValueMask = 0xffffffffULL;

inline packed_t pack_link_value(index_t link, std::uint32_t value) {
  return (static_cast<packed_t>(link) << kPackShift) |
         static_cast<packed_t>(value);
}
inline index_t packed_link(packed_t w) {
  return static_cast<index_t>(w >> kPackShift);
}
inline std::uint32_t packed_value(packed_t w) {
  return static_cast<std::uint32_t>(w & kPackValueMask);
}

// -- the host hot-path word ("tail-flag-in-word") ---------------------------
//
// The host traversal kernels (core/host_exec.hpp) extend the single-gather
// idea with the per-run sublist-tail flag, stolen from the top bit of the
// link lane (links only need 31 bits, bounding n by 2^31 on this path):
//
//   word = (is_sublist_tail << 63) | (next << 32) | (value & 0xffffffff)
//
// so the inner loop issues exactly ONE random load per element -- link,
// value, and stop condition arrive together, where the seed kernel paid a
// dependent load on `next`, a second gather on `value`, and a third random
// access into the `is_tail` bitmap. The value lane is the low 32 bits of
// value_t, reread back sign-extended; a list qualifies only when every
// value round-trips (hot_value_fits).

/// The sublist-tail flag bit of a hot word.
inline constexpr packed_t kHotTailBit = 0x8000000000000000ULL;
/// Mask of the 31-bit link lane (bits 32..62).
inline constexpr packed_t kHotLinkMask = 0x7fffffffULL;
/// The largest list the hot path can encode (links must fit 31 bits).
inline constexpr std::size_t kHotMaxVertices = std::size_t{1} << 31;

/// Packs (sublist-tail flag, link, value lane) into one hot word.
inline constexpr packed_t hot_pack(bool tail, index_t link,
                                   std::uint32_t value) {
  return (tail ? kHotTailBit : 0) |
         ((static_cast<packed_t>(link) & kHotLinkMask) << kPackShift) |
         static_cast<packed_t>(value);
}
/// True iff the word's vertex ends its sublist.
inline constexpr bool hot_tail(packed_t w) { return (w & kHotTailBit) != 0; }
/// The word's successor index.
inline constexpr index_t hot_link(packed_t w) {
  return static_cast<index_t>((w >> kPackShift) & kHotLinkMask);
}
/// The word's value lane, sign-extended back to value_t.
inline constexpr value_t hot_value(packed_t w) {
  return static_cast<value_t>(
      static_cast<std::int32_t>(static_cast<std::uint32_t>(w)));
}
/// True iff `v` survives the lane round-trip (fits a signed 32-bit lane).
inline constexpr bool hot_value_fits(value_t v) {
  return v == static_cast<value_t>(static_cast<std::int32_t>(
                  static_cast<std::uint32_t>(v)));
}

/// Packs hot words for the index range [begin, end): the per-thread unit
/// of the parallel slab build (core/host_exec.hpp build_packed). `value`
/// == nullptr packs the constant 1 into every value lane (ranking).
/// Returns false -- packed contents of the range unspecified -- if any
/// value misses the signed 32-bit lane; always true when ranking. The
/// pass is branch-light and sequential over the range, so per-thread
/// ranges stream independently at full bandwidth.
inline bool hot_pack_range(const index_t* next, const value_t* value,
                           const std::uint8_t* is_tail, packed_t* out,
                           std::size_t begin, std::size_t end) {
  bool ok = true;
  for (std::size_t i = begin; i < end; ++i) {
    const value_t v = value == nullptr ? value_t{1} : value[i];
    ok = ok && hot_value_fits(v);
    out[i] = hot_pack(is_tail[i] != 0, next[i],
                      static_cast<std::uint32_t>(static_cast<std::uint64_t>(v)));
  }
  return ok;
}

#if LR90_SIMD_GATHER_COMPILED
/// AVX2 flavour of hot_pack_range: packs four hot words per iteration --
/// links widen/mask/shift, value lanes mask, tail flags turn into bit 63,
/// all in vector registers -- with the same contract (false if any value
/// misses the signed 32-bit lane; `value` == nullptr packs the constant
/// 1). Compiled into every binary behind the target attribute; callers
/// must gate on simd_gather_available() at run time. The < 4-element
/// remainder reuses the scalar pass.
LR90_TARGET_AVX2 inline bool hot_pack_range_simd(
    const index_t* next, const value_t* value, const std::uint8_t* is_tail,
    packed_t* out, std::size_t begin, std::size_t end) {
  const __m256i link_mask = _mm256_set1_epi64x(
      static_cast<long long>(kHotLinkMask));
  const __m256i val_mask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i tail_bit = _mm256_set1_epi64x(
      static_cast<long long>(kHotTailBit));
  const __m256i ones = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  // Lane picker: the low 32 bits of each 64-bit lane, packed to the low
  // 128 bits (indices 0,2,4,6 of the eight 32-bit lanes).
  const __m256i pick_even = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  __m256i ok = _mm256_set1_epi64x(-1);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i nx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(next + i));
    const __m256i link =
        _mm256_and_si256(_mm256_cvtepu32_epi64(nx), link_mask);
    __m256i v;
    if (value == nullptr) {
      v = ones;
    } else {
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(value + i));
      // The lane-fit check: v must equal the sign-extension of its low
      // 32 bits (hot_value_fits, four at a time).
      const __m256i lo = _mm256_permutevar8x32_epi32(v, pick_even);
      const __m256i sext =
          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(lo));
      ok = _mm256_and_si256(ok, _mm256_cmpeq_epi64(v, sext));
    }
    std::uint32_t t4;  // four boundary-bitmap bytes -> four bit-63 flags
    std::memcpy(&t4, is_tail + i, sizeof t4);
    const __m256i tails =
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(t4)));
    const __m256i tail_mask =
        _mm256_and_si256(_mm256_cmpgt_epi64(tails, zero), tail_bit);
    const __m256i w = _mm256_or_si256(
        tail_mask, _mm256_or_si256(_mm256_slli_epi64(link, 32),
                                   _mm256_and_si256(v, val_mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
  }
  bool all_fit =
      value == nullptr ||
      _mm256_movemask_epi8(ok) == -1;
  if (i < end) all_fit = hot_pack_range(next, value, is_tail, out, i, end) && all_fit;
  return all_fit;
}
#endif  // LR90_SIMD_GATHER_COMPILED

/// True iff every value of `list` fits the 32-bit value lane and n itself
/// cannot overflow a 32-bit partial rank (the paper's n <= 2^(w/2) bound).
bool can_encode(const LinkedList& list);

/// Packs (next, value) per vertex into one 64-bit word each.
std::vector<packed_t> encode_list(const LinkedList& list);

/// Reverses encode_list; `head` must be supplied (it is not encoded).
LinkedList decode_list(const std::vector<packed_t>& packed, index_t head);

}  // namespace lr90
