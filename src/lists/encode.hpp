// The paper's single-gather encoding for list ranking (Section 3, Phase 1):
//
//   "we encode the link and value data for a vertex into a w-bit integer
//    value, which we can do as long as the list length (and therefore the
//    maximum rank) is no more than 2^(w/2)."
//
// The Cray C90 can issue only one gather or scatter at a time, so halving
// the gathers in the dominant traversal loops nearly halves their cost
// (T_InitialScan drops from 3.4x+35 to the rank kernel's 2.1x+30).
//
// Encoding: word = (link << 32) | (value & 0xffffffff). Values must fit in
// an unsigned 32-bit lane; for ranking they are 0 or 1 and partial sums stay
// below n <= 2^32.
#pragma once

#include <cstdint>
#include <vector>

#include "lists/linked_list.hpp"

namespace lr90 {

using packed_t = std::uint64_t;

inline constexpr unsigned kPackShift = 32;
inline constexpr packed_t kPackValueMask = 0xffffffffULL;

inline packed_t pack_link_value(index_t link, std::uint32_t value) {
  return (static_cast<packed_t>(link) << kPackShift) |
         static_cast<packed_t>(value);
}
inline index_t packed_link(packed_t w) {
  return static_cast<index_t>(w >> kPackShift);
}
inline std::uint32_t packed_value(packed_t w) {
  return static_cast<std::uint32_t>(w & kPackValueMask);
}

// -- the host hot-path word ("tail-flag-in-word") ---------------------------
//
// The host traversal kernels (core/host_exec.hpp) extend the single-gather
// idea with the per-run sublist-tail flag, stolen from the top bit of the
// link lane (links only need 31 bits, bounding n by 2^31 on this path):
//
//   word = (is_sublist_tail << 63) | (next << 32) | (value & 0xffffffff)
//
// so the inner loop issues exactly ONE random load per element -- link,
// value, and stop condition arrive together, where the seed kernel paid a
// dependent load on `next`, a second gather on `value`, and a third random
// access into the `is_tail` bitmap. The value lane is the low 32 bits of
// value_t, reread back sign-extended; a list qualifies only when every
// value round-trips (hot_value_fits).

/// The sublist-tail flag bit of a hot word.
inline constexpr packed_t kHotTailBit = 0x8000000000000000ULL;
/// Mask of the 31-bit link lane (bits 32..62).
inline constexpr packed_t kHotLinkMask = 0x7fffffffULL;
/// The largest list the hot path can encode (links must fit 31 bits).
inline constexpr std::size_t kHotMaxVertices = std::size_t{1} << 31;

/// Packs (sublist-tail flag, link, value lane) into one hot word.
inline constexpr packed_t hot_pack(bool tail, index_t link,
                                   std::uint32_t value) {
  return (tail ? kHotTailBit : 0) |
         ((static_cast<packed_t>(link) & kHotLinkMask) << kPackShift) |
         static_cast<packed_t>(value);
}
/// True iff the word's vertex ends its sublist.
inline constexpr bool hot_tail(packed_t w) { return (w & kHotTailBit) != 0; }
/// The word's successor index.
inline constexpr index_t hot_link(packed_t w) {
  return static_cast<index_t>((w >> kPackShift) & kHotLinkMask);
}
/// The word's value lane, sign-extended back to value_t.
inline constexpr value_t hot_value(packed_t w) {
  return static_cast<value_t>(
      static_cast<std::int32_t>(static_cast<std::uint32_t>(w)));
}
/// True iff `v` survives the lane round-trip (fits a signed 32-bit lane).
inline constexpr bool hot_value_fits(value_t v) {
  return v == static_cast<value_t>(static_cast<std::int32_t>(
                  static_cast<std::uint32_t>(v)));
}

/// Packs hot words for the index range [begin, end): the per-thread unit
/// of the parallel slab build (core/host_exec.hpp build_packed). `value`
/// == nullptr packs the constant 1 into every value lane (ranking).
/// Returns false -- packed contents of the range unspecified -- if any
/// value misses the signed 32-bit lane; always true when ranking. The
/// pass is branch-light and sequential over the range, so per-thread
/// ranges stream independently at full bandwidth.
inline bool hot_pack_range(const index_t* next, const value_t* value,
                           const std::uint8_t* is_tail, packed_t* out,
                           std::size_t begin, std::size_t end) {
  bool ok = true;
  for (std::size_t i = begin; i < end; ++i) {
    const value_t v = value == nullptr ? value_t{1} : value[i];
    ok = ok && hot_value_fits(v);
    out[i] = hot_pack(is_tail[i] != 0, next[i],
                      static_cast<std::uint32_t>(static_cast<std::uint64_t>(v)));
  }
  return ok;
}

/// True iff every value of `list` fits the 32-bit value lane and n itself
/// cannot overflow a 32-bit partial rank (the paper's n <= 2^(w/2) bound).
bool can_encode(const LinkedList& list);

/// Packs (next, value) per vertex into one 64-bit word each.
std::vector<packed_t> encode_list(const LinkedList& list);

/// Reverses encode_list; `head` must be supplied (it is not encoded).
LinkedList decode_list(const std::vector<packed_t>& packed, index_t head);

}  // namespace lr90
