// The paper's single-gather encoding for list ranking (Section 3, Phase 1):
//
//   "we encode the link and value data for a vertex into a w-bit integer
//    value, which we can do as long as the list length (and therefore the
//    maximum rank) is no more than 2^(w/2)."
//
// The Cray C90 can issue only one gather or scatter at a time, so halving
// the gathers in the dominant traversal loops nearly halves their cost
// (T_InitialScan drops from 3.4x+35 to the rank kernel's 2.1x+30).
//
// Encoding: word = (link << 32) | (value & 0xffffffff). Values must fit in
// an unsigned 32-bit lane; for ranking they are 0 or 1 and partial sums stay
// below n <= 2^32.
#pragma once

#include <cstdint>
#include <vector>

#include "lists/linked_list.hpp"

namespace lr90 {

using packed_t = std::uint64_t;

inline constexpr unsigned kPackShift = 32;
inline constexpr packed_t kPackValueMask = 0xffffffffULL;

inline packed_t pack_link_value(index_t link, std::uint32_t value) {
  return (static_cast<packed_t>(link) << kPackShift) |
         static_cast<packed_t>(value);
}
inline index_t packed_link(packed_t w) {
  return static_cast<index_t>(w >> kPackShift);
}
inline std::uint32_t packed_value(packed_t w) {
  return static_cast<std::uint32_t>(w & kPackValueMask);
}

/// True iff every value of `list` fits the 32-bit value lane and n itself
/// cannot overflow a 32-bit partial rank (the paper's n <= 2^(w/2) bound).
bool can_encode(const LinkedList& list);

/// Packs (next, value) per vertex into one 64-bit word each.
std::vector<packed_t> encode_list(const LinkedList& list);

/// Reverses encode_list; `head` must be supplied (it is not encoded).
LinkedList decode_list(const std::vector<packed_t>& packed, index_t head);

}  // namespace lr90
