#include "lists/linked_list.hpp"

namespace lr90 {

index_t LinkedList::find_tail() const {
  if (tail < next.size() && next[tail] == tail) return tail;
  for (std::size_t v = 0; v < next.size(); ++v) {
    if (next[v] == static_cast<index_t>(v)) return static_cast<index_t>(v);
  }
  return kNoVertex;
}

std::vector<index_t> order_of(const LinkedList& list) {
  std::vector<index_t> order;
  order.reserve(list.size());
  for_each_in_order(list, [&](index_t v, std::size_t) { order.push_back(v); });
  return order;
}

}  // namespace lr90
