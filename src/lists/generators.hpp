// Workload generators: linked lists with controlled traversal order and
// value distributions.
//
// The paper evaluates on lists whose vertices are laid out in random order
// in memory (the hard, communication-intensive case: every link dereference
// is a random access). We also provide orderly layouts that are easy cases
// for cache-based machines, used by the workstation-model experiments and by
// tests.
#pragma once

#include <span>

#include "lists/linked_list.hpp"
#include "support/rng.hpp"

namespace lr90 {

/// How vertex values are initialized.
enum class ValueInit {
  kOnes,         ///< every value 1 (list ranking)
  kIndex,        ///< value = vertex index (handy for debugging)
  kUniformSmall, ///< uniform in [0, 1000)
  kSigned,       ///< uniform in [-500, 500)
};

/// Builds a list whose traversal order is a uniformly random permutation of
/// the vertex indices. This is the paper's workload: memory position and
/// list position are uncorrelated.
LinkedList random_list(std::size_t n, Rng& rng,
                       ValueInit init = ValueInit::kOnes);

/// Builds a list whose traversal order is 0,1,2,...,n-1 (sequential memory
/// walk; the cache-friendly best case).
LinkedList sequential_list(std::size_t n, ValueInit init = ValueInit::kOnes,
                           Rng* rng = nullptr);

/// Builds a list traversed n-1, n-2, ..., 0.
LinkedList reversed_list(std::size_t n, ValueInit init = ValueInit::kOnes,
                         Rng* rng = nullptr);

/// Builds a list where traversal order is random *between* blocks of
/// `block` consecutive indices but sequential within a block: a knob between
/// the sequential and fully random extremes (models partially sorted data).
LinkedList blocked_list(std::size_t n, std::size_t block, Rng& rng,
                        ValueInit init = ValueInit::kOnes);

/// Builds a list from an explicit traversal order: order[0] is the head,
/// order[i+1] follows order[i]. All indices must be distinct and < n.
LinkedList list_from_order(std::span<const index_t> order,
                           ValueInit init = ValueInit::kOnes,
                           Rng* rng = nullptr);

/// Fills values in-place per the given policy.
void init_values(LinkedList& list, ValueInit init, Rng* rng);

}  // namespace lr90
