// Linked-list representation shared by every algorithm in the library.
//
// Following the paper (Section 3), a list of n vertices is a pair of arrays:
// `value[v]` holds the vertex's value and `next[v]` the index of its
// successor. The tail is a self-loop (next[tail] == tail). Vertex indices
// are array positions; the traversal order is independent of index order,
// which is exactly what makes list ranking communication-intensive.
#pragma once

#include <cstdint>
#include <vector>

namespace lr90 {

/// Vertex index type. 32 bits: the paper's single-gather encoding packs a
/// link and a value into one 64-bit machine word, which bounds n by 2^(w/2).
using index_t = std::uint32_t;

/// Vertex value type for scans.
using value_t = std::int64_t;

/// Sentinel for "no vertex".
inline constexpr index_t kNoVertex = static_cast<index_t>(-1);

/// A singly linked list in structure-of-arrays form.
///
/// Invariants (checked by lists/validate.hpp):
///  * next.size() == value.size() == n
///  * head < n (unless n == 0)
///  * following `next` from `head` visits every vertex exactly once and
///    terminates at the unique self-loop tail.
struct LinkedList {
  std::vector<index_t> next;
  std::vector<value_t> value;
  index_t head = kNoVertex;
  /// Cached tail index (the self-loop vertex), kNoVertex when unknown.
  /// The generators, decode_list, and the transforms fill it at build
  /// time; find_tail() trusts it only after re-checking the self-loop, so
  /// a stale cache (links edited by hand) degrades to the O(n) scan
  /// instead of a wrong answer.
  index_t tail = kNoVertex;

  std::size_t size() const { return next.size(); }
  bool empty() const { return next.empty(); }

  /// The tail index: the cached `tail` when it still names the self-loop,
  /// otherwise an O(n) scan (whose result is not written back -- the
  /// struct stays freely copyable/const). kNoVertex if the list is empty
  /// or malformed.
  index_t find_tail() const;
};

/// Visits vertices in list order, calling f(vertex, position).
template <class F>
void for_each_in_order(const LinkedList& list, F&& f) {
  if (list.empty()) return;
  index_t v = list.head;
  std::size_t pos = 0;
  while (true) {
    f(v, pos);
    ++pos;
    const index_t nxt = list.next[v];
    if (nxt == v) break;
    v = nxt;
  }
}

/// Returns the vertices in list order (head first).
std::vector<index_t> order_of(const LinkedList& list);

}  // namespace lr90
