// Transformations between linked lists, permutations, and arrays -- the
// "what you do with a rank" toolkit.
//
// The paper's opening example: ranks "can be used to reorder the vertices
// of a linked list into an array in one parallel step". These helpers
// package that and its relatives; all accept a precomputed rank so callers
// can amortize one ranking across several transforms (pass an empty span
// to let the helper rank internally via the host path).
#pragma once

#include <span>
#include <vector>

#include "core/parallel_host.hpp"
#include "lists/linked_list.hpp"

namespace lr90 {

/// Values of the list in traversal order: out[rank(v)] = value[v].
std::vector<value_t> list_to_array(const LinkedList& list,
                                   std::span<const value_t> rank = {});

/// Vertex indices in traversal order: out[rank(v)] = v (the permutation
/// "list order -> memory index"). Equivalent to order_of() but parallel.
std::vector<index_t> order_permutation(const LinkedList& list,
                                       std::span<const value_t> rank = {});

/// The reversed list: traversal order back-to-front, same vertex indices
/// and values. O(n), link-parallel (no ranking needed).
LinkedList reverse_list(const LinkedList& list);

/// Splits the list *after* each vertex in `cut_after` (duplicates and the
/// global tail are ignored): returns the resulting sublists as independent
/// valid LinkedLists over re-indexed vertices, in traversal order.
std::vector<LinkedList> split_list(const LinkedList& list,
                                   std::span<const index_t> cut_after);

/// Concatenates lists (in argument order) into one list over re-indexed
/// vertices; inverse of split_list up to re-indexing.
LinkedList concat_lists(std::span<const LinkedList> lists);

/// Builds the linked list whose traversal visits memory slots in the order
/// given by the permutation's *inverse*: slot perm[i] is the i-th visited.
/// (random_list() composed differently; exposed for round-trip tests.)
LinkedList list_of_permutation(std::span<const index_t> perm);

/// Ranks a batch of independent lists with a single parallel pass:
/// concatenates them, ranks once, and rebases each part. Downstream tree
/// and graph algorithms routinely carry many short lists (e.g. per-level
/// adjacency chains); batching keeps the parallel machine saturated where
/// per-list calls would be overhead-bound.
std::vector<std::vector<value_t>> rank_many(std::span<const LinkedList> lists,
                                            const HostOptions& opt = {});

}  // namespace lr90
