// The paper's cost model of the Reid-Miller algorithm (Section 4.2-4.3).
//
// With T_Scan(x) = a*x + b, T_Pack(x) = c*x + d per load-balance interval
// and T_Other(x) = e*x + f for the fixed per-sublist phases, the expected
// one-processor cost of Phases 1+3 given balance points S_0=0 < S_1 < ... <
// S_l is Eq. 3:
//
//   T = sum_i (S_{i+1}-S_i) (a g(S_i) + b) + sum_i (c g(S_i) + d)
//       + e (m+1) + f
//
// where g is the expected-survivor function (Eq. 2). Minimizing over the
// S_i yields the recurrence Eq. 4 (analysis/schedule.hpp), and substituting
// it back gives the closed form Eq. 5:
//
//   T(n) ~= a n + b (n/m) ln m + (a S_1 + c + e)(m+1) + l d + f [+ phase 2]
//
// Constants are extracted from the simulator's CostTable so the model and
// the machine can never drift apart.
#pragma once

#include <span>

#include "vm/cost_table.hpp"

namespace lr90 {

/// Linear-model constants for the phases of the algorithm, all in cycles.
struct CostConstants {
  double a;  ///< traversal cycles per sublist per link step (both phases)
  double b;  ///< traversal startup per link step
  double c;  ///< pack cycles per sublist per balance (both phases)
  double d;  ///< pack startup per balance
  double e;  ///< per-sublist cycles of initialize + reduce-list + restore
  double f;  ///< fixed cycles of initialize + reduce-list + restore
  double serial_per_vertex;  ///< Phase-2 serial fallback cycles per vertex

  double c_over_a() const { return c / a; }

  /// Extracts the constants from a machine cost table. `rank` selects the
  /// single-gather ranking kernels.
  static CostConstants from(const vm::CostTable& t, bool rank = false);

  /// Returns a copy with the per-element traversal terms (`a`, the combine
  /// inside every link step, and the serial walk) scaled by an operator's
  /// combine cost (lists/ops.hpp op_cost_factor). Startups, packing, and
  /// the fixed per-sublist phases move links, not values, and are
  /// unaffected. Identity when factor == 1.
  CostConstants with_combine_factor(double factor) const {
    CostConstants k = *this;
    k.a *= factor;
    k.serial_per_vertex *= factor;
    return k;
  }
};

/// Eq. 3: expected Phase 1+3 cycles (plus fixed per-sublist work) on one
/// processor for balance points `s` (S_1..S_l ascending, S_0=0 implied).
/// Does not include Phase 2.
double expected_cycles_eq3(double n, double m, std::span<const double> s,
                           const CostConstants& k);

/// Eq. 6 (Section 5): the p-processor generalization of Eq. 3. Per-element
/// vector work divides across processors but also pays the memory
/// contention multiplier; per-call startups do not parallelize (every
/// processor issues the same schedule of vector instructions).
double expected_cycles_eq6(double n, double m, std::span<const double> s,
                           const CostConstants& k, unsigned p,
                           double contention);

/// Phase-2 estimate on p processors: the cheapest of serial, Wyllie
/// (vectorized, ~2.9 cycles/element/round over ceil(log2 m) rounds), and a
/// coarse recursive bound. Used by the per-p tuner.
double phase2_cycles_estimate(double m, const CostConstants& k, unsigned p,
                              double contention);

/// Simple Phase-2 estimate used by the tuner: serial scan of the reduced
/// list of m+1 sublist sums.
double phase2_serial_cycles(double m, const CostConstants& k);

/// Eq. 5: the closed-form over-estimate of the total one-processor cycles
/// (the paper notes Eq. 5 over-estimates while Eq. 3 predicts accurately).
double expected_cycles_eq5(double n, double m, double s1, std::size_t l,
                           const CostConstants& k);

// -- host packed hot path ---------------------------------------------------
//
// The host analog of the paper's vector model: with W cursors in flight
// per worker, a traversal element costs roughly
//
//   max( latency(footprint) / W , combine )  +  bookkeeping(W)
//
// -- the memory round-trip amortizes across the W independent load chains
// until the core's own per-element work becomes the bottleneck, while the
// round-robin bookkeeping grows mildly with W. latency() steps through
// the cache hierarchy by the slab's footprint, exactly the role the
// Hockney (startup, per-element) pairs play in the C90 CostTable.
// Defaults are fitted from bench/interleave_sweep on the dev machine;
// they need only rank the candidate Ws correctly, not predict wall time.

/// Per-element constants of the host packed traversal kernels, in
/// nanoseconds. Value-semantic so benches can refit and re-plan. The
/// per-thread terms (fork_join_ns, mem_parallelism, build_min_ns,
/// serial_bandwidth_frac) extend the model to the joint (threads x W)
/// grid: per-core work divides across workers, but the memory system
/// caps the aggregate latency hiding -- the host analog of the paper's
/// Section 5 shared-memory contention term.
struct HostCostConstants {
  double l1_latency_ns = 5.0;     ///< random load, working set in L1/L2
  double l2_latency_ns = 16.0;    ///< random load, slab within L2/LLC
  double dram_latency_ns = 95.0;  ///< random load, slab misses to DRAM
  double combine_ns = 1.4;        ///< combine + cursor advance (plus-like)
  double bookkeeping_ns = 0.08;   ///< round-robin overhead per extra cursor
  double build_ns = 1.1;          ///< slab build per element on one worker
  double serial_walk_ns = 1.1;    ///< serial walk non-memory work per elem
  double fixed_run_ns = 4000.0;   ///< boundary picks, phase 2, plan fixed
  double l1_bytes = 48.0 * 1024;          ///< fast-cache region
  double l2_bytes = 2.0 * 1024 * 1024;    ///< slab fits here: l2 latency
  double llc_bytes = 30.0 * 1024 * 1024;  ///< beyond here: dram latency

  // -- thread-scaling terms (joint (threads x W) planning) ---------------
  /// Per extra worker per run: team wake-up plus the join barrier (std::
  /// thread spawn on OpenMP-less builds is the costlier bound; the model
  /// only has to shed threads for small n, not predict wall time).
  double fork_join_ns = 9000.0;
  /// Chip-wide outstanding-miss ceiling: total in-flight random loads the
  /// memory system sustains. threads x W chains hide latency only up to
  /// this; past it, more threads stop helping the traversal phases. Kept
  /// above the per-worker cursor cap (32 in the W grid) so the T=1 model
  /// stays identical to host_packed_ns_per_elem.
  double mem_parallelism = 48.0;
  /// Parallel slab-build floor (streaming bandwidth bound): build time
  /// per element cannot drop below this no matter how many workers.
  double build_min_ns = 0.3;

  // -- SIMD gather tier terms (core/host_exec.hpp kSimdGather) -----------
  /// Per-element vector work of the gather kernels: one lane's share of
  /// the vpgatherdq issue plus the vectorized combine/advance. Well
  /// below combine_ns -- four cursors advance per instruction group,
  /// which is the whole point of the tier.
  double gather_issue_ns = 0.5;
  /// Round-robin overhead per extra cursor on the gather path. Charged
  /// per cursor like bookkeeping_ns but an order of magnitude smaller:
  /// cursor state lives in vector registers, four to a group, so adding
  /// cursors mostly adds registers, not branches.
  double gather_bookkeeping_ns = 0.012;
};

/// Interpolated random-access latency for a working set of `bytes`.
double host_latency_ns(double bytes, const HostCostConstants& k);

/// Model ns/element of the packed phases 1+3 with `W` cursors in flight
/// per worker (one worker assumed: threads divide the element count
/// upstream). `op_factor` scales the combine (lists/ops.hpp).
double host_packed_ns_per_elem(double n, unsigned W,
                               const HostCostConstants& k,
                               double op_factor = 1.0);

/// The (threads x W) generalization: model ns/element of the packed
/// phases 1+3 plus the parallel slab build with `threads` workers each
/// keeping `W` cursors in flight. Per-core work divides by the worker
/// count; aggregate latency hiding saturates at k.mem_parallelism
/// outstanding misses; the build scales to its bandwidth floor. Excludes
/// the per-run fixed and fork/join terms (host_tune_at adds those).
double host_packed_ns_per_elem_mt(double n, unsigned threads, unsigned W,
                                  const HostCostConstants& k,
                                  double op_factor = 1.0);

/// The SIMD gather tier's counterpart of host_packed_ns_per_elem_mt:
/// same latency-hiding shape -- W cursor chains amortize the memory
/// round-trip until per-element issue work binds -- but with the gather
/// constants (gather_issue_ns, gather_bookkeeping_ns): the vector
/// kernels advance four cursors per instruction group, so both the
/// combine bound and the per-cursor overhead sit well below the scalar
/// family's. Excludes the per-run fixed and fork/join terms
/// (host_tune_at adds those).
double host_gather_ns_per_elem_mt(double n, unsigned threads, unsigned W,
                                  const HostCostConstants& k,
                                  double op_factor = 1.0);

/// Model ns/element of the single-cursor serial walk over the same list
/// (the packed path's break-even opponent on one thread).
double host_serial_ns_per_elem(double n, const HostCostConstants& k,
                               double op_factor = 1.0);

}  // namespace lr90
