#include "analysis/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "analysis/sublist_stats.hpp"

namespace lr90 {

std::vector<double> balance_schedule(double n, double m, double s1,
                                     double c_over_a, double until) {
  assert(n > 0 && m > 0);
  s1 = std::max(1.0, std::floor(s1));
  std::vector<double> s;
  s.push_back(s1);
  double prev2 = 0.0;   // S_{i-1}
  double prev = s1;     // S_i
  while (prev < until) {
    const double g_prev2 = g_survivors(n, m, prev2);
    const double g_prev = g_survivors(n, m, prev);
    // Eq. 4. g_prev underflows to ~0 only when prev is far beyond every
    // sublist; the `until` bound keeps us well clear of that regime, but
    // guard anyway.
    double next;
    if (g_prev < 1e-12) {
      next = prev + (prev - prev2);  // keep the last gap
    } else {
      next = prev + (g_prev2 - g_prev) / ((m / n) * g_prev) - c_over_a;
    }
    next = std::floor(next);
    // Eq. 4 yields growing gaps only when S_1 exceeds the critical value
    // sqrt(2 (c/a)(n/m)); below it the raw recurrence would collapse the
    // schedule into per-link balancing. Guard by never letting a gap
    // shrink (and always making at least one link of progress).
    const double min_next = prev + std::max(1.0, prev - prev2);
    if (next < min_next) next = min_next;
    s.push_back(next);
    prev2 = prev;
    prev = next;
  }
  return s;
}

std::vector<double> balance_schedule_auto(double n, double m, double s1,
                                          const CostConstants& k,
                                          double longest_factor) {
  const double until = expected_longest(n, m) * longest_factor;
  return balance_schedule(n, m, s1, k.c_over_a(), until);
}

}  // namespace lr90
