// Optimal load-balancing schedule (paper Section 4.3, Eq. 4).
//
// Setting the partial derivatives of Eq. 3 with respect to each balance
// point S_i to zero yields the recurrence
//
//   S_{i+1} = S_i + (g(S_{i-1}) - g(S_i)) / ((m/n) g(S_i)) - c/a
//
// so from S_0 = 0 and a chosen S_1 the whole schedule follows. Balance
// points spread out over time because sublists complete at a decreasing
// rate; a larger c/a (expensive packing) pushes balancing later and reduces
// how many balances are worthwhile.
#pragma once

#include <vector>

#include "analysis/cost_eqs.hpp"

namespace lr90 {

/// Generates balance points S_1 < S_2 < ... from Eq. 4 until the points
/// pass `until` (typically a multiple of the expected longest sublist
/// (n/m) ln(2m+2)). Always emits at least one point. Guarantees strictly
/// increasing integer-valued points (each at least prev+1), so a traversal
/// driven by the schedule always makes progress.
std::vector<double> balance_schedule(double n, double m, double s1,
                                     double c_over_a, double until);

/// Convenience: schedule out to `longest_factor` times the expected longest
/// sublist.
std::vector<double> balance_schedule_auto(double n, double m, double s1,
                                          const CostConstants& k,
                                          double longest_factor = 1.0);

}  // namespace lr90
