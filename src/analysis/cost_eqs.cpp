#include "analysis/cost_eqs.hpp"

#include <cassert>
#include <cmath>

#include "analysis/sublist_stats.hpp"

namespace lr90 {

CostConstants CostConstants::from(const vm::CostTable& t, bool rank) {
  const auto& scan1 = t.kernel(rank ? vm::Kernel::kInitialScanRankStep
                                    : vm::Kernel::kInitialScanStep);
  const auto& scan3 = t.kernel(rank ? vm::Kernel::kFinalScanRankStep
                                    : vm::Kernel::kFinalScanStep);
  const auto& pack1 = t.kernel(vm::Kernel::kInitialPack);
  const auto& pack3 = t.kernel(vm::Kernel::kFinalPack);
  const auto& init = t.kernel(vm::Kernel::kInitialize);
  const auto& find = t.kernel(vm::Kernel::kFindSublistList);
  const auto& restore = t.kernel(vm::Kernel::kRestoreList);

  CostConstants k{};
  k.a = scan1.per_elem + scan3.per_elem;
  k.b = scan1.startup + scan3.startup;
  k.c = pack1.per_elem + pack3.per_elem;
  k.d = pack1.startup + pack3.startup;
  k.e = init.per_elem + find.per_elem + restore.per_elem;
  k.f = init.startup + find.startup + restore.startup;
  k.serial_per_vertex =
      rank ? t.serial_rank_per_vertex : t.serial_scan_per_vertex;
  return k;
}

double expected_cycles_eq3(double n, double m, std::span<const double> s,
                           const CostConstants& k) {
  assert(n > 0 && m > 0);
  double cycles = k.e * (m + 1.0) + k.f;
  double prev = 0.0;
  for (const double si : s) {
    assert(si > prev);
    // Lanes active while traversing (prev, si] are the sublists longer than
    // prev: g(prev). The pack at si then processes those same lanes, i.e.
    // the paper's sum_{i=0}^{l-1} (c g(S_i) + d) with the pack at S_{i+1}
    // costing c g(S_i) + d.
    const double survivors = g_survivors(n, m, prev);
    cycles += (si - prev) * (k.a * survivors + k.b);  // traverse interval
    cycles += k.c * survivors + k.d;                  // balance at si
    prev = si;
  }
  return cycles;
}

double phase2_serial_cycles(double m, const CostConstants& k) {
  return k.serial_per_vertex * (m + 1.0) + 100.0;
}

double expected_cycles_eq6(double n, double m, std::span<const double> s,
                           const CostConstants& k, unsigned p,
                           double contention) {
  assert(n > 0 && m > 0 && p >= 1);
  // Per-element work divides over p processors but pays contention; the
  // per-vector-call startups are issued by every processor in lockstep and
  // do not parallelize.
  const double pe = static_cast<double>(p) / contention;
  double cycles = k.e * (m + 1.0) / pe + k.f;
  double prev = 0.0;
  for (const double si : s) {
    assert(si > prev);
    const double survivors = g_survivors(n, m, prev);
    cycles += (si - prev) * (k.a * survivors / pe + k.b);
    cycles += k.c * survivors / pe + k.d;
    prev = si;
  }
  return cycles;
}

double phase2_cycles_estimate(double m, const CostConstants& k, unsigned p,
                              double contention) {
  const double serial = phase2_serial_cycles(m, k);
  // Wyllie on the reduced list: ~2.9 contended cycles per element per
  // round, ceil(log2 m) rounds, plus per-round startup and a sync.
  const double rounds = std::ceil(std::log2(std::max(2.0, m)));
  const double wyllie =
      rounds * (2.9 * contention * (m + 1.0) / static_cast<double>(p) +
                540.0) +
      2000.0;
  // Recursion: roughly the leading a-term plus fixed overhead.
  const double recursive =
      k.a * contention * (m + 1.0) / static_cast<double>(p) + k.f + 3000.0;
  return std::min(serial, std::min(wyllie, recursive));
}

double expected_cycles_eq5(double n, double m, double s1, std::size_t l,
                           const CostConstants& k) {
  return k.a * n + k.b * (n / m) * std::log(m) +
         (k.a * s1 + k.c + k.e) * (m + 1.0) +
         static_cast<double>(l) * k.d + k.f;
}

double host_latency_ns(double bytes, const HostCostConstants& k) {
  // Log-linear ramps between the cache levels: latency climbs as less of
  // the working set fits each tier.
  auto ramp = [](double bytes, double lo_b, double hi_b, double lo_ns,
                 double hi_ns) {
    const double t = (std::log2(bytes) - std::log2(lo_b)) /
                     (std::log2(hi_b) - std::log2(lo_b));
    return lo_ns + t * (hi_ns - lo_ns);
  };
  if (bytes <= k.l1_bytes) return k.l1_latency_ns;
  if (bytes <= k.l2_bytes)
    return ramp(bytes, k.l1_bytes, k.l2_bytes, k.l1_latency_ns,
                k.l2_latency_ns);
  if (bytes >= k.llc_bytes) return k.dram_latency_ns;
  return ramp(bytes, k.l2_bytes, k.llc_bytes, k.l2_latency_ns,
              k.dram_latency_ns);
}

double host_packed_ns_per_elem(double n, unsigned W,
                               const HostCostConstants& k,
                               double op_factor) {
  assert(W >= 1);
  // Footprint: the slab plus the output array phase 3 scatters into.
  const double lat = host_latency_ns(n * 12.0, k);
  const double per_phase =
      std::max(lat / static_cast<double>(W), k.combine_ns * op_factor) +
      k.bookkeeping_ns * static_cast<double>(W - 1);
  // Phases 1 and 3 each traverse every element; the build is one
  // sequential pass.
  return 2.0 * per_phase + k.build_ns;
}

double host_packed_ns_per_elem_mt(double n, unsigned threads, unsigned W,
                                  const HostCostConstants& k,
                                  double op_factor) {
  assert(threads >= 1 && W >= 1);
  const double lat = host_latency_ns(n * 12.0, k);
  // One worker's per-element cost (same shape as host_packed_ns_per_elem).
  const double per_thread =
      std::max(lat / static_cast<double>(W), k.combine_ns * op_factor) +
      k.bookkeeping_ns * static_cast<double>(W - 1);
  // Dividing across workers helps until the chip's outstanding-miss
  // ceiling: threads x W chains cannot hide more latency than
  // mem_parallelism concurrent round-trips' worth.
  const double per_phase =
      std::max(per_thread / static_cast<double>(threads),
               lat / k.mem_parallelism);
  const double build = std::max(k.build_ns / static_cast<double>(threads),
                                k.build_min_ns);
  return 2.0 * per_phase + build;
}

double host_gather_ns_per_elem_mt(double n, unsigned threads, unsigned W,
                                  const HostCostConstants& k,
                                  double op_factor) {
  assert(threads >= 1 && W >= 1);
  const double lat = host_latency_ns(n * 12.0, k);
  // Same shape as the scalar family, gather constants substituted: the
  // vector kernels' per-element issue work replaces the scalar combine
  // bound, and the per-cursor overhead shrinks to the register-resident
  // group bookkeeping.
  const double per_thread =
      std::max(lat / static_cast<double>(W), k.gather_issue_ns * op_factor) +
      k.gather_bookkeeping_ns * static_cast<double>(W - 1);
  const double per_phase =
      std::max(per_thread / static_cast<double>(threads),
               lat / k.mem_parallelism);
  const double build = std::max(k.build_ns / static_cast<double>(threads),
                                k.build_min_ns);
  return 2.0 * per_phase + build;
}

double host_serial_ns_per_elem(double n, const HostCostConstants& k,
                               double op_factor) {
  return host_latency_ns(n * 12.0, k) + k.serial_walk_ns * op_factor;
}

}  // namespace lr90
