// Expected sublist-length distribution (paper Section 4.1).
//
// Splitting a list of length n at m random positions yields m+1 sublists
// whose lengths behave, for large n and m, like independent exponential
// variates with mean n/m (Feller): Prob[L > x] ~= e^{-mx/n}. From this the
// paper derives
//   * g(x) = (m+1) e^{-mx/n}: expected number of sublists longer than x
//     (Eq. 2) -- the "active lane count" after x traversal steps;
//   * expected length of the j-th shortest sublist
//     (n/m) ln((m+1)/(m-j+0.5))  (by solving a(x) = (m-j+0.5)/(m+1));
//   * expected shortest (n/m) ln((m+1)/(m+0.5)) and longest
//     (n/m) ln(2m+2) sublist lengths.
//
// These drive the load-balancing schedule (analysis/schedule.hpp) and are
// validated empirically by bench/fig9_sublists and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "lists/linked_list.hpp"

namespace lr90 {

/// Expected number of sublists with length greater than x (Eq. 2).
double g_survivors(double n, double m, double x);

/// Expected length of the j-th shortest of m+1 sublists (j in [0, m]).
double expected_jth_shortest(double n, double m, double j);

/// Expected length of the shortest sublist: (n/m) ln((m+1)/(m+0.5)).
double expected_shortest(double n, double m);

/// Expected length of the longest sublist: (n/m) ln(2m+2).
double expected_longest(double n, double m);

/// Observed sublist lengths when `list` is split *after* each vertex in
/// `tails` (each tail ends its sublist) plus the global tail; the head
/// starts the first sublist. Returned sorted ascending. Host-side helper
/// for Fig. 9 and for tests of the distribution theory.
std::vector<std::size_t> observed_sublist_lengths(
    const LinkedList& list, const std::vector<index_t>& tails);

}  // namespace lr90
