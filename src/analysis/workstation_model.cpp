#include "analysis/workstation_model.hpp"

#include <algorithm>

namespace lr90 {

double WorkstationModel::miss_fraction(double working_set) const {
  if (working_set <= cache_bytes) return 0.0;
  return 1.0 - cache_bytes / working_set;
}

double WorkstationModel::rank_ns_per_vertex(std::size_t n) const {
  const double ws = rank_bytes_per_vertex * static_cast<double>(n);
  const double miss = miss_fraction(ws);
  return rank_cached_ns + (rank_memory_ns - rank_cached_ns) * miss;
}

double WorkstationModel::scan_ns_per_vertex(std::size_t n) const {
  const double ws = scan_bytes_per_vertex * static_cast<double>(n);
  const double miss = miss_fraction(ws);
  return scan_cached_ns + (scan_memory_ns - scan_cached_ns) * miss;
}

double WorkstationModel::rank_ns(std::size_t n) const {
  return rank_ns_per_vertex(n) * static_cast<double>(n);
}

double WorkstationModel::scan_ns(std::size_t n) const {
  return scan_ns_per_vertex(n) * static_cast<double>(n);
}

}  // namespace lr90
