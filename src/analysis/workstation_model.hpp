// Cost model of a fast 1994 workstation (DEC 3000/600 "Alpha"), used for
// the comparison columns of Table I.
//
// The paper reports per-vertex asymptotes of the *serial* algorithm on a
// DEC 3000/600 that depend on whether the list fits in the (2 MB board)
// cache: 98 ns (rank) / 200 ns (scan) when cached, 690 / 990 ns from
// memory. Since that workstation no longer exists, we model it as a
// two-level memory hierarchy: each vertex costs a fixed instruction time
// plus a miss penalty weighted by the miss fraction, where the miss
// fraction rises from 0 (working set fits in cache) toward 1 (random
// accesses to a working set far larger than the cache). The endpoint
// values are calibrated to the published numbers; the transition uses the
// standard 1 - cache/working-set survivor fraction for uniformly random
// accesses.
#pragma once

#include <cstddef>

namespace lr90 {

struct WorkstationModel {
  // Calibrated per-vertex endpoints, nanoseconds (Table I).
  double rank_cached_ns = 98.0;
  double rank_memory_ns = 690.0;
  double scan_cached_ns = 200.0;
  double scan_memory_ns = 990.0;

  /// Effective board cache in bytes (DEC 3000/600: 2 MB).
  double cache_bytes = 2.0 * 1024.0 * 1024.0;

  /// Bytes touched per vertex: link (4) + output (8), plus value (8) for
  /// scans.
  double rank_bytes_per_vertex = 12.0;
  double scan_bytes_per_vertex = 20.0;

  /// Fraction of accesses missing the cache for a uniformly random walk
  /// over `working_set` bytes.
  double miss_fraction(double working_set) const;

  /// Modeled per-vertex time for serial list ranking / scanning a random
  /// list of n vertices.
  double rank_ns_per_vertex(std::size_t n) const;
  double scan_ns_per_vertex(std::size_t n) const;

  /// Total modeled times.
  double rank_ns(std::size_t n) const;
  double scan_ns(std::size_t n) const;
};

}  // namespace lr90
