#include "analysis/tuner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "analysis/schedule.hpp"
#include "vm/config.hpp"

namespace lr90 {

namespace {

/// Total predicted cycles for one (m, s1) candidate: Eq. 3/Eq. 6 for
/// Phases 1+3 and fixed work, plus the best Phase-2 estimate.
double candidate_cycles(double n, double m, double s1,
                        const CostConstants& k, unsigned p,
                        double contention, std::size_t* balances) {
  const std::vector<double> s = balance_schedule_auto(n, m, s1, k);
  if (balances) *balances = s.size();
  const double phase13 = expected_cycles_eq6(n, m, s, k, p, contention);
  return phase13 + phase2_cycles_estimate(m, k, p, contention);
}

}  // namespace

TuneResult tune(double n, const CostConstants& k, unsigned p,
                double contention) {
  assert(n >= 1);
  assert(p >= 1);
  TuneResult best;
  if (n < 8) {
    best.m = 1;
    best.s1 = std::max(1.0, n);
    best.cycles =
        candidate_cycles(n, best.m, best.s1, k, p, contention,
                         &best.balances);
    return best;
  }

  const double ln_n = std::log(n);
  // The Eq. 5 optimum scales like sqrt(n ln n) (balance the b*(n/m)ln m
  // term against the (a S1 + c + e) m term); bracket it generously.
  const double m_lo = std::max(1.0, std::sqrt(n) / 8.0);
  const double m_hi = std::max(m_lo + 1.0,
                               std::min(n / 2.0, 64.0 * std::sqrt(n * ln_n)));

  best.cycles = std::numeric_limits<double>::infinity();
  auto consider = [&](double m, double s1) {
    m = std::clamp(m, 1.0, std::max(1.0, n - 1.0));
    s1 = std::max(1.0, s1);
    std::size_t l = 0;
    const double cycles =
        candidate_cycles(n, m, s1, k, p, contention, &l);
    if (cycles < best.cycles) {
      best = {m, s1, cycles, l};
    }
  };

  // Coarse pass: log-spaced m, s1 as fractions of the mean length n/m.
  constexpr int kMSteps = 24;
  constexpr double kS1Fracs[] = {0.05, 0.1, 0.2, 0.35, 0.5,
                                 0.75, 1.0, 1.5, 2.0};
  for (int i = 0; i < kMSteps; ++i) {
    const double t = static_cast<double>(i) / (kMSteps - 1);
    const double m = std::floor(m_lo * std::pow(m_hi / m_lo, t));
    for (const double frac : kS1Fracs) consider(m, std::floor(frac * n / m));
  }

  // Fine pass around the coarse minimizer.
  const TuneResult coarse = best;
  constexpr double kRefine[] = {0.6, 0.7, 0.8, 0.9, 1.0, 1.12, 1.25, 1.4, 1.6};
  for (const double fm : kRefine) {
    for (const double fs : kRefine) {
      consider(std::floor(coarse.m * fm), std::floor(coarse.s1 * fs));
    }
  }
  return best;
}

TunedModel::TunedModel(const std::vector<double>& sizes,
                       const CostConstants& k) {
  assert(sizes.size() >= 4);
  std::vector<double> logn, ms, s1s;
  logn.reserve(sizes.size());
  for (const double n : sizes) {
    const TuneResult r = tune(n, k);
    logn.push_back(std::log2(n));
    ms.push_back(r.m);
    s1s.push_back(r.s1);
  }
  m_poly_ = polyfit(logn, ms, 3);
  s1_poly_ = polyfit(logn, s1s, 3);
}

TuneResult TunedModel::params(double n) const {
  const double x = std::log2(std::max(2.0, n));
  TuneResult r;
  r.m = std::clamp(std::round(m_poly_(x)), 1.0, std::max(1.0, n - 1.0));
  r.s1 = std::max(1.0, std::round(s1_poly_(x)));
  return r;
}

TuneResult tuned_params(double n, bool rank, unsigned p) {
  static std::mutex mu;
  static std::map<std::tuple<double, bool, unsigned>, TuneResult> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_tuple(n, rank, p);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const CostConstants k = CostConstants::from(vm::CostTable::cray_c90(), rank);
  vm::MachineConfig cfg;
  cfg.processors = p;
  const TuneResult r = tune(n, k, p, cfg.contention_factor());
  cache.emplace(key, r);
  return r;
}

HostTuneResult host_tune_at(double n, unsigned threads, unsigned interleave,
                            double op_factor, const HostCostConstants& k,
                            bool simd) {
  threads = std::max(1u, threads);
  HostTuneResult r;
  r.threads = threads;
  r.interleave = interleave;
  r.simd = simd;
  r.serial_ns = n * host_serial_ns_per_elem(n, k, op_factor);
  const double per_elem =
      simd ? host_gather_ns_per_elem_mt(n, threads, interleave, k, op_factor)
           : host_packed_ns_per_elem_mt(n, threads, interleave, k, op_factor);
  r.packed_ns = n * per_elem + k.fixed_run_ns +
                k.fork_join_ns * static_cast<double>(threads - 1);
  return r;
}

HostTuneResult host_tune(double n, double op_factor, unsigned max_threads,
                         unsigned pinned_threads, unsigned pinned_interleave,
                         const HostCostConstants& k, TuneTier tier) {
  max_threads = std::max(1u, max_threads);
  // Thread candidates: the powers of two up to max_threads plus
  // max_threads itself (so e.g. 6 hardware threads consider {1,2,4,6}).
  std::vector<unsigned> ts;
  if (pinned_threads > 0) {
    ts.push_back(pinned_threads);
  } else {
    for (unsigned t = 1; t <= max_threads; t *= 2) ts.push_back(t);
    if (ts.back() != max_threads) ts.push_back(max_threads);
  }
  // Per-family W candidates. The gather family advances cursors four to
  // a vector lane group, so its widths are multiples of 4 and it can
  // afford the full 64-cursor cap (bookkeeping is per group, not per
  // cursor).
  std::vector<unsigned> scalar_ws, simd_ws;
  if (pinned_interleave > 0) {
    scalar_ws.push_back(pinned_interleave);
    simd_ws.push_back(std::max(4u, (pinned_interleave + 3u) / 4u * 4u));
  } else {
    scalar_ws.assign({1u, 2u, 4u, 8u, 16u, 32u});
    simd_ws.assign({4u, 8u, 16u, 32u, 64u});
  }
  const bool want_scalar = tier != TuneTier::kSimdOnly;
  const bool want_simd = tier != TuneTier::kCursorsOnly;
  HostTuneResult best =
      want_scalar
          ? host_tune_at(n, ts.front(), scalar_ws.front(), op_factor, k,
                         /*simd=*/false)
          : host_tune_at(n, ts.front(), simd_ws.front(), op_factor, k,
                         /*simd=*/true);
  auto sweep = [&](const std::vector<unsigned>& ws, bool simd) {
    for (const unsigned t : ts) {
      for (const unsigned w : ws) {
        const HostTuneResult cand = host_tune_at(n, t, w, op_factor, k, simd);
        // Strict improvement keeps the smallest (threads, W) among model
        // ties: fewer workers and cursors at equal predicted time, and
        // the scalar family (evaluated first) on an exact tie.
        if (cand.packed_ns < best.packed_ns) best = cand;
      }
    }
  };
  if (want_scalar) sweep(scalar_ws, /*simd=*/false);
  if (want_simd) sweep(simd_ws, /*simd=*/true);
  return best;
}

}  // namespace lr90
