// Parameter tuning for the Reid-Miller algorithm (paper Section 4.4).
//
// Given only the list length n, the implementation must choose the number
// of random split positions m and the first balance interval S_1. The paper
// estimates the running time via Eq. 3 for many (m, S_1) candidates, keeps
// the minimizer, and -- since doing that at every call would be silly --
// fits cubic polynomials in log n to the minimizers and evaluates the fits
// at run time ("It appears that m and S_1 are approximately cubic
// polynomials of log n").
//
// We reproduce both halves: `tune()` does the direct minimization (two-pass
// coarse/fine grid) and `TunedModel` holds the cubic-in-log-n fits built
// from a set of tuned sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/cost_eqs.hpp"
#include "support/polyfit.hpp"

namespace lr90 {

struct TuneResult {
  double m = 1.0;         ///< number of random split positions
  double s1 = 1.0;        ///< first balance interval (links)
  double cycles = 0.0;    ///< Eq. 3 + Phase-2 estimate at the minimizer
  std::size_t balances = 0;  ///< schedule length l at the minimizer
};

/// Directly minimizes the cost model over m and S_1 for a list of length n
/// on p processors (Eq. 3 for p = 1, its Eq. 6 generalization otherwise,
/// plus the best Phase-2 estimate). Deterministic; O(few hundred) schedule
/// evaluations. The paper tunes separately for every processor count
/// (Section 5: "we tuned the parameters for 1, 2, 4, and 8 processors").
/// `contention` is the machine's memory-bandwidth multiplier at p.
TuneResult tune(double n, const CostConstants& k, unsigned p = 1,
                double contention = 1.0);

/// Cubic-in-log-n fits of the tuned m(n) and S_1(n), the paper's run-time
/// parameter functions.
class TunedModel {
 public:
  /// Builds the fits by tuning at each of `sizes` (needs >= 4 sizes).
  TunedModel(const std::vector<double>& sizes, const CostConstants& k);

  /// Fitted parameters for a given n, clamped to sane ranges
  /// (1 <= m <= n-1 when n >= 2, s1 >= 1).
  TuneResult params(double n) const;

  const Polynomial& m_poly() const { return m_poly_; }
  const Polynomial& s1_poly() const { return s1_poly_; }

 private:
  Polynomial m_poly_;
  Polynomial s1_poly_;
};

/// Library-wide cached tuned parameters for the default Cray C90 cost
/// table: direct tune() results memoized by (n, rank, p), suitable for the
/// hot path of the public API.
TuneResult tuned_params(double n, bool rank, unsigned p = 1);

// -- host hot-path tuning ---------------------------------------------------

/// Which hot-path kernel families the host tuner's grid search may pick
/// from. The Planner maps the engine's KernelTier request (plus the
/// CPUID dispatcher's answer) onto this: kAuto on gather-capable
/// hardware searches both families, forced tiers restrict the axis.
/// Kept tuner-local so analysis/ stays independent of core/engine.hpp.
enum class TuneTier {
  kCursorsOnly,  ///< scalar multi-cursor candidates only
  kBoth,         ///< cursors and SIMD gather candidates (CPU can gather)
  kSimdOnly,     ///< SIMD gather candidates only (tier pinned)
};

/// The host tuner's answer for the packed hot path: kernel family,
/// worker thread count, and interleave width (the multiprocessor and
/// vector-length analogs, paper Sections 5 and 3) plus the model totals
/// backing the choice, so the Planner can compare the hot path against
/// the single-cursor serial walk.
struct HostTuneResult {
  unsigned threads = 1;     ///< worker threads the model picked
  unsigned interleave = 1;  ///< cursors in flight per worker
  bool simd = false;        ///< the SIMD gather family won the grid
  double packed_ns = 0.0;   ///< model total ns of the hot path (T, W)
  double serial_ns = 0.0;   ///< model total ns of the serial walk
};

/// The host cost model evaluated at one pinned (threads, W) point of one
/// kernel family (`simd` selects the gather constants): the hot-path-vs-
/// serial comparison a Planner makes when the caller fixed the whole
/// execution shape.
HostTuneResult host_tune_at(double n, unsigned threads, unsigned interleave,
                            double op_factor = 1.0,
                            const HostCostConstants& k = {},
                            bool simd = false);

/// Searches the joint (tier x threads x W) grid for a list of length n
/// by evaluating the host cost model (analysis/cost_eqs.hpp
/// host_packed_ns_per_elem_mt / host_gather_ns_per_elem_mt) at the
/// power-of-two thread candidates up to `max_threads` crossed with W in
/// {1..32} (scalar cursors) and W in {4..64} (SIMD gather, when `tier`
/// admits it) -- the host counterpart of the paper's Section 4.4
/// (m, S_1) grid, extended to Section 5's processor dimension and the
/// Section 3 vector-length choice. `pinned_threads` /
/// `pinned_interleave` (> 0) restrict their axis to that single value,
/// which is how the Planner re-tunes one knob after a caller fixed the
/// other. Deterministic, O(candidates); the Planner memoizes the
/// fully-auto case per (n, op_factor, max_threads, tier).
HostTuneResult host_tune(double n, double op_factor = 1.0,
                         unsigned max_threads = 1,
                         unsigned pinned_threads = 0,
                         unsigned pinned_interleave = 0,
                         const HostCostConstants& k = {},
                         TuneTier tier = TuneTier::kCursorsOnly);

}  // namespace lr90
