#include "analysis/sublist_stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lists/validate.hpp"

namespace lr90 {

double g_survivors(double n, double m, double x) {
  assert(n > 0 && m > 0);
  return (m + 1.0) * std::exp(-m * x / n);
}

double expected_jth_shortest(double n, double m, double j) {
  assert(j >= 0 && j <= m);
  return n / m * std::log((m + 1.0) / (m - j + 0.5));
}

double expected_shortest(double n, double m) {
  return expected_jth_shortest(n, m, 0.0);
}

double expected_longest(double n, double m) {
  return n / m * std::log(2.0 * m + 2.0);
}

std::vector<std::size_t> observed_sublist_lengths(
    const LinkedList& list, const std::vector<index_t>& tails) {
  // Rank every vertex, mark the list positions that end a sublist, and
  // difference consecutive boundary positions.
  const std::vector<value_t> rank = reference_rank(list);
  const auto n = static_cast<std::size_t>(list.size());
  std::vector<std::size_t> boundary_pos;
  boundary_pos.reserve(tails.size() + 1);
  for (const index_t t : tails) {
    assert(t < n);
    boundary_pos.push_back(static_cast<std::size_t>(rank[t]));
  }
  boundary_pos.push_back(n - 1);  // global tail always ends the last sublist
  std::sort(boundary_pos.begin(), boundary_pos.end());
  boundary_pos.erase(
      std::unique(boundary_pos.begin(), boundary_pos.end()),
      boundary_pos.end());

  std::vector<std::size_t> lengths;
  lengths.reserve(boundary_pos.size());
  std::size_t prev_end = 0;  // list position one past the previous sublist
  for (const std::size_t b : boundary_pos) {
    lengths.push_back(b + 1 - prev_end);
    prev_end = b + 1;
  }
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

}  // namespace lr90
