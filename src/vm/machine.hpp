// The simulated Cray C90 vector multiprocessor.
//
// A Machine owns one simulated cycle counter per physical processor plus
// operation counters. Vector primitives *execute for real* on host memory
// (so algorithm correctness is always exercised) and charge simulated cycles
// according to the CostTable. Multiprocessor algorithms charge work to
// explicit processor ids and call synchronize() at barriers; elapsed time is
// the maximum over processors, which models a lockstep SIMD/MIMD machine
// with per-barrier synchronization (Section 5 of the paper).
//
// Memory-bound primitives pay a bandwidth-contention multiplier
// (1 + gamma*log2 p), reproducing the sub-linear multiprocessor speedups the
// paper reports (Fig. 3, Fig. 11).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "vm/config.hpp"
#include "vm/cost_table.hpp"

namespace lr90::vm {

/// Aggregate operation counters, for the Table II "work" columns and for
/// tests that assert how much data movement an algorithm performed.
struct OpCounters {
  std::uint64_t gathered = 0;      ///< elements moved by gather
  std::uint64_t scattered = 0;     ///< elements moved by scatter
  std::uint64_t element_ops = 0;   ///< total per-element operations charged
  std::uint64_t vector_calls = 0;  ///< number of vector instructions issued
  std::uint64_t scalar_steps = 0;  ///< scalar (non-vector) loop iterations
  std::uint64_t syncs = 0;         ///< synchronization barriers
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = MachineConfig{},
                   CostTable costs = CostTable::cray_c90());

  const MachineConfig& config() const { return cfg_; }
  const CostTable& costs() const { return costs_; }
  unsigned processors() const { return cfg_.processors; }

  // -- accounting -------------------------------------------------------

  /// Charges a vector operation over n elements to processor `proc`.
  void charge(unsigned proc, const VectorCosts& c, std::size_t n);
  /// Charges raw cycles (scalar work) to processor `proc`.
  void charge_scalar(unsigned proc, double cycles, std::uint64_t steps = 0);
  /// Charges a fused kernel over `lanes` virtual processors.
  void charge_kernel(unsigned proc, Kernel k, std::size_t lanes);

  /// Barrier: advances every processor to the current maximum and adds the
  /// synchronization cost.
  void synchronize();

  double cycles(unsigned proc) const { return proc_cycles_.at(proc); }
  /// Simulated elapsed cycles = max over processors.
  double max_cycles() const;
  /// Simulated elapsed wall time in nanoseconds.
  double elapsed_ns() const { return max_cycles() * cfg_.clock_ns; }
  /// Sum of cycles over all processors (total charged machine work).
  double total_cycles() const;

  const OpCounters& ops() const { return ops_; }

  /// Cycles accumulated by a fused kernel across all processors -- the
  /// per-phase cost breakdown (how much of a run went to traversal vs
  /// packing vs fixed work). Not contention-adjusted per processor count;
  /// it reports exactly what was charged.
  double kernel_cycles(Kernel k) const {
    return kernel_cycles_[static_cast<std::size_t>(k)];
  }

  /// Resets cycle and operation counters (configuration is kept).
  void reset();

  // -- vector primitives --------------------------------------------------
  // All primitives execute the real data movement and charge `proc`.

  /// dst[i] = table[idx[i]]
  template <class T, class I>
  void gather(unsigned proc, std::span<T> dst, std::span<const T> table,
              std::span<const I> idx) {
    assert(dst.size() == idx.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
      assert(static_cast<std::size_t>(idx[i]) < table.size());
      dst[i] = table[idx[i]];
    }
    ops_.gathered += dst.size();
    charge(proc, costs_.gather, dst.size());
  }

  /// table[idx[i]] = src[i]
  template <class T, class I>
  void scatter(unsigned proc, std::span<T> table, std::span<const I> idx,
               std::span<const T> src) {
    assert(src.size() == idx.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      assert(static_cast<std::size_t>(idx[i]) < table.size());
      table[idx[i]] = src[i];
    }
    ops_.scattered += src.size();
    charge(proc, costs_.scatter, src.size());
  }

  /// dst[i] = f(dst[i]) for unary f, or with a second input span.
  template <class T, class F>
  void map1(unsigned proc, std::span<T> dst, F&& f) {
    for (auto& x : dst) x = f(x);
    charge(proc, costs_.map1, dst.size());
  }

  /// dst[i] = f(a[i], b[i])
  template <class T, class U, class V, class F>
  void map2(unsigned proc, std::span<T> dst, std::span<const U> a,
            std::span<const V> b, F&& f) {
    assert(dst.size() == a.size() && dst.size() == b.size());
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = f(a[i], b[i]);
    charge(proc, costs_.map2, dst.size());
  }

  template <class T>
  void copy(unsigned proc, std::span<T> dst, std::span<const T> src) {
    assert(dst.size() == src.size());
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    charge(proc, costs_.copy, dst.size());
  }

  template <class T>
  void fill(unsigned proc, std::span<T> dst, T value) {
    for (auto& x : dst) x = value;
    charge(proc, costs_.fill, dst.size());
  }

  /// dst[i] = base + i
  template <class T>
  void iota(unsigned proc, std::span<T> dst, T base) {
    for (std::size_t i = 0; i < dst.size(); ++i)
      dst[i] = base + static_cast<T>(i);
    charge(proc, costs_.iota, dst.size());
  }

  /// In-place stable compress of `data` keeping elements where keep[i] != 0.
  /// Returns the number of kept elements. Charged once per array.
  template <class T>
  std::size_t pack(unsigned proc, std::span<T> data,
                   std::span<const std::uint8_t> keep) {
    assert(data.size() == keep.size());
    std::size_t out = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (keep[i]) data[out++] = data[i];
    }
    charge(proc, costs_.pack, data.size());
    return out;
  }

  /// Horizontal reduction with a binary functor and identity.
  template <class T, class F>
  T reduce(unsigned proc, std::span<const T> data, T identity, F&& f) {
    T acc = identity;
    for (const auto& x : data) acc = f(acc, x);
    charge(proc, costs_.reduce, data.size());
    return acc;
  }

 private:
  MachineConfig cfg_;
  CostTable costs_;
  std::vector<double> proc_cycles_;
  OpCounters ops_;
  double contention_;
  double kernel_cycles_[static_cast<std::size_t>(Kernel::kCount_)] = {};
};

}  // namespace lr90::vm
