#include "vm/cost_table.hpp"

namespace lr90::vm {

CostTable CostTable::cray_c90() { return CostTable{}; }

CostTable CostTable::zero() {
  CostTable t;
  t.gather = t.scatter = t.map1 = t.map2 = t.copy = t.fill = t.iota = t.pack =
      t.reduce = t.coin = VectorCosts{0.0, 0.0, false};
  t.serial_rank_per_vertex = 0.0;
  t.serial_scan_per_vertex = 0.0;
  t.serial_startup = 0.0;
  for (auto& k : t.kernels) k = VectorCosts{0.0, 0.0, false};
  return t;
}

}  // namespace lr90::vm
