#include "vm/machine.hpp"

#include <algorithm>

namespace lr90::vm {

double MachineConfig::contention_factor() const {
  if (processors <= 1) return 1.0;
  return 1.0 + contention_gamma * std::log2(static_cast<double>(processors));
}

Machine::Machine(MachineConfig cfg, CostTable costs)
    : cfg_(cfg), costs_(costs), proc_cycles_(cfg.processors, 0.0),
      contention_(cfg.contention_factor()) {
  assert(cfg.processors >= 1);
}

void Machine::charge(unsigned proc, const VectorCosts& c, std::size_t n) {
  assert(proc < proc_cycles_.size());
  const double factor = c.memory_bound ? contention_ : 1.0;
  proc_cycles_[proc] +=
      c.per_elem * factor * static_cast<double>(n) + c.startup;
  ops_.element_ops += n;
  ops_.vector_calls += 1;
}

void Machine::charge_scalar(unsigned proc, double cycles,
                            std::uint64_t steps) {
  assert(proc < proc_cycles_.size());
  proc_cycles_[proc] += cycles;
  ops_.scalar_steps += steps;
}

void Machine::charge_kernel(unsigned proc, Kernel k, std::size_t lanes) {
  const double before = proc_cycles_[proc];
  charge(proc, costs_.kernel(k), lanes);
  kernel_cycles_[static_cast<std::size_t>(k)] += proc_cycles_[proc] - before;
}

void Machine::synchronize() {
  // A single processor has nobody to wait for: barriers are free (the
  // vector pipeline drains as part of each instruction's cost).
  if (proc_cycles_.size() == 1) return;
  const double m = max_cycles();
  for (auto& c : proc_cycles_) c = m + cfg_.sync_cycles;
  ops_.syncs += 1;
}

double Machine::max_cycles() const {
  return *std::max_element(proc_cycles_.begin(), proc_cycles_.end());
}

double Machine::total_cycles() const {
  double s = 0.0;
  for (double c : proc_cycles_) s += c;
  return s;
}

void Machine::reset() {
  std::fill(proc_cycles_.begin(), proc_cycles_.end(), 0.0);
  ops_ = OpCounters{};
  for (auto& k : kernel_cycles_) k = 0.0;
}

}  // namespace lr90::vm
