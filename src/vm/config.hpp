// Machine configuration for the simulated Cray C90 vector multiprocessor.
//
// The paper's evaluation is expressed in Cray C90 clock cycles (4.2 ns) and
// derived ns-per-vertex figures. We reproduce the machine as a *functional
// cost simulator*: vector primitives execute for real on host memory while
// charging simulated cycles. The constants below are taken from the paper
// (Section 1.1, Fig. 2, Section 3) or calibrated against its published
// measurements (see DESIGN.md, "Hardware substitution").
#pragma once

#include <cstdint>

namespace lr90::vm {

struct MachineConfig {
  /// Clock period in nanoseconds (Cray C90: 4.2 ns).
  double clock_ns = 4.2;

  /// Vector register length in elements (Cray C90: 128). The simulator's
  /// cost model folds strip-mining into per-call startup costs, but the
  /// register length is exposed for algorithms (e.g. Anderson-Miller treats
  /// the machine as 128 element processors).
  unsigned vector_length = 128;

  /// Number of physical vector processors used (Cray C90 had up to 16; the
  /// paper tunes and reports 1, 2, 4, and 8).
  unsigned processors = 1;

  /// Memory-bandwidth contention factor: per-element costs of memory-bound
  /// primitives are multiplied by (1 + gamma * log2(processors)). The value
  /// 0.063 is calibrated from Table I: it reproduces the published
  /// 2/4/8-processor list-scan asymptotes (3.9, 2.0, 1.1 cycles/vertex from
  /// the 1-processor 7.4) and the list-rank ones (2.6, 1.4, 0.75 from 5.1).
  double contention_gamma = 0.063;

  /// Cycles charged to every processor at a synchronization barrier.
  double sync_cycles = 500.0;

  /// Returns the multiplier applied to memory-bound per-element costs.
  double contention_factor() const;
};

}  // namespace lr90::vm
