// Virtual-processor assignment: strip-mining and loop-raking (Section 1.1).
//
// A vector register of length L acts as L "element processors"; n virtual
// processors must be mapped onto them. The paper (following Zagha and
// Blelloch) names the two standard mappings:
//
//   strip-mining: element processor i handles virtual processors
//                 j*L + i  (interleaved; consecutive vps land in
//                 consecutive lanes -- the natural vector layout);
//   loop-raking:  element processor i handles virtual processors
//                 i*ceil(n/L) + j  (blocked; each lane owns a contiguous
//                 run -- what a serial recurrence per lane needs).
//
// Both appear throughout the library implicitly (the simulator's fused
// kernels assume strip-mined lanes; Anderson-Miller's queues are a rake).
// This module makes the mappings explicit and testable, and provides the
// strip/iteration counts used to reason about vector-length efficiency.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace lr90::vm {

/// One lane's share of work under either mapping.
struct LaneSlice {
  std::size_t count = 0;  ///< virtual processors handled by this lane
};

/// Interleaved mapping: vp k -> lane (k mod L), slot (k div L).
class StripMining {
 public:
  StripMining(std::size_t n, std::size_t lanes) : n_(n), lanes_(lanes) {
    assert(lanes >= 1);
  }

  std::size_t lanes() const { return lanes_; }
  /// Number of vector "strips" (iterations of the stripped loop).
  std::size_t strips() const { return (n_ + lanes_ - 1) / lanes_; }

  std::size_t lane_of(std::size_t vp) const { return vp % lanes_; }
  std::size_t slot_of(std::size_t vp) const { return vp / lanes_; }
  /// Inverse: the vp handled by `lane` at strip `slot` (caller must check
  /// in_range).
  std::size_t vp_at(std::size_t lane, std::size_t slot) const {
    return slot * lanes_ + lane;
  }
  bool in_range(std::size_t lane, std::size_t slot) const {
    return vp_at(lane, slot) < n_;
  }

  LaneSlice slice(std::size_t lane) const {
    const std::size_t full = n_ / lanes_;
    return {full + (lane < n_ % lanes_ ? 1u : 0u)};
  }

  /// Vector length of strip `slot` (the last strip may be short -- the
  /// "short vector" inefficiency the paper's Section 7 discusses).
  std::size_t strip_length(std::size_t slot) const {
    const std::size_t start = slot * lanes_;
    if (start >= n_) return 0;
    return std::min(lanes_, n_ - start);
  }

 private:
  std::size_t n_;
  std::size_t lanes_;
};

/// Blocked mapping: lane i owns the contiguous vp range
/// [i*ceil(n/L), min(n, (i+1)*ceil(n/L))).
class LoopRaking {
 public:
  LoopRaking(std::size_t n, std::size_t lanes) : n_(n), lanes_(lanes) {
    assert(lanes >= 1);
    block_ = (n_ + lanes_ - 1) / lanes_;
    if (block_ == 0) block_ = 1;
  }

  std::size_t lanes() const { return lanes_; }
  std::size_t block() const { return block_; }

  std::size_t lane_of(std::size_t vp) const { return vp / block_; }
  std::size_t slot_of(std::size_t vp) const { return vp % block_; }
  std::size_t begin_of(std::size_t lane) const {
    return std::min(n_, lane * block_);
  }
  std::size_t end_of(std::size_t lane) const {
    return std::min(n_, (lane + 1) * block_);
  }
  LaneSlice slice(std::size_t lane) const {
    return {end_of(lane) - begin_of(lane)};
  }

 private:
  std::size_t n_;
  std::size_t lanes_;
  std::size_t block_;
};

}  // namespace lr90::vm
