// Scans and segmented scans over dense vectors, with cycle accounting.
//
// The paper's implementation lineage (Blelloch's scan-vector model, Zagha's
// pipelined-memory programming techniques, the loop-raking linear-recurrence
// paper it cites) treats scans and *segmented* scans -- prefix operations
// that restart at segment boundaries -- as the workhorse primitives of
// vector multiprocessors. The library uses them in tests and examples as
// the "array-side" counterpart of list scan: list scan == segmented scan
// after ranking has turned lists into segments.
//
// All functions execute on host memory and charge the machine like the
// other primitives (one load pass + one store pass + element ops; the
// serial dependence is hidden by loop raking, which is how the Cray ran
// recurrences at vector speed).
#pragma once

#include <cstdint>
#include <span>

#include "lists/ops.hpp"
#include "vm/machine.hpp"

namespace lr90::vm {

/// Exclusive prefix scan: out[i] = op(v[0..i)), out[0] = identity.
/// In-place allowed (out may alias values).
template <class Op = OpPlus>
void exclusive_scan(Machine& m, unsigned proc,
                    std::span<const value_t> values, std::span<value_t> out,
                    Op op = {}) {
  assert(values.size() == out.size());
  value_t acc = Op::identity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const value_t v = values[i];
    out[i] = acc;
    acc = op(acc, v);
  }
  // Loop-raked recurrence: two passes (per-lane serial scan + lane-offset
  // fixup), charged as three vector operations.
  m.charge(proc, m.costs().copy, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().map2, values.size());
}

/// Inclusive prefix scan: out[i] = op(v[0..i]).
template <class Op = OpPlus>
void inclusive_scan(Machine& m, unsigned proc,
                    std::span<const value_t> values, std::span<value_t> out,
                    Op op = {}) {
  assert(values.size() == out.size());
  value_t acc = Op::identity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc = op(acc, values[i]);
    out[i] = acc;
  }
  m.charge(proc, m.costs().copy, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().map2, values.size());
}

/// Segmented exclusive scan: flags[i] != 0 starts a new segment at i; the
/// scan restarts at identity there. flags[0] is implicitly a segment start.
template <class Op = OpPlus>
void segmented_exclusive_scan(Machine& m, unsigned proc,
                              std::span<const value_t> values,
                              std::span<const std::uint8_t> flags,
                              std::span<value_t> out, Op op = {}) {
  assert(values.size() == out.size());
  assert(values.size() == flags.size());
  value_t acc = Op::identity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (flags[i]) acc = Op::identity();
    const value_t v = values[i];
    out[i] = acc;
    acc = op(acc, v);
  }
  // One extra flag pass over the unsegmented cost.
  m.charge(proc, m.costs().copy, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().map1, values.size());
}

/// Per-segment totals: seg_total[i] = op over the whole segment containing
/// i... written at every element (the "copy-scan" form downstream code can
/// gather from). Also returns the number of segments.
template <class Op = OpPlus>
std::size_t segmented_totals(vm::Machine& m, unsigned proc,
                             std::span<const value_t> values,
                             std::span<const std::uint8_t> flags,
                             std::span<value_t> out, Op op = {}) {
  assert(values.size() == out.size());
  assert(values.size() == flags.size());
  std::size_t segments = values.empty() ? 0 : 1;
  std::size_t start = 0;
  value_t acc = Op::identity();
  for (std::size_t i = 0; i <= values.size(); ++i) {
    const bool boundary = i == values.size() || (i > 0 && flags[i]);
    if (boundary) {
      for (std::size_t j = start; j < i; ++j) out[j] = acc;
      if (i == values.size()) break;
      ++segments;
      start = i;
      acc = Op::identity();
    }
    acc = op(acc, values[i]);
  }
  m.charge(proc, m.costs().copy, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().map2, values.size());
  m.charge(proc, m.costs().copy, values.size());
  return segments;
}

}  // namespace lr90::vm
