// Cycle costs of simulated vector operations.
//
// Two kinds of entries:
//
//  * generic primitives (gather, scatter, map, pack, ...) used by the
//    baseline algorithms (Wyllie, Miller-Reif, Anderson-Miller);
//  * fused kernels matching the timing equations the paper measured for its
//    own algorithm (Section 3): T_InitialScan(x) = 3.4x + 35, etc.
//
// All costs follow the standard vector performance model (Hockney):
//     T(n) = per_elem * n + startup        [cycles]
// where startup subsumes pipeline fill and strip-mining overhead.
//
// The generic primitive costs are chosen to be *consistent* with the fused
// kernels: e.g. the Phase-1 scan step is two gathers plus two adds
// (2*1.2 + 2*0.5 = 3.4 cycles/element), matching T_InitialScan exactly.
#pragma once

#include <cstddef>

namespace lr90::vm {

/// Linear cost of one vector operation: per_elem * n + startup cycles.
struct VectorCosts {
  double per_elem = 0.0;
  double startup = 0.0;
  /// Memory-bound operations are subject to multiprocessor bandwidth
  /// contention (see MachineConfig::contention_gamma).
  bool memory_bound = false;

  double cycles(std::size_t n) const {
    return per_elem * static_cast<double>(n) + startup;
  }
};

/// Named fused kernels with costs measured by the paper (cycles, Section 3).
enum class Kernel {
  kInitialize,       // 22x + 1800    set up m+1 sublists
  kInitialScanStep,  // 3.4x + 35     Phase 1: one link step over x sublists
  kInitialScanRankStep,  // 2.1x + 30  Phase 1 rank: single-gather encoding
  kInitialPack,      // 8.2x + 1200   Phase 1 load balance over x sublists
  kFindSublistList,  // 11x + 650     build the reduced list
  kFinalScanStep,    // 4.6x + 28     Phase 3: one link step over x sublists
  kFinalScanRankStep,  // 3.0x + 25   Phase 3 rank: single-gather encoding
  kFinalPack,        // 7.2x + 950    Phase 3 load balance
  kRestoreList,      // 4.2x + 300    restore original links/values
  kCount_            // sentinel
};

struct CostTable {
  // -- generic vector primitives --------------------------------------
  VectorCosts gather{1.2, 15.0, true};    // dst[i] = table[idx[i]]
  VectorCosts scatter{1.2, 15.0, true};   // table[idx[i]] = src[i]
  VectorCosts map1{0.5, 8.0, false};      // elementwise unary
  VectorCosts map2{0.5, 8.0, false};      // elementwise binary
  VectorCosts copy{0.4, 8.0, true};       // vector copy
  VectorCosts fill{0.3, 5.0, false};      // broadcast constant
  VectorCosts iota{0.3, 5.0, false};      // dst[i] = base + i
  VectorCosts pack{2.05, 300.0, true};    // compress one array under a mask
  VectorCosts reduce{0.6, 10.0, false};   // horizontal reduction
  // Vectorized PRNG draw. Random-number generation is a significant cost
  // of the random-mate algorithms on the Cray (Section 2.3 lists it first
  // among their overheads); the C90's vectorized RANF-style generator ran
  // at roughly 5 cycles per element.
  VectorCosts coin{5.0, 50.0, false};

  // -- scalar (non-vectorizable) costs, cycles per element -------------
  // The Cray C90's scalar unit walks a linked list at ~42 cycles per vertex
  // for ranking and ~43.6 for scanning (Table I: 177 ns and 183 ns at
  // 4.2 ns/cycle; Eq. 5 uses 44 cycles/vertex as a bound).
  double serial_rank_per_vertex = 42.1;
  double serial_scan_per_vertex = 43.6;
  /// Fixed overhead of entering a scalar loop.
  double serial_startup = 100.0;

  // -- fused kernels (paper Section 3) ---------------------------------
  VectorCosts kernels[static_cast<std::size_t>(Kernel::kCount_)] = {
      {22.0, 1800.0, true},   // kInitialize
      {3.4, 35.0, true},      // kInitialScanStep
      {2.1, 30.0, true},      // kInitialScanRankStep
      {8.2, 1200.0, true},    // kInitialPack
      {11.0, 650.0, true},    // kFindSublistList
      {4.6, 28.0, true},      // kFinalScanStep
      {3.0, 25.0, true},      // kFinalScanRankStep
      {7.2, 950.0, true},     // kFinalPack
      {4.2, 300.0, true},     // kRestoreList
  };

  const VectorCosts& kernel(Kernel k) const {
    return kernels[static_cast<std::size_t>(k)];
  }

  /// The calibrated Cray C90 cost table (the default-constructed values).
  static CostTable cray_c90();
  /// All-zero costs: turns the Machine into a pure host execution engine
  /// (used by the portable host path and by correctness tests that do not
  /// care about cycle accounting).
  static CostTable zero();
};

}  // namespace lr90::vm
