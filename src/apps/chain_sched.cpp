#include "apps/chain_sched.hpp"

#include <limits>
#include <optional>
#include <sstream>

#include "lists/ops.hpp"

namespace lr90 {

namespace {

/// Validates sizes and the 32-bit scheduling horizon; nullopt when fine.
std::optional<std::string> check_inputs(
    const LinkedList& chain, std::span<const std::int32_t> duration,
    std::span<const std::int32_t> release) {
  const std::size_t n = chain.size();
  if (duration.size() != n || release.size() != n) {
    std::ostringstream os;
    os << "duration/release sized " << duration.size() << "/"
       << release.size() << " for a chain of " << n << " tasks";
    return os.str();
  }
  std::int64_t total = 0;
  std::int64_t max_release = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (duration[v] < 0) return "negative task duration";
    if (release[v] < 0) return "negative release time";
    total += duration[v];
    max_release = std::max<std::int64_t>(max_release, release[v]);
  }
  // Every intermediate floor is at most max release + total duration; keep
  // it inside the 32-bit lane so the max-plus combine stays exact.
  if (max_release + total > std::numeric_limits<std::int32_t>::max()) {
    return "scheduling horizon (max release + total duration) overflows "
           "the 32-bit max-plus lane";
  }
  return std::nullopt;
}

}  // namespace

LinkedList make_chain_list(const LinkedList& chain,
                           std::span<const std::int32_t> duration,
                           std::span<const std::int32_t> release) {
  LinkedList list;
  list.next = chain.next;
  list.head = chain.head;
  list.value.resize(chain.size());
  for (std::size_t v = 0; v < chain.size(); ++v) {
    list.value[v] = maxplus_pack(duration[v], release[v] + duration[v]);
  }
  return list;
}

ChainSchedule schedule_chain(const LinkedList& chain,
                             std::span<const std::int32_t> duration,
                             std::span<const std::int32_t> release,
                             Engine& engine, Method method) {
  ChainSchedule sched;
  if (auto err = check_inputs(chain, duration, release)) {
    sched.status = Status::invalid(*err);
    return sched;
  }
  if (chain.empty()) return sched;

  const LinkedList list = make_chain_list(chain, duration, release);
  const RunResult r = engine.scan(list, ScanOp::kMaxPlus, method);
  sched.status = r.status;
  sched.method_used = r.method_used;
  if (!r.ok()) return sched;

  // r.scan[v] is the composed max-plus map of every predecessor of v;
  // applied to time 0 it is the finish time of the prefix chain.
  sched.start.resize(chain.size());
  sched.finish.resize(chain.size());
  for (std::size_t v = 0; v < chain.size(); ++v) {
    const std::int64_t chain_ready = maxplus_apply(r.scan[v], 0);
    sched.start[v] =
        std::max<std::int64_t>(chain_ready, release[v]);
    sched.finish[v] = sched.start[v] + duration[v];
    sched.makespan = std::max(sched.makespan, sched.finish[v]);
  }
  return sched;
}

ChainSchedule schedule_chain(const LinkedList& chain,
                             std::span<const std::int32_t> duration,
                             std::span<const std::int32_t> release) {
  Engine engine({.backend = BackendKind::kHost});
  return schedule_chain(chain, duration, release, engine);
}

ChainSchedule schedule_chain_serial(const LinkedList& chain,
                                    std::span<const std::int32_t> duration,
                                    std::span<const std::int32_t> release) {
  ChainSchedule sched;
  if (auto err = check_inputs(chain, duration, release)) {
    sched.status = Status::invalid(*err);
    return sched;
  }
  sched.start.resize(chain.size());
  sched.finish.resize(chain.size());
  std::int64_t prev_finish = 0;
  for_each_in_order(chain, [&](index_t v, std::size_t) {
    sched.start[v] = std::max<std::int64_t>(prev_finish, release[v]);
    sched.finish[v] = sched.start[v] + duration[v];
    prev_finish = sched.finish[v];
    sched.makespan = std::max(sched.makespan, sched.finish[v]);
  });
  return sched;
}

}  // namespace lr90
