// Dependency-chain (critical-path) scheduling on top of the generic
// operator scan.
//
// A chain of tasks -- each with a duration and an earliest release time,
// linked in dependency order -- schedules by the classic recurrence
//
//   finish(v) = max(finish(prev(v)) + duration(v), release(v) + duration(v))
//
// which is the max-plus affine map x -> max(x + shift, floor) with
// shift = duration(v) and floor = release(v) + duration(v). Max-plus maps
// compose associatively (lists/ops.hpp OpMaxPlus), so the exclusive list
// scan under ScanOp::kMaxPlus hands every task the composed map of ALL its
// predecessors in one parallel pass: applying it to time 0 is the finish
// time of the prefix chain, from which the task's own earliest start and
// finish follow locally. Any Method on any backend computes the schedule
// -- the chain is an ordinary lr90::LinkedList with packed values -- and
// an EngineServer can serve scheduling requests like any other OpRequest.
//
// This is the paper's "list scan as a primitive" argument (Section 1)
// pointed at a scheduling workload rather than a tree workload
// (apps/euler_tour.hpp): same engine, new operator, new application.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "lists/linked_list.hpp"

namespace lr90 {

/// The earliest-start schedule of a dependency chain.
struct ChainSchedule {
  Status status;                ///< kOk, or why the schedule failed
  std::vector<value_t> start;   ///< earliest start per task (by vertex)
  std::vector<value_t> finish;  ///< earliest finish per task (by vertex)
  value_t makespan = 0;         ///< finish time of the whole chain
  Method method_used = Method::kAuto;  ///< what the engine actually ran

  /// True iff scheduling succeeded (shorthand for status.ok()).
  bool ok() const { return status.ok(); }
};

/// Builds the max-plus scan input for a dependency chain: the returned
/// list shares `chain`'s next/head (its values are ignored) and carries
/// value[v] = maxplus_pack(duration[v], release[v] + duration[v]).
/// Preconditions: spans sized chain.size(); durations/releases validated
/// by schedule_chain.
LinkedList make_chain_list(const LinkedList& chain,
                           std::span<const std::int32_t> duration,
                           std::span<const std::int32_t> release);

/// Schedules the chain via one ScanOp::kMaxPlus scan on `engine` (any
/// backend; `method` as for Engine::scan). `chain` gives the dependency
/// order (its values are ignored); `duration[v]` >= 0 and `release[v]` >= 0
/// are per-task, and their combined horizon (max release + total duration)
/// must fit 32 bits -- violations yield StatusCode::kInvalidInput, keeping
/// the max-plus combine exact and therefore associative.
ChainSchedule schedule_chain(const LinkedList& chain,
                             std::span<const std::int32_t> duration,
                             std::span<const std::int32_t> release,
                             Engine& engine, Method method = Method::kAuto);

/// Schedules via a throwaway host engine (one-shot convenience).
ChainSchedule schedule_chain(const LinkedList& chain,
                             std::span<const std::int32_t> duration,
                             std::span<const std::int32_t> release);

/// The serial reference scheduler: one ordered walk applying the
/// recurrence directly. The oracle the scan-based path must match
/// bit-exactly (tests/chain_sched_test.cpp).
ChainSchedule schedule_chain_serial(const LinkedList& chain,
                                    std::span<const std::int32_t> duration,
                                    std::span<const std::int32_t> release);

}  // namespace lr90
