// Euler-tour tree computations on top of list ranking and list scan.
//
// The paper motivates list ranking as "a primitive for many tree and graph
// algorithms" [1, 11, 12, 20, ...]. This module provides the classic
// reduction: a rooted tree's edges become arc pairs (a "descend" and an
// "ascend" arc per edge), chained into a single linked list that traverses
// the tree like a depth-first walk. One list rank / one list scan over the
// tour then yields, fully in parallel:
//
//   depth(v)        exclusive +1/-1 scan at v's descend arc, plus one;
//   preorder(v)     exclusive scan counting descend arcs, plus one;
//   subtree_size(v) from the ranks of v's descend and ascend arcs
//                   (the tour segment between them has 2*size(v) arcs).
//
// The tour is an ordinary lr90::LinkedList, so any backend works: every
// helper takes an lr90::Engine and runs through its rank/scan facade --
// the OpenMP host path, the simulated Cray C90, or the serial reference
// all serve tree workloads (and a serving layer can submit the tour's
// Rank/ScanRequests through an EngineServer). The engine-less overloads
// build a throwaway host engine, matching the legacy one-shot behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "lists/linked_list.hpp"

namespace lr90 {

/// A rooted tree given by its parent array; parent[root] == root.
struct RootedTree {
  std::vector<index_t> parent;
  index_t root = 0;

  std::size_t size() const { return parent.size(); }
};

/// Returns std::nullopt-like validity: true iff parent[] describes a tree
/// rooted at `root` (single root self-loop, no cycles, all reachable).
bool is_valid_tree(const RootedTree& tree);

/// A uniformly random recursive tree on n nodes (node v>0 attaches to a
/// uniform node < v), then relabeled by a random permutation so parents
/// are not index-ordered.
RootedTree random_tree(std::size_t n, Rng& rng);

/// The Euler tour of a rooted tree as a linked list of arcs. Arc ids:
/// descend(v) = 2*(edge index of v), ascend(v) = that + 1, where each
/// non-root v owns the edge (parent(v), v). Values are +1 on descend and
/// -1 on ascend arcs (the depth scan's weights).
struct EulerTour {
  LinkedList arcs;
  /// Maps non-root vertex -> its descend/ascend arc id (root: kNoVertex).
  std::vector<index_t> down;
  std::vector<index_t> up;
};

/// Builds the tour in O(n). Children are visited in increasing vertex
/// order. Requires a valid tree; a single-node tree yields an empty list.
EulerTour build_euler_tour(const RootedTree& tree);

/// Depth of every node (root = 0) via one list scan over the tour.
std::vector<value_t> tree_depths(const RootedTree& tree, Engine& engine);
/// Depth via a throwaway host engine.
std::vector<value_t> tree_depths(const RootedTree& tree);

/// Preorder number of every node (root = 0) via one list scan.
std::vector<value_t> preorder_numbers(const RootedTree& tree, Engine& engine);
/// Preorder via a throwaway host engine.
std::vector<value_t> preorder_numbers(const RootedTree& tree);

/// Subtree size of every node (root = n) via one list rank.
std::vector<value_t> subtree_sizes(const RootedTree& tree, Engine& engine);
/// Subtree sizes via a throwaway host engine.
std::vector<value_t> subtree_sizes(const RootedTree& tree);

/// All three labels of one tree (one tour + one rank + two scans).
struct TreeLabels {
  std::vector<value_t> depth;         ///< root = 0
  std::vector<value_t> preorder;      ///< root = 0, DFS order
  std::vector<value_t> subtree_size;  ///< root = n
};
/// All three at the price of one tour + one rank + two scans, reusing the
/// engine's workspace across them.
TreeLabels tree_labels(const RootedTree& tree, Engine& engine);
/// All three labels via a throwaway host engine.
TreeLabels tree_labels(const RootedTree& tree);

/// Rootfix sums (Blelloch's "tree scan" toward the leaves): for per-vertex
/// weights w, out[v] = sum of w(u) over all ancestors u of v, *excluding*
/// v itself (root = 0). Depth is the special case w == 1 shifted by one.
/// One +w/-w list scan over the tour.
std::vector<value_t> path_sums(const RootedTree& tree,
                               std::span<const value_t> weights,
                               Engine& engine);
/// Rootfix sums via a throwaway host engine.
std::vector<value_t> path_sums(const RootedTree& tree,
                               std::span<const value_t> weights);

/// Leaffix sums (tree scan toward the root): out[v] = sum of w(u) over the
/// subtree rooted at v, including v. Subtree size is the special case
/// w == 1. One weighted list scan over the tour.
std::vector<value_t> subtree_sums(const RootedTree& tree,
                                  std::span<const value_t> weights,
                                  Engine& engine);
/// Leaffix sums via a throwaway host engine.
std::vector<value_t> subtree_sums(const RootedTree& tree,
                                  std::span<const value_t> weights);

}  // namespace lr90
