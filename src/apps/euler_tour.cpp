#include "apps/euler_tour.hpp"

#include <cassert>
#include <numeric>

namespace lr90 {

bool is_valid_tree(const RootedTree& tree) {
  const std::size_t n = tree.size();
  if (n == 0) return false;
  if (tree.root >= n) return false;
  if (tree.parent[tree.root] != tree.root) return false;
  // Every node must reach the root without revisiting (path-halving walk
  // with a visit stamp would be O(n alpha); a simple depth count suffices:
  // any walk longer than n edges means a cycle).
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.parent[v] >= n) return false;
    index_t x = static_cast<index_t>(v);
    std::size_t hops = 0;
    while (x != tree.root) {
      x = tree.parent[x];
      if (++hops > n) return false;
    }
  }
  return true;
}

RootedTree random_tree(std::size_t n, Rng& rng) {
  assert(n >= 1);
  // Random recursive tree in creation order...
  std::vector<index_t> parent_in_order(n);
  parent_in_order[0] = 0;
  for (std::size_t v = 1; v < n; ++v)
    parent_in_order[v] = static_cast<index_t>(rng.uniform(v));
  // ...then relabel with a random permutation.
  std::vector<std::uint32_t> label(n);
  rng.permutation(label);
  RootedTree tree;
  tree.parent.resize(n);
  tree.root = label[0];
  for (std::size_t v = 0; v < n; ++v)
    tree.parent[label[v]] = label[parent_in_order[v]];
  return tree;
}

EulerTour build_euler_tour(const RootedTree& tree) {
  const std::size_t n = tree.size();
  assert(is_valid_tree(tree));
  EulerTour tour;
  tour.down.assign(n, kNoVertex);
  tour.up.assign(n, kNoVertex);
  if (n <= 1) return tour;

  // Edge index of non-root v: position among non-root vertices (so arc ids
  // are dense in [0, 2(n-1))).
  std::vector<index_t> edge_of(n, kNoVertex);
  {
    index_t e = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (static_cast<index_t>(v) != tree.root)
        edge_of[v] = e++;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<index_t>(v) == tree.root) continue;
    tour.down[v] = 2 * edge_of[v];
    tour.up[v] = 2 * edge_of[v] + 1;
  }

  // Children adjacency (CSR), children in increasing vertex order.
  std::vector<std::uint32_t> deg(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<index_t>(v) != tree.root) ++deg[tree.parent[v]];
  }
  std::vector<std::uint32_t> off(n + 1, 0);
  std::partial_sum(deg.begin(), deg.end(), off.begin() + 1);
  std::vector<index_t> child(off[n]);
  {
    std::vector<std::uint32_t> fill(off.begin(), off.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (static_cast<index_t>(v) != tree.root)
        child[fill[tree.parent[v]]++] = static_cast<index_t>(v);
    }
  }

  const std::size_t arcs = 2 * (n - 1);
  tour.arcs.next.assign(arcs, 0);
  tour.arcs.value.assign(arcs, 0);

  // Chain rules (first/last/next sibling), all O(1) per arc:
  //   down(v) -> down(first child of v)   if v has children
  //   down(v) -> up(v)                    if v is a leaf
  //   up(c)   -> down(next sibling of c)  if c has a next sibling
  //   up(c)   -> up(parent(c))            if c is its parent's last child
  // The tour starts at down(first child of root) and ends at up(last
  // child of root), which becomes the tail self-loop.
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t lo = off[v], hi_ = off[v + 1];
    if (static_cast<index_t>(v) != tree.root) {
      tour.arcs.next[tour.down[v]] =
          (lo < hi_) ? tour.down[child[lo]] : tour.up[v];
    }
    for (std::uint32_t i = lo; i < hi_; ++i) {
      const index_t c = child[i];
      if (i + 1 < hi_) {
        tour.arcs.next[tour.up[c]] = tour.down[child[i + 1]];
      } else if (static_cast<index_t>(v) != tree.root) {
        tour.arcs.next[tour.up[c]] = tour.up[v];
      } else {
        tour.arcs.next[tour.up[c]] = tour.up[c];  // global tail
      }
    }
  }
  tour.arcs.head = tour.down[child[off[tree.root]]];

  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<index_t>(v) == tree.root) continue;
    tour.arcs.value[tour.down[v]] = +1;
    tour.arcs.value[tour.up[v]] = -1;
  }
  return tour;
}

namespace {

/// Default engine of the engine-less overloads: one-shot, host backend.
Engine throwaway_engine() { return Engine({.backend = BackendKind::kHost}); }

/// Exclusive plus-scan of the tour through the engine facade. The tour is
/// structurally valid by construction, so a failure here can only be a
/// caller configuration issue (asserted in debug builds); release builds
/// degrade to all-zero labels of the right size, never out-of-bounds.
std::vector<value_t> scan_tour(Engine& engine, const LinkedList& arcs) {
  RunResult r = engine.scan(arcs, ScanOp::kPlus);
  assert(r.ok());
  if (!r.ok()) r.scan.assign(arcs.size(), 0);
  return std::move(r.scan);
}

/// Exclusive rank of the tour through the engine facade (see scan_tour).
std::vector<value_t> rank_tour(Engine& engine, const LinkedList& arcs) {
  RunResult r = engine.rank(arcs);
  assert(r.ok());
  if (!r.ok()) r.scan.assign(arcs.size(), 0);
  return std::move(r.scan);
}

}  // namespace

std::vector<value_t> tree_depths(const RootedTree& tree, Engine& engine) {
  const std::size_t n = tree.size();
  std::vector<value_t> depth(n, 0);
  if (n <= 1) return depth;
  const EulerTour tour = build_euler_tour(tree);
  const std::vector<value_t> scan = scan_tour(engine, tour.arcs);
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] != kNoVertex) depth[v] = scan[tour.down[v]] + 1;
  }
  return depth;
}

std::vector<value_t> tree_depths(const RootedTree& tree) {
  Engine engine = throwaway_engine();
  return tree_depths(tree, engine);
}

std::vector<value_t> preorder_numbers(const RootedTree& tree,
                                      Engine& engine) {
  const std::size_t n = tree.size();
  std::vector<value_t> pre(n, 0);
  if (n <= 1) return pre;
  EulerTour tour = build_euler_tour(tree);
  // Count descend arcs only: weight +1 on down, 0 on up.
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.up[v] != kNoVertex) tour.arcs.value[tour.up[v]] = 0;
  }
  const std::vector<value_t> scan = scan_tour(engine, tour.arcs);
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] != kNoVertex) pre[v] = scan[tour.down[v]] + 1;
  }
  return pre;
}

std::vector<value_t> preorder_numbers(const RootedTree& tree) {
  Engine engine = throwaway_engine();
  return preorder_numbers(tree, engine);
}

std::vector<value_t> subtree_sizes(const RootedTree& tree, Engine& engine) {
  const std::size_t n = tree.size();
  std::vector<value_t> size(n, static_cast<value_t>(n));
  if (n <= 1) return size;
  const EulerTour tour = build_euler_tour(tree);
  const std::vector<value_t> rank = rank_tour(engine, tour.arcs);
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] == kNoVertex) continue;  // root keeps n
    size[v] = (rank[tour.up[v]] - rank[tour.down[v]] + 1) / 2;
  }
  return size;
}

std::vector<value_t> subtree_sizes(const RootedTree& tree) {
  Engine engine = throwaway_engine();
  return subtree_sizes(tree, engine);
}

std::vector<value_t> path_sums(const RootedTree& tree,
                               std::span<const value_t> weights,
                               Engine& engine) {
  const std::size_t n = tree.size();
  assert(weights.size() == n);
  std::vector<value_t> out(n, 0);
  if (n <= 1) return out;
  EulerTour tour = build_euler_tour(tree);
  // +w on descend, -w on ascend: the exclusive scan at down(v) sums the
  // still-open (ancestor) vertices, which excludes the root (it has no
  // arcs) and v itself.
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] == kNoVertex) continue;
    tour.arcs.value[tour.down[v]] = weights[v];
    tour.arcs.value[tour.up[v]] = -weights[v];
  }
  const std::vector<value_t> scan = scan_tour(engine, tour.arcs);
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] == kNoVertex) continue;  // root keeps 0
    out[v] = scan[tour.down[v]] + weights[tree.root];
  }
  return out;
}

std::vector<value_t> path_sums(const RootedTree& tree,
                               std::span<const value_t> weights) {
  Engine engine = throwaway_engine();
  return path_sums(tree, weights, engine);
}

std::vector<value_t> subtree_sums(const RootedTree& tree,
                                  std::span<const value_t> weights,
                                  Engine& engine) {
  const std::size_t n = tree.size();
  assert(weights.size() == n);
  std::vector<value_t> out(n, 0);
  if (n == 0) return out;
  value_t total = 0;
  for (const value_t w : weights) total += w;
  out[tree.root] = total;
  if (n == 1) return out;
  EulerTour tour = build_euler_tour(tree);
  // +w on descend only: the scan difference across [down(v), up(v)) is
  // exactly the subtree's weight.
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] == kNoVertex) continue;
    tour.arcs.value[tour.down[v]] = weights[v];
    tour.arcs.value[tour.up[v]] = 0;
  }
  const std::vector<value_t> scan = scan_tour(engine, tour.arcs);
  for (std::size_t v = 0; v < n; ++v) {
    if (tour.down[v] == kNoVertex) continue;
    out[v] = scan[tour.up[v]] - scan[tour.down[v]];
  }
  return out;
}

std::vector<value_t> subtree_sums(const RootedTree& tree,
                                  std::span<const value_t> weights) {
  Engine engine = throwaway_engine();
  return subtree_sums(tree, weights, engine);
}

TreeLabels tree_labels(const RootedTree& tree, Engine& engine) {
  TreeLabels labels;
  labels.depth = tree_depths(tree, engine);
  labels.preorder = preorder_numbers(tree, engine);
  labels.subtree_size = subtree_sizes(tree, engine);
  return labels;
}

TreeLabels tree_labels(const RootedTree& tree) {
  Engine engine = throwaway_engine();
  return tree_labels(tree, engine);
}

}  // namespace lr90
