#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

namespace lr90 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::print(std::FILE* out) const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace lr90
