// Small statistics helpers used by the analysis library and benches.
#pragma once

#include <cstddef>
#include <span>

namespace lr90 {

/// Single-pass running statistics (Welford). Tracks count, min, max, mean,
/// and sample variance of a stream of doubles.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Ordinary least squares fit of y = slope*x + intercept.
/// Requires xs.size() == ys.size() >= 2 and xs not all equal.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1].
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace lr90
