#include "support/polyfit.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace lr90 {

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  assert(a.size() == n * n);
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    assert(a[pivot * n + col] != 0.0 && "singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row * n + c] * x[c];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   int degree) {
  assert(degree >= 0);
  assert(xs.size() == ys.size());
  assert(xs.size() > static_cast<std::size_t>(degree));
  const std::size_t k = static_cast<std::size_t>(degree) + 1;

  // Normal equations: (V^T V) c = V^T y where V is the Vandermonde matrix.
  std::vector<double> ata(k * k, 0.0);
  std::vector<double> aty(k, 0.0);
  std::vector<double> powers(2 * k - 1, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double p = 1.0;
    for (std::size_t d = 0; d < 2 * k - 1; ++d) {
      powers[d] = p;
      p *= xs[i];
    }
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t c = 0; c < k; ++c) ata[r * k + c] += powers[r + c];
      aty[r] += powers[r] * ys[i];
    }
  }
  Polynomial poly;
  poly.coeffs = solve_linear(std::move(ata), std::move(aty));
  return poly;
}

}  // namespace lr90
