#include "support/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define LR90_HAVE_CPUID 1
#endif

namespace lr90 {

namespace {

/// XCR0 via xgetbv: which register state the OS actually saves/restores.
/// AVX needs bits 1+2 (XMM+YMM); AVX-512 additionally bits 5..7
/// (opmask + the ZMM halves). CPUID alone is not enough -- a kernel
/// booted with AVX disabled leaves the bits clear.
#if defined(LR90_HAVE_CPUID)
unsigned long long read_xcr0() {
  unsigned eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}
#endif

CpuFeatures probe() {
  CpuFeatures f;
  const char* force = std::getenv("LR90_FORCE_SCALAR");
  f.forced_scalar = force != nullptr && *force != '\0' &&
                    std::strcmp(force, "0") != 0;
#if defined(LR90_HAVE_CPUID)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;  // xgetbv is legal
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return f;
  const unsigned long long xcr0 = read_xcr0();
  const bool ymm_saved = (xcr0 & 0x6) == 0x6;  // XMM + YMM state
  if (!ymm_saved) return f;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return f;
  f.avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool zmm_saved = (xcr0 & 0xe6) == 0xe6;  // + opmask, ZMM halves
  f.avx512f = avx512f && zmm_saved;
#endif
  return f;
}

/// The cached probe result. A function-local static makes the first call
/// thread-safe (C++ magic statics); refresh_cpu_features() mutates it and
/// is documented single-threaded.
CpuFeatures& cached() {
  static CpuFeatures f = probe();
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() { return cached(); }

void refresh_cpu_features() { cached() = probe(); }

}  // namespace lr90
