// Deterministic pseudo-random number generation for the listrank90 library.
//
// All randomized algorithms in this library (random-mate coin flips, random
// sublist splitting positions, workload generation) draw from this engine so
// that every test, bench, and example is reproducible from a single seed.
//
// The generator is xoshiro256** seeded via splitmix64, which is fast,
// high-quality, and -- unlike std::mt19937 -- has a trivially portable state
// so results are identical across standard library implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lr90 {

/// Library-wide default seed. Every options struct that carries a seed
/// (SimOptions, HostOptions, EngineOptions) defaults to this one value so
/// "same program, no seed given" is reproducible across entry points.
inline constexpr std::uint64_t kDefaultSeed = 0x5eed5eedULL;

/// Splitmix64 step: used for seeding and as a cheap standalone mixer.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Bernoulli trial: returns true with probability `p_true`.
  bool coin(double p_true = 0.5);

  /// Fills `out` with a uniformly random permutation of 0..out.size()-1
  /// (Fisher-Yates).
  void permutation(std::span<std::uint32_t> out);

  /// Draws `k` distinct values from [0, bound) in O(k) expected time
  /// (Floyd's algorithm). Result order is unspecified but deterministic.
  /// Requires k <= bound.
  std::vector<std::uint32_t> sample_distinct(std::uint32_t k,
                                             std::uint32_t bound);

  /// Splits off an independently-seeded child generator. Children of the
  /// same parent in the same order are reproducible.
  Rng split();

  /// True iff both generators are in the same state (will produce the
  /// same stream). Lets caches key on "the draws would repeat exactly"
  /// (core/workspace.hpp's packed-slab cache).
  friend bool operator==(const Rng& a, const Rng& b) {
    return a.s_[0] == b.s_[0] && a.s_[1] == b.s_[1] && a.s_[2] == b.s_[2] &&
           a.s_[3] == b.s_[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace lr90
