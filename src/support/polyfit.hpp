// Least-squares polynomial fitting.
//
// The paper (Section 4.4) tunes the algorithm parameters m(n) and S1(n) by
// minimizing the cost model for many values of n and then fitting cubic
// polynomials in log n. This module provides the fitting primitive.
#pragma once

#include <span>
#include <vector>

namespace lr90 {

/// Coefficients of a fitted polynomial, lowest degree first:
/// p(x) = c[0] + c[1]*x + ... + c[d]*x^d.
struct Polynomial {
  std::vector<double> coeffs;

  double operator()(double x) const;
  int degree() const { return static_cast<int>(coeffs.size()) - 1; }
};

/// Fits a degree-`degree` polynomial to (xs, ys) by ordinary least squares
/// (normal equations solved with partially-pivoted Gaussian elimination).
/// Requires xs.size() == ys.size() > degree.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   int degree);

/// Solves the dense linear system a*x = b in place; `a` is row-major n*n.
/// Returns the solution vector. Requires a non-singular matrix.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

}  // namespace lr90
