// Plain-text table rendering for bench output.
//
// Every bench binary regenerates one of the paper's tables or figures as an
// aligned text table (figures become series tables, one row per x value), so
// the output can be compared side by side with the published numbers and
// re-plotted by any external tool. A CSV escape hatch is provided.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lr90 {

/// Column-aligned text table builder.
class TextTable {
 public:
  /// Begins a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a full row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `prec` significant decimals.
  static std::string num(double v, int prec = 2);
  /// Convenience: formats an integer.
  static std::string num(long long v);

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  /// Renders as CSV (no quoting of commas; callers control cell content).
  std::string render_csv() const;

  /// Prints render() to `out` (stdout by default).
  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lr90
