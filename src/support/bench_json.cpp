#include "support/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace lr90 {

namespace {

/// JSON string escaping: quotes, backslashes, and control characters.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // Integral values (counts, sizes) print exactly; measurements keep six
  // significant digits.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchJson::meta(const std::string& key, const std::string& value) {
  meta_.push_back(Field{key, value, 0.0, false});
}

void BenchJson::meta(const std::string& key, double value) {
  meta_.push_back(Field{key, {}, value, true});
}

void BenchJson::row() { rows_.emplace_back(); }

void BenchJson::field(const std::string& key, double value) {
  rows_.back().push_back(Field{key, {}, value, true});
}

void BenchJson::field(const std::string& key, const std::string& value) {
  rows_.back().push_back(Field{key, value, 0.0, false});
}

void BenchJson::append_fields(std::string& out,
                              const std::vector<Field>& fields) {
  bool first = true;
  for (const Field& f : fields) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += escaped(f.key);
    out += "\": ";
    if (f.is_num) {
      out += number(f.num);
    } else {
      out += '"';
      out += escaped(f.str);
      out += '"';
    }
  }
}

std::string BenchJson::dump() const {
  std::string out = "{\n  \"bench\": \"" + escaped(name_) + "\",\n";
  out += "  \"meta\": { ";
  append_fields(out, meta_);
  out += " },\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += "    { ";
    append_fields(out, rows_[i]);
    out += i + 1 < rows_.size() ? " },\n" : " }\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJson::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string doc = dump();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok)
    std::fprintf(stderr, "bench_json: short write to %s\n", path.c_str());
  return ok;
}

std::string bench_json_path(const char* default_name) {
  const char* env = std::getenv("LR90_BENCH_JSON_PATH");
  return env != nullptr && env[0] != '\0' ? std::string(env)
                                          : std::string(default_name);
}

void stamp_provenance(BenchJson& json) {
  const char* sha = std::getenv("LR90_GIT_SHA");
  if (sha == nullptr || sha[0] == '\0') sha = std::getenv("GITHUB_SHA");
#if defined(LR90_GIT_SHA_CONFIGURED)
  if (sha == nullptr || sha[0] == '\0') sha = LR90_GIT_SHA_CONFIGURED;
#endif
  json.meta("git_sha", sha != nullptr && sha[0] != '\0' ? sha : "unknown");
#if defined(__clang__)
  json.meta("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  json.meta("compiler", std::string("gcc ") + __VERSION__);
#else
  json.meta("compiler", "unknown");
#endif
#if defined(LISTRANK90_HAVE_OPENMP)
  json.meta("openmp", "on");
#else
  json.meta("openmp", "off");
#endif
  json.meta("hw_threads",
            static_cast<double>(std::thread::hardware_concurrency()));
}

}  // namespace lr90
