// Named, registered fault-injection sites with zero overhead when disabled.
//
// A FaultSite is a file-scope object at an I/O or allocation edge:
//
//   namespace { lr90::fault::FaultSite f_io{"shard.write.io", "EIO"}; }
//   ...
//   if (f_io.fire()) { errno = EIO; return false; }   // injected failure
//
// Sites self-register into a global registry at static initialization, so
// a chaos harness can enumerate every edge in the binary without running
// a single workload, arm them one at a time, and assert each one fired.
//
// fire() is the only call on a hot path and costs one relaxed atomic load
// plus one predictable branch while injection is globally disabled (the
// production state; bench/op_scan.cpp gates the cost at <= 1% of the
// dispatch tier). Arming any site enables the global gate; the armed slow
// path is mutex-guarded and deterministic: a 1-based fail-Nth counter, an
// optional per-hit probability driven by a seeded splitmix64 stream, and
// a fire budget (max_fires) so a sweep can inject exactly one failure.
//
// Thread model: fire() may be called from any thread. Arm/disarm/stats
// are test-harness calls; they take the same mutex as the armed slow
// path, so a sweep can re-arm between workloads without racing workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// Fault-injection support: registered fault sites for chaos testing.
namespace lr90::fault {

/// How an armed site decides to fire. All conditions compose: the site
/// fires when the hit counter reaches `fail_nth` (if set) OR the seeded
/// coin comes up under `probability`, and never more than `max_fires`
/// times total.
struct Trigger {
  /// Fire on exactly the Nth hit after arming (1-based; 0 = disabled).
  std::uint64_t fail_nth = 0;
  /// Independent per-hit fire probability in [0, 1] (0 = disabled).
  double probability = 0.0;
  /// Seed of the per-site splitmix64 stream behind `probability`.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Total fires allowed before the site goes quiet (sweeps arm 1).
  std::uint64_t max_fires = ~std::uint64_t{0};
};

/// Counters of one site since the last reset (hits only accumulate while
/// the global gate is enabled -- the disabled fast path counts nothing).
struct SiteStats {
  std::uint64_t hits = 0;   ///< fire() calls observed while enabled
  std::uint64_t fires = 0;  ///< injected failures
};

/// One named fault site. Construct at namespace scope in the .cpp that
/// owns the edge; the constructor registers the site for the lifetime of
/// the process (sites are never unregistered -- they are statics).
class FaultSite {
 public:
  /// Registers the site. `name` is the stable identifier a harness arms
  /// by ("layer.edge.failure"); `effect` documents what the injected
  /// failure simulates. Both must be string literals (not copied).
  FaultSite(const char* name, const char* effect);

  FaultSite(const FaultSite&) = delete;             ///< sites are singular
  FaultSite& operator=(const FaultSite&) = delete;  ///< sites are singular

  const char* name() const { return name_; }      ///< stable identifier
  const char* effect() const { return effect_; }  ///< simulated failure

  /// The hot-path check: true iff the harness injected a failure here.
  /// One relaxed load + branch while injection is globally disabled.
  bool fire() {
    if (!enabled_flag().load(std::memory_order_relaxed)) return false;
    return fire_slow();
  }

  /// Arms the site (and enables the global gate). Resets the hit counter
  /// and the probability stream so sweeps are deterministic.
  void arm(const Trigger& trigger);

  /// Disarms this site only; the global gate stays up while any site is
  /// armed (see disarm_all()).
  void disarm();

  /// True while armed.
  bool armed() const;

  /// Counters since the last reset_stats()/arm().
  SiteStats stats() const;

 private:
  bool fire_slow();
  static std::atomic<bool>& enabled_flag();
  friend void set_enabled(bool);
  friend bool enabled();
  friend void disarm_all();
  friend void reset_stats();
  friend std::vector<FaultSite*>& mutable_registry();

  const char* name_;    ///< literal, never freed
  const char* effect_;  ///< literal, never freed

  mutable std::mutex mu_;  ///< guards everything below
  bool armed_ = false;
  Trigger trigger_;
  std::uint64_t rng_ = 0;  ///< splitmix64 state for `probability`
  SiteStats stats_;
};

/// Every site registered in this binary, in registration order. Stable
/// for the process lifetime once main() runs.
std::vector<FaultSite*> registered_sites();

/// The site named `name`, or nullptr.
FaultSite* find_site(const std::string& name);

/// Disarms every site and lowers the global gate (back to zero-overhead).
void disarm_all();

/// Forces the global gate. arm() raises it automatically; this is for
/// harnesses that want hit counting without any armed trigger.
void set_enabled(bool on);

/// True while the global gate is up.
bool enabled();

/// Zeroes every site's counters (armed state is untouched).
void reset_stats();

}  // namespace lr90::fault
