#include "support/rng.hpp"

#include <cassert>
#include <unordered_set>

namespace lr90 {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform_real() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::coin(double p_true) { return uniform_real() < p_true; }

void Rng::permutation(std::span<std::uint32_t> out) {
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform(i);
    std::swap(out[i - 1], out[j]);
  }
}

std::vector<std::uint32_t> Rng::sample_distinct(std::uint32_t k,
                                                std::uint32_t bound) {
  assert(k <= bound);
  // Floyd's algorithm: for j = bound-k .. bound-1 pick t in [0, j]; insert t
  // unless already present, in which case insert j.
  std::vector<std::uint32_t> result;
  result.reserve(k);
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  for (std::uint32_t j = bound - k; j < bound; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform(j + 1));
    if (seen.insert(t).second) {
      result.push_back(t);
    } else {
      seen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace lr90
