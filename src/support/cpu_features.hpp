// Runtime CPU-feature detection for the host SIMD gather tier.
//
// The packed hot path has a third kernel family (core/host_exec.hpp
// KernelTier::kSimdGather) that fetches W hot words per vector gather
// instruction -- the literal analog of the paper's Cray C90 VL=64 hardware
// gather. That family is compiled into every binary behind
// __attribute__((target("avx2"))) and selected at RUN TIME from CPUID, so
// one binary runs everywhere: machines without AVX2 (or whose OS does not
// save the YMM state) take the scalar multi-cursor kernels instead, and
// the answers are bit-identical either way.
//
// LR90_FORCE_SCALAR=1 in the environment forces the scalar answer from
// simd_gather_available() regardless of hardware -- the CI lever that
// proves the dispatcher's fallback path on gather-capable machines.
#pragma once

// Can this build COMPILE the AVX2 gather kernels at all? (Running them is
// a separate, CPUID-gated question -- simd_gather_available() below.)
// GCC/Clang on x86-64 compile intrinsics inside
// __attribute__((target("avx2"))) functions without -mavx2 on the command
// line, which is what keeps the whole binary runnable on non-AVX2
// machines: only the explicitly-dispatched functions contain VEX code.
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LR90_SIMD_GATHER_COMPILED 1
#define LR90_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define LR90_SIMD_GATHER_COMPILED 0
#define LR90_TARGET_AVX2
#endif

namespace lr90 {

/// What the running CPU (and OS) can execute, probed once via CPUID.
struct CpuFeatures {
  /// AVX2 present and the OS saves YMM state (XCR0 bits 1+2): the
  /// _mm256_i32gather_epi64 tier may run.
  bool avx2 = false;
  /// AVX-512F present and the OS saves ZMM state (XCR0 bits 5..7) too.
  bool avx512f = false;
  /// LR90_FORCE_SCALAR was set (non-empty, not "0") in the environment:
  /// the dispatcher reports no gather support whatever the hardware says.
  bool forced_scalar = false;
};

/// The probed features of this process's CPU (cached after the first
/// call; thread-safe).
const CpuFeatures& cpu_features();

/// Re-probes CPUID and the LR90_FORCE_SCALAR environment knob, replacing
/// the cached answer. For tests that flip the knob mid-process; not
/// thread-safe against concurrent cpu_features() readers, so call it only
/// from single-threaded test setup.
void refresh_cpu_features();

/// True iff the SIMD gather tier may run here: AVX2 usable and not forced
/// off via LR90_FORCE_SCALAR. The single question the kernel dispatcher
/// and the Planner ask.
inline bool simd_gather_available() {
  const CpuFeatures& f = cpu_features();
  return f.avx2 && !f.forced_scalar;
}

}  // namespace lr90
