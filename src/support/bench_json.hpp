// Minimal JSON emission for bench trajectories.
//
// Every bench that feeds the repo's perf record writes one JSON document
// per run -- BENCH_hotpath.json, BENCH_op_scan.json, BENCH_serve.json --
// so speedups are machine-readable across PRs instead of living only in
// stdout tables. The format is deliberately flat:
//
//   {
//     "bench": "interleave_sweep",
//     "meta": { "n_max": 4194304, "threads": 1, ... },
//     "results": [ { "n": 65536, "variant": "packed", "w": 8,
//                    "median_ms": 1.9, ... }, ... ]
//   }
//
// No external JSON dependency: the writer covers exactly what the benches
// need (string and finite-double fields, minimal escaping).
#pragma once

#include <string>
#include <vector>

namespace lr90 {

/// One bench run's JSON document: top-level metadata plus a flat list of
/// result rows. Build with meta()/row()/field(), then write().
class BenchJson {
 public:
  /// Starts a document for the bench named `bench_name`.
  explicit BenchJson(std::string bench_name);

  /// Adds a top-level metadata field (last write wins is NOT applied;
  /// callers add each key once).
  void meta(const std::string& key, const std::string& value);
  /// Numeric metadata overload.
  void meta(const std::string& key, double value);

  /// Opens a new result row; subsequent field() calls land in it.
  void row();
  /// Adds a numeric field to the open row (NaN/inf serialize as null).
  void field(const std::string& key, double value);
  /// Adds a string field to the open row.
  void field(const std::string& key, const std::string& value);

  /// The serialized document.
  std::string dump() const;
  /// Writes dump() to `path`; false (with a stderr report) on failure.
  bool write(const std::string& path) const;

 private:
  struct Field {
    std::string key;
    std::string str;
    double num = 0.0;
    bool is_num = false;
  };
  static void append_fields(std::string& out,
                            const std::vector<Field>& fields);

  std::string name_;
  std::vector<Field> meta_;
  std::vector<std::vector<Field>> rows_;
};

/// The output path for `default_name` ("BENCH_hotpath.json", ...):
/// the LR90_BENCH_JSON_PATH environment variable when set, else the
/// default in the current directory.
std::string bench_json_path(const char* default_name);

/// Stamps the standard provenance metadata every BENCH_*.json must carry
/// so tools/bench_compare.py can refuse cross-machine comparisons
/// instead of mis-flagging them:
///   git_sha      LR90_GIT_SHA or GITHUB_SHA env var, else the SHA CMake
///                captured at configure time, else "unknown"
///   compiler     compiler id + version the binary was built with
///   openmp       "on"/"off" (LISTRANK90_HAVE_OPENMP at build time)
///   hw_threads   std::thread::hardware_concurrency() at run time
/// Call once per document, before write().
void stamp_provenance(BenchJson& json);

}  // namespace lr90
