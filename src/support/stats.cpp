#include "support/stats.hpp"

#include <cassert>
#include <cmath>

namespace lr90 {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  assert(denom != 0.0);
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

}  // namespace lr90
