// FaultSite registry and the armed slow path. See faultpoint.hpp.
#include "support/faultpoint.hpp"

#include <algorithm>

namespace lr90::fault {

namespace {

// Registry mutex: guards the site vector during static-init registration
// and the harness-facing enumeration calls. Meyers singletons so sites
// constructed before this TU's statics still register safely.
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

// splitmix64: tiny, seedable, passes the statistical bar a fault coin
// needs. Advances the state in place.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<FaultSite*>& mutable_registry() {
  static std::vector<FaultSite*> sites;
  return sites;
}

std::atomic<bool>& FaultSite::enabled_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

FaultSite::FaultSite(const char* name, const char* effect)
    : name_(name), effect_(effect) {
  std::lock_guard<std::mutex> lock(registry_mu());
  mutable_registry().push_back(this);
}

bool FaultSite::fire_slow() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  if (!armed_ || stats_.fires >= trigger_.max_fires) return false;
  bool hit = trigger_.fail_nth != 0 && stats_.hits == trigger_.fail_nth;
  if (!hit && trigger_.probability > 0.0) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(splitmix64(rng_) >> 11) * 0x1.0p-53;
    hit = u < trigger_.probability;
  }
  if (hit) ++stats_.fires;
  return hit;
}

void FaultSite::arm(const Trigger& trigger) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
    trigger_ = trigger;
    rng_ = trigger.seed;
    stats_ = SiteStats{};
  }
  enabled_flag().store(true, std::memory_order_relaxed);
}

void FaultSite::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

bool FaultSite::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

SiteStats FaultSite::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<FaultSite*> registered_sites() {
  std::lock_guard<std::mutex> lock(registry_mu());
  return mutable_registry();
}

FaultSite* find_site(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu());
  auto& sites = mutable_registry();
  const auto it = std::find_if(sites.begin(), sites.end(), [&](FaultSite* s) {
    return name == s->name();
  });
  return it == sites.end() ? nullptr : *it;
}

void disarm_all() {
  for (FaultSite* site : registered_sites()) site->disarm();
  FaultSite::enabled_flag().store(false, std::memory_order_relaxed);
}

void set_enabled(bool on) {
  FaultSite::enabled_flag().store(on, std::memory_order_relaxed);
}

bool enabled() {
  return FaultSite::enabled_flag().load(std::memory_order_relaxed);
}

void reset_stats() {
  for (FaultSite* site : registered_sites()) {
    std::lock_guard<std::mutex> lock(site->mu_);
    site->stats_ = SiteStats{};
  }
}

}  // namespace lr90::fault
