#!/usr/bin/env python3
"""Diff fresh BENCH_*.json documents against the committed perf trajectory.

Usage:
    bench_compare.py OLD NEW [options]

OLD and NEW are BENCH_*.json files, or directories holding them (matched
by file name). The comparison has three severity classes:

  * correctness fields (execution-shape booleans like "packed" or
    "phase2_parallel", and any string field) must match exactly -> FAIL
    (exit 1). These say WHICH code ran; a change is a behaviour
    regression no matter how fast it was.
  * measurement fields (medians, latencies, throughputs, efficiencies)
    beyond --threshold (default 10%) in the bad direction -> WARN.
    Warnings exit 0 -- shared runners are noisy -- unless --strict.
  * missing rows / files in NEW -> WARN (the bench did not run or lost
    coverage).

Provenance: every document carries the stamp from lr90::stamp_provenance
(git_sha, compiler, openmp, hw_threads). When compiler, openmp, or
hw_threads differ between OLD and NEW the perf numbers are not
comparable; the default is to refuse (exit 2) so nobody mis-reads a
hardware change as a regression. --lenient-cross-machine instead skips
the measurement comparison with a notice but still enforces the
correctness fields, which is how CI checks runner output against the
dev-machine trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

# Fields that identify a row (the comparison key), in every bench.
KEY_FIELDS = {"n", "variant", "w", "t", "op", "clients", "tier", "method",
              "backend", "shape"}

# Numeric measurement fields where LOWER is better.
LOWER_BETTER_SUFFIXES = ("_ms", "_ns", "_us", "ns_per_elem", "p50_us",
                         "p99_us")
# Exact-name measurements (timing ratios that no suffix rule catches).
LOWER_BETTER_NAMES = {"vs_hard_coded"}
# Numeric measurement fields where HIGHER is better.
HIGHER_BETTER_SUFFIXES = ("req_per_s", "_efficiency", "parallel_frac")
HIGHER_BETTER_PREFIXES = ("speedup",)

# Provenance metadata that must match for timings to be comparable.
# git_sha is deliberately NOT here: comparing across commits is the point.
PROVENANCE_FIELDS = ("compiler", "openmp", "hw_threads")

# Execution-shape fields that legitimately follow the hardware (the
# planner picks cursors/threads from the machine's thread count): checked
# same-machine, skipped cross-machine. "packed" is NOT here -- operator
# lane capability does not depend on hardware.
HW_SHAPE_FIELDS = {"cursors", "picked_t", "picked_w"}


def classify(field: str, value) -> str:
    """One of 'key', 'lower', 'higher', 'correctness', 'ignore'."""
    if field in KEY_FIELDS:
        return "key"
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if field.endswith(LOWER_BETTER_SUFFIXES) or field in LOWER_BETTER_NAMES:
            return "lower"
        if field.endswith(HIGHER_BETTER_SUFFIXES) or field.startswith(
                HIGHER_BETTER_PREFIXES):
            return "higher"
        # Numeric, but neither a key nor a known measurement: the
        # execution-shape counters (packed, phase2_parallel, cursors...).
        return "correctness"
    return "correctness"  # strings and booleans describe what ran


def row_key(row: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in row.items()
                        if k in KEY_FIELDS))


class Report:
    def __init__(self) -> None:
        self.failures: list[str] = []
        self.warnings: list[str] = []
        self.notes: list[str] = []

    def fail(self, msg: str) -> None:
        self.failures.append(msg)
        self._emit("error", msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)
        self._emit("warning", msg)

    def note(self, msg: str) -> None:
        self.notes.append(msg)
        print(f"note: {msg}")

    @staticmethod
    def _emit(level: str, msg: str) -> None:
        print(f"{level.upper()}: {msg}")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::{level}::{msg}")


def load(path: Path) -> dict:
    with path.open() as f:
        return json.load(f)


def provenance_matches(old: dict, new: dict, rep: Report, name: str) -> bool:
    ok = True
    for field in PROVENANCE_FIELDS:
        a = old.get("meta", {}).get(field)
        b = new.get("meta", {}).get(field)
        if a != b:
            rep.note(f"{name}: provenance differs on {field!r}: "
                     f"{a!r} (old) vs {b!r} (new)")
            ok = False
    return ok


def compare_doc(name: str, old: dict, new: dict, threshold: float,
                compare_perf: bool, rep: Report) -> None:
    if old.get("bench") != new.get("bench"):
        rep.fail(f"{name}: bench name changed: "
                 f"{old.get('bench')!r} -> {new.get('bench')!r}")
        return
    old_rows = {row_key(r): r for r in old.get("results", [])}
    new_rows = {row_key(r): r for r in new.get("results", [])}
    for key, old_row in old_rows.items():
        new_row = new_rows.get(key)
        ident = ", ".join(f"{k}={v}" for k, v in key)
        if new_row is None:
            rep.warn(f"{name}: row missing from new results ({ident})")
            continue
        for field, old_val in old_row.items():
            kind = classify(field, old_val)
            if kind == "key":
                continue
            new_val = new_row.get(field)
            if new_val is None:
                rep.warn(f"{name}: field {field!r} missing ({ident})")
                continue
            if kind == "correctness":
                if field in HW_SHAPE_FIELDS and not compare_perf:
                    continue  # hardware-following planner choice
                if old_val != new_val:
                    rep.fail(f"{name}: correctness field {field!r} changed "
                             f"{old_val!r} -> {new_val!r} ({ident})")
                continue
            if not compare_perf:
                continue
            if not isinstance(new_val, (int, float)) or isinstance(
                    new_val, bool):
                rep.warn(f"{name}: {field} is not numeric in fresh "
                         f"results ({new_val!r}) ({ident})")
                continue
            if not old_val > 0:
                # A zero or negative baseline cannot anchor a ratio; the
                # old silent skip here meant such a field was never gated
                # again. Say so -- under --strict that is a failure.
                rep.warn(f"{name}: {field} baseline is {old_val!r}, "
                         f"ratio gate skipped ({ident})")
                continue
            ratio = new_val / old_val
            if kind == "lower" and ratio > 1.0 + threshold:
                rep.warn(f"{name}: {field} regressed {ratio - 1.0:+.1%} "
                         f"({old_val:.4g} -> {new_val:.4g}) ({ident})")
            elif kind == "higher" and ratio < 1.0 - threshold:
                rep.warn(f"{name}: {field} regressed {ratio - 1.0:+.1%} "
                         f"({old_val:.4g} -> {new_val:.4g}) ({ident})")


def collect(path: Path) -> dict[str, Path]:
    if path.is_dir():
        return {p.name: p for p in sorted(path.glob("BENCH_*.json"))}
    return {path.name: path}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", type=Path, help="committed trajectory file/dir")
    ap.add_argument("new", type=Path, help="fresh results file/dir")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression that triggers a warning")
    ap.add_argument("--strict", action="store_true",
                    help="warnings become failures (local runs)")
    ap.add_argument("--lenient-cross-machine", action="store_true",
                    help="on provenance mismatch, skip perf comparison "
                         "instead of refusing (CI runners)")
    args = ap.parse_args()

    rep = Report()
    old_files = collect(args.old)
    new_files = collect(args.new)
    if not old_files:
        rep.warn(f"no BENCH_*.json under {args.old}")
    compared = 0
    stale = [name for name in old_files if name not in new_files]
    if stale:
        # A committed baseline nobody re-measures is a gate that stopped
        # gating: say exactly which benches went missing from the run.
        rep.warn("baseline(s) with no matching fresh run -- these benches "
                 "did not execute: " + ", ".join(stale))
    for name in sorted(new_files.keys() - old_files.keys()):
        rep.warn(f"{name}: fresh results have no committed baseline "
                 f"(commit one under bench/trajectory/ so it is gated)")
    for name, old_path in old_files.items():
        new_path = new_files.get(name)
        if new_path is None:
            continue  # already warned in the stale-baseline summary
        old_doc, new_doc = load(old_path), load(new_path)
        same_machine = provenance_matches(old_doc, new_doc, rep, name)
        if not same_machine and not args.lenient_cross_machine:
            print(f"REFUSED: {name}: provenance differs; perf numbers are "
                  "not comparable across machines/toolchains. Re-run on "
                  "matching hardware or pass --lenient-cross-machine to "
                  "check correctness fields only.")
            return 2
        if not same_machine:
            rep.note(f"{name}: cross-machine -- correctness fields only")
        compare_doc(name, old_doc, new_doc, args.threshold,
                    compare_perf=same_machine, rep=rep)
        compared += 1

    print(f"\ncompared {compared} document(s): "
          f"{len(rep.failures)} failure(s), {len(rep.warnings)} warning(s)")
    if rep.failures:
        return 1
    if rep.warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
