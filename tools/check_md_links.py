#!/usr/bin/env python3
"""Check that relative markdown links and link targets exist.

Scans every tracked *.md file for inline links/images ``[text](target)``
and reference definitions ``[ref]: target``, resolves relative targets
against the file's directory, and fails (exit 1) listing each target that
does not exist. External links (http/https/mailto) and pure in-page
anchors are skipped; an anchor suffix on a relative link is checked
against the target file's headings.

Stdlib only, so the CI docs job needs nothing beyond python3:

    python3 tools/check_md_links.py [root]
"""

import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "build-docs", "node_modules"}


def heading_anchors(path):
    """GitHub-style anchors of every heading in a markdown file."""
    anchors = set()
    with open(path, encoding="utf-8", errors="replace") as f:
        for line in f:
            m = re.match(r"\s{0,3}#{1,6}\s+(.*)", line)
            if not m:
                continue
            text = re.sub(r"[`*_\[\]()!]", "", m.group(1)).strip().lower()
            anchors.add(re.sub(r"\s+", "-", text))
    return anchors


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check(root):
    errors = []
    for md in md_files(root):
        text = open(md, encoding="utf-8", errors="replace").read()
        targets = INLINE.findall(text) + REFDEF.findall(text)
        for target in targets:
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path, _, anchor = target.partition("#")
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                errors.append(f"{md}: broken link -> {target}")
            elif anchor and resolved.endswith(".md"):
                if anchor.lower() not in heading_anchors(resolved):
                    errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = check(root)
    for err in errors:
        print(err, file=sys.stderr)
    count = sum(1 for _ in md_files(root))
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
