#!/usr/bin/env python3
"""Unit tests for bench_compare.py (run by ctest as bench_compare_py).

Covers the gate semantics that keep the perf trajectory honest:

  * --strict escalates the stale-baseline and missing-fresh-run warn
    paths to a non-zero exit, so a bench that silently stops running
    fails CI instead of rotting.
  * the zero/absent-baseline division path: a baseline measurement of 0
    (or a non-numeric fresh value) must neither crash the ratio gate nor
    silently drop the field from comparison forever -- it warns, and
    --strict turns that into a failure.
  * correctness-field changes fail regardless of --strict.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "bench_compare.py"

META = {"compiler": "gcc 12.2.0", "openmp": True, "hw_threads": 1}


def doc(bench: str, rows: list[dict]) -> dict:
    return {"bench": bench, "meta": dict(META), "results": rows}


def run(old: Path, new: Path, *flags: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(old), str(new), *flags],
        capture_output=True, text=True)


class BenchCompareTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.old_dir = root / "old"
        self.new_dir = root / "new"
        self.old_dir.mkdir()
        self.new_dir.mkdir()

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def write(self, where: Path, name: str, document: dict) -> None:
        (where / name).write_text(json.dumps(document))

    def test_identical_documents_pass_strict(self) -> None:
        d = doc("threads", [{"n": 1000, "t": 2, "median_ms": 2.0,
                             "packed": True}])
        self.write(self.old_dir, "BENCH_threads.json", d)
        self.write(self.new_dir, "BENCH_threads.json", d)
        p = run(self.old_dir, self.new_dir, "--strict")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_stale_baseline_warns_and_strict_escalates(self) -> None:
        self.write(self.old_dir, "BENCH_shard.json", doc("shard", []))
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("no matching fresh run", p.stdout)
        p = run(self.old_dir, self.new_dir, "--strict")
        self.assertEqual(p.returncode, 1,
                         "--strict must escalate a stale baseline")

    def test_missing_baseline_warns_and_strict_escalates(self) -> None:
        # A fresh bench nobody committed a baseline for is coverage that
        # never got gated; it must not pass --strict silently.
        d = doc("shard", [{"n": 1000, "variant": "ram", "median_ms": 1.0}])
        self.write(self.old_dir, "BENCH_other.json", doc("other", []))
        self.write(self.new_dir, "BENCH_other.json", doc("other", []))
        self.write(self.new_dir, "BENCH_shard.json", d)
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("no committed baseline", p.stdout)
        p = run(self.old_dir, self.new_dir, "--strict")
        self.assertEqual(p.returncode, 1,
                         "--strict must escalate a missing baseline")

    def test_zero_baseline_division_path_warns_not_crashes(self) -> None:
        old = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 0.0}])
        new = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 5.0}])
        self.write(self.old_dir, "BENCH_shard.json", old)
        self.write(self.new_dir, "BENCH_shard.json", new)
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("baseline is 0.0", p.stdout)
        self.assertIn("ratio gate skipped", p.stdout)
        p = run(self.old_dir, self.new_dir, "--strict")
        self.assertEqual(p.returncode, 1,
                         "--strict must escalate the ungateable field")

    def test_non_numeric_fresh_value_warns_not_crashes(self) -> None:
        old = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 2.0}])
        new = doc("shard", [{"n": 10, "variant": "ram",
                             "median_ms": "fast"}])
        self.write(self.old_dir, "BENCH_shard.json", old)
        self.write(self.new_dir, "BENCH_shard.json", new)
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("not numeric", p.stdout)

    def test_correctness_field_change_fails_without_strict(self) -> None:
        old = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 2.0,
                             "packed": True}])
        new = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 2.0,
                             "packed": False}])
        self.write(self.old_dir, "BENCH_shard.json", old)
        self.write(self.new_dir, "BENCH_shard.json", new)
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("correctness field", p.stdout)

    def test_measurement_regression_warns_then_strict_fails(self) -> None:
        old = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 2.0}])
        new = doc("shard", [{"n": 10, "variant": "ram", "median_ms": 3.0}])
        self.write(self.old_dir, "BENCH_shard.json", old)
        self.write(self.new_dir, "BENCH_shard.json", new)
        p = run(self.old_dir, self.new_dir)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("regressed", p.stdout)
        p = run(self.old_dir, self.new_dir, "--strict")
        self.assertEqual(p.returncode, 1)


if __name__ == "__main__":
    unittest.main()
