#include "baselines/anderson_miller.hpp"

#include <gtest/gtest.h>

#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

TEST(AndersonMiller, RankMatchesReferenceAcrossSizes) {
  Rng gen(1);
  for (const std::size_t n : testutil::sweep_sizes()) {
    const LinkedList l = random_list(n, gen);
    std::vector<value_t> out(n, -1);
    vm::Machine m;
    Rng coins(100 + n);
    anderson_miller_rank(m, l, out, coins);
    testutil::expect_scan_eq(out, reference_rank(l));
  }
}

TEST(AndersonMiller, ScanWithRandomValues) {
  Rng gen(2);
  for (const std::size_t n : {5u, 129u, 1000u, 5000u}) {
    const LinkedList l = random_list(n, gen, ValueInit::kUniformSmall);
    std::vector<value_t> out(n);
    vm::Machine m;
    Rng coins(n);
    anderson_miller_scan(m, l, std::span<value_t>(out), coins);
    testutil::expect_scan_eq(out, testutil::expected_scan(l, OpPlus{}));
  }
}

TEST(AndersonMiller, UnbiasedCoinStillCorrect) {
  Rng gen(3);
  const LinkedList l = random_list(2000, gen, ValueInit::kUniformSmall);
  std::vector<value_t> out(2000);
  vm::Machine m;
  Rng coins(4);
  AndersonMillerOptions opt;
  opt.male_bias = 0.5;
  anderson_miller_scan(m, l, std::span<value_t>(out), coins, OpPlus{}, opt);
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpPlus{}));
}

TEST(AndersonMiller, BiasedCoinNeedsFewerRounds) {
  // The paper's key optimization: male bias 0.9 cuts rounds vs 0.5.
  Rng gen(4);
  const std::size_t n = 30000;
  const LinkedList l = random_list(n, gen);
  auto rounds_for = [&](double bias) {
    std::vector<value_t> out(n);
    vm::Machine m;
    Rng coins(5);
    AndersonMillerOptions opt;
    opt.male_bias = bias;
    opt.serial_switch = 0;  // run contraction to the end for a fair count
    const AlgoStats s =
        anderson_miller_rank(m, l, out, coins, opt);
    testutil::expect_scan_eq(out, reference_rank(l));
    return s.rounds;
  };
  const auto biased = rounds_for(0.9);
  const auto unbiased = rounds_for(0.5);
  EXPECT_LT(biased, unbiased);
  // Roughly the 40% improvement the paper reports (we accept 25%+).
  EXPECT_LT(static_cast<double>(biased), 0.75 * static_cast<double>(unbiased));
}

TEST(AndersonMiller, FewQueues) {
  Rng gen(5);
  const LinkedList l = random_list(333, gen, ValueInit::kUniformSmall);
  std::vector<value_t> out(333);
  vm::Machine m;
  Rng coins(6);
  AndersonMillerOptions opt;
  opt.num_queues = 4;
  opt.serial_switch = 1;
  anderson_miller_scan(m, l, std::span<value_t>(out), coins, OpPlus{}, opt);
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpPlus{}));
}

TEST(AndersonMiller, MoreQueuesThanVertices) {
  Rng gen(6);
  const LinkedList l = random_list(50, gen);
  std::vector<value_t> out(50);
  vm::Machine m;
  Rng coins(7);
  AndersonMillerOptions opt;
  opt.num_queues = 1024;  // clamped to n internally
  anderson_miller_rank(m, l, out, coins, opt);
  testutil::expect_scan_eq(out, reference_rank(l));
}

TEST(AndersonMiller, NoSerialSwitchStillTerminates) {
  Rng gen(7);
  const LinkedList l = random_list(900, gen);
  std::vector<value_t> out(900);
  vm::Machine m;
  Rng coins(8);
  AndersonMillerOptions opt;
  opt.serial_switch = 0;
  anderson_miller_rank(m, l, out, coins, opt);
  testutil::expect_scan_eq(out, reference_rank(l));
}

TEST(AndersonMiller, LargeSerialSwitchDegeneratesToSerial) {
  Rng gen(8);
  const LinkedList l = random_list(700, gen, ValueInit::kUniformSmall);
  std::vector<value_t> out(700);
  vm::Machine m;
  Rng coins(9);
  AndersonMillerOptions opt;
  opt.serial_switch = 1 << 20;  // stop immediately, serial-finish everything
  const AlgoStats s =
      anderson_miller_scan(m, l, std::span<value_t>(out), coins, OpPlus{}, opt);
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpPlus{}));
  EXPECT_EQ(s.rounds, 0u);
}

TEST(AndersonMiller, MinMaxOperators) {
  Rng gen(9);
  const LinkedList l = random_list(800, gen, ValueInit::kSigned);
  std::vector<value_t> out(800);
  vm::Machine m;
  Rng coins(10);
  anderson_miller_scan(m, l, std::span<value_t>(out), coins, OpMax{});
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpMax{}));
}

TEST(AndersonMiller, CoinSeedInvariance) {
  Rng gen(10);
  const LinkedList l = random_list(1500, gen, ValueInit::kUniformSmall);
  const auto want = testutil::expected_scan(l, OpPlus{});
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    std::vector<value_t> out(1500);
    vm::Machine m;
    Rng coins(seed);
    anderson_miller_scan(m, l, std::span<value_t>(out), coins);
    testutil::expect_scan_eq(out, want);
  }
}

TEST(AndersonMiller, ThroughputNearOneVertexPerQueuePerRound) {
  Rng gen(11);
  const std::size_t n = 64000;
  const LinkedList l = random_list(n, gen);
  std::vector<value_t> out(n);
  vm::Machine m;
  Rng coins(12);
  AndersonMillerOptions opt;
  opt.serial_switch = 0;
  const AlgoStats s = anderson_miller_rank(m, l, out, coins, opt);
  // With bias 0.9 and q=128 queues, rounds should be near (n/q)/0.9 --
  // well under 2x of the ideal n/q.
  const double ideal = static_cast<double>(n) / 128.0;
  EXPECT_GT(static_cast<double>(s.rounds), ideal);
  EXPECT_LT(static_cast<double>(s.rounds), 2.0 * ideal);
}

}  // namespace
}  // namespace lr90
