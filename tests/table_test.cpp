#include "support/table.hpp"

#include <gtest/gtest.h>

namespace lr90 {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string s = t.render();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "longheader"});
  t.add_row({"12345", "y"});
  const std::string s = t.render();
  // Header line and data line should place column 2 at the same offset.
  const std::size_t nl1 = s.find('\n');
  const std::string header = s.substr(0, nl1);
  EXPECT_EQ(header.find("longheader"), 7u);  // "12345" width 5 + 2 spaces
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(TextTable::num(static_cast<long long>(-7)), "-7");
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, EmptyTableStillRendersHeader) {
  TextTable t({"solo"});
  const std::string s = t.render();
  EXPECT_NE(s.find("solo"), std::string::npos);
}

}  // namespace
}  // namespace lr90
