#include "baselines/miller_reif.hpp"

#include <gtest/gtest.h>

#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

TEST(MillerReif, RankMatchesReferenceAcrossSizes) {
  Rng gen(1);
  for (const std::size_t n : testutil::sweep_sizes()) {
    const LinkedList l = random_list(n, gen);
    std::vector<value_t> out(n, -1);
    vm::Machine m;
    Rng coins(1000 + n);
    miller_reif_rank(m, l, out, coins);
    testutil::expect_scan_eq(out, reference_rank(l));
  }
}

TEST(MillerReif, ScanWithRandomValues) {
  Rng gen(2);
  for (const std::size_t n : {3u, 10u, 500u, 3000u}) {
    const LinkedList l = random_list(n, gen, ValueInit::kUniformSmall);
    std::vector<value_t> out(n);
    vm::Machine m;
    Rng coins(n);
    miller_reif_scan(m, l, std::span<value_t>(out), coins);
    testutil::expect_scan_eq(out, testutil::expected_scan(l, OpPlus{}));
  }
}

TEST(MillerReif, CoinSeedDoesNotChangeTheAnswer) {
  Rng gen(3);
  const LinkedList l = random_list(400, gen, ValueInit::kUniformSmall);
  const auto want = testutil::expected_scan(l, OpPlus{});
  for (const std::uint64_t seed : {1ULL, 2ULL, 99ULL, 12345ULL}) {
    std::vector<value_t> out(400);
    vm::Machine m;
    Rng coins(seed);
    miller_reif_scan(m, l, std::span<value_t>(out), coins);
    testutil::expect_scan_eq(out, want);
  }
}

TEST(MillerReif, MinMaxOperators) {
  Rng gen(4);
  const LinkedList l = random_list(600, gen, ValueInit::kSigned);
  std::vector<value_t> out(600);
  vm::Machine m;
  Rng coins(5);
  miller_reif_scan(m, l, std::span<value_t>(out), coins, OpMin{});
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpMin{}));
  Rng coins2(6);
  miller_reif_scan(m, l, std::span<value_t>(out), coins2, OpMax{});
  testutil::expect_scan_eq(out, testutil::expected_scan(l, OpMax{}));
}

TEST(MillerReif, SplicesEveryInteriorVertexExactlyOnce) {
  Rng gen(5);
  const std::size_t n = 1000;
  const LinkedList l = random_list(n, gen);
  std::vector<value_t> out(n);
  vm::Machine m;
  Rng coins(7);
  const AlgoStats s = miller_reif_rank(m, l, out, coins);
  EXPECT_EQ(s.splices, n - 2);  // everything except head and tail
}

TEST(MillerReif, AboutFourAttemptsPerSplice) {
  // 1/4 of active vertices are spliced per round on average, so the total
  // active-vertex steps should be near 4n (paper Section 2.3).
  Rng gen(6);
  const std::size_t n = 20000;
  const LinkedList l = random_list(n, gen);
  std::vector<value_t> out(n);
  vm::Machine m;
  Rng coins(8);
  const AlgoStats s = miller_reif_rank(m, l, out, coins);
  const double steps_per_vertex =
      static_cast<double>(s.link_steps) / static_cast<double>(n);
  EXPECT_GT(steps_per_vertex, 3.0);
  EXPECT_LT(steps_per_vertex, 5.5);
}

TEST(MillerReif, RoundsAreLogarithmicish) {
  Rng gen(7);
  const std::size_t n = 10000;
  const LinkedList l = random_list(n, gen);
  std::vector<value_t> out(n);
  vm::Machine m;
  Rng coins(9);
  const AlgoStats s = miller_reif_rank(m, l, out, coins);
  // ~log_{4/3}(n) ~= 32 rounds for n = 10^4, plus straggler rounds.
  EXPECT_GT(s.rounds, 15u);
  EXPECT_LT(s.rounds, 150u);
}

TEST(MillerReif, SequentialLayoutWorks) {
  const LinkedList l = sequential_list(512, ValueInit::kOnes, nullptr);
  std::vector<value_t> out(512);
  vm::Machine m;
  Rng coins(10);
  miller_reif_rank(m, l, out, coins);
  testutil::expect_scan_eq(out, reference_rank(l));
}

TEST(MillerReif, SpaceIsLinearNotConstant) {
  Rng gen(8);
  const std::size_t n = 2048;
  const LinkedList l = random_list(n, gen);
  std::vector<value_t> out(n);
  vm::Machine m;
  Rng coins(11);
  const AlgoStats s = miller_reif_rank(m, l, out, coins);
  EXPECT_GE(s.extra_words, 2 * n);  // the Table II "> 2n" row
}

}  // namespace
}  // namespace lr90
