#include "lists/generators.hpp"

#include <gtest/gtest.h>

#include "lists/validate.hpp"

namespace lr90 {
namespace {

TEST(Generators, RandomListIsValidAtManySizes) {
  Rng rng(1);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 5u, 17u, 100u, 1000u}) {
    const LinkedList l = random_list(n, rng);
    EXPECT_TRUE(is_valid_list(l)) << "n=" << n;
    EXPECT_EQ(l.size(), n);
  }
}

TEST(Generators, RandomListDeterministicPerSeed) {
  Rng a(7), b(7);
  const LinkedList la = random_list(100, a);
  const LinkedList lb = random_list(100, b);
  EXPECT_TRUE(lists_equal(la, lb));
}

TEST(Generators, RandomListVariesAcrossSeeds) {
  Rng a(7), b(8);
  const LinkedList la = random_list(100, a);
  const LinkedList lb = random_list(100, b);
  EXPECT_FALSE(lists_equal(la, lb));
}

TEST(Generators, SequentialListOrderIsIdentity) {
  const LinkedList l = sequential_list(6);
  const auto order = order_of(l);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(is_valid_list(l));
}

TEST(Generators, ReversedListOrderIsReversed) {
  const LinkedList l = reversed_list(5);
  const auto order = order_of(l);
  EXPECT_EQ(order, (std::vector<index_t>{4, 3, 2, 1, 0}));
}

TEST(Generators, BlockedListValidAndBlockwiseSequential) {
  Rng rng(3);
  const LinkedList l = blocked_list(100, 10, rng);
  EXPECT_TRUE(is_valid_list(l));
  // Within a block of 10, consecutive vertices follow each other.
  const auto order = order_of(l);
  int sequential_steps = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    sequential_steps += order[i + 1] == order[i] + 1;
  EXPECT_GE(sequential_steps, 90 - 10);  // 9 of every 10 steps in-block
}

TEST(Generators, BlockedListUnevenBlocks) {
  Rng rng(4);
  const LinkedList l = blocked_list(23, 5, rng);
  EXPECT_TRUE(is_valid_list(l));
  EXPECT_EQ(l.size(), 23u);
}

TEST(Generators, OnesValues) {
  Rng rng(5);
  const LinkedList l = random_list(10, rng, ValueInit::kOnes);
  for (const value_t v : l.value) EXPECT_EQ(v, 1);
}

TEST(Generators, IndexValues) {
  const LinkedList l = sequential_list(4, ValueInit::kIndex);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(l.value[i], static_cast<value_t>(i));
}

TEST(Generators, UniformValuesInRange) {
  Rng rng(6);
  const LinkedList l = random_list(200, rng, ValueInit::kUniformSmall);
  for (const value_t v : l.value) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(Generators, SignedValuesCoverNegatives) {
  Rng rng(7);
  const LinkedList l = random_list(500, rng, ValueInit::kSigned);
  bool has_neg = false, has_pos = false;
  for (const value_t v : l.value) {
    has_neg |= v < 0;
    has_pos |= v > 0;
  }
  EXPECT_TRUE(has_neg);
  EXPECT_TRUE(has_pos);
}

TEST(Generators, ListFromExplicitOrder) {
  const std::vector<index_t> order{3, 1, 0, 2};
  const LinkedList l = list_from_order(order);
  EXPECT_EQ(order_of(l), order);
  EXPECT_EQ(l.head, 3u);
  EXPECT_EQ(l.next[2], 2u);  // tail self-loop
}

}  // namespace
}  // namespace lr90
