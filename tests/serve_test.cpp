// Concurrency coverage for the serving layer (serve/server.hpp):
// N client threads x M mixed rank/scan requests produce results
// bit-identical to a serial Engine; shutdown while draining resolves every
// future with a typed Status (never a broken promise, never a deadlock);
// pooled workspaces stop allocating after warmup; micro-batching coalesces
// under queue pressure. Runs under -fsanitize=thread in CI.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/euler_tour.hpp"
#include "lists/generators.hpp"
#include "serve/queue.hpp"
#include "serve/workspace_pool.hpp"
#include "shard/shard_file.hpp"

namespace lr90 {
namespace {

std::vector<LinkedList> test_lists() {
  std::vector<LinkedList> lists;
  Rng rng(11);
  for (const std::size_t n : {1u, 7u, 100u, 1000u, 5000u, 20000u})
    lists.push_back(random_list(n, rng));
  return lists;
}

/// The mixed request stream of client `c`: alternating ranks and scans
/// over the shared lists, operator varying by index.
std::vector<Request> client_stream(const std::vector<LinkedList>& lists,
                                   std::size_t c, std::size_t m) {
  static constexpr ScanOp kOps[] = {ScanOp::kPlus, ScanOp::kMin, ScanOp::kMax,
                                    ScanOp::kXor};
  std::vector<Request> reqs;
  reqs.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const LinkedList& list = lists[(c + i) % lists.size()];
    if ((c + i) % 2 == 0) {
      reqs.push_back(RankRequest{&list});
    } else {
      reqs.push_back(ScanRequest{&list, kOps[(c * 3 + i) % 4]});
    }
  }
  return reqs;
}

TEST(EngineServer, ConcurrentMixedRequestsMatchSerialEngine) {
  const std::vector<LinkedList> lists = test_lists();
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequests = 40;

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 4;
  EngineServer server(opt);

  std::vector<std::vector<RunResult>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<Request> reqs = client_stream(lists, c, kRequests);
      std::vector<std::future<RunResult>> futures;
      futures.reserve(reqs.size());
      for (const Request& req : reqs) futures.push_back(server.submit(req));
      for (auto& f : futures) got[c].push_back(f.get());
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();

  // Every result must be bit-identical to a serial reference run.
  Engine serial({.backend = BackendKind::kSerial});
  for (std::size_t c = 0; c < kClients; ++c) {
    const std::vector<Request> reqs = client_stream(lists, c, kRequests);
    ASSERT_EQ(got[c].size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(got[c][i].ok())
          << "client " << c << " request " << i << ": "
          << got[c][i].status.message;
      const RunResult want = serial.run(reqs[i]);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got[c][i].scan, want.scan) << "client " << c << " req " << i;
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequests);
  EXPECT_EQ(stats.completed, kClients * kRequests);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(EngineServer, ShutdownDrainsEveryQueuedJob) {
  const std::vector<LinkedList> lists = test_lists();
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  opt.batch_threshold = 1u << 30;  // no coalescing: one pop per job
  EngineServer server(opt);

  std::vector<std::future<RunResult>> futures;
  for (std::size_t i = 0; i < 200; ++i)
    futures.push_back(server.submit(RankRequest{&lists[i % lists.size()]}));
  server.shutdown();  // graceful: must run everything already accepted

  for (auto& f : futures) {
    const RunResult r = f.get();
    EXPECT_TRUE(r.ok()) << r.status.message;
  }
  EXPECT_EQ(server.stats().completed, 200u);
}

TEST(EngineServer, SubmitAfterShutdownResolvesUnavailable) {
  const std::vector<LinkedList> lists = test_lists();
  EngineServer server({.engine = {.backend = BackendKind::kHost},
                       .workers = 1});
  server.shutdown();
  EXPECT_FALSE(server.accepting());

  std::future<RunResult> f = server.submit(RankRequest{&lists[2]});
  const RunResult r = f.get();  // resolves immediately: typed, no throw
  EXPECT_EQ(r.status.code, StatusCode::kUnavailable);
  EXPECT_EQ(r.status.message, "server is shut down");
  EXPECT_GE(server.stats().rejected, 1u);
}

TEST(EngineServer, ShutdownNowFailsPendingJobsTyped) {
  const std::vector<LinkedList> lists = test_lists();
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  opt.batch_threshold = 1u << 30;
  EngineServer server(opt);

  std::vector<std::future<RunResult>> futures;
  for (std::size_t i = 0; i < 500; ++i)
    futures.push_back(server.submit(RankRequest{&lists.back()}));
  server.shutdown_now();

  std::size_t ran = 0, rejected = 0;
  for (auto& f : futures) {
    const RunResult r = f.get();  // every future resolves, none throws
    if (r.ok()) {
      ++ran;
    } else {
      ASSERT_EQ(r.status.code, StatusCode::kUnavailable);
      EXPECT_EQ(r.status.message, "server is shutting down");
      ++rejected;
    }
  }
  EXPECT_EQ(ran + rejected, 500u);
}

TEST(EngineServer, ConcurrentShutdownWithSubmittersNeverHangs) {
  // Clients keep submitting while another thread shuts the server down;
  // every future must still resolve (ok for drained jobs, kUnavailable for
  // rejected ones). Exercises the close/drain race under TSan.
  const std::vector<LinkedList> lists = test_lists();
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 2;
  opt.queue_capacity = 8;  // small: submitters block on back-pressure
  EngineServer server(opt);

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<RunResult>>> futures(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < 100; ++i)
        futures[c].push_back(server.submit(RankRequest{&lists[3]}));
    });
  }
  server.shutdown();  // races with the submitters by design
  for (auto& t : clients) t.join();

  for (auto& per_client : futures) {
    for (auto& f : per_client) {
      const RunResult r = f.get();
      EXPECT_TRUE(r.ok() || r.status.code == StatusCode::kUnavailable)
          << status_code_name(r.status.code);
    }
  }
}

TEST(EngineServer, RejectWhenFullResolvesUnavailable) {
  Rng rng(13);
  const LinkedList big = random_list(500000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  opt.queue_capacity = 1;
  opt.batch_threshold = 1u << 30;  // keep the queue occupied
  opt.max_batch = 1;
  opt.reject_when_full = true;
  EngineServer server(opt);

  std::vector<std::future<RunResult>> futures;
  for (std::size_t i = 0; i < 8; ++i)
    futures.push_back(server.submit(RankRequest{&big}));
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    const RunResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code, StatusCode::kUnavailable);
      EXPECT_EQ(r.status.message, "request queue full");
      ++rejected;
    }
  }
  EXPECT_GE(ok, 1u);        // the worker ran at least the first job
  EXPECT_GE(rejected, 1u);  // the burst outpaced a 1-deep queue
  EXPECT_EQ(server.stats().rejected, rejected);
}

TEST(EngineServer, MicroBatchingCoalescesUnderPressure) {
  Rng rng(17);
  const LinkedList big = random_list(300000, rng);
  const LinkedList small = random_list(256, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  opt.batch_threshold = 1;
  opt.max_batch = 64;
  EngineServer server(opt);

  // Occupy the worker, then burst; the backlog must be coalesced.
  std::future<RunResult> head = server.submit(RankRequest{&big});
  std::vector<std::future<RunResult>> burst;
  for (std::size_t i = 0; i < 128; ++i)
    burst.push_back(server.submit(RankRequest{&small}));
  ASSERT_TRUE(head.get().ok());
  for (auto& f : burst) ASSERT_TRUE(f.get().ok());
  server.shutdown();  // quiesce: batch counters settle after the promises

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 129u);
  EXPECT_LT(stats.batches, stats.completed);  // some batches carried > 1
  EXPECT_GT(stats.peak_batch, 1u);
  EXPECT_GT(stats.coalesced, 0u);
}

TEST(EngineServer, RequestCollapsingIsSemanticallyInvisible) {
  // Identical requests inside a batch share one engine run. Because runs
  // are deterministic (per-run reseeding), results with collapsing on must
  // be bit-identical to results with it off -- and to the serial engine.
  Rng rng(31);
  const LinkedList hot = random_list(30000, rng);
  Engine serial({.backend = BackendKind::kSerial});
  const RunResult want = serial.rank(hot);
  ASSERT_TRUE(want.ok());

  for (const bool collapse : {true, false}) {
    ServerOptions opt;
    opt.engine.backend = BackendKind::kHost;
    opt.workers = 1;
    opt.collapse_duplicates = collapse;
    EngineServer server(opt);

    // Occupy the worker so the hot-key burst coalesces into batches.
    std::future<RunResult> head = server.submit(RankRequest{&hot});
    std::vector<std::future<RunResult>> burst;
    for (std::size_t i = 0; i < 64; ++i)
      burst.push_back(server.submit(RankRequest{&hot}));
    ASSERT_TRUE(head.get().ok());
    for (auto& f : burst) {
      const RunResult r = f.get();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.scan, want.scan);
    }
    server.shutdown();
    if (collapse) {
      EXPECT_GT(server.stats().collapsed, 0u)
          << "a 64-deep hot-key backlog must collapse";
    } else {
      EXPECT_EQ(server.stats().collapsed, 0u);
    }
  }
}

TEST(EngineServer, PooledWorkspacesStopAllocatingAfterWarmup) {
  Rng rng(19);
  const LinkedList list = random_list(10000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.engine.threads = 2;  // force the sublist path so scratch is used
  opt.workers = 1;         // one engine: warmup deterministically covers it
  EngineServer server(opt);

  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  const std::uint64_t warm = server.stats().pool.allocations;

  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  server.shutdown();  // quiesce: batch counters settle after the promises
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.pool.allocations, warm)
      << "steady-state requests must not grow any pooled workspace";
  EXPECT_GT(stats.pool.reuse_hits, 0u);
  EXPECT_EQ(stats.pool.leases, stats.batches);
}

TEST(EngineServer, ServesEulerTourTreeWorkloads) {
  // The ported apps/euler_tour runs through the Engine facade, so its
  // tour lists can be served as ordinary requests: depths computed from a
  // server-side scan match the direct helper.
  Rng rng(23);
  const RootedTree tree = random_tree(2000, rng);
  const EulerTour tour = build_euler_tour(tree);

  EngineServer server({.engine = {.backend = BackendKind::kHost}});
  const RunResult scan = server.submit(ScanRequest{&tour.arcs}).get();
  ASSERT_TRUE(scan.ok());

  std::vector<value_t> depth(tree.size(), 0);
  for (std::size_t v = 0; v < tree.size(); ++v) {
    if (tour.down[v] != kNoVertex) depth[v] = scan.scan[tour.down[v]] + 1;
  }
  EXPECT_EQ(depth, tree_depths(tree));
}

TEST(EngineServer, ResetStatsZeroesPoolCountersWithoutReallocating) {
  // Regression: the pooled workspace allocation counters used to be
  // monotonic-only -- reset_stats() must zero them (and every serving
  // counter) while keeping the warmed buffers, so a post-reset steady
  // state reads zero allocations, not a fresh warmup.
  Rng rng(37);
  const LinkedList list = random_list(10000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.engine.threads = 2;  // force the sublist path so scratch is used
  opt.workers = 1;
  EngineServer server(opt);

  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  // A resolved future precedes the worker's own bookkeeping; poll until
  // the counters stabilize so the reset is genuinely quiescent.
  ServerStats warm = server.stats();
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const ServerStats s = server.stats();
    if (s.completed == 8 && s.batches == warm.batches &&
        s.peak_batch == warm.peak_batch && s.pool.leases == warm.pool.leases)
      break;
    warm = s;
  }
  EXPECT_GT(warm.submitted, 0u);
  EXPECT_GT(warm.pool.allocations, 0u);
  EXPECT_GT(warm.pool.leases, 0u);

  server.reset_stats();  // quiescent: counters stable, futures resolved
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.submitted, 0u);
  EXPECT_EQ(zeroed.completed, 0u);
  EXPECT_EQ(zeroed.batches, 0u);
  EXPECT_EQ(zeroed.coalesced, 0u);
  EXPECT_EQ(zeroed.collapsed, 0u);
  EXPECT_EQ(zeroed.peak_batch, 0u);
  EXPECT_EQ(zeroed.pool.allocations, 0u);
  EXPECT_EQ(zeroed.pool.reuse_hits, 0u);
  EXPECT_EQ(zeroed.pool.leases, 0u);

  // Same-shaped traffic after the reset counts from zero -- and the kept
  // warmed buffers mean it allocates nothing.
  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  server.shutdown();
  const ServerStats after = server.stats();
  EXPECT_EQ(after.submitted, 8u);
  EXPECT_EQ(after.completed, 8u);
  EXPECT_EQ(after.pool.allocations, 0u)
      << "reset must not throw away the warmed buffers";
  EXPECT_GT(after.pool.reuse_hits, 0u);
}

TEST(EngineServer, ReportsIntraRequestThreadPeak) {
  // The intra-request axis: every result's RunStats::host_threads feeds
  // the server's peak, so serve_throughput can report
  // workers x intra-threads as the parallelism actually used.
  Rng rng(43);
  const LinkedList list = random_list(20000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.engine.threads = 2;  // pinned intra-request parallelism
  opt.workers = 1;
  EngineServer server(opt);

  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  EXPECT_EQ(server.stats().intra_threads_peak, 2u);

  server.reset_stats();
  EXPECT_EQ(server.stats().intra_threads_peak, 0u);
  ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  server.shutdown();
  EXPECT_EQ(server.stats().intra_threads_peak, 2u);
}

TEST(EngineServer, QueueDepthHighWaterAndPerKindCounters) {
  // The counters the network front door surfaces on its stats endpoint:
  // queue_depth_hwm is tracked under the queue lock at push time, so a
  // single successful submit guarantees hwm >= 1 (deterministically --
  // no race against the worker draining it first), and rank/scan submits
  // are counted per kind. reset_stats() re-bases all of them.
  Rng rng(51);
  const LinkedList list = random_list(2000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  EngineServer server(opt);

  ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  ASSERT_TRUE(server.submit(RankRequest{&list}).get().ok());
  ASSERT_TRUE(server.submit(ScanRequest{&list, ScanOp::kXor}).get().ok());
  ServerStats s = server.stats();
  EXPECT_GE(s.queue_depth_hwm, 1u);
  EXPECT_EQ(s.rank_requests, 2u);
  EXPECT_EQ(s.scan_requests, 1u);

  server.reset_stats();
  s = server.stats();
  EXPECT_EQ(s.queue_depth_hwm, 0u) << "reset must re-base the high water";
  EXPECT_EQ(s.rank_requests, 0u);
  EXPECT_EQ(s.scan_requests, 0u);

  ASSERT_TRUE(server.submit(ScanRequest{&list, ScanOp::kMin}).get().ok());
  server.shutdown();
  s = server.stats();
  EXPECT_GE(s.queue_depth_hwm, 1u);
  EXPECT_EQ(s.rank_requests, 0u);
  EXPECT_EQ(s.scan_requests, 1u);
}

TEST(EngineServer, CallbackSubmitMatchesFutureSubmit) {
  // The callback flavour of submit() -- the event loop's integration
  // point -- must deliver exactly the result the future flavour does,
  // exactly once, including on the rejection paths.
  Rng rng(52);
  const LinkedList list = random_list(5000, rng);
  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 2;
  EngineServer server(opt);

  const RunResult want = server.submit(RankRequest{&list}).get();
  ASSERT_TRUE(want.ok());

  constexpr std::size_t kJobs = 16;
  std::mutex mu;
  std::vector<RunResult> got;
  std::condition_variable cv;
  for (std::size_t i = 0; i < kJobs; ++i) {
    server.submit(RankRequest{&list}, [&](RunResult&& r) {
      std::lock_guard<std::mutex> lock(mu);
      got.push_back(std::move(r));
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return got.size() == kJobs; }));
  }
  for (const RunResult& r : got) {
    ASSERT_TRUE(r.ok()) << r.status.message;
    EXPECT_EQ(r.scan, want.scan);
  }

  // Rejection after shutdown still invokes the callback (exactly once,
  // inline) with a typed kUnavailable.
  server.shutdown();
  bool called = false;
  server.submit(RankRequest{&list}, [&](RunResult&& r) {
    called = true;
    EXPECT_EQ(r.status.code, StatusCode::kUnavailable);
  });
  EXPECT_TRUE(called);
}

TEST(EngineServer, CollapsingKeysOnOperatorIdentity) {
  // A hot key served under two different operators must collapse within
  // each operator but never across them: seg-sum answers are not plus
  // answers. Occupy the worker so the mixed burst lands in one backlog.
  Rng rng(41);
  const LinkedList big = random_list(300000, rng);
  LinkedList hot = random_list(20000, rng, ValueInit::kSigned);

  Engine serial({.backend = BackendKind::kSerial});
  const RunResult want_plus = serial.run(OpRequest{&hot, ScanOp::kPlus});
  const RunResult want_seg = serial.run(OpRequest{&hot, ScanOp::kSegSum});
  ASSERT_TRUE(want_plus.ok());
  ASSERT_TRUE(want_seg.ok());

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  EngineServer server(opt);

  std::future<RunResult> head = server.submit(RankRequest{&big});
  std::vector<std::future<RunResult>> plus, seg;
  for (std::size_t i = 0; i < 32; ++i) {
    plus.push_back(server.submit(OpRequest{&hot, ScanOp::kPlus}));
    seg.push_back(server.submit(OpRequest{&hot, ScanOp::kSegSum}));
  }
  ASSERT_TRUE(head.get().ok());
  for (auto& f : plus) {
    const RunResult r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.scan, want_plus.scan);
  }
  for (auto& f : seg) {
    const RunResult r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.scan, want_seg.scan);
  }
  server.shutdown();
  EXPECT_GT(server.stats().collapsed, 0u)
      << "a 64-deep two-key backlog must collapse within each key";
}

TEST(EngineServer, SnapshotHotKeySteadyStateDoesZeroPacksAndZeroRuns) {
  // The tentpole gate at unit level: once a snapshot-addressed hot key is
  // warm, repeats are answered from the memoized-result cache inline at
  // submit() -- zero queue traffic, zero engine runs, zero packed-slab
  // builds. reset_stats() must zero the cumulative cache counters while
  // keeping the warmed entries resident (gauges follow content).
  Rng rng(61);
  const LinkedList list = random_list(20000, rng);
  Engine serial({.backend = BackendKind::kSerial});
  const RunResult want = serial.rank(list);
  ASSERT_TRUE(want.ok());

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  EngineServer server(opt);

  SnapshotHandle handle;
  ASSERT_TRUE(server.register_snapshot(list, handle).ok());
  SnapshotRequest hot;
  hot.snapshot_id = handle.snapshot_id;
  hot.rank = true;

  // Warm: the first request is the one real engine run.
  const RunResult first = server.submit(hot).get();
  ASSERT_TRUE(first.ok()) << first.status.message;
  EXPECT_EQ(first.scan, want.scan);
  // A resolved future precedes the worker's bookkeeping (including the
  // post-run cache inserts); poll until the memo landed.
  while (server.stats().completed != 1 ||
         server.stats().cache_resident_entries == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ServerStats warm = server.stats();
  EXPECT_EQ(warm.result_misses, 1u);
  EXPECT_EQ(warm.result_hits, 0u);
  EXPECT_GT(warm.cache_resident_entries, 0u);
  EXPECT_GT(warm.cache_resident_bytes, 0u);
  EXPECT_EQ(warm.snapshots_live, 1u);

  server.reset_stats();
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.result_hits, 0u);
  EXPECT_EQ(zeroed.result_misses, 0u);
  EXPECT_EQ(zeroed.result_evictions, 0u);
  EXPECT_EQ(zeroed.slab_hits, 0u);
  EXPECT_EQ(zeroed.slab_misses, 0u);
  EXPECT_EQ(zeroed.slab_evictions, 0u);
  EXPECT_EQ(zeroed.snapshot_updates, 0u);
  EXPECT_EQ(zeroed.stale_rejections, 0u);
  EXPECT_EQ(zeroed.pool.packed_builds, 0u);
  EXPECT_EQ(zeroed.cache_resident_entries, warm.cache_resident_entries)
      << "a stats reset must not cool the warmed caches";
  EXPECT_EQ(zeroed.cache_resident_bytes, warm.cache_resident_bytes);
  EXPECT_EQ(zeroed.snapshots_live, 1u) << "gauges follow content";

  // Steady state: every repeat is an inline memo hit.
  constexpr std::size_t kRepeats = 16;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    const RunResult r = server.submit(hot).get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.scan, want.scan);
    EXPECT_EQ(r.stats.snapshot_generation, handle.generation);
  }
  server.shutdown();
  const ServerStats steady = server.stats();
  EXPECT_EQ(steady.result_hits, kRepeats);
  EXPECT_EQ(steady.result_misses, 0u);
  EXPECT_EQ(steady.submitted, 0u) << "memo hits must never enter the queue";
  EXPECT_EQ(steady.completed, 0u) << "steady state runs zero engine jobs";
  EXPECT_EQ(steady.pool.packed_builds, 0u)
      << "steady state builds zero packed slabs";
}

TEST(EngineServer, SnapshotSpillRootPinsReusesAndDropsShardFiles) {
  // The out-of-core serving lifecycle: with shard_spill_root set, a
  // sharded snapshot run keeps its shard files in the generation-stamped
  // directory (so repeat runs reuse them instead of rewriting the list),
  // and update/drop reclaim every generation's directory of the id
  // alongside the cache invalidation.
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "lr90-serve-spill-test";
  fs::remove_all(root);

  Rng rng(77);
  const LinkedList list = random_list(40000, rng);
  Engine serial({.backend = BackendKind::kSerial});
  const RunResult want = serial.rank(list);
  ASSERT_TRUE(want.ok());

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 1;
  opt.result_cache_bytes = 0;       // every repeat must reach the engine
  opt.engine.shard.shards = 4;      // pin the sharded tier on
  opt.engine.shard.byte_budget = 1; // squeeze: every shard load spills
  opt.shard_spill_root = root.string();
  EngineServer server(opt);

  SnapshotHandle handle;
  ASSERT_TRUE(server.register_snapshot(list, handle).ok());
  SnapshotRequest req;
  req.snapshot_id = handle.snapshot_id;
  req.rank = true;

  const RunResult first = server.submit(req).get();
  ASSERT_TRUE(first.ok()) << first.status.message;
  EXPECT_EQ(first.scan, want.scan);
  EXPECT_EQ(first.stats.shard_count, 4u);
  EXPECT_TRUE(first.stats.shard_spilled);
  const fs::path gen1 = shard::snapshot_spill_dir(
      root.string(), handle.snapshot_id, handle.generation);
  EXPECT_TRUE(fs::exists(gen1 / shard::shard_file_name(0)))
      << "snapshot shard files must be pinned, not ephemeral";

  const RunResult repeat = server.submit(req).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.scan, want.scan);
  const ServerStats s = server.stats();
  EXPECT_GE(s.sharded_runs, 2u);
  EXPECT_GT(s.shard_spills, 0u);

  // Update: the old generation's directory is reclaimed; the new
  // generation's run pins its own.
  const LinkedList fresh = random_list(30000, rng);
  SnapshotHandle updated;
  ASSERT_TRUE(
      server.update_snapshot(handle.snapshot_id, fresh, updated).ok());
  EXPECT_FALSE(fs::exists(gen1));
  const RunResult second = server.submit(req).get();
  ASSERT_TRUE(second.ok()) << second.status.message;
  EXPECT_EQ(second.scan, serial.rank(fresh).scan);
  const fs::path gen2 = shard::snapshot_spill_dir(
      root.string(), handle.snapshot_id, updated.generation);
  EXPECT_TRUE(fs::exists(gen2));

  EXPECT_TRUE(server.drop_snapshot(handle.snapshot_id));
  EXPECT_FALSE(fs::exists(gen2));
  server.shutdown();
  fs::remove_all(root);
}

TEST(EngineServer, SnapshotUpdateRaceNeverServesAStaleGeneration) {
  // The TSan battery: 8 clients hammer one hot snapshot key while a
  // writer loops update(). Coherence contract under race: once update()
  // to generation G has RETURNED, every later response is stamped >= G,
  // and every response's payload is bit-exact for its stamped generation
  // -- never a torn slab read, never old bytes under a new stamp. The
  // per-generation value sets make any cross-generation mixing visible:
  // generation g's list holds the constant value g, so its plus-scan is
  // exactly g * rank, elementwise.
  Rng rng(67);
  const LinkedList base = random_list(2000, rng, ValueInit::kOnes);
  Engine serial({.backend = BackendKind::kSerial});
  const RunResult base_rank = serial.rank(base);
  ASSERT_TRUE(base_rank.ok());

  ServerOptions opt;
  opt.engine.backend = BackendKind::kHost;
  opt.workers = 2;
  EngineServer server(opt);

  SnapshotHandle handle;
  ASSERT_TRUE(server.register_snapshot(base, handle).ok());
  const std::uint64_t id = handle.snapshot_id;
  constexpr std::uint64_t kGenerations = 8;

  // The writer publishes its floor only AFTER update() returns: readers
  // that observe floor F must never be answered by a generation < F.
  std::atomic<std::uint64_t> floor{1};
  std::thread writer([&] {
    for (std::uint64_t g = 2; g <= kGenerations; ++g) {
      LinkedList next = base;
      for (value_t& v : next.value) v = static_cast<value_t>(g);
      SnapshotHandle h;
      ASSERT_TRUE(server.update_snapshot(id, next, h).ok());
      ASSERT_EQ(h.generation, g);
      floor.store(g, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 40;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::uint64_t seen = floor.load(std::memory_order_acquire);
        SnapshotRequest req;
        req.snapshot_id = id;
        req.rank = false;
        req.op = ScanOp::kPlus;  // current generation, whatever it is
        const RunResult r = server.submit(req).get();
        ASSERT_TRUE(r.ok()) << r.status.message;
        const std::uint64_t g = r.stats.snapshot_generation;
        ASSERT_GE(g, seen) << "a generation published before the submit "
                              "must never be un-observed";
        ASSERT_LE(g, kGenerations);
        ASSERT_EQ(r.scan.size(), base_rank.scan.size());
        for (std::size_t v = 0; v < r.scan.size(); ++v) {
          ASSERT_EQ(r.scan[v],
                    static_cast<value_t>(g) * base_rank.scan[v])
              << "stamped generation " << g << " with foreign bytes at "
              << v;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  writer.join();
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.snapshot_updates, kGenerations - 1);
  EXPECT_GT(stats.result_hits + stats.slab_hits, 0u)
      << "the hot key must have been served from the caches at least once";
}

TEST(BoundedQueue, AdaptiveBatchPop) {
  serve::BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) {
    int x = i;
    ASSERT_TRUE(q.push(x));
  }
  std::vector<int> out;
  // Depth 10 > threshold 2: one critical section takes up to max_batch.
  EXPECT_EQ(q.pop_batch(out, /*batch_threshold=*/2, /*max_batch=*/4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Depth 6 <= threshold 8: latency mode, single item.
  EXPECT_EQ(q.pop_batch(out, /*batch_threshold=*/8, /*max_batch=*/4), 1u);
  EXPECT_EQ(out.back(), 4);
  q.close();
  int rejected = 99;
  EXPECT_FALSE(q.push(rejected));
  EXPECT_EQ(rejected, 99);  // rejected items stay with the caller
  // Drain continues after close...
  while (q.pop_batch(out, 2, 4) != 0) {
  }
  EXPECT_EQ(out.size(), 10u);  // ...until every queued item came out
}

TEST(BoundedQueue, CapacityOneBackpressuresAndDeliversInOrder) {
  // The degenerate bound: every push after the first must wait for a pop,
  // and try_push must observe the single slot exactly.
  serve::BoundedQueue<int> q(1);
  EXPECT_EQ(q.capacity(), 1u);
  int first = 0;
  ASSERT_TRUE(q.push(first));
  int probe = 99;
  EXPECT_FALSE(q.try_push(probe));  // full at depth 1
  EXPECT_EQ(probe, 99);             // rejected items stay with the caller

  std::vector<int> got;
  std::thread producer([&] {
    for (int i = 1; i <= 50; ++i) {
      int x = i;
      ASSERT_TRUE(q.push(x));  // blocks whenever the slot is taken
    }
    q.close();
  });
  std::vector<int> out;
  while (q.pop_batch(out, /*batch_threshold=*/1, /*max_batch=*/8) != 0) {
  }
  producer.join();
  ASSERT_EQ(out.size(), 51u);  // the pre-filled 0 plus 1..50
  for (int i = 0; i <= 50; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(BoundedQueue, TryPushUnderContentionConservesEveryItem) {
  // reject_when_full semantics under real contention: several producers
  // spin on try_push against a tiny queue while one consumer drains.
  // Every accepted item must come out exactly once; rejections must only
  // ever happen at observed-full, and nothing deadlocks.
  serve::BoundedQueue<int> q(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        if (q.try_push(item)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
          std::this_thread::yield();  // full: give the consumer a turn
        }
      }
    });
  }
  std::vector<int> out;
  std::thread consumer([&] {
    while (q.pop_batch(out, /*batch_threshold=*/1, /*max_batch=*/3) != 0) {
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(accepted.load()));
  std::sort(out.begin(), out.end());
  EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end())
      << "an item was delivered twice";
}

TEST(BoundedQueue, DrainNowRacingBatchPopLosesNothing) {
  // Non-graceful shutdown steals the backlog out from under a consumer
  // blocked in (or racing into) pop_batch: every pushed item must end up
  // in exactly one of the two, and the consumer must observe termination.
  for (int round = 0; round < 20; ++round) {
    serve::BoundedQueue<int> q(64);
    for (int i = 0; i < 32; ++i) {
      int x = i;
      ASSERT_TRUE(q.push(x));
    }
    std::vector<int> popped;
    std::thread consumer([&] {
      // Keeps batch-popping until close-and-drained.
      while (q.pop_batch(popped, /*batch_threshold=*/2, /*max_batch=*/5) !=
             0) {
      }
    });
    q.close();
    const std::vector<int> drained = q.drain_now();
    consumer.join();
    EXPECT_EQ(popped.size() + drained.size(), 32u);
    std::vector<int> all(popped);
    all.insert(all.end(), drained.begin(), drained.end());
    std::sort(all.begin(), all.end());
    for (int i = 0; i < 32; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
  }

  // And a consumer already asleep on an empty queue wakes on close.
  serve::BoundedQueue<int> empty(4);
  std::vector<int> none;
  std::thread sleeper([&] { EXPECT_EQ(empty.pop_batch(none, 1, 4), 0u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  empty.close();
  sleeper.join();
  EXPECT_TRUE(none.empty());
}

TEST(WorkspacePool, LeasesBlockAndAggregateStats) {
  // threads = 2 with n >= 4096 forces the sublist path even on a 1-core
  // machine, so the engines actually exercise their workspaces.
  serve::WorkspacePool pool({.backend = BackendKind::kHost, .threads = 2}, 2);
  EXPECT_EQ(pool.size(), 2u);
  Rng rng(29);
  const LinkedList list = random_list(10000, rng);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    EXPECT_TRUE(a->rank(list).ok());
    EXPECT_TRUE(b->rank(list).ok());
  }
  auto c = pool.acquire();  // released leases are reacquirable
  EXPECT_TRUE(c->rank(list).ok());
  const serve::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.leases, 3u);
  EXPECT_GT(stats.reuse_hits + stats.allocations, 0u);
}

}  // namespace
}  // namespace lr90
