#include "core/api.hpp"

#include <gtest/gtest.h>

// These tests pin the legacy shims' contract for their final deprecation
// release; calling them here is the point.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

TEST(Api, AutoDispatchBySize) {
  EXPECT_EQ(resolve_auto(10, Method::kAuto), Method::kSerial);
  EXPECT_EQ(resolve_auto(kAutoSerialMax, Method::kAuto), Method::kSerial);
  EXPECT_EQ(resolve_auto(kAutoSerialMax + 1, Method::kAuto), Method::kWyllie);
  EXPECT_EQ(resolve_auto(kAutoWyllieMax + 1, Method::kAuto),
            Method::kReidMiller);
  EXPECT_EQ(resolve_auto(5, Method::kWyllie), Method::kWyllie);
}

TEST(Api, AllMethodsAgreeOnRank) {
  Rng rng(1);
  const LinkedList l = random_list(3000, rng);
  const auto want = reference_rank(l);
  for (const Method method :
       {Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller,
        Method::kReidMillerEncoded}) {
    SimOptions opt;
    opt.method = method;
    const SimResult r = sim_list_rank(l, opt);
    EXPECT_EQ(r.method_used, method);
    testutil::expect_scan_eq(r.scan, want);
    EXPECT_GT(r.cycles, 0.0) << method_name(method);
  }
}

TEST(Api, AllMethodsAgreeOnScan) {
  Rng rng(2);
  const LinkedList l = random_list(2000, rng, ValueInit::kUniformSmall);
  const auto want = testutil::expected_scan(l, OpPlus{});
  for (const Method method :
       {Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller}) {
    SimOptions opt;
    opt.method = method;
    const SimResult r = sim_list_scan(l, opt);
    testutil::expect_scan_eq(r.scan, want);
  }
}

TEST(Api, EncodedRejectsScan) {
  Rng rng(3);
  const LinkedList l = random_list(100, rng);
  SimOptions opt;
  opt.method = Method::kReidMillerEncoded;
  EXPECT_THROW(sim_list_scan(l, opt), std::invalid_argument);
}

TEST(Api, InputListIsNotModified) {
  Rng rng(4);
  const LinkedList l = random_list(5000, rng, ValueInit::kUniformSmall);
  const LinkedList copy = l;
  SimOptions opt;
  opt.method = Method::kReidMiller;
  sim_list_scan(l, opt);
  EXPECT_TRUE(lists_equal(l, copy));
}

TEST(Api, NsConsistentWithCycles) {
  Rng rng(5);
  const LinkedList l = random_list(4000, rng);
  const SimResult r = sim_list_rank(l);
  EXPECT_NEAR(r.ns, r.cycles * 4.2, 1e-6);
  EXPECT_NEAR(r.ns_per_vertex, r.ns / 4000.0, 1e-9);
}

TEST(Api, EmptyAndSingletonLists) {
  LinkedList empty;
  const SimResult r0 = sim_list_rank(empty);
  EXPECT_TRUE(r0.scan.empty());

  LinkedList one;
  one.next = {0};
  one.value = {7};
  one.head = 0;
  const SimResult r1 = sim_list_scan(one);
  ASSERT_EQ(r1.scan.size(), 1u);
  EXPECT_EQ(r1.scan[0], 0);
}

TEST(Api, ProcessorsReduceSimulatedTime) {
  Rng rng(6);
  const LinkedList l = random_list(200000, rng);
  SimOptions o1;
  o1.method = Method::kReidMiller;
  o1.processors = 1;
  SimOptions o8 = o1;
  o8.processors = 8;
  const double t1 = sim_list_rank(l, o1).ns;
  const double t8 = sim_list_rank(l, o8).ns;
  EXPECT_LT(t8, t1 / 4.0);
}

TEST(Api, MethodNamesAreStable) {
  EXPECT_STREQ(method_name(Method::kSerial), "serial");
  EXPECT_STREQ(method_name(Method::kWyllie), "wyllie");
  EXPECT_STREQ(method_name(Method::kReidMiller), "reid-miller");
}

TEST(Api, SeedChangesNothingButCost) {
  Rng rng(7);
  const LinkedList l = random_list(10000, rng);
  SimOptions a;
  a.method = Method::kReidMiller;
  a.seed = 1;
  SimOptions b = a;
  b.seed = 999;
  const SimResult ra = sim_list_rank(l, a);
  const SimResult rb = sim_list_rank(l, b);
  testutil::expect_scan_eq(ra.scan, rb.scan);
}

}  // namespace
}  // namespace lr90
