// Wire-codec contract (net/wire.hpp): seeded round-trip property tests
// for every request kind and response body, plus the corruption harness --
// truncated frames, oversized length prefixes, bad magic/version/kind,
// and junk payloads must all come back as typed WireErrors without ever
// reading past the buffer. CI runs this suite under ASan+UBSan (the
// asan-ubsan job runs the full ctest registry), which is what turns
// "no reads past the buffer" from a comment into a checked property.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "lists/generators.hpp"
#include "net/retry.hpp"
#include "support/rng.hpp"

namespace lr90::net {
namespace {

/// Parses a buffer that must hold exactly one well-formed frame.
FrameView must_parse(const std::vector<std::uint8_t>& buf) {
  FrameView frame;
  std::size_t frame_len = 0;
  const WireError e = parse_frame(buf.data(), buf.size(), frame, frame_len);
  EXPECT_EQ(e, WireError::kOk) << wire_error_name(e);
  EXPECT_EQ(frame_len, buf.size());
  return frame;
}

void expect_lists_equal(const LinkedList& a, const LinkedList& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.head, b.head);
  EXPECT_EQ(a.next, b.next);
  EXPECT_EQ(a.value, b.value);
}

constexpr std::size_t kSizes[] = {0, 1, 2, 13, 997, 4096};

TEST(WireCodec, RankRequestRoundTripsAllSizes) {
  Rng rng(1234);
  for (const std::size_t n : kSizes) {
    const LinkedList list = random_list(n, rng);
    std::vector<std::uint8_t> buf;
    encode_rank_request(buf, /*request_id=*/7 + n, list,
                        Method::kReidMiller);
    const FrameView frame = must_parse(buf);
    EXPECT_EQ(frame.kind, MsgKind::kRankRequest);
    RequestFrame req;
    ASSERT_EQ(decode_request(frame, req), WireError::kOk);
    EXPECT_EQ(req.request_id, 7 + n);
    EXPECT_EQ(req.method, Method::kReidMiller);
    expect_lists_equal(req.list, list);
  }
}

TEST(WireCodec, ScanRequestRoundTripsEveryOperator) {
  Rng rng(99);
  for (const ScanOp op : kAllScanOps) {
    const LinkedList list = random_list(101, rng);
    std::vector<std::uint8_t> buf;
    encode_scan_request(buf, 42, list, op, Method::kAuto);
    RequestFrame req;
    ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
    EXPECT_EQ(req.kind, MsgKind::kScanRequest);
    EXPECT_EQ(req.op, op);
    EXPECT_EQ(req.method, Method::kAuto);
    expect_lists_equal(req.list, list);
  }
}

TEST(WireCodec, PlainRequestsRoundTrip) {
  for (const MsgKind kind :
       {MsgKind::kStatsRequest, MsgKind::kHealthRequest}) {
    std::vector<std::uint8_t> buf;
    encode_plain_request(buf, kind, 3);
    RequestFrame req;
    ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
    EXPECT_EQ(req.kind, kind);
    EXPECT_EQ(req.request_id, 3u);
  }
}

TEST(WireCodec, ResponsesRoundTripEveryBodyKind) {
  // kValues with negative and extreme values (the codec must be exact
  // over the full int64 range, not just ranks).
  std::vector<value_t> values = {0, -1, 42, INT64_MIN, INT64_MAX};
  std::vector<std::uint8_t> buf;
  encode_values_response(buf, 9, WireStatus::kOk, values);
  ResponseFrame resp;
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.request_id, 9u);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.body, BodyKind::kValues);
  EXPECT_EQ(resp.values, values);

  buf.clear();
  encode_text_response(buf, 10, WireStatus::kInvalidInput,
                       "two heads\n");
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.status, WireStatus::kInvalidInput);
  EXPECT_EQ(resp.body, BodyKind::kText);
  EXPECT_EQ(resp.text, "two heads\n");

  buf.clear();
  encode_retry_response(buf, 11, 250);
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.status, WireStatus::kRetryAfter);
  EXPECT_EQ(resp.body, BodyKind::kRetry);
  EXPECT_EQ(resp.retry_after_ms, 250u);

  buf.clear();
  encode_status_response(buf, 12, WireStatus::kShuttingDown);
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.status, WireStatus::kShuttingDown);
  EXPECT_EQ(resp.body, BodyKind::kNone);
}

TEST(WireCodec, SeededRandomRoundTrips) {
  // Property sweep: random lists, methods, and ops encode->parse->decode
  // bit-exactly. The reproducing seed is in every failure message.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 1 + rng.next_u64() % 2000;
    const LinkedList list = random_list(n, rng);
    const auto method = static_cast<Method>(rng.next_u64() % 7);
    const auto op = static_cast<ScanOp>(rng.next_u64() % 7);
    const auto id = static_cast<std::uint32_t>(rng.next_u64());
    std::vector<std::uint8_t> buf;
    const bool rank = rng.next_u64() % 2 == 0;
    if (rank) {
      encode_rank_request(buf, id, list, method);
    } else {
      encode_scan_request(buf, id, list, op, method);
    }
    RequestFrame req;
    ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk)
        << "seed " << seed;
    EXPECT_EQ(req.request_id, id) << "seed " << seed;
    EXPECT_EQ(req.method, method) << "seed " << seed;
    if (!rank) EXPECT_EQ(req.op, op) << "seed " << seed;
    expect_lists_equal(req.list, list);
  }
}

TEST(WireCodec, SnapshotAdminRequestsRoundTrip) {
  Rng rng(4242);
  const LinkedList list = random_list(211, rng);

  std::vector<std::uint8_t> buf;
  encode_register_snapshot_request(buf, 21, list);
  RequestFrame req;
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.kind, MsgKind::kRegisterSnapshotRequest);
  EXPECT_EQ(req.request_id, 21u);
  expect_lists_equal(req.list, list);

  buf.clear();
  encode_update_snapshot_request(buf, 22, 0xDEADBEEFCAFEF00DULL, list);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.kind, MsgKind::kUpdateSnapshotRequest);
  EXPECT_EQ(req.snapshot_id, 0xDEADBEEFCAFEF00DULL);
  expect_lists_equal(req.list, list);

  buf.clear();
  encode_release_snapshot_request(buf, 23, 0xFFFFFFFFFFFFFFFFULL);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.kind, MsgKind::kReleaseSnapshotRequest);
  EXPECT_EQ(req.snapshot_id, 0xFFFFFFFFFFFFFFFFULL);
}

TEST(WireCodec, SnapshotRunRequestsRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_snapshot_rank_request(buf, 31, /*snapshot_id=*/5,
                               /*generation=*/0, Method::kReidMiller);
  RequestFrame req;
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.kind, MsgKind::kSnapshotRankRequest);
  EXPECT_EQ(req.snapshot_id, 5u);
  EXPECT_EQ(req.generation, 0u);
  EXPECT_EQ(req.method, Method::kReidMiller);

  for (const ScanOp op : kAllScanOps) {
    buf.clear();
    encode_snapshot_scan_request(buf, 32, /*snapshot_id=*/9,
                                 /*generation=*/17, op);
    ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
    EXPECT_EQ(req.kind, MsgKind::kSnapshotScanRequest);
    EXPECT_EQ(req.snapshot_id, 9u);
    EXPECT_EQ(req.generation, 17u);
    EXPECT_EQ(req.op, op);
    EXPECT_EQ(req.method, Method::kAuto);
  }
}

TEST(WireCodec, SnapshotResponseRoundTrips) {
  std::vector<std::uint8_t> buf;
  encode_snapshot_response(buf, 41, WireStatus::kOk, /*snapshot_id=*/3,
                           /*generation=*/1);
  ResponseFrame resp;
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.body, BodyKind::kSnapshot);
  EXPECT_EQ(resp.snapshot_id, 3u);
  EXPECT_EQ(resp.generation, 1u);

  // The stale refusal carries the CURRENT generation for retargeting.
  buf.clear();
  encode_snapshot_response(buf, 42, WireStatus::kStaleGeneration, 3, 7);
  ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
  EXPECT_EQ(resp.status, WireStatus::kStaleGeneration);
  EXPECT_EQ(resp.generation, 7u);

  // Truncated and padded snapshot bodies are typed kBadLength.
  buf.clear();
  encode_snapshot_response(buf, 43, WireStatus::kOk, 3, 1);
  buf.pop_back();
  buf[8] -= 1;  // payload_len tracks the truncation
  EXPECT_EQ(decode_response(must_parse(buf), resp), WireError::kBadLength);
  buf.clear();
  encode_snapshot_response(buf, 44, WireStatus::kOk, 3, 1);
  buf.push_back(0);
  buf[8] += 1;
  EXPECT_EQ(decode_response(must_parse(buf), resp), WireError::kBadLength);
}

TEST(WireCodec, SnapshotRunRequestsRejectTrailingBytes) {
  // The fixed-size request bodies must consume their payload exactly.
  std::vector<std::uint8_t> buf;
  encode_snapshot_rank_request(buf, 51, 1, 1);
  buf.push_back(0xAB);
  buf[8] += 1;
  RequestFrame req;
  EXPECT_EQ(decode_request(must_parse(buf), req), WireError::kBadLength);

  buf.clear();
  encode_release_snapshot_request(buf, 52, 1);
  buf.push_back(0xAB);
  buf[8] += 1;
  EXPECT_EQ(decode_request(must_parse(buf), req), WireError::kBadLength);
}

// -- the corruption harness -------------------------------------------------

/// A valid medium-size scan frame the corruption cases start from.
std::vector<std::uint8_t> valid_frame() {
  Rng rng(7);
  const LinkedList list = random_list(57, rng);
  std::vector<std::uint8_t> buf;
  encode_scan_request(buf, 77, list, ScanOp::kMax, Method::kAuto);
  return buf;
}

TEST(WireCorruption, EveryTruncationIsNeedMore) {
  // An honest prefix of a valid frame is never an error and never a
  // parse: the stream just needs more bytes. Every cut point.
  const std::vector<std::uint8_t> buf = valid_frame();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    FrameView frame;
    std::size_t frame_len = 0;
    EXPECT_EQ(parse_frame(buf.data(), cut, frame, frame_len),
              WireError::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(WireCorruption, BadMagicBadVersionBadKind) {
  FrameView frame;
  std::size_t frame_len = 0;

  std::vector<std::uint8_t> bad = valid_frame();
  bad[0] = 'G';  // "GET ..." -- a lost HTTP client
  EXPECT_EQ(parse_frame(bad.data(), bad.size(), frame, frame_len),
            WireError::kBadMagic);
  // Rejected on the very first byte: no need to buffer a header first.
  EXPECT_EQ(parse_frame(bad.data(), 1, frame, frame_len),
            WireError::kBadMagic);

  bad = valid_frame();
  bad[1] = 'X';
  EXPECT_EQ(parse_frame(bad.data(), bad.size(), frame, frame_len),
            WireError::kBadMagic);

  bad = valid_frame();
  bad[2] = kWireVersion + 1;  // a future protocol rev
  EXPECT_EQ(parse_frame(bad.data(), bad.size(), frame, frame_len),
            WireError::kBadVersion);

  bad = valid_frame();
  bad[3] = 0x7F;  // no such MsgKind
  EXPECT_EQ(parse_frame(bad.data(), bad.size(), frame, frame_len),
            WireError::kBadKind);
}

TEST(WireCorruption, OversizedLengthPrefixRejectedBeforeAllocation) {
  std::vector<std::uint8_t> bad = valid_frame();
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(bad.data() + 8, &huge, sizeof(huge));
  FrameView frame;
  std::size_t frame_len = 0;
  EXPECT_EQ(parse_frame(bad.data(), bad.size(), frame, frame_len),
            WireError::kOversized);
}

TEST(WireCorruption, LengthElementCountMismatchIsBadLength) {
  // The payload claims more elements than the frame carries: decode must
  // refuse before sizing any allocation from the counter.
  std::vector<std::uint8_t> bad = valid_frame();
  // Payload layout: u8 method; u8 op; u32 n at payload offset 2.
  const std::size_t n_off = kHeaderSize + 2;
  std::uint32_t n = 0;
  std::memcpy(&n, bad.data() + n_off, sizeof(n));
  const std::uint32_t inflated = n + 1;
  std::memcpy(bad.data() + n_off, &inflated, sizeof(inflated));
  RequestFrame req;
  EXPECT_EQ(decode_request(must_parse(bad), req), WireError::kBadLength);

  // And fewer than the frame carries is just as malformed.
  const std::uint32_t deflated = n - 1;
  std::memcpy(bad.data() + n_off, &deflated, sizeof(deflated));
  EXPECT_EQ(decode_request(must_parse(bad), req), WireError::kBadLength);
}

TEST(WireCorruption, OutOfRangeEnumBytesAreBadPayload) {
  std::vector<std::uint8_t> bad = valid_frame();
  bad[kHeaderSize] = 200;  // method byte
  RequestFrame req;
  EXPECT_EQ(decode_request(must_parse(bad), req), WireError::kBadPayload);

  bad = valid_frame();
  bad[kHeaderSize + 1] = 200;  // op byte
  EXPECT_EQ(decode_request(must_parse(bad), req), WireError::kBadPayload);

  // head >= n
  bad = valid_frame();
  const std::uint32_t head = 57;
  std::memcpy(bad.data() + kHeaderSize + 6, &head, sizeof(head));
  EXPECT_EQ(decode_request(must_parse(bad), req), WireError::kBadPayload);
}

TEST(WireCorruption, NonEmptyPayloadOnPlainRequestIsBadLength) {
  std::vector<std::uint8_t> buf;
  encode_plain_request(buf, MsgKind::kStatsRequest, 1);
  // Declare one payload byte and append it.
  buf[8] = 1;
  buf.push_back(0xAB);
  RequestFrame req;
  EXPECT_EQ(decode_request(must_parse(buf), req), WireError::kBadLength);
}

TEST(WireCorruption, JunkPayloadNeverCrashesAndAlwaysTypes) {
  // Seeded fuzz: random junk stamped with a valid header must decode to
  // kOk or a typed error -- never a crash, never a read past the buffer
  // (ASan enforces the latter when this suite runs in the sanitizer
  // job). Valid decodes are possible (junk can spell a well-formed
  // list); the property is typed-ness, not rejection.
  Rng rng(31337);
  for (int round = 0; round < 200; ++round) {
    const std::size_t payload_len = rng.next_u64() % 300;
    std::vector<std::uint8_t> buf;
    buf.reserve(kHeaderSize + payload_len);
    buf.push_back(kMagic0);
    buf.push_back(kMagic1);
    buf.push_back(kWireVersion);
    buf.push_back(static_cast<std::uint8_t>(
        round % 2 == 0 ? MsgKind::kRankRequest : MsgKind::kScanRequest));
    for (int i = 0; i < 4; ++i)
      buf.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    const auto len32 = static_cast<std::uint32_t>(payload_len);
    for (int i = 0; i < 4; ++i)
      buf.push_back(static_cast<std::uint8_t>(len32 >> (8 * i)));
    for (int i = 0; i < 4; ++i)  // deadline: any value is valid
      buf.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    for (std::size_t i = 0; i < payload_len; ++i)
      buf.push_back(static_cast<std::uint8_t>(rng.next_u64()));

    FrameView frame;
    std::size_t frame_len = 0;
    ASSERT_EQ(parse_frame(buf.data(), buf.size(), frame, frame_len),
              WireError::kOk)
        << "round " << round;
    RequestFrame req;
    const WireError e = decode_request(frame, req);
    if (e == WireError::kOk) {
      // Whatever decoded claims to be internally consistent.
      EXPECT_TRUE(req.list.empty() || req.list.head < req.list.size())
          << "round " << round;
    } else {
      EXPECT_TRUE(e == WireError::kBadLength || e == WireError::kBadPayload)
          << "round " << round << ": " << wire_error_name(e);
    }
  }
}

TEST(WireCorruption, RandomByteFlipsStayTyped) {
  // Flip one byte anywhere in a valid frame: parse+decode must return
  // kOk or a typed error, with no OOB access. Seeded and exhaustive over
  // positions for a small frame.
  Rng rng(555);
  const LinkedList list = random_list(23, rng);
  std::vector<std::uint8_t> base;
  encode_rank_request(base, 5, list, Method::kSerial);
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    std::vector<std::uint8_t> buf = base;
    buf[pos] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    FrameView frame;
    std::size_t frame_len = 0;
    const WireError pe = parse_frame(buf.data(), buf.size(), frame,
                                     frame_len);
    if (pe != WireError::kOk) continue;  // typed header rejection
    RequestFrame req;
    const WireError de = decode_request(frame, req);
    if (de == WireError::kOk && !req.list.empty())
      EXPECT_LT(req.list.head, req.list.size()) << "pos " << pos;
  }
}

// -- the retry policy -------------------------------------------------------

TEST(RetryPolicy, ColdHintScalesWithDepthAndClamps) {
  RetryPolicy policy(/*min_ms=*/1, /*max_ms=*/500);
  EXPECT_GE(policy.hint_ms(0), 1u);
  EXPECT_GT(policy.hint_ms(20), policy.hint_ms(0));
  EXPECT_EQ(policy.hint_ms(1'000'000), 500u);  // ceiling
}

TEST(RetryPolicy, HintTracksObservedDrainRate) {
  RetryPolicy policy(1, 60'000);
  // 100 completions per second, fed for long enough that the EWMA
  // converges.
  std::uint64_t completed = 0;
  for (int i = 0; i <= 100; ++i) {
    policy.observe(0.1 * i, completed);
    completed += 10;
  }
  EXPECT_NEAR(policy.drain_rate(), 100.0, 5.0);
  // A 50-deep queue at 100 jobs/s drains in ~0.5s.
  const std::uint32_t hint = policy.hint_ms(50);
  EXPECT_GE(hint, 400u);
  EXPECT_LE(hint, 650u);
}

TEST(RetryPolicy, IgnoresNonMonotonicSamples) {
  RetryPolicy policy;
  policy.observe(1.0, 100);
  policy.observe(0.5, 50);   // time went backwards: ignored
  policy.observe(1.0, 100);  // zero dt: ignored
  EXPECT_EQ(policy.drain_rate(), 0.0);
  policy.observe(2.0, 300);  // 200 jobs in 1s
  EXPECT_GT(policy.drain_rate(), 0.0);
}

TEST(RetryPolicy, DenormalTimestepDoesNotPoisonTheEwma) {
  // Regression: a sample at double-granularity dt right after a baseline
  // used to compute an infinite instantaneous rate while the EWMA weight
  // rounded to exactly zero -- and inf * 0 poisoned the smoothed rate
  // with NaN permanently, making the clamp and uint32 cast in hint_ms
  // undefined. Such a sample carries no usable rate and must act as a
  // baseline only.
  RetryPolicy policy(/*min_ms=*/1, /*max_ms=*/2000);
  policy.observe(0.0, 0);
  policy.observe(1e-310, 5);  // denormal dt: inst overflows to infinity
  EXPECT_TRUE(std::isfinite(policy.drain_rate()));
  EXPECT_EQ(policy.drain_rate(), 0.0);
  const std::uint32_t hint = policy.hint_ms(3);
  EXPECT_GE(hint, 1u);
  EXPECT_LE(hint, 2000u);

  // And the policy recovers: the next honest sample derives a real rate
  // from the re-baselined origin instead of compounding a NaN.
  policy.observe(1.0, 105);  // ~100 jobs over ~1s
  EXPECT_TRUE(std::isfinite(policy.drain_rate()));
  EXPECT_GT(policy.drain_rate(), 0.0);
  EXPECT_LT(policy.hint_ms(0), policy.hint_ms(50));
}

TEST(RetryPolicy, HintTakesColdFallbackWhenRateDecaysPastDenormal) {
  // Regression: after a counter re-baseline (stats reset) an idle server
  // feeds only zero-progress samples, so the EWMA decays geometrically
  // straight through denormal territory. Dividing by a denormal pinned
  // the hint at the ceiling -- a multi-second wait advertised by a server
  // that is completely idle. Everything below kMinRate must read as "no
  // drain observed" and take the cold per-job fallback instead.
  RetryPolicy policy(/*min_ms=*/1, /*max_ms=*/2000);
  const RetryPolicy cold(/*min_ms=*/1, /*max_ms=*/2000);

  std::uint64_t completed = 0;
  double t = 0.0;
  for (int i = 0; i <= 50; ++i) {  // converge to ~100 jobs/s
    policy.observe(t, completed);
    t += 0.1;
    completed += 10;
  }
  ASSERT_GT(policy.drain_rate(), 50.0);

  policy.observe(t, 0);  // counter went backwards: re-baseline, no rate
  for (int i = 0; i < 80; ++i) {
    t += 10.0;
    policy.observe(t, 0);  // idle: zero progress, the EWMA decays
    EXPECT_TRUE(std::isfinite(policy.drain_rate()));
    const std::uint32_t hint = policy.hint_ms(5);
    EXPECT_GE(hint, 1u);
    EXPECT_LE(hint, 2000u);
  }
  EXPECT_LT(policy.drain_rate(), 1e-9);
  EXPECT_EQ(policy.hint_ms(5), cold.hint_ms(5))
      << "a sub-threshold rate must fall back, not divide";
}

TEST(RetryPolicy, DeadlineBudgetClampsTheHint) {
  // A RETRY_AFTER hint past the client's own deadline guarantees the
  // retry arrives dead; the deadline-aware overload caps the hint at the
  // remaining budget, but never below the floor (a zero hint stampedes).
  RetryPolicy policy(/*min_ms=*/5, /*max_ms=*/2000);
  // Cold policy: hint_ms(depth) = (depth + 1) * 10, clamped.
  const std::uint32_t base = policy.hint_ms(/*depth=*/99);  // 1000ms
  ASSERT_EQ(base, 1000u);

  // A generous budget leaves the hint alone.
  EXPECT_EQ(policy.hint_ms(99, /*deadline_budget_ms=*/5000), base);
  // A tight budget clamps it.
  EXPECT_EQ(policy.hint_ms(99, 250), 250u);
  // A budget below the floor clamps to the floor, never to zero.
  EXPECT_EQ(policy.hint_ms(99, 2), 5u);
  EXPECT_EQ(policy.hint_ms(99, 1), 5u);
  // Zero budget means "no deadline", not "no time left".
  EXPECT_EQ(policy.hint_ms(99, 0), base);
}

TEST(RetryPolicy, DeadlineClampIsDeterministicAcrossDrainRates) {
  // The clamp composes with an observed drain rate the same way it does
  // cold: min(base, budget) with the floor enforced last.
  RetryPolicy policy(/*min_ms=*/1, /*max_ms=*/2000);
  std::uint64_t completed = 0;
  double t = 0.0;
  for (int i = 0; i <= 50; ++i) {  // ~100 jobs/s
    policy.observe(t, completed);
    t += 0.1;
    completed += 10;
  }
  const std::uint32_t base = policy.hint_ms(49);  // ~500ms at 100/s
  ASSERT_GT(base, 100u);
  EXPECT_EQ(policy.hint_ms(49, base + 1000), base);
  EXPECT_EQ(policy.hint_ms(49, 100), 100u);
  EXPECT_EQ(policy.hint_ms(49, base), base);
}

TEST(WireDeadline, RidesTheHeaderOnEveryRequestKind) {
  // The v2 header carries a relative deadline on every frame; request
  // decodes surface it on RequestFrame, and kinds encoded without one
  // carry 0 ("none").
  Rng rng(2026);
  const LinkedList list = random_list(31, rng);

  std::vector<std::uint8_t> buf;
  encode_rank_request(buf, 7, list, Method::kAuto, /*deadline_ms=*/1500);
  RequestFrame req;
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 1500u);

  buf.clear();
  encode_scan_request(buf, 8, list, ScanOp::kPlus, Method::kAuto, 250);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 250u);

  buf.clear();
  encode_snapshot_rank_request(buf, 9, 42, 3, Method::kAuto, 77);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 77u);

  buf.clear();
  encode_snapshot_scan_request(buf, 10, 42, 3, ScanOp::kMax,
                               Method::kAuto, 1u << 31);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 1u << 31);

  // Kinds without a deadline parameter default to 0.
  buf.clear();
  encode_register_snapshot_request(buf, 11, list);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 0u);

  buf.clear();
  encode_plain_request(buf, MsgKind::kStatsRequest, 12);
  ASSERT_EQ(decode_request(must_parse(buf), req), WireError::kOk);
  EXPECT_EQ(req.deadline_ms, 0u);
}

TEST(WireDeadline, FailureStatusesRoundTripOnResponses) {
  // The three failure-model statuses survive an encode/decode round trip
  // and map 1:1 from engine StatusCodes.
  for (const WireStatus ws :
       {WireStatus::kCorruptSlab, WireStatus::kResourceExhausted,
        WireStatus::kDeadlineExceeded}) {
    std::vector<std::uint8_t> buf;
    encode_status_response(buf, 21, ws);
    ResponseFrame resp;
    ASSERT_EQ(decode_response(must_parse(buf), resp), WireError::kOk);
    EXPECT_EQ(resp.status, ws);
    EXPECT_STRNE(wire_status_name(ws), "unknown");
  }
  EXPECT_EQ(wire_status_of(StatusCode::kCorruptSlab),
            WireStatus::kCorruptSlab);
  EXPECT_EQ(wire_status_of(StatusCode::kResourceExhausted),
            WireStatus::kResourceExhausted);
  EXPECT_EQ(wire_status_of(StatusCode::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
}

}  // namespace
}  // namespace lr90::net
