#include "apps/euler_tour.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lists/validate.hpp"

namespace lr90 {
namespace {

/// Reference labels by plain serial traversal.
struct RefLabels {
  std::vector<value_t> depth, preorder, size;
};

RefLabels reference_labels(const RootedTree& t) {
  const std::size_t n = t.size();
  RefLabels ref;
  ref.depth.assign(n, 0);
  ref.preorder.assign(n, 0);
  ref.size.assign(n, 1);
  // Depths: repeated relaxation (trees are shallow enough for tests).
  std::vector<std::vector<index_t>> kids(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<index_t>(v) != t.root)
      kids[t.parent[v]].push_back(static_cast<index_t>(v));
  }
  for (auto& k : kids) std::sort(k.begin(), k.end());
  // Iterative preorder DFS with children in increasing order.
  std::vector<index_t> stack{t.root};
  value_t counter = 0;
  while (!stack.empty()) {
    const index_t v = stack.back();
    stack.pop_back();
    ref.preorder[v] = counter++;
    for (auto it = kids[v].rbegin(); it != kids[v].rend(); ++it) {
      ref.depth[*it] = ref.depth[v] + 1;
      stack.push_back(*it);
    }
  }
  // Subtree sizes bottom-up (process by decreasing depth).
  std::vector<index_t> by_depth(n);
  for (std::size_t v = 0; v < n; ++v) by_depth[v] = static_cast<index_t>(v);
  std::sort(by_depth.begin(), by_depth.end(), [&](index_t a, index_t b) {
    return ref.depth[a] > ref.depth[b];
  });
  for (const index_t v : by_depth) {
    if (v != t.root) ref.size[t.parent[v]] += ref.size[v];
  }
  return ref;
}

RootedTree path_tree(std::size_t n) {
  RootedTree t;
  t.parent.resize(n);
  t.root = 0;
  for (std::size_t v = 0; v < n; ++v)
    t.parent[v] = static_cast<index_t>(v == 0 ? 0 : v - 1);
  return t;
}

RootedTree star_tree(std::size_t n) {
  RootedTree t;
  t.parent.assign(n, 0);
  t.root = 0;
  return t;
}

TEST(EulerTour, ValidityChecks) {
  EXPECT_TRUE(is_valid_tree(path_tree(5)));
  EXPECT_TRUE(is_valid_tree(star_tree(5)));
  RootedTree bad = path_tree(4);
  bad.parent[1] = 2;
  bad.parent[2] = 1;  // 2-cycle
  EXPECT_FALSE(is_valid_tree(bad));
  RootedTree no_root = path_tree(3);
  no_root.parent[0] = 1;
  EXPECT_FALSE(is_valid_tree(no_root));
}

TEST(EulerTour, TourIsAValidList) {
  Rng rng(1);
  for (const std::size_t n : {2u, 3u, 10u, 100u, 1000u}) {
    const RootedTree t = random_tree(n, rng);
    const EulerTour tour = build_euler_tour(t);
    EXPECT_EQ(tour.arcs.size(), 2 * (n - 1));
    EXPECT_TRUE(is_valid_list(tour.arcs)) << "n=" << n;
  }
}

TEST(EulerTour, SingleNodeTree) {
  const RootedTree t = star_tree(1);
  const EulerTour tour = build_euler_tour(t);
  EXPECT_TRUE(tour.arcs.empty());
  EXPECT_EQ(tree_depths(t), std::vector<value_t>{0});
  EXPECT_EQ(subtree_sizes(t), std::vector<value_t>{1});
}

TEST(EulerTour, PathTreeLabels) {
  const std::size_t n = 64;
  const RootedTree t = path_tree(n);
  const TreeLabels got = tree_labels(t);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(got.depth[v], static_cast<value_t>(v));
    EXPECT_EQ(got.preorder[v], static_cast<value_t>(v));
    EXPECT_EQ(got.subtree_size[v], static_cast<value_t>(n - v));
  }
}

TEST(EulerTour, StarTreeLabels) {
  const std::size_t n = 33;
  const RootedTree t = star_tree(n);
  const TreeLabels got = tree_labels(t);
  EXPECT_EQ(got.depth[0], 0);
  EXPECT_EQ(got.subtree_size[0], static_cast<value_t>(n));
  for (std::size_t v = 1; v < n; ++v) {
    EXPECT_EQ(got.depth[v], 1);
    EXPECT_EQ(got.subtree_size[v], 1);
    EXPECT_EQ(got.preorder[v], static_cast<value_t>(v));  // children by index
  }
}

TEST(EulerTour, RandomTreesMatchReference) {
  Rng rng(2);
  for (const std::size_t n : {2u, 5u, 17u, 200u, 5000u}) {
    const RootedTree t = random_tree(n, rng);
    ASSERT_TRUE(is_valid_tree(t));
    const RefLabels ref = reference_labels(t);
    const TreeLabels got = tree_labels(t);
    EXPECT_EQ(got.depth, ref.depth) << n;
    EXPECT_EQ(got.preorder, ref.preorder) << n;
    EXPECT_EQ(got.subtree_size, ref.size) << n;
  }
}

TEST(EulerTour, PreorderIsAPermutation) {
  Rng rng(3);
  const RootedTree t = random_tree(500, rng);
  const auto pre = preorder_numbers(t);
  std::vector<char> seen(500, 0);
  for (const value_t p : pre) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 500);
    ASSERT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
  EXPECT_EQ(pre[t.root], 0);
}

TEST(EulerTour, SubtreeSizesSumToDepthPlusOneIdentity) {
  // sum over v of subtree_size(v) == sum over v of (depth(v) + 1).
  Rng rng(4);
  const RootedTree t = random_tree(1000, rng);
  const TreeLabels got = tree_labels(t);
  value_t lhs = 0, rhs = 0;
  for (std::size_t v = 0; v < 1000; ++v) {
    lhs += got.subtree_size[v];
    rhs += got.depth[v] + 1;
  }
  EXPECT_EQ(lhs, rhs);
}

TEST(EulerTour, PathSumsGeneralizeDepth) {
  Rng rng(6);
  const RootedTree t = random_tree(800, rng);
  const std::vector<value_t> ones(800, 1);
  const auto ps = path_sums(t, ones);
  const auto depth = tree_depths(t);
  for (std::size_t v = 0; v < 800; ++v) {
    EXPECT_EQ(ps[v], depth[v]) << v;  // ancestors excluding v == depth
  }
}

TEST(EulerTour, PathSumsMatchSerialWalk) {
  Rng rng(7);
  const RootedTree t = random_tree(500, rng);
  std::vector<value_t> w(500);
  for (auto& x : w) x = static_cast<value_t>(rng.uniform(100)) - 50;
  const auto ps = path_sums(t, w);
  for (std::size_t v = 0; v < 500; ++v) {
    value_t want = 0;
    index_t x = static_cast<index_t>(v);
    while (x != t.root) {
      x = t.parent[x];
      want += w[x];
    }
    EXPECT_EQ(ps[v], want) << v;
  }
}

TEST(EulerTour, SubtreeSumsGeneralizeSize) {
  Rng rng(8);
  const RootedTree t = random_tree(800, rng);
  const std::vector<value_t> ones(800, 1);
  EXPECT_EQ(subtree_sums(t, ones), subtree_sizes(t));
}

TEST(EulerTour, SubtreeSumsDecomposeOverChildren) {
  // subtree_sum(v) == w(v) + sum over children c of subtree_sum(c).
  Rng rng(9);
  const RootedTree t = random_tree(600, rng);
  std::vector<value_t> w(600);
  for (auto& x : w) x = static_cast<value_t>(rng.uniform(1000));
  const auto ss = subtree_sums(t, w);
  std::vector<value_t> acc(w.begin(), w.end());
  for (std::size_t v = 0; v < 600; ++v) {
    if (static_cast<index_t>(v) != t.root) acc[t.parent[v]] += ss[v];
  }
  for (std::size_t v = 0; v < 600; ++v) EXPECT_EQ(ss[v], acc[v]) << v;
}

TEST(EulerTour, TreeScansSingleNode) {
  const RootedTree t = star_tree(1);
  const std::vector<value_t> w{7};
  EXPECT_EQ(path_sums(t, w), std::vector<value_t>{0});
  EXPECT_EQ(subtree_sums(t, w), std::vector<value_t>{7});
}

TEST(EulerTour, WorksWithMultipleHostThreads) {
  Rng rng(5);
  const RootedTree t = random_tree(3000, rng);
  Engine four({.backend = BackendKind::kHost, .threads = 4});
  const auto d1 = tree_depths(t);
  const auto d4 = tree_depths(t, four);
  EXPECT_EQ(d1, d4);
}

TEST(EulerTour, WorksOnEveryBackend) {
  Rng rng(10);
  const RootedTree t = random_tree(400, rng);
  const TreeLabels want = tree_labels(t);  // throwaway host engine
  for (const BackendKind kind :
       {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
    Engine engine({.backend = kind});
    const TreeLabels got = tree_labels(t, engine);
    EXPECT_EQ(got.depth, want.depth) << backend_name(kind);
    EXPECT_EQ(got.preorder, want.preorder) << backend_name(kind);
    EXPECT_EQ(got.subtree_size, want.subtree_size) << backend_name(kind);
  }
}

}  // namespace
}  // namespace lr90
