#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "analysis/tuner.hpp"
#include "core/api.hpp"
#include "core/host_exec.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "support/cpu_features.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

EngineOptions backend_options(BackendKind kind) {
  EngineOptions eo;
  eo.backend = kind;
  if (kind == BackendKind::kHost) eo.threads = 2;
  return eo;
}

// -- backend parity ---------------------------------------------------------

TEST(Engine, BackendsAgreeOnRankAcrossSizes) {
  Rng rng(1);
  for (const std::size_t n : testutil::sweep_sizes()) {
    const LinkedList l = random_list(n, rng);
    const auto want = reference_rank(l);
    for (const BackendKind kind :
         {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
      Engine engine(backend_options(kind));
      const RunResult r = engine.rank(l);
      ASSERT_TRUE(r.ok()) << backend_name(kind) << " n=" << n << ": "
                          << r.status.message;
      EXPECT_EQ(r.backend, kind);
      testutil::expect_scan_eq(r.scan, want);
    }
  }
}

TEST(Engine, BackendsAgreeOnDegenerateLayouts) {
  for (const std::size_t n : {1u, 2u, 5u, 300u}) {
    for (const bool reversed : {false, true}) {
      const LinkedList l =
          reversed ? reversed_list(n) : sequential_list(n);
      const auto want = reference_rank(l);
      for (const BackendKind kind :
           {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
        Engine engine(backend_options(kind));
        const RunResult r = engine.rank(l);
        ASSERT_TRUE(r.ok());
        testutil::expect_scan_eq(r.scan, want);
      }
    }
  }
}

TEST(Engine, BackendsAgreeOnEveryScanOp) {
  Rng rng(2);
  const LinkedList base = random_list(3000, rng, ValueInit::kSigned);
  for (const ScanOp op : kAllScanOps) {
    // The packed operators read their value as 32-bit lanes; keep the
    // magnitudes in-lane so every combine is exact (max-plus especially).
    LinkedList l = base;
    if (op == ScanOp::kSegSum || op == ScanOp::kAffine ||
        op == ScanOp::kMaxPlus) {
      for (value_t& v : l.value) v &= 0xffff;
    }
    const std::vector<value_t> want = with_scan_op(
        op, [&](auto o) { return testutil::expected_scan(l, o); });
    for (const BackendKind kind :
         {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
      Engine engine(backend_options(kind));
      const RunResult r = engine.run(OpRequest{&l, op});
      ASSERT_TRUE(r.ok()) << backend_name(kind) << " op "
                          << scan_op_name(op) << ": " << r.status.message;
      testutil::expect_scan_eq(r.scan, want);
    }
  }
}

TEST(Engine, EmptyAndSingleVertexLists) {
  for (const BackendKind kind :
       {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
    Engine engine(backend_options(kind));

    const LinkedList empty;
    const RunResult r0 = engine.rank(empty);
    ASSERT_TRUE(r0.ok());
    EXPECT_TRUE(r0.scan.empty());

    const LinkedList one = sequential_list(1);
    const RunResult r1 = engine.rank(one);
    ASSERT_TRUE(r1.ok());
    ASSERT_EQ(r1.scan.size(), 1u);
    EXPECT_EQ(r1.scan[0], 0);
    const RunResult s1 = engine.scan(one, ScanOp::kMin);
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(s1.scan[0], OpMin::identity());
  }
}

// -- merged stats -----------------------------------------------------------

TEST(Engine, SimStatsCarrySimulatedFigures) {
  Rng rng(3);
  const LinkedList l = random_list(5000, rng);
  Engine engine(backend_options(BackendKind::kSim));
  const RunResult r = engine.rank(l, Method::kReidMiller);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.stats.has_sim);
  EXPECT_GT(r.stats.sim_cycles, 0.0);
  EXPECT_GT(r.stats.sim_ns, 0.0);
  EXPECT_GT(r.stats.sim_ns_per_vertex, 0.0);
  EXPECT_GT(r.stats.algo.link_steps, 0u);
  EXPECT_GE(r.stats.wall_ns, 0.0);
  ASSERT_NE(engine.sim_machine(), nullptr);
  EXPECT_DOUBLE_EQ(engine.sim_machine()->max_cycles(), r.stats.sim_cycles);
}

TEST(Engine, HostStatsHaveNoSimFigures) {
  Rng rng(4);
  const LinkedList l = random_list(5000, rng);
  Engine engine(backend_options(BackendKind::kHost));
  const RunResult r = engine.rank(l);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.stats.has_sim);
  EXPECT_EQ(r.stats.sim_cycles, 0.0);
  EXPECT_GE(r.stats.wall_ns, 0.0);
  EXPECT_EQ(engine.sim_machine(), nullptr);
}

// -- typed errors -----------------------------------------------------------

TEST(Engine, NullListIsInvalidInput) {
  Engine engine;
  const RunResult r = engine.run(Request{});
  EXPECT_EQ(r.status.code, StatusCode::kInvalidInput);
}

TEST(Engine, MalformedListIsInvalidInputWhenValidating) {
  LinkedList bad;
  bad.next = {1, 0};  // two-cycle, no tail
  bad.value = {1, 1};
  bad.head = 0;
  EngineOptions eo = backend_options(BackendKind::kSim);
  eo.validate_input = true;
  Engine engine(std::move(eo));
  const RunResult r = engine.rank(bad);
  EXPECT_EQ(r.status.code, StatusCode::kInvalidInput);
}

TEST(Engine, UnsupportedCombinationsAreTypedNotThrown) {
  Rng rng(5);
  const LinkedList l = random_list(100, rng);
  {
    Engine sim(backend_options(BackendKind::kSim));
    const RunResult r = sim.scan(l, ScanOp::kPlus,
                                 Method::kReidMillerEncoded);
    EXPECT_EQ(r.status.code, StatusCode::kUnsupported);
  }
  {
    Engine host(backend_options(BackendKind::kHost));
    const RunResult r = host.rank(l, Method::kWyllie);
    EXPECT_EQ(r.status.code, StatusCode::kUnsupported);
  }
  {
    Engine serial(backend_options(BackendKind::kSerial));
    const RunResult r = serial.rank(l, Method::kMillerReif);
    EXPECT_EQ(r.status.code, StatusCode::kUnsupported);
  }
}

// -- batches ----------------------------------------------------------------

TEST(Engine, RunBatchMixedSizesAndKinds) {
  Rng rng(6);
  std::vector<LinkedList> lists;
  for (const std::size_t n : {0u, 1u, 2u, 17u, 500u, 4096u})
    lists.push_back(random_list(n, rng, ValueInit::kSigned));

  std::vector<Request> requests;
  for (const LinkedList& l : lists) {
    requests.push_back(RankRequest{&l});
    requests.push_back(ScanRequest{&l, ScanOp::kPlus});
    requests.push_back(ScanRequest{&l, ScanOp::kMax});
  }

  for (const BackendKind kind :
       {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
    Engine engine(backend_options(kind));
    const std::vector<RunResult> results = engine.run_batch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Request& req = requests[i];
      const RunResult& r = results[i];
      ASSERT_TRUE(r.ok()) << backend_name(kind) << " request " << i << ": "
                          << r.status.message;
      if (req.rank) {
        testutil::expect_scan_eq(r.scan, reference_rank(*req.list));
      } else if (req.op == ScanOp::kPlus) {
        testutil::expect_scan_eq(r.scan,
                                 testutil::expected_scan(*req.list, OpPlus{}));
      } else {
        testutil::expect_scan_eq(r.scan,
                                 testutil::expected_scan(*req.list, OpMax{}));
      }
    }
  }
}

TEST(Engine, BatchFailuresAreIsolatedPerRequest) {
  Rng rng(7);
  const LinkedList good = random_list(50, rng);
  const Request requests[] = {
      RankRequest{&good},
      Request{},  // null list: fails alone
      RankRequest{&good},
  };
  Engine engine;
  const auto results = engine.run_batch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status.code, StatusCode::kInvalidInput);
  EXPECT_TRUE(results[2].ok());
}

// -- workspace reuse --------------------------------------------------------

TEST(Engine, WorkspaceStopsAllocatingAfterWarmup) {
  // The acceptance bar: a 100-request batch on the host backend performs
  // no more than one workspace allocation after warm-up.
  constexpr std::size_t kRequests = 100;
  constexpr std::size_t kVertices = 20000;
  Rng rng(8);
  std::vector<LinkedList> lists;
  lists.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i)
    lists.push_back(random_list(kVertices, rng));

  Engine engine(backend_options(BackendKind::kHost));
  // Warm-up: the first run grows every buffer to the working size.
  const RunResult warm = engine.rank(lists[0]);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.method_used, Method::kReidMiller)
      << "list too small to exercise the parallel path";
  const std::uint64_t after_warmup = engine.workspace().allocations();
  ASSERT_GT(after_warmup, 0u);

  std::vector<Request> requests;
  requests.reserve(kRequests);
  for (const LinkedList& l : lists) requests.push_back(RankRequest{&l});
  const auto results = engine.run_batch(requests);
  for (const RunResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.method_used, Method::kReidMiller);
  }

  EXPECT_LE(engine.workspace().allocations(), after_warmup + 1);
  EXPECT_GT(engine.workspace().reuse_hits(), 0u);
  // Spot-check the last answer; the batch above already verified sizes.
  testutil::expect_scan_eq(results.back().scan,
                           reference_rank(lists.back()));
}

TEST(Engine, SimWorkspaceReusesScratchListAcrossCalls) {
  Rng rng(9);
  const LinkedList l = random_list(4096, rng);
  Engine engine(backend_options(BackendKind::kSim));
  ASSERT_TRUE(engine.rank(l, Method::kReidMiller).ok());
  const std::uint64_t after_warmup = engine.workspace().allocations();
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(engine.rank(l, Method::kReidMiller).ok());
  EXPECT_EQ(engine.workspace().allocations(), after_warmup);
}

TEST(Engine, RepeatedRunsAreDeterministic) {
  Rng rng(10);
  const LinkedList l = random_list(10000, rng);
  Engine engine(backend_options(BackendKind::kSim));
  const RunResult a = engine.rank(l, Method::kReidMiller);
  const RunResult b = engine.rank(l, Method::kReidMiller);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.scan, b.scan);
  EXPECT_DOUBLE_EQ(a.stats.sim_cycles, b.stats.sim_cycles);
}

// -- planner ----------------------------------------------------------------

TEST(Planner, SimCrossoversAtLegacyBoundaries) {
  const Planner planner(backend_options(BackendKind::kSim));
  for (const bool rank : {false, true}) {
    // At the legacy serial/Wyllie boundary the model still prefers serial
    // (the fixed threshold under-used it; see Fig. 1's measured curves).
    EXPECT_EQ(planner.decide(kAutoSerialMax, Method::kAuto, rank).method,
              Method::kSerial);
    EXPECT_EQ(planner.decide(kAutoSerialMax + 1, Method::kAuto, rank).method,
              Method::kSerial);
    // At the legacy Wyllie/Reid-Miller boundary the model and the fixed
    // threshold agree: Reid-Miller from ~1k vertices on.
    const auto at_boundary =
        planner.decide(kAutoWyllieMax, Method::kAuto, rank);
    EXPECT_EQ(at_boundary.method, Method::kReidMiller);
    const auto past_boundary =
        planner.decide(kAutoWyllieMax + 1, Method::kAuto, rank);
    EXPECT_EQ(past_boundary.method, Method::kReidMiller);
    EXPECT_GT(past_boundary.sublists, 0.0);
    EXPECT_GT(past_boundary.s1, 0.0);
    EXPECT_GT(past_boundary.predicted_cycles, 0.0);
  }
  // The model's own serial/Wyllie crossover sits between the legacy
  // thresholds.
  EXPECT_EQ(planner.decide(512, Method::kAuto, false).method,
            Method::kWyllie);
}

TEST(Planner, SimAutoIsMonotoneInN) {
  const Planner planner(backend_options(BackendKind::kSim));
  auto phase = [](Method m) {
    return m == Method::kSerial ? 0 : m == Method::kWyllie ? 1 : 2;
  };
  int prev = 0;
  for (std::size_t n = 2; n <= (1u << 20); n = n * 5 / 4 + 1) {
    const Method m = planner.decide(n, Method::kAuto, false).method;
    EXPECT_GE(phase(m), prev) << "regressed at n=" << n;
    prev = phase(m);
  }
  EXPECT_EQ(prev, 2) << "never reached reid-miller";
}

TEST(Planner, EstimatesBackTheDecision) {
  const Planner planner(backend_options(BackendKind::kSim));
  for (const std::size_t n : {64u, 512u, 4096u, 65536u}) {
    const auto d = planner.decide(n, Method::kAuto, false);
    const double chosen = d.predicted_cycles;
    EXPECT_LE(chosen, planner.serial_cycles(n, false));
    EXPECT_LE(chosen, planner.wyllie_cycles(n, false));
    EXPECT_LE(chosen, planner.reid_miller_cycles(n, false));
  }
}

TEST(Planner, ExplicitMethodIsHonoured) {
  const Planner planner(backend_options(BackendKind::kSim));
  EXPECT_EQ(planner.decide(10, Method::kReidMiller, false).method,
            Method::kReidMiller);
  EXPECT_EQ(planner.decide(1u << 20, Method::kSerial, true).method,
            Method::kSerial);
}

TEST(Planner, OperatorCostScalesTheModel) {
  // A costlier combine must raise every per-element estimate, never the
  // startups alone, and the kAuto pick must still be the cheapest of the
  // three candidates under that operator's costs.
  const Planner planner(backend_options(BackendKind::kSim));
  for (const std::size_t n : {64u, 512u, 4096u, 65536u}) {
    EXPECT_GT(planner.serial_cycles(n, false, ScanOp::kAffine),
              planner.serial_cycles(n, false, ScanOp::kPlus));
    EXPECT_GT(planner.wyllie_cycles(n, false, ScanOp::kAffine),
              planner.wyllie_cycles(n, false, ScanOp::kPlus));
    if (n >= 2) {
      EXPECT_GT(planner.reid_miller_cycles(n, false, ScanOp::kAffine),
                planner.reid_miller_cycles(n, false, ScanOp::kPlus));
    }
    for (const ScanOp op : {ScanOp::kSegSum, ScanOp::kAffine,
                            ScanOp::kMaxPlus}) {
      const auto d = planner.decide(n, Method::kAuto, false, op);
      EXPECT_LE(d.predicted_cycles, planner.serial_cycles(n, false, op));
      EXPECT_LE(d.predicted_cycles, planner.wyllie_cycles(n, false, op));
      EXPECT_LE(d.predicted_cycles,
                planner.reid_miller_cycles(n, false, op));
    }
  }
  // Ranking is all-ones addition regardless of the request's operator.
  EXPECT_EQ(planner.decide(4096, Method::kAuto, true, ScanOp::kAffine)
                .predicted_cycles,
            planner.decide(4096, Method::kAuto, true, ScanOp::kPlus)
                .predicted_cycles);
}

TEST(Planner, HostShedsThreadsBeforeGoingSerial) {
  EngineOptions eo = backend_options(BackendKind::kHost);
  eo.threads = 8;
  const Planner planner(eo);

  const auto big = planner.decide(1u << 20, Method::kAuto, true);
  EXPECT_EQ(big.method, Method::kReidMiller);
  EXPECT_EQ(big.threads, 8u);
  EXPECT_EQ(big.sublists, 8.0 * eo.sublists_per_thread);

  // Medium lists keep some parallelism with fewer threads.
  const auto medium = planner.decide(8192, Method::kAuto, true);
  EXPECT_EQ(medium.method, Method::kReidMiller);
  EXPECT_EQ(medium.threads, 4u);

  // Tiny lists fall back to the serial walk.
  EXPECT_EQ(planner.decide(100, Method::kAuto, true).method,
            Method::kSerial);
  EXPECT_EQ(planner.decide(3, Method::kAuto, true).method, Method::kSerial);
}

TEST(Planner, SerialBackendAlwaysWalksSerially) {
  const Planner planner(backend_options(BackendKind::kSerial));
  EXPECT_EQ(planner.decide(1u << 20, Method::kAuto, true).method,
            Method::kSerial);
}

TEST(Planner, PicksPackedInterleavedForLargeN) {
  // The acceptance bar of the latency-hiding PR: large-n packed-capable
  // requests must route to the packed multi-cursor path automatically --
  // even on a single thread, where the seed planner fell back to the
  // serial walk (one dependent load chain, a full stall per element).
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions eo = backend_options(BackendKind::kHost);
    eo.threads = threads;
    const Planner planner(eo);
    const auto d = planner.decide(1u << 20, Method::kAuto, /*rank=*/true);
    EXPECT_EQ(d.method, Method::kReidMiller) << threads << " threads";
    EXPECT_GT(d.interleave, 1u) << threads << " threads";
    // Lane-capable scans interleave too; 64-bit-value operators get the
    // legacy kernels (interleave 0).
    const auto scan =
        planner.decide(1u << 20, Method::kAuto, false, ScanOp::kMin);
    EXPECT_GT(scan.interleave, 1u);
    const auto wide =
        planner.decide(1u << 20, Method::kAuto, false, ScanOp::kAffine);
    EXPECT_EQ(wide.interleave, 0u);
  }
  // Tiny lists still take the serial walk.
  EngineOptions one = backend_options(BackendKind::kHost);
  one.threads = 1;
  const Planner planner(one);
  EXPECT_EQ(planner.decide(100, Method::kAuto, true).method,
            Method::kSerial);
  // A pinned W=1 on one thread is modelled at that width: the packed
  // path cannot hide latency with one cursor, so kAuto keeps the serial
  // walk instead of justifying the choice with the auto-optimal W.
  EngineOptions pinned1 = backend_options(BackendKind::kHost);
  pinned1.threads = 1;
  pinned1.interleave = 1;
  const Planner p1(pinned1);
  EXPECT_EQ(p1.decide(1u << 20, Method::kAuto, true).method,
            Method::kSerial);
}

TEST(Engine, LargeRankRunsPackedAndReportsCursors) {
  Rng rng(21);
  const LinkedList l = random_list(1u << 17, rng);
  Engine engine(backend_options(BackendKind::kHost));
  const RunResult r = engine.rank(l);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.method_used, Method::kReidMiller);
  EXPECT_TRUE(r.stats.host_packed);
  EXPECT_GT(r.stats.host_interleave, 1u);
  EXPECT_FALSE(r.stats.host_packed_cached);  // single run: no batch cache
  testutil::expect_scan_eq(r.scan, reference_rank(l));
}

TEST(Engine, PinnedInterleaveIsHonoured) {
  Rng rng(22);
  const LinkedList l = random_list(50000, rng);
  for (const unsigned w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    EngineOptions eo = backend_options(BackendKind::kHost);
    eo.interleave = w;
    Engine engine(std::move(eo));
    const RunResult r = engine.rank(l);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.host_packed);
    EXPECT_EQ(r.stats.host_interleave, w);
    testutil::expect_scan_eq(r.scan, reference_rank(l));
  }
}

TEST(Engine, WideValuesFallBackToLegacyKernelsNeverWrong) {
  // Values outside the signed 32-bit lane fail the pack-time fit check;
  // the run must fall back to the unpacked kernels and stay bit-exact.
  Rng rng(23);
  LinkedList l = random_list(30000, rng, ValueInit::kSigned);
  l.value[12345] = (value_t{1} << 40) + 7;
  l.value[777] = std::numeric_limits<value_t>::min() / 4;
  Engine engine(backend_options(BackendKind::kHost));
  const RunResult r = engine.run(OpRequest{&l, ScanOp::kPlus});
  ASSERT_TRUE(r.ok()) << r.status.message;
  EXPECT_EQ(r.method_used, Method::kReidMiller);
  EXPECT_FALSE(r.stats.host_packed);
  testutil::expect_scan_eq(r.scan,
                           testutil::expected_scan(l, OpPlus{}));
  // The same engine still packs the next lane-clean request.
  const LinkedList clean = random_list(30000, rng);
  const RunResult r2 = engine.rank(clean);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.stats.host_packed);
}

TEST(Engine, FewerSublistsThanCursorsDrainCorrectly) {
  // The k < W edge of the multi-cursor driver: fewer sublists than
  // cursors means the initial claims exhaust immediately and the drain
  // (swap-with-last) path does all the work. Explicit kReidMiller skips
  // the planner's serial shed for tiny lists.
  Rng rng(25);
  for (const std::size_t n : {4u, 5u, 9u, 17u, 40u, 64u}) {
    const LinkedList l = random_list(n, rng, ValueInit::kSigned);
    for (const unsigned w : {8u, 32u, 64u}) {
      EngineOptions eo = backend_options(BackendKind::kHost);
      eo.interleave = w;
      Engine engine(std::move(eo));
      const RunResult r = engine.rank(l, Method::kReidMiller);
      ASSERT_TRUE(r.ok()) << "n=" << n << " W=" << w;
      EXPECT_TRUE(r.stats.host_packed);
      testutil::expect_scan_eq(r.scan, reference_rank(l));
      const RunResult s =
          engine.scan(l, ScanOp::kMin, Method::kReidMiller);
      ASSERT_TRUE(s.ok());
      testutil::expect_scan_eq(s.scan,
                               testutil::expected_scan(l, OpMin{}));
    }
  }
}

TEST(Engine, BatchCachesThePackedSlabAcrossSameListRuns) {
  // A batch of requests over one list (the serving layer's collapsed
  // hot-key traffic) must build the single-gather slab once; distinct
  // lists and non-batch runs must rebuild.
  Rng rng(24);
  const LinkedList a = random_list(40000, rng);
  const LinkedList b = random_list(40000, rng);
  Engine engine(backend_options(BackendKind::kHost));

  const std::vector<Request> same(5, Request{RankRequest{&a}});
  const auto results = engine.run_batch(same);
  const std::uint64_t builds_after_batch = engine.workspace().packed_builds();
  EXPECT_EQ(builds_after_batch, 1u) << "one build for five same-list runs";
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_TRUE(results[i].stats.host_packed);
    EXPECT_EQ(results[i].stats.host_packed_cached, i > 0);
    EXPECT_EQ(results[i].scan, results[0].scan) << "cache changed answers";
  }
  testutil::expect_scan_eq(results[0].scan, reference_rank(a));

  // Alternating lists in one batch: every switch re-keys the slab.
  const std::vector<Request> mixed{RankRequest{&a}, RankRequest{&b},
                                   RankRequest{&a}};
  for (const RunResult& r : engine.run_batch(mixed)) {
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.stats.host_packed_cached);
  }
  EXPECT_EQ(engine.workspace().packed_builds(), builds_after_batch + 3);

  // Outside a batch the cache is never trusted (the caller could mutate
  // the list between runs).
  ASSERT_TRUE(engine.rank(a).ok());
  ASSERT_TRUE(engine.rank(a).ok());
  EXPECT_EQ(engine.workspace().packed_builds(), builds_after_batch + 5);
}

TEST(Engine, PinnedS1SurvivesAutoM) {
  // Regression: a caller-pinned first balance interval must not be
  // overwritten by the planner's tuned value when m is left on auto.
  Rng rng(12);
  const LinkedList l = random_list(100000, rng);

  EngineOptions auto_opts;
  auto_opts.backend = BackendKind::kSim;
  Engine tuned_engine(std::move(auto_opts));
  const RunResult tuned = tuned_engine.rank(l, Method::kReidMiller);

  EngineOptions pinned_opts;
  pinned_opts.backend = BackendKind::kSim;
  pinned_opts.reid_miller.s1 = 5;  // far from any tuned value
  Engine pinned_engine(std::move(pinned_opts));
  const RunResult pinned = pinned_engine.rank(l, Method::kReidMiller);

  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(tuned.scan, pinned.scan);
  // A 5-link first interval forces a very different balance schedule; the
  // knob being live must show up in the simulated cost.
  EXPECT_NE(tuned.stats.sim_cycles, pinned.stats.sim_cycles);
}

// -- shims ------------------------------------------------------------------

TEST(Engine, SimShimMatchesEngine) {
  Rng rng(11);
  const LinkedList l = random_list(3000, rng);

  SimOptions so;
  so.method = Method::kReidMiller;
  so.seed = 99;
  // The deprecated shim's equivalence to the Engine is what this test pins.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const SimResult shim = sim_list_rank(l, so);
#pragma GCC diagnostic pop

  EngineOptions eo;
  eo.backend = BackendKind::kSim;
  eo.seed = 99;
  Engine engine(std::move(eo));
  const RunResult direct = engine.rank(l, Method::kReidMiller);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(shim.scan, direct.scan);
  EXPECT_DOUBLE_EQ(shim.cycles, direct.stats.sim_cycles);
  EXPECT_EQ(shim.method_used, direct.method_used);
}

TEST(Planner, AutoThreadsComeFromTheJointGrid) {
  // threads = 0: the planner resolves the worker count from the joint
  // (tier x threads x W) grid, capped at the machine. The pick must agree
  // with the model evaluated at the same cap and the same tier families
  // this CPU can run, whatever this machine is.
  EngineOptions eo;
  eo.backend = BackendKind::kHost;
  eo.threads = 0;
  const Planner planner(eo);
  const unsigned eff = host_exec::effective_threads(0);
  const TuneTier tt = simd_gather_available() ? TuneTier::kBoth
                                              : TuneTier::kCursorsOnly;
  const auto d = planner.decide(1u << 22, Method::kAuto, /*rank=*/true);
  ASSERT_EQ(d.method, Method::kReidMiller);
  const HostTuneResult ht = host_tune(1u << 22, 1.0, eff, 0, 0, {}, tt);
  EXPECT_EQ(d.threads, std::max(1u, std::min(ht.threads, eff)));
  EXPECT_EQ(d.interleave, ht.interleave);
  EXPECT_EQ(d.tier, ht.simd ? KernelTier::kSimdGather
                            : KernelTier::kPackedCursors);

  // On an (emulated) 8-thread machine the joint grid wants real thread
  // parallelism for a DRAM-resident list, and W re-tuned at that count.
  EngineOptions big = eo;
  big.threads = 8;
  const Planner p8(big);
  const auto d8 = p8.decide(1u << 22, Method::kAuto, /*rank=*/true);
  ASSERT_EQ(d8.method, Method::kReidMiller);
  EXPECT_EQ(d8.threads, 8u);
  EXPECT_EQ(d8.interleave, host_tune(1u << 22, 1.0, 8, 8, 0, {}, tt).interleave);
}

TEST(Engine, ReportsThreadsAndPerPhaseTimings) {
  Rng rng(26);
  const LinkedList l = random_list(1u << 16, rng);
  Engine engine(backend_options(BackendKind::kHost));  // threads = 2
  const RunResult r = engine.rank(l);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.method_used, Method::kReidMiller);
  EXPECT_EQ(r.stats.host_threads, 2u);
  EXPECT_GT(r.stats.host_build_ns, 0.0);
  EXPECT_GT(r.stats.host_phase1_ns, 0.0);
  EXPECT_GT(r.stats.host_phase3_ns, 0.0);
  EXPECT_GT(r.stats.host_parallel_frac, 0.0);
  EXPECT_LE(r.stats.host_parallel_frac, 1.0);

  // The serial walk has no phases to time and one worker by definition.
  const RunResult s = engine.rank(l, Method::kSerial);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.stats.host_threads, 1u);
  EXPECT_EQ(s.stats.host_phase1_ns, 0.0);
  EXPECT_EQ(s.stats.host_parallel_frac, 0.0);
}

}  // namespace
}  // namespace lr90
