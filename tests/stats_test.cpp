#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lr90 {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of that classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5}, ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, ConstantData) {
  std::vector<double> xs{1, 2, 3}, ys{4, 4, 4};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 4.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);  // degenerate ss_tot treated as perfect
}

TEST(LinearFit, NoisyDataReasonableR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_GT(f.r2, 0.999);
}

}  // namespace
}  // namespace lr90
