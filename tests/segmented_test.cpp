#include "vm/segmented.hpp"

#include <gtest/gtest.h>

#include "lists/transform.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "support/rng.hpp"

namespace lr90 {
namespace {

TEST(Scan, ExclusiveKnownValues) {
  vm::Machine m;
  const std::vector<value_t> v{3, 1, 4, 1, 5};
  std::vector<value_t> out(5);
  vm::exclusive_scan(m, 0, v, std::span<value_t>(out));
  EXPECT_EQ(out, (std::vector<value_t>{0, 3, 4, 8, 9}));
  EXPECT_GT(m.max_cycles(), 0.0);
}

TEST(Scan, InclusiveKnownValues) {
  vm::Machine m;
  const std::vector<value_t> v{3, 1, 4, 1, 5};
  std::vector<value_t> out(5);
  vm::inclusive_scan(m, 0, v, std::span<value_t>(out));
  EXPECT_EQ(out, (std::vector<value_t>{3, 4, 8, 9, 14}));
}

TEST(Scan, ExclusiveInPlace) {
  vm::Machine m;
  std::vector<value_t> v{1, 2, 3, 4};
  vm::exclusive_scan(m, 0, std::span<const value_t>(v),
                     std::span<value_t>(v));
  EXPECT_EQ(v, (std::vector<value_t>{0, 1, 3, 6}));
}

TEST(Scan, EmptyInput) {
  vm::Machine m;
  std::vector<value_t> v, out;
  vm::exclusive_scan(m, 0, v, std::span<value_t>(out));
  vm::inclusive_scan(m, 0, v, std::span<value_t>(out));
}

TEST(Scan, MaxOperator) {
  vm::Machine m;
  const std::vector<value_t> v{2, -1, 7, 3};
  std::vector<value_t> out(4);
  vm::inclusive_scan(m, 0, v, std::span<value_t>(out), OpMax{});
  EXPECT_EQ(out, (std::vector<value_t>{2, 2, 7, 7}));
}

TEST(SegmentedScan, RestartsAtFlags) {
  vm::Machine m;
  const std::vector<value_t> v{1, 2, 3, 4, 5, 6};
  const std::vector<std::uint8_t> f{1, 0, 0, 1, 0, 0};
  std::vector<value_t> out(6);
  vm::segmented_exclusive_scan(m, 0, v, f, std::span<value_t>(out));
  EXPECT_EQ(out, (std::vector<value_t>{0, 1, 3, 0, 4, 9}));
}

TEST(SegmentedScan, ImplicitFirstSegment) {
  vm::Machine m;
  const std::vector<value_t> v{5, 5};
  const std::vector<std::uint8_t> f{0, 0};  // no explicit starts
  std::vector<value_t> out(2);
  vm::segmented_exclusive_scan(m, 0, v, f, std::span<value_t>(out));
  EXPECT_EQ(out, (std::vector<value_t>{0, 5}));
}

TEST(SegmentedScan, EverySegmentSingleton) {
  vm::Machine m;
  const std::vector<value_t> v{7, 8, 9};
  const std::vector<std::uint8_t> f{1, 1, 1};
  std::vector<value_t> out(3);
  vm::segmented_exclusive_scan(m, 0, v, f, std::span<value_t>(out), OpPlus{});
  EXPECT_EQ(out, (std::vector<value_t>{0, 0, 0}));
}

TEST(SegmentedTotals, WritesTotalEverywhere) {
  vm::Machine m;
  const std::vector<value_t> v{1, 2, 3, 10, 20};
  const std::vector<std::uint8_t> f{1, 0, 0, 1, 0};
  std::vector<value_t> out(5);
  const std::size_t segs =
      vm::segmented_totals(m, 0, v, f, std::span<value_t>(out));
  EXPECT_EQ(segs, 2u);
  EXPECT_EQ(out, (std::vector<value_t>{6, 6, 6, 30, 30}));
}

TEST(SegmentedTotals, EmptyAndSingle) {
  vm::Machine m;
  std::vector<value_t> v, out;
  std::vector<std::uint8_t> f;
  EXPECT_EQ(vm::segmented_totals(m, 0, v, f, std::span<value_t>(out)), 0u);
  v = {42};
  f = {0};
  out.resize(1);
  EXPECT_EQ(vm::segmented_totals(m, 0, v, f, std::span<value_t>(out)), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(SegmentedScan, EquivalentToListScanAfterRanking) {
  // The bridge identity: rank a list into an array, mark each sublist
  // start, and the segmented scan of the reordered values equals the list
  // scan read off in traversal order.
  Rng rng(9);
  const LinkedList l = random_list(400, rng, ValueInit::kUniformSmall);
  const auto order = order_of(l);

  // Split the traversal into segments after positions 99 and 249.
  std::vector<std::uint8_t> flags(400, 0);
  flags[0] = flags[100] = flags[250] = 1;
  const auto arr = list_to_array(l);

  vm::Machine m;
  std::vector<value_t> seg_out(400);
  vm::segmented_exclusive_scan(m, 0, std::span<const value_t>(arr), flags,
                               std::span<value_t>(seg_out));

  // Reference: serial walk restarting at the same traversal positions.
  value_t acc = 0;
  for (std::size_t pos = 0; pos < 400; ++pos) {
    if (flags[pos]) acc = 0;
    EXPECT_EQ(seg_out[pos], acc) << pos;
    acc += l.value[order[pos]];
  }
}

TEST(RankMany, MatchesPerListRanks) {
  Rng rng(10);
  std::vector<LinkedList> lists;
  for (const std::size_t n : {1u, 5u, 100u, 37u}) {
    lists.push_back(random_list(n, rng));
  }
  const auto ranks = rank_many(lists);
  ASSERT_EQ(ranks.size(), 4u);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(ranks[i], reference_rank(lists[i])) << i;
  }
}

TEST(RankMany, HandlesEmptyBatchAndEmptyMembers) {
  EXPECT_TRUE(rank_many({}).empty());
  Rng rng(11);
  std::vector<LinkedList> lists(3);
  lists[1] = random_list(10, rng);
  const auto ranks = rank_many(lists);
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_TRUE(ranks[0].empty());
  EXPECT_EQ(ranks[1], reference_rank(lists[1]));
  EXPECT_TRUE(ranks[2].empty());
}

TEST(RankMany, ManySmallListsThreaded) {
  Rng rng(12);
  std::vector<LinkedList> lists;
  for (int i = 0; i < 50; ++i) lists.push_back(random_list(64, rng));
  HostOptions opt;
  opt.threads = 4;
  const auto ranks = rank_many(lists, opt);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(ranks[i], reference_rank(lists[i])) << i;
  }
}

}  // namespace
}  // namespace lr90
