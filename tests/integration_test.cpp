// Cross-module integration tests: the full pipeline (workload generator ->
// algorithm -> simulated machine -> verification) for every method and
// processor count, plus the performance-ordering claims of the paper that
// the benches rely on.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

TEST(Integration, RunSimVerifiesAllMethods) {
  for (const Method method :
       {Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller,
        Method::kReidMillerEncoded}) {
    const SimRun run = run_sim(method, 5000, 1, /*rank=*/true);
    EXPECT_GT(run.cycles, 0.0) << method_name(method);
    EXPECT_GT(run.ns_per_vertex, 0.0) << method_name(method);
  }
}

TEST(Integration, ReidMillerOnAllProcessorCounts) {
  for (const unsigned p : {1u, 2u, 3u, 4u, 8u, 16u}) {
    const SimRun run = run_sim(Method::kReidMiller, 50000, p, /*rank=*/false);
    EXPECT_GT(run.cycles, 0.0) << "p=" << p;
  }
}

TEST(Integration, SpeedupWithinLinearBound) {
  const double t1 =
      run_sim(Method::kReidMiller, 500000, 1, true).cycles;
  for (const unsigned p : {2u, 4u, 8u}) {
    const double tp =
        run_sim(Method::kReidMiller, 500000, p, true).cycles;
    const double speedup = t1 / tp;
    EXPECT_GT(speedup, 0.6 * p) << "p=" << p;
    EXPECT_LE(speedup, static_cast<double>(p) * 1.01) << "p=" << p;
  }
}

TEST(Integration, PaperOrderingOnLongLists) {
  // Fig. 1 / Sections 2.3-2.4: for long lists on one processor,
  //   ours < serial < anderson-miller < miller-reif
  // and Wyllie is worse than serial.
  const std::size_t n = 300000;
  const double ours = run_sim(Method::kReidMiller, n, 1, true).cycles;
  const double serial = run_sim(Method::kSerial, n, 1, true).cycles;
  const double am = run_sim(Method::kAndersonMiller, n, 1, true).cycles;
  const double mr = run_sim(Method::kMillerReif, n, 1, true).cycles;
  const double wyllie = run_sim(Method::kWyllie, n, 1, true).cycles;
  EXPECT_LT(ours, serial);
  EXPECT_LT(serial, am);
  EXPECT_LT(am, mr);
  EXPECT_LT(serial, wyllie);
}

TEST(Integration, RandomMatesScaleWithProcessors) {
  // Section 2.3/2.4: both random-mate algorithms "scale almost linearly
  // with the number of processors".
  const std::size_t n = 200000;
  for (const Method method : {Method::kMillerReif, Method::kAndersonMiller}) {
    const double t1 = run_sim(method, n, 1, true).cycles;
    const double t8 = run_sim(method, n, 8, true).cycles;
    const double speedup = t1 / t8;
    EXPECT_GT(speedup, 4.0) << method_name(method);
    EXPECT_LE(speedup, 8.01) << method_name(method);
  }
}

TEST(Integration, AndersonMillerBeatsSerialOnMultipleProcessors) {
  // Section 2.4: "because it scales almost linearly, for long lists it is
  // faster on multiple physical processors than the serial algorithm or
  // Wyllie's algorithm." (The Wyllie comparison needs Wyllie's log n
  // growth to bite, far deeper in the asymptote than a fast test can go;
  // we assert the serial claim, by a wide margin.)
  const std::size_t n = 500000;
  const double serial = run_sim(Method::kSerial, n, 1, true).cycles;
  const double am8 = run_sim(Method::kAndersonMiller, n, 8, true).cycles;
  EXPECT_LT(am8, 0.5 * serial);
}

TEST(Integration, WyllieBeatsOursOnShortLists) {
  // Fig. 1: the crossover sits near n ~ 1000.
  const double wyllie = run_sim(Method::kWyllie, 256, 1, false).cycles;
  const double ours = run_sim(Method::kReidMiller, 256, 1, false).cycles;
  EXPECT_LT(wyllie, ours);
}

TEST(Integration, OursBeatsWyllieOnLongLists) {
  const double wyllie = run_sim(Method::kWyllie, 100000, 1, false).cycles;
  const double ours = run_sim(Method::kReidMiller, 100000, 1, false).cycles;
  EXPECT_LT(ours, wyllie);
}

TEST(Integration, VectorizedBeatsSerialByFactorEight) {
  // Table I: one vectorized processor is over 8x the Cray serial code for
  // ranking (42.1 vs ~5.1 cycles/vertex).
  const std::size_t n = 2000000;
  const double serial = run_sim(Method::kSerial, n, 1, true).cycles;
  const double ours =
      run_sim(Method::kReidMillerEncoded, n, 1, true).cycles;
  EXPECT_GT(serial / ours, 6.5);
  EXPECT_LT(serial / ours, 10.0);
}

TEST(Integration, RankCheaperThanScan) {
  const std::size_t n = 500000;
  const double rank =
      run_sim(Method::kReidMillerEncoded, n, 1, true).cycles;
  const double scan = run_sim(Method::kReidMiller, n, 1, false).cycles;
  EXPECT_LT(rank, scan);
}

TEST(Integration, StatsSurviveTheApiBoundary) {
  const SimRun run = run_sim(Method::kMillerReif, 4000, 1, true);
  EXPECT_EQ(run.stats.splices, 4000u - 2u);
  EXPECT_GT(run.stats.rounds, 0u);
}

}  // namespace
}  // namespace lr90
