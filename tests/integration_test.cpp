// Cross-module integration tests: the full pipeline (workload generator ->
// algorithm -> simulated machine -> verification) for every method and
// processor count, plus the performance-ordering claims of the paper that
// the benches rely on.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

/// run_sim no longer aborts on a wrong answer; every call here must check
/// the typed status or a buggy algorithm would sail through green.
SimRun checked(Method method, std::size_t n, unsigned p, bool rank) {
  SimRun run = run_sim(method, n, p, rank);
  EXPECT_TRUE(run.ok()) << method_name(method) << " n=" << n << " p=" << p
                        << ": " << run.status.message;
  return run;
}

TEST(Integration, RunSimVerifiesAllMethods) {
  for (const Method method :
       {Method::kSerial, Method::kWyllie, Method::kMillerReif,
        Method::kAndersonMiller, Method::kReidMiller,
        Method::kReidMillerEncoded}) {
    const SimRun run = checked(method, 5000, 1, /*rank=*/true);
    EXPECT_GT(run.cycles, 0.0) << method_name(method);
    EXPECT_GT(run.ns_per_vertex, 0.0) << method_name(method);
  }
}

TEST(Integration, ReidMillerOnAllProcessorCounts) {
  for (const unsigned p : {1u, 2u, 3u, 4u, 8u, 16u}) {
    const SimRun run = checked(Method::kReidMiller, 50000, p, /*rank=*/false);
    EXPECT_GT(run.cycles, 0.0) << "p=" << p;
  }
}

TEST(Integration, SpeedupWithinLinearBound) {
  const double t1 =
      checked(Method::kReidMiller, 500000, 1, true).cycles;
  for (const unsigned p : {2u, 4u, 8u}) {
    const double tp =
        checked(Method::kReidMiller, 500000, p, true).cycles;
    const double speedup = t1 / tp;
    EXPECT_GT(speedup, 0.6 * p) << "p=" << p;
    EXPECT_LE(speedup, static_cast<double>(p) * 1.01) << "p=" << p;
  }
}

TEST(Integration, PaperOrderingOnLongLists) {
  // Fig. 1 / Sections 2.3-2.4: for long lists on one processor,
  //   ours < serial < anderson-miller < miller-reif
  // and Wyllie is worse than serial.
  const std::size_t n = 300000;
  const double ours = checked(Method::kReidMiller, n, 1, true).cycles;
  const double serial = checked(Method::kSerial, n, 1, true).cycles;
  const double am = checked(Method::kAndersonMiller, n, 1, true).cycles;
  const double mr = checked(Method::kMillerReif, n, 1, true).cycles;
  const double wyllie = checked(Method::kWyllie, n, 1, true).cycles;
  EXPECT_LT(ours, serial);
  EXPECT_LT(serial, am);
  EXPECT_LT(am, mr);
  EXPECT_LT(serial, wyllie);
}

TEST(Integration, RandomMatesScaleWithProcessors) {
  // Section 2.3/2.4: both random-mate algorithms "scale almost linearly
  // with the number of processors".
  const std::size_t n = 200000;
  for (const Method method : {Method::kMillerReif, Method::kAndersonMiller}) {
    const double t1 = checked(method, n, 1, true).cycles;
    const double t8 = checked(method, n, 8, true).cycles;
    const double speedup = t1 / t8;
    EXPECT_GT(speedup, 4.0) << method_name(method);
    EXPECT_LE(speedup, 8.01) << method_name(method);
  }
}

TEST(Integration, AndersonMillerBeatsSerialOnMultipleProcessors) {
  // Section 2.4: "because it scales almost linearly, for long lists it is
  // faster on multiple physical processors than the serial algorithm or
  // Wyllie's algorithm." (The Wyllie comparison needs Wyllie's log n
  // growth to bite, far deeper in the asymptote than a fast test can go;
  // we assert the serial claim, by a wide margin.)
  const std::size_t n = 500000;
  const double serial = checked(Method::kSerial, n, 1, true).cycles;
  const double am8 = checked(Method::kAndersonMiller, n, 8, true).cycles;
  EXPECT_LT(am8, 0.5 * serial);
}

TEST(Integration, WyllieBeatsOursOnShortLists) {
  // Fig. 1: the crossover sits near n ~ 1000.
  const double wyllie = checked(Method::kWyllie, 256, 1, false).cycles;
  const double ours = checked(Method::kReidMiller, 256, 1, false).cycles;
  EXPECT_LT(wyllie, ours);
}

TEST(Integration, OursBeatsWyllieOnLongLists) {
  const double wyllie = checked(Method::kWyllie, 100000, 1, false).cycles;
  const double ours = checked(Method::kReidMiller, 100000, 1, false).cycles;
  EXPECT_LT(ours, wyllie);
}

TEST(Integration, VectorizedBeatsSerialByFactorEight) {
  // Table I: one vectorized processor is over 8x the Cray serial code for
  // ranking (42.1 vs ~5.1 cycles/vertex).
  const std::size_t n = 2000000;
  const double serial = checked(Method::kSerial, n, 1, true).cycles;
  const double ours =
      checked(Method::kReidMillerEncoded, n, 1, true).cycles;
  EXPECT_GT(serial / ours, 6.5);
  EXPECT_LT(serial / ours, 10.0);
}

TEST(Integration, RankCheaperThanScan) {
  const std::size_t n = 500000;
  const double rank =
      checked(Method::kReidMillerEncoded, n, 1, true).cycles;
  const double scan = checked(Method::kReidMiller, n, 1, false).cycles;
  EXPECT_LT(rank, scan);
}

TEST(Integration, StatsSurviveTheApiBoundary) {
  const SimRun run = checked(Method::kMillerReif, 4000, 1, true);
  EXPECT_EQ(run.stats.splices, 4000u - 2u);
  EXPECT_GT(run.stats.rounds, 0u);
}

}  // namespace
}  // namespace lr90
