#include "support/polyfit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lr90 {
namespace {

TEST(SolveLinear, Identity) {
  const auto x = solve_linear({1, 0, 0, 1}, {3, 4});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinear, KnownSystem) {
  // 2a + b = 5; a - b = 1  =>  a = 2, b = 1.
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // First pivot is zero; partial pivoting must handle it.
  const auto x = solve_linear({0, 1, 1, 0}, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Polyfit, RecoversCubicExactly) {
  std::vector<double> xs, ys;
  for (int i = -5; i <= 6; ++i) {
    const double x = i;
    xs.push_back(x);
    ys.push_back(1.0 - 2.0 * x + 0.5 * x * x + 0.25 * x * x * x);
  }
  const Polynomial p = polyfit(xs, ys, 3);
  ASSERT_EQ(p.degree(), 3);
  EXPECT_NEAR(p.coeffs[0], 1.0, 1e-9);
  EXPECT_NEAR(p.coeffs[1], -2.0, 1e-9);
  EXPECT_NEAR(p.coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(p.coeffs[3], 0.25, 1e-9);
}

TEST(Polyfit, DegreeZeroIsMean) {
  std::vector<double> xs{0, 1, 2, 3}, ys{2, 4, 6, 8};
  const Polynomial p = polyfit(xs, ys, 0);
  EXPECT_NEAR(p.coeffs[0], 5.0, 1e-12);
}

TEST(Polyfit, EvaluateMatchesHorner) {
  Polynomial p;
  p.coeffs = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 6.0);
  EXPECT_DOUBLE_EQ(p(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p(-1.0), 2.0);
}

TEST(Polyfit, OverdeterminedLeastSquares) {
  // Noisy line, quadratic fit: the quadratic coefficient should be small.
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i * 0.25);
    ys.push_back(7.0 + 2.0 * i * 0.25 + ((i % 2) ? 1e-3 : -1e-3));
  }
  const Polynomial p = polyfit(xs, ys, 2);
  EXPECT_NEAR(p.coeffs[1], 2.0, 1e-2);
  EXPECT_NEAR(p.coeffs[2], 0.0, 1e-2);
}

}  // namespace
}  // namespace lr90
