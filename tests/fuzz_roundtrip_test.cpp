// Fuzz-style round-trip and corruption coverage for lists/encode.hpp and
// lists/validate.hpp: seeded random lists survive encode/decode
// bit-exactly, and every class of structural corruption -- out-of-range
// next-pointers, planted self-loops, removed tails, multi-head splits,
// short cycles, mismatched arrays -- is rejected by the validator and
// surfaces from the Engine as typed StatusCode::kInvalidInput, never as
// undefined behaviour (the asan-ubsan CI job runs this suite). Every
// assertion carries the reproducing seed.
#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "lists/encode.hpp"
#include "lists/generators.hpp"
#include "lists/validate.hpp"
#include "test_util.hpp"

namespace lr90 {
namespace {

// ---------------------------------------------------------------------
// Encode/decode round trips.
// ---------------------------------------------------------------------
TEST(EncodeFuzz, RandomListsRoundTripBitExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("repro: seed=" + std::to_string(seed));
    Rng rng(seed);
    const std::size_t n = rng.uniform(2000);
    const LinkedList l = random_list(n, rng, ValueInit::kUniformSmall);
    ASSERT_TRUE(can_encode(l));
    const LinkedList back = decode_list(encode_list(l), l.head);
    EXPECT_TRUE(lists_equal(l, back));
    EXPECT_TRUE(is_valid_list(back));
  }
}

TEST(EncodeFuzz, ArbitraryWordsRoundTripTheirLanes) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto link = static_cast<index_t>(rng.uniform(1ULL << 32));
    const auto value = static_cast<std::uint32_t>(rng.uniform(1ULL << 32));
    const packed_t w = pack_link_value(link, value);
    ASSERT_EQ(packed_link(w), link);
    ASSERT_EQ(packed_value(w), value);
  }
}

TEST(EncodeFuzz, OutOfLaneValuesAreRejectedNotTruncated) {
  Rng rng(11);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("repro: seed=" + std::to_string(seed));
    Rng r(seed);
    LinkedList l = random_list(16 + r.uniform(64), r);
    const std::size_t victim = r.uniform(l.size());
    l.value[victim] = r.coin() ? -static_cast<value_t>(1 + r.uniform(100))
                               : (static_cast<value_t>(1) << 32) +
                                     static_cast<value_t>(r.uniform(100));
    EXPECT_FALSE(can_encode(l));
  }
}

// ---------------------------------------------------------------------
// Corruption fuzzing: every corruption class must be named by the
// validator and rejected typed by the Engine.
// ---------------------------------------------------------------------

/// The corruption classes; each guarantees structural invalidity on a
/// list of >= 4 vertices.
enum class Corruption {
  kOutOfRangeNext,   // next[v] = n + junk
  kPlantedSelfLoop,  // a second self-loop at a non-tail vertex
  kUnloopedTail,     // next[tail] = head: no self-loop remains
  kMultiHead,        // shortcut a mid-list vertex to the tail: the skipped
                     // suffix becomes a second, unreachable "head"
  kShortCycle,       // next[v] = head: the walk revisits the head
  kHeadOutOfRange,   // head = n
  kArrayMismatch,    // value array shorter than next array
};

constexpr Corruption kAllCorruptions[] = {
    Corruption::kOutOfRangeNext, Corruption::kPlantedSelfLoop,
    Corruption::kUnloopedTail,   Corruption::kMultiHead,
    Corruption::kShortCycle,     Corruption::kHeadOutOfRange,
    Corruption::kArrayMismatch,
};

/// Applies the corruption to a valid list of >= 4 vertices.
void corrupt(LinkedList& l, Corruption kind, Rng& rng) {
  const std::size_t n = l.size();
  const index_t tail = l.find_tail();
  // A non-tail victim vertex.
  auto non_tail = [&] {
    while (true) {
      const auto v = static_cast<index_t>(rng.uniform(n));
      if (v != tail) return v;
    }
  };
  switch (kind) {
    case Corruption::kOutOfRangeNext:
      l.next[non_tail()] = static_cast<index_t>(n + rng.uniform(1000));
      break;
    case Corruption::kPlantedSelfLoop: {
      const index_t v = non_tail();
      l.next[v] = v;
      break;
    }
    case Corruption::kUnloopedTail:
      l.next[tail] = l.head;
      break;
    case Corruption::kMultiHead: {
      // A vertex whose successor is not already the tail.
      index_t v = non_tail();
      while (l.next[v] == tail) v = non_tail();
      l.next[v] = tail;
      break;
    }
    case Corruption::kShortCycle:
      l.next[non_tail()] = l.head;
      break;
    case Corruption::kHeadOutOfRange:
      l.head = static_cast<index_t>(n);
      break;
    case Corruption::kArrayMismatch:
      l.value.pop_back();
      break;
  }
}

TEST(ValidateFuzz, EveryCorruptionClassIsNamedByTheValidator) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const Corruption kind : kAllCorruptions) {
      std::ostringstream repro;
      repro << "repro: seed=" << seed << " corruption="
            << static_cast<int>(kind);
      SCOPED_TRACE(repro.str());
      Rng rng(seed);
      LinkedList l = random_list(4 + rng.uniform(500), rng);
      ASSERT_FALSE(validate_list(l).has_value());
      corrupt(l, kind, rng);
      const auto err = validate_list(l);
      ASSERT_TRUE(err.has_value()) << "corruption went undetected";
      EXPECT_FALSE(err->empty());
    }
  }
}

TEST(ValidateFuzz, EngineRejectsEveryCorruptionTyped) {
  // validate_input = true must turn every corruption into a typed
  // kInvalidInput on every backend -- no crash, no UB, no wrong answer.
  for (const BackendKind backend :
       {BackendKind::kSerial, BackendKind::kSim, BackendKind::kHost}) {
    EngineOptions opt;
    opt.backend = backend;
    opt.validate_input = true;
    Engine engine(opt);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      for (const Corruption kind : kAllCorruptions) {
        std::ostringstream repro;
        repro << "repro: seed=" << seed << " corruption="
              << static_cast<int>(kind) << " backend="
              << backend_name(backend);
        SCOPED_TRACE(repro.str());
        Rng rng(seed);
        LinkedList l = random_list(4 + rng.uniform(200), rng);
        corrupt(l, kind, rng);
        const RunResult r = engine.rank(l);
        EXPECT_EQ(r.status.code, StatusCode::kInvalidInput);
        const RunResult s = engine.run(OpRequest{&l, ScanOp::kMaxPlus});
        EXPECT_EQ(s.status.code, StatusCode::kInvalidInput);
      }
    }
  }
}

TEST(ValidateFuzz, ValidListsStayValidThroughEveryEngineRun) {
  // The algorithms promise to restore any list they mutate; fuzz that the
  // input is bit-identical after every method that accepts it.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("repro: seed=" + std::to_string(seed));
    Rng rng(seed);
    const LinkedList l = random_list(64 + rng.uniform(1000), rng,
                                     ValueInit::kSigned);
    const LinkedList before = l;
    Engine sim({.backend = BackendKind::kSim});
    for (const Method m : {Method::kSerial, Method::kWyllie,
                           Method::kMillerReif, Method::kAndersonMiller,
                           Method::kReidMiller}) {
      ASSERT_TRUE(sim.scan(l, ScanOp::kPlus, m).ok()) << method_name(m);
      ASSERT_TRUE(lists_equal(l, before)) << method_name(m);
    }
  }
}

}  // namespace
}  // namespace lr90
