// Loopback integration for the network front door (net/server.hpp):
// a real NetServer on an ephemeral 127.0.0.1 port, driven by NetClient
// over real sockets. Covers lifecycle, bit-exactness against a direct
// Engine run, concurrent connections, pipelining, the RETRY_AFTER
// back-pressure path, protocol-error teardown, the netcat plaintext
// escape, idle timeouts, abrupt peer resets, and graceful-shutdown
// draining of in-flight responses.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "lists/generators.hpp"
#include "net/client.hpp"
#include "support/faultpoint.hpp"

namespace lr90::net {
namespace {

using namespace std::chrono_literals;

/// Server options every test starts from: ephemeral port, two engine
/// workers, single-threaded engines (the tests measure correctness, not
/// speed, and CI runs this under TSan).
NetServerOptions base_options() {
  NetServerOptions opt;
  opt.port = 0;
  opt.serve.workers = 2;
  opt.serve.engine.backend = BackendKind::kHost;
  opt.serve.engine.threads = 1;
  return opt;
}

/// A client connected to `server`, asserting the transport came up.
NetClient connect_client(const NetServer& server) {
  NetClient client;
  const Status s = client.connect_to("127.0.0.1", server.port());
  EXPECT_TRUE(s.ok()) << s.message;
  return client;
}

TEST(NetServer, StartsStopsAndReportsHealth) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);

  NetClient client = connect_client(server);
  std::string health;
  ASSERT_TRUE(client.health_text(health).ok());
  EXPECT_EQ(health, "ok\n");

  server.stop();
  EXPECT_FALSE(server.running());
  // Idempotent: a second stop is a no-op, and start()/stop() again works.
  server.stop();
  ASSERT_TRUE(server.start().ok());
  server.stop();
}

TEST(NetServer, RankAndScanMatchDirectEngineBitExact) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  // Reference: a direct single-threaded host engine -- the same
  // configuration the server's pooled workers run.
  Engine direct(server.options().serve.engine);

  Rng rng(2024);
  for (const std::size_t n : {1u, 2u, 57u, 1000u, 30000u}) {
    const LinkedList list = random_list(n, rng);

    ResponseFrame resp;
    ASSERT_TRUE(client.rank(list, resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
    const RunResult want_rank = direct.run(RankRequest{&list});
    ASSERT_TRUE(want_rank.ok());
    EXPECT_EQ(resp.values, want_rank.scan) << "rank n=" << n;

    for (const ScanOp op : {ScanOp::kPlus, ScanOp::kMin, ScanOp::kMaxPlus}) {
      ASSERT_TRUE(client.scan(list, op, resp).ok());
      ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
      const RunResult want = direct.run(ScanRequest{&list, op});
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(resp.values, want.scan)
          << "scan op=" << scan_op_name(op) << " n=" << n;
    }
  }
  server.stop();
}

TEST(NetServer, FourConcurrentConnectionsStayBitExact) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());

  // Shared inputs with precomputed references.
  Rng rng(7);
  std::vector<LinkedList> lists;
  for (const std::size_t n : {3u, 64u, 1000u, 4096u})
    lists.push_back(random_list(n, rng));
  Engine direct(server.options().serve.engine);
  std::vector<std::vector<value_t>> want_rank, want_scan;
  for (const LinkedList& list : lists) {
    want_rank.push_back(direct.run(RankRequest{&list}).scan);
    want_scan.push_back(direct.run(ScanRequest{&list, ScanOp::kMin}).scan);
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      NetClient client;
      if (!client.connect_to("127.0.0.1", server.port()).ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        const std::size_t which = (t + i) % lists.size();
        ResponseFrame resp;
        if ((t + i) % 2 == 0) {
          if (!client.rank(lists[which], resp).ok() ||
              resp.status != WireStatus::kOk ||
              resp.values != want_rank[which])
            mismatches.fetch_add(1);
        } else {
          if (!client.scan(lists[which], ScanOp::kMin, resp).ok() ||
              resp.status != WireStatus::kOk ||
              resp.values != want_scan[which])
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const NetStats stats = server.net_stats();
  EXPECT_GE(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.frames_in, static_cast<std::uint64_t>(kClients * kRounds));
  server.stop();
}

TEST(NetServer, PipelinedRequestsAnswerInOrderOnOneSocket) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  Rng rng(12);
  const LinkedList list = random_list(500, rng);
  Engine direct(server.options().serve.engine);
  const std::vector<value_t> want = direct.run(RankRequest{&list}).scan;

  // Burst of sends, then the matching reads. Responses for one
  // connection come back in submission order (the loop encodes
  // completions into a single ordered output buffer per connection --
  // but engine completion order is not submission order, so ids matter).
  constexpr int kDepth = 16;
  std::vector<std::uint32_t> ids(kDepth);
  for (int i = 0; i < kDepth; ++i)
    ASSERT_TRUE(client.send_rank(list, ids[i]).ok());
  std::vector<bool> seen(kDepth, false);
  for (int i = 0; i < kDepth; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.read_response(resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
    EXPECT_EQ(resp.values, want);
    bool matched = false;
    for (int j = 0; j < kDepth; ++j) {
      if (ids[j] == resp.request_id) {
        EXPECT_FALSE(seen[j]) << "duplicate response for id " << ids[j];
        seen[j] = matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "unknown response id " << resp.request_id;
  }
  server.stop();
}

TEST(NetServer, FullQueueAnswersRetryAfterAndNeverHangs) {
  // The back-pressure scenario: one worker, a one-slot queue, no
  // batching -- then a pipelined burst far deeper than the queue. Every
  // request gets an answer (kOk or kRetryAfter with a usable hint);
  // nothing blocks, nothing is silently dropped.
  NetServerOptions opt = base_options();
  opt.serve.workers = 1;
  opt.serve.queue_capacity = 1;
  opt.serve.max_batch = 1;
  NetServer server(opt);
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  // A large "plug" request occupies the single worker for many
  // milliseconds; the burst behind it is tiny, so the event loop decodes
  // and submits all of it while the plug is still ranking -- regardless
  // of how much a sanitizer slows either side down. Capacity 1 then
  // admits exactly one burst request; the rest must be refused.
  Rng rng(5);
  const LinkedList plug = random_list(400000, rng);
  const LinkedList list = random_list(64, rng);
  Engine direct(server.options().serve.engine);
  const std::vector<value_t> want_plug = direct.run(RankRequest{&plug}).scan;
  const std::vector<value_t> want = direct.run(RankRequest{&list}).scan;

  std::uint32_t plug_id = 0;
  ASSERT_TRUE(client.send_rank(plug, plug_id).ok());

  constexpr int kBurst = 24;
  std::vector<std::uint32_t> ids(kBurst);
  for (int i = 0; i < kBurst; ++i)
    ASSERT_TRUE(client.send_rank(list, ids[i]).ok());

  // Rejections are answered immediately by the loop, completions when
  // the worker finishes, so responses interleave -- match by request id.
  int ok = 0, retry = 0;
  bool plug_answered = false;
  for (int i = 0; i < kBurst + 1; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.read_response(resp).ok()) << "response " << i;
    if (resp.request_id == plug_id) {
      ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
      EXPECT_EQ(resp.values, want_plug);
      plug_answered = true;
      continue;
    }
    if (resp.status == WireStatus::kOk) {
      EXPECT_EQ(resp.values, want);
      ++ok;
    } else {
      ASSERT_EQ(resp.status, WireStatus::kRetryAfter) << resp.text;
      EXPECT_EQ(resp.body, BodyKind::kRetry);
      EXPECT_GE(resp.retry_after_ms, opt.retry_min_ms);
      EXPECT_LE(resp.retry_after_ms, opt.retry_max_ms);
      ++retry;
    }
  }
  EXPECT_TRUE(plug_answered);
  EXPECT_EQ(ok + retry, kBurst);
  // With the worker pinned on the plug and the queue holding one slot,
  // rejection is structurally guaranteed: at most one burst request is
  // admitted before the submit path starts refusing. (Whether even that
  // one gets in depends on when the worker dequeues the plug, so ok may
  // legitimately be zero -- acceptance is proven by the retry loop below.)
  EXPECT_GE(retry, 1);
  EXPECT_EQ(server.net_stats().retry_after_sent,
            static_cast<std::uint64_t>(retry));

  // And the client-side contract: honouring the hint eventually lands
  // the request.
  bool landed = false;
  for (int attempt = 0; attempt < 50 && !landed; ++attempt) {
    ResponseFrame resp;
    ASSERT_TRUE(client.rank(list, resp).ok());
    if (resp.status == WireStatus::kOk) {
      EXPECT_EQ(resp.values, want);
      landed = true;
    } else {
      ASSERT_EQ(resp.status, WireStatus::kRetryAfter);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(resp.retry_after_ms));
    }
  }
  EXPECT_TRUE(landed) << "retry loop never landed";
  server.stop();
}

TEST(NetServer, MalformedFrameGetsTypedAnswerThenClose) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  // A frame claiming a payload over the wire cap.
  std::uint8_t bad[kHeaderSize] = {kMagic0, kMagic1, kWireVersion, 1};
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(bad + 8, &huge, sizeof(huge));
  ASSERT_TRUE(client.send_raw(bad, sizeof(bad)).ok());

  ResponseFrame resp;
  ASSERT_TRUE(client.read_response(resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kBadRequest);
  EXPECT_NE(resp.text.find("oversized"), std::string::npos) << resp.text;

  // ...and the server hangs up after answering.
  std::string rest;
  EXPECT_TRUE(client.read_until_eof(rest).ok());
  EXPECT_GE(server.net_stats().protocol_errors, 1u);
  server.stop();
}

TEST(NetServer, PlaintextStatsAndHealthForNetcatUsers) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());

  {
    NetClient client = connect_client(server);
    ASSERT_TRUE(client.send_raw("HEALTH\n", 7).ok());
    std::string text;
    ASSERT_TRUE(client.read_until_eof(text).ok());
    EXPECT_EQ(text, "ok\n");
  }
  {
    NetClient client = connect_client(server);
    ASSERT_TRUE(client.send_raw("STATS\r\n", 7).ok());  // telnet-style CRLF
    std::string text;
    ASSERT_TRUE(client.read_until_eof(text).ok());
    EXPECT_NE(text.find("queue_capacity "), std::string::npos) << text;
    EXPECT_NE(text.find("net_req_stats "), std::string::npos) << text;
  }
  {
    // The framed stats request returns the same shape of text.
    NetClient client = connect_client(server);
    std::string framed;
    ASSERT_TRUE(client.stats_text(framed).ok());
    EXPECT_NE(framed.find("net_req_stats "), std::string::npos);
  }
  EXPECT_GE(server.net_stats().req_stats, 2u);
  EXPECT_GE(server.net_stats().req_health, 1u);
  server.stop();
}

TEST(NetServer, HttpGetStatsAdapterAnswersCurlShapedRequests) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());

  // Run one rank over the wire first so the kernel-tier counters have
  // something to show in the scraped body.
  {
    NetClient client = connect_client(server);
    Rng rng(77);
    const LinkedList list = random_list(30000, rng);
    ResponseFrame resp;
    ASSERT_TRUE(client.rank(list, resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  }
  const serve::ServerStats ss = server.serve_stats();
  EXPECT_GE(ss.tier_legacy_runs + ss.tier_packed_runs + ss.tier_simd_runs, 1u);

  {
    // A curl-shaped request: short request line, then headers that push
    // the buffer well past the one-line netcat budget.
    NetClient client = connect_client(server);
    const std::string req =
        "GET /stats HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "User-Agent: curl/8.0.1\r\n"
        "Accept: */*\r\n"
        "\r\n";
    ASSERT_TRUE(client.send_raw(req.data(), req.size()).ok());
    std::string text;
    ASSERT_TRUE(client.read_until_eof(text).ok());
    EXPECT_EQ(text.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << text;
    EXPECT_NE(text.find("Content-Type: text/plain"), std::string::npos) << text;
    EXPECT_NE(text.find("net_req_stats "), std::string::npos) << text;
    EXPECT_NE(text.find("tier_legacy_runs "), std::string::npos) << text;
    EXPECT_NE(text.find("tier_packed_runs "), std::string::npos) << text;
    EXPECT_NE(text.find("tier_simd_runs "), std::string::npos) << text;
  }
  {
    NetClient client = connect_client(server);
    const std::string req = "GET /health HTTP/1.0\r\n\r\n";
    ASSERT_TRUE(client.send_raw(req.data(), req.size()).ok());
    std::string text;
    ASSERT_TRUE(client.read_until_eof(text).ok());
    EXPECT_EQ(text.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << text;
    EXPECT_NE(text.find("\r\n\r\nok\n"), std::string::npos) << text;
  }
  {
    // Unknown path: a proper 404, not the bare "bad request" line.
    NetClient client = connect_client(server);
    const std::string req = "GET /nope HTTP/1.0\r\n";
    ASSERT_TRUE(client.send_raw(req.data(), req.size()).ok());
    std::string text;
    ASSERT_TRUE(client.read_until_eof(text).ok());
    EXPECT_EQ(text.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << text;
  }
  EXPECT_GE(server.net_stats().req_stats, 1u);
  EXPECT_GE(server.net_stats().req_health, 1u);
  server.stop();
}

TEST(NetServer, IdleConnectionsTimeOut) {
  NetServerOptions opt = base_options();
  opt.idle_timeout_s = 0.05;
  NetServer server(opt);
  ASSERT_TRUE(server.start().ok());

  NetClient client = connect_client(server);
  // Do nothing; the server should hang up on us.
  std::string rest;
  EXPECT_TRUE(client.read_until_eof(rest).ok());
  EXPECT_TRUE(rest.empty());
  EXPECT_GE(server.net_stats().idle_closed, 1u);
  server.stop();
}

TEST(NetServer, AbruptPeerResetIsACountedCleanTeardown) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());

  for (int i = 0; i < 8; ++i) {
    NetClient client = connect_client(server);
    // Half a frame, then vanish.
    const std::uint8_t partial[] = {kMagic0, kMagic1, kWireVersion};
    ASSERT_TRUE(client.send_raw(partial, sizeof(partial)).ok());
    client.close();
  }
  // The server stays alive and serving afterwards.
  NetClient client = connect_client(server);
  Rng rng(3);
  const LinkedList list = random_list(100, rng);
  ResponseFrame resp;
  ASSERT_TRUE(client.rank(list, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk);

  // Every vanished peer became a counted close, never a crash.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (server.net_stats().closed < 8 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_GE(server.net_stats().closed, 8u);
  server.stop();
}

TEST(NetServer, GracefulStopDrainsInFlightResponses) {
  NetServerOptions opt = base_options();
  opt.serve.workers = 1;
  NetServer server(opt);
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  Rng rng(9);
  const LinkedList list = random_list(200000, rng);
  Engine direct(server.options().serve.engine);
  const std::vector<value_t> want = direct.run(RankRequest{&list}).scan;

  // Get the request in flight, then stop the server while the engine is
  // (very likely still) running it. The drain must deliver the answer.
  std::uint32_t id = 0;
  ASSERT_TRUE(client.send_rank(list, id).ok());
  // Wait until the request is genuinely in flight (accepted into the
  // engine), not a fixed sleep -- sanitizer builds dispatch slowly.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.serve_stats().submitted < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  ASSERT_GE(server.serve_stats().submitted, 1u);
  std::thread stopper([&] { server.stop(); });

  ResponseFrame resp;
  const Status s = client.read_response(resp);
  stopper.join();
  ASSERT_TRUE(s.ok()) << s.message;
  EXPECT_EQ(resp.request_id, id);
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values, want);

  // New requests after the drain began are told the truth.
  EXPECT_FALSE(server.running());
}

TEST(NetServer, RequestsDuringDrainSayShuttingDown) {
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.health_text(), "ok\n");
  server.stop();
  EXPECT_EQ(server.health_text(), "draining\n");
}

TEST(NetServer, InvalidListIsTypedNotFatal) {
  // Structurally broken input (a 2-cycle, so no vertex is the tail)
  // decodes fine at the wire layer but must come back kInvalidInput from
  // the forced engine validation -- the server stays up.
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  LinkedList cycle;
  cycle.next = {1, 0};
  cycle.value = {1, 1};
  cycle.head = 0;
  cycle.tail = kNoVertex;
  ResponseFrame resp;
  ASSERT_TRUE(client.rank(cycle, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kInvalidInput) << resp.text;

  // Still serving.
  Rng rng(4);
  const LinkedList good = random_list(64, rng);
  ASSERT_TRUE(client.rank(good, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk);
  server.stop();
}

TEST(NetServer, SnapshotLifecycleOverTcp) {
  // The whole snapshot story over a real socket: register returns a
  // handle, runs against the handle are bit-exact and served from the
  // shared caches on repeats, update() invalidates pinned generations
  // with a typed answer naming the current one, and release makes the
  // id unknown without hurting the connection.
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  Rng rng(31);
  const LinkedList list = random_list(1500, rng);
  Engine direct(server.options().serve.engine);
  const std::vector<value_t> want_rank = direct.run(RankRequest{&list}).scan;
  const std::vector<value_t> want_scan =
      direct.run(ScanRequest{&list, ScanOp::kMin}).scan;

  // Register: the handle comes back in a kSnapshot body at generation 1.
  ResponseFrame resp;
  ASSERT_TRUE(client.register_snapshot(list, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  ASSERT_EQ(resp.body, BodyKind::kSnapshot);
  const std::uint64_t id = resp.snapshot_id;
  EXPECT_EQ(resp.generation, 1u);

  // Runs against the handle match a direct engine; generation 0 pins
  // "whatever is current", an explicit 1 pins this generation.
  ASSERT_TRUE(client.snapshot_rank(id, 0, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values, want_rank);
  ASSERT_TRUE(client.snapshot_scan(id, 1, ScanOp::kMin, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values, want_scan);

  // A repeat of the same shaped request is a cross-request result-cache
  // hit -- same bytes on the wire, zero additional engine runs.
  ASSERT_TRUE(client.snapshot_rank(id, 0, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values, want_rank);
  EXPECT_GE(server.serve_stats().result_hits, 1u);

  // Update bumps the generation...
  const LinkedList fresh = random_list(64, rng);
  ASSERT_TRUE(client.update_snapshot(id, fresh, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  ASSERT_EQ(resp.body, BodyKind::kSnapshot);
  EXPECT_EQ(resp.snapshot_id, id);
  EXPECT_EQ(resp.generation, 2u);

  // ...and a request pinned to the old generation is refused with a
  // typed answer that names the CURRENT generation for retargeting.
  ASSERT_TRUE(client.snapshot_rank(id, 1, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kStaleGeneration) << resp.text;
  ASSERT_EQ(resp.body, BodyKind::kSnapshot);
  EXPECT_EQ(resp.snapshot_id, id);
  EXPECT_EQ(resp.generation, 2u);

  // Retarget-and-resend, exactly as the header documents, lands on the
  // new list.
  const std::vector<value_t> want_fresh =
      direct.run(RankRequest{&fresh}).scan;
  ASSERT_TRUE(client.snapshot_rank(id, resp.generation, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values, want_fresh);

  // Release frees the id; a second release and any later run against it
  // are typed rejections, not connection teardowns.
  ASSERT_TRUE(client.release_snapshot(id, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.snapshot_id, id);
  ASSERT_TRUE(client.release_snapshot(id, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kInvalidInput) << resp.text;
  ASSERT_TRUE(client.snapshot_rank(id, 0, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kInvalidInput) << resp.text;

  // The netcat-visible stats report the cache and snapshot counters.
  std::string stats;
  ASSERT_TRUE(client.stats_text(stats).ok());
  EXPECT_NE(stats.find("snapshots_live "), std::string::npos) << stats;
  EXPECT_NE(stats.find("slab_hits "), std::string::npos) << stats;
  EXPECT_NE(stats.find("net_req_snapshot_admin "), std::string::npos);
  EXPECT_NE(stats.find("net_stale_generation_sent "), std::string::npos);

  const NetStats net = server.net_stats();
  EXPECT_EQ(net.stale_generation_sent, 1u);
  EXPECT_GE(net.req_snapshot_admin, 4u);
  EXPECT_GE(net.req_snapshot_rank, 5u);
  EXPECT_GE(net.req_snapshot_scan, 1u);
  EXPECT_EQ(net.protocol_errors, 0u);
  server.stop();
}

TEST(NetServer, MidFrameDisconnectDuringRegisterLeavesNoHalfState) {
  // Regression: a peer that dies halfway through a snapshot REGISTER
  // body must not leave anything behind -- the partially-parsed bytes
  // are freed with the connection (counted partial_frame_aborts) and
  // the registry never sees a snapshot it would have to half-own.
  NetServer server(base_options());
  ASSERT_TRUE(server.start().ok());

  Rng rng(4242);
  const LinkedList list = random_list(5000, rng);
  std::vector<std::uint8_t> frame;
  encode_register_snapshot_request(frame, /*request_id=*/1, list);

  NetClient half = connect_client(server);
  // Send the header plus a fraction of the body, then vanish.
  ASSERT_TRUE(half.send_raw(frame.data(), frame.size() / 3).ok());
  // Give the loop a moment to buffer the partial frame before the close.
  std::this_thread::sleep_for(50ms);
  half.close();

  // Wait for the loop to reap the dead connection.
  for (int i = 0; i < 100 && server.net_stats().closed == 0; ++i)
    std::this_thread::sleep_for(10ms);

  const NetStats net = server.net_stats();
  EXPECT_GE(net.closed, 1u);
  EXPECT_EQ(net.partial_frame_aborts, 1u);
  EXPECT_EQ(server.serve_stats().snapshots_live, 0u)
      << "a half-received REGISTER must never reach the registry";

  // The server is unharmed: a fresh client completes the same REGISTER
  // and runs against it.
  NetClient client = connect_client(server);
  ResponseFrame resp;
  ASSERT_TRUE(client.register_snapshot(list, resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.text;
  ASSERT_TRUE(client.snapshot_rank(resp.snapshot_id, 0, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values.size(), list.size());
  server.stop();
}

TEST(NetServer, StalledWriterIsCutOffByWriteTimeout) {
  // A peer that stops draining its socket must not pin response buffers
  // forever: once queued bytes make no progress for write_timeout_s the
  // connection is closed and counted. The stall is injected at the
  // send() edge (net.send.stall) so the test is deterministic -- real
  // kernel socket buffers are far too large for a small response to
  // fill.
  fault::FaultSite* stall = fault::find_site("net.send.stall");
  ASSERT_NE(stall, nullptr);
  NetServerOptions opt = base_options();
  opt.write_timeout_s = 0.2;
  NetServer server(opt);
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  fault::Trigger t;
  t.probability = 1.0;  // every write attempt stalls
  stall->arm(t);

  Rng rng(7);
  const LinkedList list = random_list(64, rng);
  std::uint32_t id = 0;
  ASSERT_TRUE(client.send_rank(list, id).ok());

  // The response is computed but can never be written; the write
  // timeout must cut the connection off.
  bool timed_out = false;
  for (int i = 0; i < 300; ++i) {
    if (server.net_stats().write_timeouts >= 1) {
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  fault::disarm_all();
  EXPECT_TRUE(timed_out) << "stalled writer was never cut off";
  const NetStats net = server.net_stats();
  EXPECT_GE(net.write_timeouts, 1u);
  EXPECT_GE(net.closed, 1u);

  // A fresh connection works normally once the fault is gone.
  NetClient again = connect_client(server);
  ResponseFrame resp;
  ASSERT_TRUE(again.rank(list, resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.text;
  server.stop();
}

TEST(NetServer, WireDeadlineExpiredInQueueIsTypedNotRun) {
  // End-to-end deadline propagation: a request whose header deadline is
  // already hopeless by the time a worker pops it is answered
  // DEADLINE_EXCEEDED without running. The queue delay is injected at
  // the batch-pop edge (serve.batch.stall sleeps 50ms) so a 1ms budget
  // expires deterministically.
  fault::FaultSite* stallsite = fault::find_site("serve.batch.stall");
  ASSERT_NE(stallsite, nullptr);
  NetServerOptions opt = base_options();
  opt.serve.workers = 1;
  NetServer server(opt);
  ASSERT_TRUE(server.start().ok());
  NetClient client = connect_client(server);

  Rng rng(11);
  const LinkedList list = random_list(256, rng);

  fault::Trigger t;
  t.probability = 1.0;  // every batch pop stalls 50ms
  stallsite->arm(t);
  ResponseFrame resp;
  ASSERT_TRUE(client.rank(list, resp, Method::kAuto,
                          /*deadline_ms=*/1).ok());
  fault::disarm_all();
  EXPECT_EQ(resp.status, WireStatus::kDeadlineExceeded) << resp.text;
  EXPECT_GE(server.serve_stats().deadline_expired, 1u);
  EXPECT_GE(server.net_stats().deadline_exceeded_sent, 1u);

  // A generous deadline on the same connection still runs to completion.
  ASSERT_TRUE(client.rank(list, resp, Method::kAuto,
                          /*deadline_ms=*/60000).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.text;
  EXPECT_EQ(resp.values.size(), list.size());
  server.stop();
}

}  // namespace
}  // namespace lr90::net
