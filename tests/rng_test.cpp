#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace lr90 {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, CoinBiasRoughlyHolds) {
  Rng rng(5);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.coin(0.9);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.9, 0.02);
}

TEST(Rng, UnbiasedCoinRoughlyFair) {
  Rng rng(6);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.coin();
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(7);
  std::vector<std::uint32_t> p(257);
  rng.permutation(p);
  std::vector<std::uint32_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(8);
  std::vector<std::uint32_t> empty;
  rng.permutation(empty);  // must not crash
  std::vector<std::uint32_t> one(1);
  rng.permutation(one);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(9);
  std::vector<std::uint32_t> p(100);
  rng.permutation(p);
  int fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += p[i] == i;
  EXPECT_LT(fixed, 10);  // expected ~1 fixed point
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng rng(10);
  const auto s = rng.sample_distinct(50, 200);
  EXPECT_EQ(s.size(), 50u);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 50u);
  for (const auto v : s) EXPECT_LT(v, 200u);
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(11);
  const auto s = rng.sample_distinct(32, 32);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 32u);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng a(12);
  Rng c1 = a.split();
  Rng a2(12);
  Rng c2 = a2.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

}  // namespace
}  // namespace lr90
