// Property tests for the shared LRU slab/result cache
// (serve/slab_cache.hpp): byte-budget admission and eviction, recency
// order, generation-bump unreachability, one-walk invalidation, and
// counter conservation (hits + misses == lookups, always) -- checked
// directly and against a shadow LRU model under a seeded operation sweep.
#include "serve/slab_cache.hpp"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace lr90::serve {
namespace {

using IntCache = LruCache<int>;

CacheKey key(std::uint64_t id, std::uint64_t gen, std::uint64_t flavor = 0) {
  return CacheKey{id, gen, flavor};
}

TEST(LruCache, InsertLookupEvictUnderByteBudget) {
  IntCache cache(/*byte_budget=*/100, /*shards=*/1);
  cache.insert(key(1, 1, 0), 10, 30);
  cache.insert(key(1, 1, 1), 11, 30);
  cache.insert(key(1, 1, 2), 12, 30);

  int got = 0;
  EXPECT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 10);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_bytes, 90u);
  EXPECT_EQ(s.resident_entries, 3u);

  // The fourth entry pushes the shard to 120 > 100: evict from the LRU
  // back until under budget again.
  cache.insert(key(1, 1, 3), 13, 30);
  s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_bytes, 90u);
  EXPECT_EQ(s.resident_entries, 3u);
  EXPECT_LE(s.resident_bytes, 100u) << "resident bytes must obey the budget";
}

TEST(LruCache, EvictionOrderMatchesRecency) {
  IntCache cache(/*byte_budget=*/100, /*shards=*/1);
  cache.insert(key(1, 1, 0), 100, 30);  // A
  cache.insert(key(1, 1, 1), 101, 30);  // B
  cache.insert(key(1, 1, 2), 102, 30);  // C

  // Touch A: recency becomes A > C > B, so B is the eviction victim.
  int got = 0;
  ASSERT_TRUE(cache.lookup(key(1, 1, 0), got));
  cache.insert(key(1, 1, 3), 103, 30);  // D evicts B

  EXPECT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 100);
  EXPECT_FALSE(cache.lookup(key(1, 1, 1), got))
      << "the least recently used entry must be the one evicted";
  EXPECT_TRUE(cache.lookup(key(1, 1, 2), got));
  EXPECT_TRUE(cache.lookup(key(1, 1, 3), got));

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(LruCache, GenerationBumpMakesEveryPriorEntryUnreachable) {
  IntCache cache(/*byte_budget=*/1 << 20, /*shards=*/4);
  for (std::uint64_t flavor = 0; flavor < 8; ++flavor)
    cache.insert(key(7, /*gen=*/1, flavor), static_cast<int>(flavor), 100);

  // The generation is part of the key: after a bump every old-generation
  // key simply never matches again -- no flush required for correctness.
  int got = 0;
  for (std::uint64_t flavor = 0; flavor < 8; ++flavor)
    EXPECT_FALSE(cache.lookup(key(7, /*gen=*/2, flavor), got));
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.resident_entries, 8u) << "stale entries linger until reclaimed";

  // invalidate() is the space reclaim: all generations and flavors of the
  // snapshot drop in one walk, counted as evictions.
  EXPECT_EQ(cache.invalidate(7), 8u);
  s = cache.stats();
  EXPECT_EQ(s.evictions, 8u);
  EXPECT_EQ(s.resident_entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  for (std::uint64_t flavor = 0; flavor < 8; ++flavor)
    EXPECT_FALSE(cache.lookup(key(7, /*gen=*/1, flavor), got));
}

TEST(LruCache, InvalidateDropsOnlyTheNamedSnapshot) {
  IntCache cache(/*byte_budget=*/1 << 20, /*shards=*/1);  // force sharing
  cache.insert(key(1, 1, 0), 10, 50);
  cache.insert(key(2, 1, 0), 20, 50);
  cache.insert(key(1, 2, 0), 11, 50);
  EXPECT_EQ(cache.invalidate(1), 2u);  // both generations of snapshot 1
  int got = 0;
  EXPECT_FALSE(cache.lookup(key(1, 1, 0), got));
  EXPECT_FALSE(cache.lookup(key(1, 2, 0), got));
  EXPECT_TRUE(cache.lookup(key(2, 1, 0), got));
  EXPECT_EQ(got, 20);
}

TEST(LruCache, ReplaceInPlaceIsAnInsertNotAnEviction) {
  IntCache cache(/*byte_budget=*/100, /*shards=*/1);
  cache.insert(key(1, 1, 0), 10, 40);
  cache.insert(key(1, 1, 0), 99, 60);  // refresh under the same key
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_entries, 1u);
  EXPECT_EQ(s.resident_bytes, 60u) << "the new charge replaces the old";
  int got = 0;
  ASSERT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 99);
}

TEST(LruCache, EntryLargerThanShardSliceIsRefusedResidency) {
  // A single entry above the per-shard budget slice must not pin the
  // cache over budget: it is refused outright (one insert, one eviction).
  IntCache cache(/*byte_budget=*/100, /*shards=*/1);
  cache.insert(key(1, 1, 0), 10, 150);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  int got = 0;
  EXPECT_FALSE(cache.lookup(key(1, 1, 0), got));
}

TEST(LruCache, OverSliceInsertLeavesResidentEntriesUntouched) {
  // Regression: the over-slice refusal used to be implemented by admitting
  // the entry and then evicting from the LRU back until under budget --
  // which flushed every innocent resident before reaching the oversized
  // entry itself. The refusal must not perturb the resident set or its
  // byte accounting.
  IntCache cache(/*byte_budget=*/100, /*shards=*/1);
  cache.insert(key(1, 1, 0), 10, 30);
  cache.insert(key(1, 1, 1), 11, 30);
  cache.insert(key(1, 1, 2), 12, 30);

  cache.insert(key(1, 1, 3), 13, 150);  // over-slice: refused, not admitted

  CacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 4u);
  EXPECT_EQ(s.evictions, 1u) << "only the oversized entry is dropped";
  EXPECT_EQ(s.resident_entries, 3u) << "innocent residents must survive";
  EXPECT_EQ(s.resident_bytes, 90u) << "byte accounting must be unperturbed";
  int got = 0;
  EXPECT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 10);
  EXPECT_TRUE(cache.lookup(key(1, 1, 1), got));
  EXPECT_TRUE(cache.lookup(key(1, 1, 2), got));
  EXPECT_FALSE(cache.lookup(key(1, 1, 3), got));

  // A refused re-insert of an existing key keeps the prior (fitting)
  // value resident -- artifacts are deterministic per key.
  cache.insert(key(1, 1, 0), 99, 500);
  ASSERT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 10);
  s = cache.stats();
  EXPECT_EQ(s.resident_bytes, 90u);
}

TEST(LruCache, ResetCountersKeepsResidentEntries) {
  IntCache cache(/*byte_budget=*/1 << 20, /*shards=*/2);
  cache.insert(key(1, 1, 0), 10, 100);
  int got = 0;
  ASSERT_TRUE(cache.lookup(key(1, 1, 0), got));
  ASSERT_FALSE(cache.lookup(key(1, 1, 1), got));

  cache.reset_counters();
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.resident_entries, 1u) << "a stats reset must not cool the cache";
  EXPECT_EQ(s.resident_bytes, 100u);

  // The retained entry still answers -- and counts from zero.
  ASSERT_TRUE(cache.lookup(key(1, 1, 0), got));
  EXPECT_EQ(got, 10);
  s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
}

// Shadow LRU with the cache's exact semantics (single shard): refuse an
// over-budget entry outright, replace in place on a duplicate key,
// push-front on insert/hit, evict from the back while over budget. The
// seeded sweep below compares every lookup outcome and the final
// occupancy against it.
class ShadowLru {
 public:
  explicit ShadowLru(std::size_t budget) : budget_(budget) {}

  bool lookup(const CacheKey& k, int& out) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->first == k) {
        out = it->second.first;
        lru_.splice(lru_.begin(), lru_, it);
        return true;
      }
    }
    return false;
  }

  void insert(const CacheKey& k, int value, std::size_t bytes) {
    if (bytes > budget_) return;  // over-slice refusal, residents untouched
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->first == k) {
        bytes_ -= it->second.second;
        lru_.erase(it);
        break;
      }
    }
    lru_.emplace_front(k, std::make_pair(value, bytes));
    bytes_ += bytes;
    while (bytes_ > budget_ && !lru_.empty()) {
      bytes_ -= lru_.back().second.second;
      lru_.pop_back();
    }
  }

  std::size_t bytes() const { return bytes_; }
  std::size_t entries() const { return lru_.size(); }

 private:
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<std::pair<CacheKey, std::pair<int, std::size_t>>> lru_;
};

class LruCacheSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruCacheSweep, SeededOpsMatchShadowModelAndConserveCounters) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr std::size_t kBudget = 500;
  IntCache cache(kBudget, /*shards=*/1);
  ShadowLru shadow(kBudget);

  std::uint64_t lookups = 0;
  for (int step = 0; step < 2000; ++step) {
    SCOPED_TRACE("repro: seed=" + std::to_string(seed) +
                 " step=" + std::to_string(step));
    const CacheKey k = key(rng.uniform(3) + 1, rng.uniform(3) + 1,
                           rng.uniform(6));
    if (rng.coin(0.6)) {
      int got = -1, want = -1;
      const bool hit = cache.lookup(k, got);
      const bool shadow_hit = shadow.lookup(k, want);
      ++lookups;
      ASSERT_EQ(hit, shadow_hit) << "hit/miss diverged from the LRU model";
      if (hit) ASSERT_EQ(got, want);
    } else {
      const int value = static_cast<int>(rng.uniform(1 << 20));
      // Occasionally above the 500-byte budget, so the sweep also
      // exercises the over-slice refusal path against the model.
      const std::size_t bytes = rng.uniform(600) + 1;
      cache.insert(k, value, bytes);
      shadow.insert(k, value, bytes);
    }
    const CacheStats s = cache.stats();
    ASSERT_EQ(s.hits + s.misses, lookups)
        << "counters must conserve: hits + misses == lookups";
    ASSERT_LE(s.resident_bytes, kBudget);
  }

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.resident_bytes, shadow.bytes());
  EXPECT_EQ(s.resident_entries, shadow.entries());
  EXPECT_GT(s.hits, 0u) << "a 2000-step sweep over 54 keys must hit";
  EXPECT_GT(s.evictions, 0u) << "a 500-byte budget must evict";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruCacheSweep,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(SlabCacheKeying, RequestFlavorsNeverCollide) {
  // Every (rank, op, method) request shape must key a distinct result
  // slot; rank ignores the operator so hot-key ranks collapse maximally.
  std::vector<std::uint64_t> seen;
  for (const Method m : {Method::kAuto, Method::kSerial, Method::kReidMiller,
                         Method::kReidMillerEncoded}) {
    seen.push_back(request_flavor(/*rank=*/true, ScanOp::kPlus, m));
    for (const ScanOp op : kAllScanOps)
      seen.push_back(request_flavor(/*rank=*/false, op, m));
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    for (std::size_t j = i + 1; j < seen.size(); ++j)
      EXPECT_NE(seen[i], seen[j]) << "flavors " << i << " and " << j;
  EXPECT_EQ(request_flavor(true, ScanOp::kPlus, Method::kAuto),
            request_flavor(true, ScanOp::kXor, Method::kAuto))
      << "rank must ignore the scan operator";
}

}  // namespace
}  // namespace lr90::serve
