#include "vm/striping.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lr90::vm {
namespace {

TEST(StripMining, RoundTripLaneSlot) {
  const StripMining s(1000, 128);
  for (std::size_t vp = 0; vp < 1000; vp += 17) {
    EXPECT_EQ(s.vp_at(s.lane_of(vp), s.slot_of(vp)), vp);
  }
}

TEST(StripMining, InterleavedAssignment) {
  const StripMining s(10, 4);
  EXPECT_EQ(s.lane_of(0), 0u);
  EXPECT_EQ(s.lane_of(1), 1u);
  EXPECT_EQ(s.lane_of(4), 0u);
  EXPECT_EQ(s.slot_of(4), 1u);
}

TEST(StripMining, StripCountAndLengths) {
  const StripMining s(10, 4);
  EXPECT_EQ(s.strips(), 3u);
  EXPECT_EQ(s.strip_length(0), 4u);
  EXPECT_EQ(s.strip_length(1), 4u);
  EXPECT_EQ(s.strip_length(2), 2u);  // the short final strip
  EXPECT_EQ(s.strip_length(3), 0u);
}

TEST(StripMining, SlicesCoverEverything) {
  const StripMining s(1001, 128);
  std::size_t total = 0;
  for (std::size_t lane = 0; lane < 128; ++lane)
    total += s.slice(lane).count;
  EXPECT_EQ(total, 1001u);
}

TEST(StripMining, BalanceWithinOne) {
  const StripMining s(1000, 128);
  std::size_t mn = 1000, mx = 0;
  for (std::size_t lane = 0; lane < 128; ++lane) {
    mn = std::min(mn, s.slice(lane).count);
    mx = std::max(mx, s.slice(lane).count);
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(LoopRaking, ContiguousBlocks) {
  const LoopRaking r(1000, 128);
  for (std::size_t lane = 0; lane < 128; ++lane) {
    for (std::size_t vp = r.begin_of(lane); vp < r.end_of(lane); ++vp) {
      EXPECT_EQ(r.lane_of(vp), lane);
    }
  }
}

TEST(LoopRaking, BlocksPartition) {
  const LoopRaking r(1001, 16);
  std::size_t total = 0;
  std::size_t prev_end = 0;
  for (std::size_t lane = 0; lane < 16; ++lane) {
    EXPECT_EQ(r.begin_of(lane), prev_end);
    prev_end = r.end_of(lane);
    total += r.slice(lane).count;
  }
  EXPECT_EQ(prev_end, 1001u);
  EXPECT_EQ(total, 1001u);
}

TEST(LoopRaking, SlotWithinBlock) {
  const LoopRaking r(100, 10);
  EXPECT_EQ(r.block(), 10u);
  EXPECT_EQ(r.lane_of(37), 3u);
  EXPECT_EQ(r.slot_of(37), 7u);
}

TEST(LoopRaking, MoreLanesThanWork) {
  const LoopRaking r(3, 8);
  std::size_t nonempty = 0;
  for (std::size_t lane = 0; lane < 8; ++lane)
    nonempty += r.slice(lane).count > 0;
  EXPECT_EQ(nonempty, 3u);  // block size 1
}

TEST(Striping, EveryVpAssignedExactlyOnceBothSchemes) {
  const std::size_t n = 777, lanes = 32;
  const StripMining s(n, lanes);
  const LoopRaking r(n, lanes);
  std::vector<int> seen_s(n, 0), seen_r(n, 0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t slot = 0; s.in_range(lane, slot); ++slot)
      seen_s[s.vp_at(lane, slot)]++;
    for (std::size_t vp = r.begin_of(lane); vp < r.end_of(lane); ++vp)
      seen_r[vp]++;
  }
  for (std::size_t vp = 0; vp < n; ++vp) {
    EXPECT_EQ(seen_s[vp], 1) << vp;
    EXPECT_EQ(seen_r[vp], 1) << vp;
  }
}

}  // namespace
}  // namespace lr90::vm
