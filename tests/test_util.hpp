// Shared helpers for the algorithm test suites.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "baselines/serial.hpp"
#include "lists/generators.hpp"
#include "lists/linked_list.hpp"
#include "lists/ops.hpp"

namespace lr90::testutil {

/// Ground-truth exclusive scan under any operator: a plain walk.
template <class Op>
std::vector<value_t> expected_scan(const LinkedList& list, Op op) {
  std::vector<value_t> out(list.size(), Op::identity());
  value_t acc = Op::identity();
  for_each_in_order(list, [&](index_t v, std::size_t) {
    out[v] = acc;
    acc = op(acc, list.value[v]);
  });
  return out;
}

/// Asserts two per-vertex result vectors match, reporting the first diff.
inline void expect_scan_eq(const std::vector<value_t>& got,
                           const std::vector<value_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "first mismatch at vertex " << v;
  }
}

/// The list sizes every algorithm is swept over.
inline std::vector<std::size_t> sweep_sizes() {
  return {0, 1, 2, 3, 4, 5, 7, 8, 16, 17, 33, 64, 100, 257, 1000, 4096};
}

}  // namespace lr90::testutil
