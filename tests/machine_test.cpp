#include "vm/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lr90::vm {
namespace {

TEST(MachineConfig, ContentionFactorSingleProcessorIsOne) {
  MachineConfig cfg;
  cfg.processors = 1;
  EXPECT_DOUBLE_EQ(cfg.contention_factor(), 1.0);
}

TEST(MachineConfig, ContentionFactorGrowsWithProcessors) {
  MachineConfig cfg;
  cfg.processors = 8;
  EXPECT_NEAR(cfg.contention_factor(), 1.0 + 0.063 * 3.0, 1e-12);
  cfg.processors = 2;
  EXPECT_NEAR(cfg.contention_factor(), 1.0 + 0.063, 1e-12);
}

TEST(Machine, ChargeAccumulatesLinearCost) {
  Machine m;
  const VectorCosts c{2.0, 10.0, false};
  m.charge(0, c, 100);
  EXPECT_DOUBLE_EQ(m.cycles(0), 210.0);
  m.charge(0, c, 0);
  EXPECT_DOUBLE_EQ(m.cycles(0), 220.0);  // startup still paid
}

TEST(Machine, MemoryBoundChargePaysContention) {
  MachineConfig cfg;
  cfg.processors = 4;
  Machine m(cfg);
  const VectorCosts mem{1.0, 0.0, true};
  const VectorCosts alu{1.0, 0.0, false};
  m.charge(0, mem, 1000);
  m.charge(1, alu, 1000);
  EXPECT_NEAR(m.cycles(0), 1000.0 * (1.0 + 0.063 * 2.0), 1e-9);
  EXPECT_DOUBLE_EQ(m.cycles(1), 1000.0);
}

TEST(Machine, MaxCyclesIsMaxOverProcessors) {
  MachineConfig cfg;
  cfg.processors = 3;
  Machine m(cfg);
  m.charge_scalar(0, 50.0);
  m.charge_scalar(1, 70.0);
  m.charge_scalar(2, 60.0);
  EXPECT_DOUBLE_EQ(m.max_cycles(), 70.0);
  EXPECT_DOUBLE_EQ(m.total_cycles(), 180.0);
}

TEST(Machine, SynchronizeAlignsEveryProcessor) {
  MachineConfig cfg;
  cfg.processors = 2;
  cfg.sync_cycles = 500.0;
  Machine m(cfg);
  m.charge_scalar(0, 100.0);
  m.charge_scalar(1, 300.0);
  m.synchronize();
  EXPECT_DOUBLE_EQ(m.cycles(0), 800.0);
  EXPECT_DOUBLE_EQ(m.cycles(1), 800.0);
  EXPECT_EQ(m.ops().syncs, 1u);
}

TEST(Machine, ElapsedNsUsesClock) {
  Machine m;  // 4.2 ns clock
  m.charge_scalar(0, 1000.0);
  EXPECT_NEAR(m.elapsed_ns(), 4200.0, 1e-9);
}

TEST(Machine, ResetClearsCountersKeepsConfig) {
  MachineConfig cfg;
  cfg.processors = 2;
  Machine m(cfg);
  m.charge_scalar(0, 10.0);
  m.synchronize();
  m.reset();
  EXPECT_DOUBLE_EQ(m.max_cycles(), 0.0);
  EXPECT_EQ(m.ops().syncs, 0u);
  EXPECT_EQ(m.processors(), 2u);
}

TEST(Machine, GatherExecutesAndCounts) {
  Machine m;
  std::vector<std::int64_t> table{10, 20, 30, 40};
  std::vector<std::uint32_t> idx{3, 0, 2};
  std::vector<std::int64_t> dst(3);
  m.gather<std::int64_t, std::uint32_t>(0, dst, table, idx);
  EXPECT_EQ(dst, (std::vector<std::int64_t>{40, 10, 30}));
  EXPECT_EQ(m.ops().gathered, 3u);
  EXPECT_GT(m.cycles(0), 0.0);
}

TEST(Machine, ScatterExecutes) {
  Machine m;
  std::vector<std::int64_t> table(4, 0);
  std::vector<std::uint32_t> idx{1, 3};
  std::vector<std::int64_t> src{7, 9};
  m.scatter<std::int64_t, std::uint32_t>(0, table, idx, src);
  EXPECT_EQ(table, (std::vector<std::int64_t>{0, 7, 0, 9}));
  EXPECT_EQ(m.ops().scattered, 2u);
}

TEST(Machine, PackCompressesStably) {
  Machine m;
  std::vector<int> data{1, 2, 3, 4, 5};
  std::vector<std::uint8_t> keep{1, 0, 1, 0, 1};
  const std::size_t kept = m.pack<int>(0, data, keep);
  EXPECT_EQ(kept, 3u);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[1], 3);
  EXPECT_EQ(data[2], 5);
}

TEST(Machine, MapAndReduceAndIota) {
  Machine m;
  std::vector<std::int64_t> a(5);
  m.iota<std::int64_t>(0, a, 10);
  EXPECT_EQ(a, (std::vector<std::int64_t>{10, 11, 12, 13, 14}));
  m.map1<std::int64_t>(0, a, [](std::int64_t x) { return x * 2; });
  EXPECT_EQ(a[4], 28);
  const auto sum = m.reduce<std::int64_t>(
      0, a, 0, [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(sum, 20 + 22 + 24 + 26 + 28);
}

TEST(Machine, ZeroCostTableChargesNothing) {
  Machine m(MachineConfig{}, CostTable::zero());
  std::vector<std::int64_t> t{1, 2};
  std::vector<std::uint32_t> i{0, 1};
  std::vector<std::int64_t> d(2);
  m.gather<std::int64_t, std::uint32_t>(0, d, t, i);
  EXPECT_DOUBLE_EQ(m.max_cycles(), 0.0);
}

TEST(CostTable, KernelValuesMatchThePaper) {
  const CostTable t = CostTable::cray_c90();
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kInitialScanStep).per_elem, 3.4);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kInitialScanStep).startup, 35.0);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kInitialPack).per_elem, 8.2);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kInitialPack).startup, 1200.0);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kFindSublistList).per_elem, 11.0);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kFinalScanStep).per_elem, 4.6);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kFinalPack).per_elem, 7.2);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kRestoreList).per_elem, 4.2);
  EXPECT_DOUBLE_EQ(t.kernel(Kernel::kInitialize).per_elem, 22.0);
}

TEST(Machine, ChargeKernelUsesKernelCosts) {
  Machine m;
  m.charge_kernel(0, Kernel::kInitialScanStep, 100);
  EXPECT_DOUBLE_EQ(m.cycles(0), 3.4 * 100 + 35.0);
}

TEST(Machine, KernelBreakdownAccumulates) {
  MachineConfig cfg;
  cfg.processors = 2;
  Machine m(cfg);
  m.charge_kernel(0, Kernel::kInitialScanStep, 100);
  m.charge_kernel(1, Kernel::kInitialScanStep, 50);
  m.charge_kernel(0, Kernel::kFinalPack, 10);
  const double f = cfg.contention_factor();
  EXPECT_DOUBLE_EQ(m.kernel_cycles(Kernel::kInitialScanStep),
                   (3.4 * f * 100 + 35.0) + (3.4 * f * 50 + 35.0));
  EXPECT_DOUBLE_EQ(m.kernel_cycles(Kernel::kFinalPack), 7.2 * f * 10 + 950.0);
  EXPECT_DOUBLE_EQ(m.kernel_cycles(Kernel::kRestoreList), 0.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.kernel_cycles(Kernel::kInitialScanStep), 0.0);
}

}  // namespace
}  // namespace lr90::vm
